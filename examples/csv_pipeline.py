#!/usr/bin/env python
"""A file-based detection pipeline: generate -> detect -> archive -> audit.

Shows the deployment-shaped surface of the library: streams and workloads
live in files, detection results are archived as JSON lines, and an
independent re-run with a different algorithm audits the archive.  The
same flow is scriptable from the shell via ``python -m repro`` (the CLI
calls exactly these functions).

Also demonstrates the alert layer: a transition-deduplicated router that
pages (prints) only when a point *becomes* abnormal.

Run:  python examples/csv_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import (
    CollectingSink,
    CountingSink,
    MCODDetector,
    QueryGroup,
    SOPDetector,
    StockTradeSimulator,
    compare_outputs,
    load_points_csv,
    load_results_jsonl,
    load_workload,
    run_with_alerts,
    save_points_csv,
    save_results_jsonl,
    save_workload,
)
from repro import OutlierQuery, WindowSpec


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sop-pipeline-"))
    stream_csv = workdir / "stream.csv"
    workload_json = workdir / "workload.json"
    archive = workdir / "results.jsonl"
    print(f"pipeline workspace: {workdir}")

    # 1. Generate a trading-day stream and persist it.
    sim = StockTradeSimulator(n_trades=4000, n_tickers=5,
                              anomaly_rate=0.01, seed=17)
    points = sim.points(attributes=("price", "log_volume"))
    save_points_csv(points, stream_csv)

    # 2. Author a workload spec and persist it.
    queries = [
        OutlierQuery(r=5, k=3, window=WindowSpec(win=1200, slide=300,
                                                 kind="time"),
                     name="tight"),
        OutlierQuery(r=15, k=6, window=WindowSpec(win=4800, slide=600,
                                                  kind="time"),
                     name="broad"),
    ]
    save_workload(queries, workload_json)

    # 3. Detect with SOP, routing new-outlier transitions to an alert feed,
    #    and archive the full outputs.
    points = load_points_csv(stream_csv)
    group = QueryGroup(load_workload(workload_json))
    feed = CollectingSink()
    stats = CountingSink()
    result = run_with_alerts(SOPDetector(group), points, [feed, stats],
                             dedupe="transitions")
    save_results_jsonl(result.outputs, archive)
    print(f"\ndetection: {result.summary()}")
    print(f"alert feed: {stats.total} transition alerts "
          f"({stats.first_seen} first-seen), per query {stats.per_query}")
    for alert in feed.alerts[:5]:
        print(f"  t={alert.boundary:>6} {alert.query_name:>6} -> trade "
              f"#{alert.seq}")

    # 4. Audit: re-run the archive with an independent implementation.
    audit = MCODDetector(group).run(points)
    archived = load_results_jsonl(archive)
    diffs = compare_outputs(archived, audit.outputs)
    print(f"\naudit vs MCOD re-run: "
          f"{'CLEAN (identical outputs)' if not diffs else diffs}")

    print(f"\nartifacts kept in {workdir} (stream.csv, workload.json, "
          f"results.jsonl)")


if __name__ == "__main__":
    main()
