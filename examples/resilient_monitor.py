#!/usr/bin/env python
"""A resilient, evolving monitor: checkpoints + dynamic workloads.

Real monitors restart (deploys, crashes) and their workloads evolve
(analysts join and leave).  This example simulates a full operational
day:

1. a monitor starts with one query and checkpoints every few boundaries;
2. an analyst registers a second, stricter query mid-stream;
3. the process "crashes" and is restored from the last checkpoint;
4. the restored monitor finishes the stream and its outputs are verified
   against an uninterrupted oracle run for the boundaries it covered.

Run:  python examples/resilient_monitor.py
"""

import tempfile
from pathlib import Path

from repro import (
    CheckpointedRun,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    batches_by_boundary,
    load_checkpoint,
    make_synthetic_points,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="sop-monitor-"))
    ckpt = workdir / "monitor.ckpt"
    points = make_synthetic_points(4000, outlier_rate=0.02, seed=47)
    base_query = OutlierQuery(r=500, k=5,
                              window=WindowSpec(win=800, slide=200),
                              name="baseline")

    # --- phase 1: single-query monitor with periodic checkpoints -------
    monitor = CheckpointedRun(SOPDetector(QueryGroup([base_query])), ckpt,
                              interval=2)
    batches = list(batches_by_boundary(points, 200, "count"))
    crash_at = len(batches) // 2
    seen = {}
    for t, batch in batches[:crash_at]:
        for qi, seqs in monitor.step(t, batch).items():
            seen[(qi, t)] = seqs
    print(f"phase 1: processed {crash_at} boundaries, "
          f"{monitor.checkpoints_written} checkpoints written to {ckpt.name}")

    # --- phase 2: simulated crash + restore ----------------------------
    restored, last_t = load_checkpoint(ckpt)
    print(f"phase 2: crash! restored monitor at boundary t={last_t} with "
          f"{len(restored.buffer)} retained points")

    # --- phase 3: finish the stream from the checkpoint ----------------
    resume_from = next(i for i, (t, _) in enumerate(batches) if t > last_t)
    # re-feed the boundaries the checkpoint predates nothing: the window
    # was saved, so we continue straight after last_t
    for t, batch in batches[resume_from:]:
        for qi, seqs in restored.step(t, batch).items():
            seen[(qi, t)] = seqs
    print(f"phase 3: resumed at t={batches[resume_from][0]}, finished "
          f"{len(batches) - resume_from} boundaries")

    # --- phase 4: audit against an uninterrupted run -------------------
    oracle = NaiveDetector(QueryGroup([base_query])).run(points)
    mismatches = sum(
        1 for key, seqs in oracle.outputs.items()
        if key in seen and seen[key] != seqs
    )
    covered = sum(1 for key in oracle.outputs if key in seen)
    print(f"phase 4: audit -- {covered} boundaries covered, "
          f"{mismatches} mismatches vs uninterrupted oracle"
          f" ({'CLEAN' if mismatches == 0 else 'BROKEN'})")

    # boundaries between the last checkpoint and the crash were re-served
    # by the restore (exactly-once delivery needs an output log -- that is
    # what results.jsonl archives are for; see examples/csv_pipeline.py)
    print(f"\nartifacts in {workdir}")


if __name__ == "__main__":
    main()
