#!/usr/bin/env python
"""Quickstart: multi-query distance-based outlier detection with SOP.

Builds a four-query workload over a synthetic stream, runs the SOP
detector, and shows how to read per-query results, the shared skyband
plan, and the resource metrics.  Everything here uses only the public
``repro`` API.

Run:  python examples/quickstart.py
"""

from repro import (
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)


def main() -> None:
    # 1. A stream: 5000 points, ~3% injected outliers (Sec. 6.1 generator).
    points = make_synthetic_points(5000, dim=2, outlier_rate=0.03, seed=1)

    # 2. A workload: four analysts, four interpretations of "abnormal".
    #    All four pattern/window parameters may differ per query (Sec. 2).
    queries = [
        OutlierQuery(r=300, k=4, window=WindowSpec(win=500, slide=100),
                     name="tight-radius"),
        OutlierQuery(r=800, k=10, window=WindowSpec(win=1000, slide=200),
                     name="many-neighbors"),
        OutlierQuery(r=1500, k=6, window=WindowSpec(win=2000, slide=500),
                     name="long-horizon"),
        OutlierQuery(r=500, k=4, window=WindowSpec(win=300, slide=100),
                     name="short-horizon"),
    ]
    group = QueryGroup(queries)

    # 3. One shared detector answers all of them in a single pass.
    detector = SOPDetector(group)
    print("--- skyband plan (Fig. 6 query parser) ---")
    print(detector.plan.describe())

    result = detector.run(points)
    print("\n--- run summary ---")
    print(result.summary())

    # 4. Per-query outputs: boundary -> outlier point seqs.
    print("\n--- last reported window per query ---")
    for qi, q in enumerate(group):
        per_boundary = result.outliers_for_query(qi)
        last_t = max(per_boundary)
        outliers = sorted(per_boundary[last_t])
        print(f"{q.name:>15}: t={last_t}, {len(outliers)} outliers "
              f"{outliers[:6]}{'...' if len(outliers) > 6 else ''}")

    # 5. The detector's internal sharing statistics.
    print("\n--- sharing statistics ---")
    for key, value in detector.stats.items():
        print(f"{key:>20}: {value:,}")

    # 6. Cross-check against brute force (the library's standing guarantee:
    #    SOP output is exactly the definitional outlier set, per Lemma 1).
    oracle = NaiveDetector(group).run(points)
    diffs = compare_outputs(oracle.outputs, result.outputs)
    print(f"\nverified against brute force: "
          f"{'IDENTICAL' if not diffs else diffs}")


if __name__ == "__main__":
    main()
