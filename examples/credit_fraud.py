#!/usr/bin/env python
"""Credit-fraud monitoring: the paper's motivating scenario (Sec. 1).

Multiple analysts watch the same transaction stream, each with a personal
interpretation of "abnormal": different dissimilarity thresholds (r),
different notions of "the majority of peers" (k), and different horizons
("most recent" = minutes vs. days -> window/slide).  SOP answers the
whole panel with one shared pass.

The transaction stream is synthesized here: amounts cluster by income
band, with occasional injected fraud-like transactions far from any band.

Run:  python examples/credit_fraud.py
"""

import math

import numpy as np

from repro import (
    OutlierQuery,
    Point,
    QueryGroup,
    SOPDetector,
    WindowSpec,
)


def make_transaction_stream(n=6000, seed=5):
    """Amount/merchant-risk features for n card transactions.

    Three income bands spend around different amount levels; ~1% of
    transactions are fraud-shaped (amounts far outside the card's band,
    at high-risk merchants).
    """
    rng = np.random.default_rng(seed)
    bands = [(50.0, 15.0), (400.0, 80.0), (2000.0, 350.0)]
    points = []
    fraud_truth = []
    for i in range(n):
        band_mu, band_sigma = bands[int(rng.integers(0, len(bands)))]
        is_fraud = rng.random() < 0.01
        if is_fraud:
            amount = band_mu * rng.uniform(8, 20)
            merchant_risk = rng.uniform(0.7, 1.0)
        else:
            amount = abs(rng.normal(band_mu, band_sigma))
            merchant_risk = rng.uniform(0.0, 0.35)
        # log-scale amount keeps the three bands comparable in distance
        points.append(Point(seq=i, values=(math.log1p(amount) * 100.0,
                                           merchant_risk * 100.0)))
        fraud_truth.append(is_fraud)
    return points, fraud_truth


def analyst_panel():
    """Four analysts, four parameterizations (Sec. 1's plurality)."""
    return QueryGroup([
        OutlierQuery(r=40, k=8, window=WindowSpec(win=800, slide=200),
                     name="alice/conservative"),
        OutlierQuery(r=80, k=15, window=WindowSpec(win=1600, slide=400),
                     name="bob/majority-of-peers"),
        OutlierQuery(r=40, k=15, window=WindowSpec(win=400, slide=200),
                     name="carol/short-horizon"),
        OutlierQuery(r=120, k=5, window=WindowSpec(win=2400, slide=600),
                     name="dave/coarse-long-term"),
    ])


def main() -> None:
    points, fraud_truth = make_transaction_stream()
    group = analyst_panel()
    detector = SOPDetector(group)
    result = detector.run(points)

    print("--- shared execution summary ---")
    print(result.summary())
    print(detector.plan.describe())

    truth = {p.seq for p, f in zip(points, fraud_truth) if f}
    print(f"\ninjected fraud-like transactions: {len(truth)}")

    print("\n--- per-analyst detection quality ---")
    for qi, q in enumerate(group):
        flagged = set()
        for seqs in result.outliers_for_query(qi).values():
            flagged |= seqs
        hits = len(flagged & truth)
        precision = hits / len(flagged) if flagged else 0.0
        recall = hits / len(truth) if truth else 0.0
        print(f"{q.name:>25}: flagged {len(flagged):4d} "
              f"(precision {precision:4.0%}, recall {recall:4.0%})")

    # transactions every analyst agrees on are the strongest alerts
    per_query_flags = []
    for qi in range(len(group)):
        flagged = set()
        for seqs in result.outliers_for_query(qi).values():
            flagged |= seqs
        per_query_flags.append(flagged)
    consensus = set.intersection(*per_query_flags)
    hits = len(consensus & truth)
    print(f"\nconsensus alerts (all 4 analysts): {len(consensus)}, "
          f"of which true fraud-shaped: {hits}")


if __name__ == "__main__":
    main()
