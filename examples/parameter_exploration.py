#!/usr/bin/env python
"""Parameter exploration: why analysts submit many queries at once.

Sec. 1 of the paper: "determining apriori the most effective input
parameters is difficult - if not impossible"; in a stream, getting them
wrong means permanently losing the outliers in the segment gone by.  The
cure is to run a whole grid of parameterizations *simultaneously* -- which
is exactly the workload SOP makes affordable.

This example sweeps a 5x4 (r, k) grid plus three window sizes (60 queries)
over one stream in a single shared pass, then prints the outlier-rate
surface so an analyst can pick the knee of the curve.

Run:  python examples/parameter_exploration.py
"""

from repro import (
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    make_synthetic_points,
)


def exploration_grid():
    rs = [200, 400, 700, 1200, 2000]
    ks = [4, 8, 16, 32]
    wins = [500, 1000, 2000]
    queries = [
        OutlierQuery(r=r, k=k, window=WindowSpec(win=w, slide=250))
        for r in rs for k in ks for w in wins
    ]
    return rs, ks, wins, QueryGroup(queries)


def main() -> None:
    points = make_synthetic_points(6000, dim=2, outlier_rate=0.02, seed=13,
                                   n_clusters=2, cluster_spread=185)
    rs, ks, wins, group = exploration_grid()
    detector = SOPDetector(group)
    print(f"exploring {len(group)} parameterizations in one shared pass")
    print(detector.plan.describe())

    result = detector.run(points)
    print(f"\n{result.summary()}\n")

    # outlier rate per (r, k) at the middle window size, averaged over
    # all reported boundaries
    mid_win = wins[1]
    print(f"outlier rate (%) by (r, k) at win={mid_win}:")
    header = "r\\k  " + "".join(f"{k:>8}" for k in ks)
    print(header)
    for r in rs:
        row = [f"{r:<5}"]
        for k in ks:
            qi = next(i for i, q in enumerate(group)
                      if q.r == r and q.k == k and q.win == mid_win)
            per_boundary = result.outliers_for_query(qi)
            total = sum(len(s) for s in per_boundary.values())
            evaluated = sum(min(t, mid_win) for t in per_boundary)
            rate = 100.0 * total / evaluated if evaluated else 0.0
            row.append(f"{rate:8.2f}")
        print("".join(row))

    print("\nreading the surface: rates explode toward small r / large k "
          "(everything looks abnormal)\nand collapse toward large r / "
          "small k (nothing does); the knee is where the injected\n"
          "~2% anomaly rate reappears.")

    # window sensitivity at the knee
    knee_r, knee_k = 400, 8
    print(f"\nwindow sensitivity at (r={knee_r}, k={knee_k}):")
    for w in wins:
        qi = next(i for i, q in enumerate(group)
                  if q.r == knee_r and q.k == knee_k and q.win == w)
        per_boundary = result.outliers_for_query(qi)
        total = sum(len(s) for s in per_boundary.values())
        print(f"  win={w:<5} -> {total:5d} outlier reports over "
              f"{len(per_boundary)} windows")


if __name__ == "__main__":
    main()
