#!/usr/bin/env python
"""Stock-trade surveillance on the simulated STT trace (paper Sec. 6.1).

The paper's window-parameter experiments run on the INETATS stock trade
traces; this example monitors our simulated equivalent with a workload of
time-based windows: short-horizon surveillance (catch a fat-finger print
within minutes) alongside long-horizon baselines (block trades abnormal
relative to the whole morning).

It also demonstrates the streaming API directly: feeding batches through
``detector.step`` as boundaries arrive rather than running a pre-collected
list.

Run:  python examples/stock_monitoring.py
"""

from repro import (
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    StockTradeSimulator,
    WindowSpec,
    batches_by_boundary,
)


def surveillance_workload():
    """Time-based windows (seconds); slides share a 300s quantum."""
    return QueryGroup([
        OutlierQuery(r=6, k=3,
                     window=WindowSpec(win=1800, slide=300, kind="time"),
                     name="fast/30min-window"),
        OutlierQuery(r=12, k=8,
                     window=WindowSpec(win=7200, slide=600, kind="time"),
                     name="medium/2h-window"),
        OutlierQuery(r=20, k=12,
                     window=WindowSpec(win=14400, slide=1200, kind="time"),
                     name="slow/4h-window"),
    ])


def main() -> None:
    sim = StockTradeSimulator(n_trades=8000, n_tickers=6,
                              anomaly_rate=0.008, seed=3)
    records = list(sim.records())
    points = sim.points(attributes=("price", "log_volume"))
    truth = {r.trans_id for r in records if r.is_anomaly}

    group = surveillance_workload()
    detector = SOPDetector(group)
    print(detector.plan.describe())
    print(f"trading day: {len(points)} trades, {len(truth)} injected "
          f"anomalies\n")

    by_id = {r.trans_id: r for r in records}
    alerts = {qi: set() for qi in range(len(group))}
    shown = 0
    # drive the detector boundary by boundary (streaming mode)
    for t, batch in batches_by_boundary(points, detector.swift.slide,
                                        group.kind):
        outputs = detector.step(t, batch)
        for qi, seqs in outputs.items():
            fresh = seqs - alerts[qi]
            alerts[qi] |= seqs
            for seq in sorted(fresh)[:2]:
                if shown < 12:
                    rec = by_id[seq]
                    mark = "TRUE-ANOM" if rec.is_anomaly else "  "
                    print(f"t={t:>6}s  {group[qi].name:>18} flags "
                          f"#{seq:<6} {rec.name:<5} "
                          f"price={rec.price:9.2f} vol={rec.volume:9.0f} "
                          f"{mark}")
                    shown += 1

    print("\n--- per-query alert quality over the day ---")
    for qi, q in enumerate(group):
        flagged = alerts[qi]
        hits = len(flagged & truth)
        precision = hits / len(flagged) if flagged else 0.0
        recall = hits / len(truth) if truth else 0.0
        print(f"{q.name:>18}: {len(flagged):4d} alerts  "
              f"precision {precision:4.0%}  recall {recall:4.0%}")

    print(f"\nshared-state footprint at close: "
          f"{detector.memory_units()} skyband entries across "
          f"{detector.tracked_points()} tracked trades")


if __name__ == "__main__":
    main()
