"""Documentation consistency: docs/ must reference real code.

Prose drifts; these tests pin the load-bearing references in docs/ to the
actual package so renames surface as failures.
"""

import re
from pathlib import Path


DOCS = Path(__file__).resolve().parent.parent / "docs"
ROOT = Path(__file__).resolve().parent.parent


class TestDocsExist:
    def test_docs_present(self):
        for name in ("algorithm.md", "api.md", "benchmarks.md"):
            assert (DOCS / name).is_file(), name

    def test_design_and_experiments_present(self):
        assert (ROOT / "DESIGN.md").is_file()
        assert (ROOT / "EXPERIMENTS.md").is_file()


class TestApiDocAccuracy:
    def test_documented_symbols_are_importable(self):
        import repro
        text = (DOCS / "api.md").read_text()
        # every `symbol(` or `symbol` in the tables' first column
        documented = set(re.findall(r"\| `([A-Za-z_][A-Za-z0-9_]*)[（(`]",
                                    text))
        documented |= set(re.findall(r"\| `([A-Za-z_][A-Za-z0-9_]*)`",
                                     text))
        import repro.bench
        skip = {"python", "repro", "run_new_point"}  # method, not export
        missing = [
            name for name in sorted(documented - skip)
            if not hasattr(repro, name) and not hasattr(repro.bench, name)
        ]
        assert not missing, f"documented but not exported: {missing}"

    def test_cli_commands_exist(self):
        from repro.cli import build_parser
        text = (DOCS / "api.md").read_text()
        parser = build_parser()
        sub = next(a for a in parser._actions
                   if hasattr(a, "choices") and a.choices)
        for command in sub.choices:
            assert command in text, f"CLI command {command} undocumented"


class TestBenchmarkDocAccuracy:
    def test_listed_bench_modules_exist(self):
        text = (DOCS / "benchmarks.md").read_text()
        bench_dir = ROOT / "benchmarks"
        for name in re.findall(r"`(bench_\w+\.py)`", text):
            assert (bench_dir / name).is_file(), name

    def test_all_bench_modules_are_listed(self):
        text = (DOCS / "benchmarks.md").read_text()
        bench_dir = ROOT / "benchmarks"
        for path in bench_dir.glob("bench_fig*.py"):
            assert path.name in text, f"{path.name} missing from docs"


class TestDesignExperimentIndex:
    def test_every_figure_has_a_bench_target(self):
        text = (ROOT / "DESIGN.md").read_text()
        for fig in ("Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                    "Fig. 12", "Fig. 13", "Table 1", "Table 2"):
            assert fig in text, f"DESIGN.md index missing {fig}"

    def test_experiments_covers_every_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for fig in ("Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11",
                    "Fig. 12", "Fig. 13", "Table 1"):
            assert fig in text, f"EXPERIMENTS.md missing {fig}"

    def test_experiments_lists_divergences(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "Divergences" in text
