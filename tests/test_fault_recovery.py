"""Crash + checkpoint-resume recovery: byte-identical to uninterrupted.

The recovery contract (DESIGN.md §11): kill the runtime mid-stream, come
back from the last atomic sharded checkpoint, replay the remainder --
the union of pre-crash outputs and resumed outputs equals the fault-free
run *exactly*, for every shard index, every refresh strategy, and both
window kinds.

The crash is deterministic: a :class:`~repro.testing.FaultInjector`
attached as a runtime subscriber raises :class:`InjectedCrash` at a
plan-pinned boundary, after the periodic checkpoint subscriber for that
boundary has (or has not) fired -- exactly the ordering a real worker
loss would see.
"""

import pytest

from repro import (
    DetectorConfig,
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    OutlierQuery,
    QueryGroup,
    Runtime,
    ShardedCheckpointSubscriber,
    WindowSpec,
    compare_outputs,
    load_sharded_checkpoint,
    make_synthetic_points,
)

pytestmark = pytest.mark.chaos

N_SHARDS = 4
INTERVAL = 3           # checkpoint every 3 boundaries: t = 120, 240, 360...
STRATEGIES = ("per-point", "batched", "grid")


def group(kind="count"):
    return QueryGroup([
        OutlierQuery(r=300, k=4, window=WindowSpec(win=200, slide=40,
                                                   kind=kind)),
        OutlierQuery(r=700, k=6, window=WindowSpec(win=160, slide=40,
                                                   kind=kind)),
    ])


def config(strategy):
    return DetectorConfig(shards=N_SHARDS, refresh_strategy=strategy)


@pytest.fixture(scope="module")
def stream():
    return make_synthetic_points(600, seed=5)


@pytest.fixture(scope="module")
def references(stream):
    """Fault-free answers, one per refresh strategy (computed once)."""
    return {s: Runtime(group(), config=config(s)).run(stream)
            for s in STRATEGIES}


class Collector:
    """Runtime subscriber archiving every boundary's merged outputs --
    the stand-in for whatever sink consumed the pre-crash answers."""

    def __init__(self):
        self.outputs = {}

    def on_attach(self, runtime):
        pass

    def on_boundary_end(self, t, outputs):
        for qi, seqs in outputs.items():
            self.outputs[(qi, t)] = seqs

    def on_stream_end(self, result):
        pass


def crash_and_resume(stream, kind, strategy, shard, crash_t, ck_path,
                     chaos_report=None):
    """Kill a checkpointing run at ``crash_t``; resume; return the union
    of pre-crash and post-resume outputs plus the resume boundary."""
    runtime = Runtime(group(kind), config=config(strategy))
    collector = runtime.subscribe(Collector())
    ck = runtime.subscribe(ShardedCheckpointSubscriber(ck_path,
                                                       interval=INTERVAL))
    plan = FaultPlan((Fault("crash", shard=shard, boundary=crash_t),))
    runtime.subscribe(FaultInjector(plan, shard))
    with pytest.raises(InjectedCrash):
        runtime.run(stream)
    assert ck.checkpoints_written >= 1

    import json
    with open(ck_path) as fh:
        t_ck = int(json.loads(fh.readline())["last_boundary"])
    assert t_ck <= crash_t

    resumed, tail = Runtime.resume_from_checkpoint(ck_path, stream)
    assert all(t > t_ck for (_, t) in tail.outputs)
    combined = {k: v for k, v in collector.outputs.items() if k[1] <= t_ck}
    combined.update(tail.outputs)
    if chaos_report is not None:
        chaos_report(test="crash_resume", strategy=strategy, kind=kind,
                     plan=plan.as_dict(), checkpoint_boundary=t_ck,
                     resumed_boundaries=sorted({t for _, t in tail.outputs}))
    return combined, tail


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shard", range(N_SHARDS))
def test_crash_resume_bitexact(tmp_path, stream, references, strategy,
                               shard, chaos_report):
    """For every (shard, strategy): crash at a shard-specific boundary,
    resume from the last checkpoint, and match the fault-free run."""
    crash_t = 200 + 40 * shard  # t=200..320: between/on checkpoint writes
    combined, tail = crash_and_resume(
        stream, "count", strategy, shard, crash_t,
        tmp_path / "ck.jsonl", chaos_report)
    ref = references[strategy]
    diffs = compare_outputs(ref.outputs, combined)
    assert not diffs, "\n".join(diffs)
    assert not tail.partial


def test_crash_resume_time_windows(tmp_path, stream, chaos_report):
    """The same contract holds for TIME windows (positions from
    timestamps, not sequence numbers)."""
    ref = Runtime(group("time"), config=config("grid")).run(stream)
    combined, _ = crash_and_resume(stream, "time", "grid", 2, 280,
                                   tmp_path / "ck.jsonl", chaos_report)
    diffs = compare_outputs(ref.outputs, combined)
    assert not diffs, "\n".join(diffs)


def test_resume_covers_only_post_checkpoint_boundaries(tmp_path, stream):
    """The resumed result is exactly the tail: no boundary at or before
    the checkpoint is re-reported (no double alerts on recovery)."""
    runtime = Runtime(group(), config=config("batched"))
    ck = runtime.subscribe(ShardedCheckpointSubscriber(
        tmp_path / "ck.jsonl", interval=INTERVAL))
    plan = FaultPlan((Fault("crash", shard=1, boundary=320),))
    runtime.subscribe(FaultInjector(plan, 1))
    with pytest.raises(InjectedCrash):
        runtime.run(stream)
    restored, t_ck = load_sharded_checkpoint(tmp_path / "ck.jsonl")
    assert t_ck == 240  # interval 3 on slide 40: writes at 120, 240
    tail = restored.resume(stream)
    assert all(t > t_ck for (_, t) in tail.outputs)
    assert restored.last_boundary == 600  # driven to the stream's end


def test_resume_from_checkpoint_roundtrips_config(tmp_path, stream):
    """The restored runtime carries the checkpointed detector config, so
    the resumed boundaries run under the same ablation switches."""
    runtime = Runtime(group(), config=config("grid"))
    runtime.subscribe(ShardedCheckpointSubscriber(tmp_path / "ck.jsonl",
                                                  interval=INTERVAL))
    plan = FaultPlan((Fault("crash", shard=0, boundary=280),))
    runtime.subscribe(FaultInjector(plan, 0))
    with pytest.raises(InjectedCrash):
        runtime.run(stream)
    restored, _ = Runtime.resume_from_checkpoint(tmp_path / "ck.jsonl",
                                                 stream)
    assert restored.config.refresh_strategy == "grid"
    assert restored.n_shards == N_SHARDS
