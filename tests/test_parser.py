"""Unit tests for the query parser, RGrid (Def. 4), and Def. 6 tables."""

import numpy as np
import pytest

from repro import OutlierQuery, QueryGroup, RGrid, WindowSpec, parse_workload


def q(r, k, win=100, slide=10):
    return OutlierQuery(r=r, k=k, window=WindowSpec(win=win, slide=slide))


class TestRGrid:
    def test_dedup_and_sort(self):
        grid = RGrid([3.0, 1.0, 3.0, 2.0])
        assert grid.values == (1.0, 2.0, 3.0)
        assert len(grid) == 3

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            RGrid([])
        with pytest.raises(ValueError):
            RGrid([0.0, 1.0])

    def test_layer_of_def4(self):
        # Def. 4 with grid (1, 2, 3): d in (r_m, r_{m+1}] -> layer m+1;
        # 0-based here, so d <= 1 -> 0, 1 < d <= 2 -> 1, etc.
        grid = RGrid([1.0, 2.0, 3.0])
        assert grid.layer_of(0.5) == 0
        assert grid.layer_of(1.0) == 0   # boundary d == r is a neighbor
        assert grid.layer_of(1.5) == 1
        assert grid.layer_of(2.0) == 1
        assert grid.layer_of(3.0) == 2

    def test_beyond_sentinel(self):
        grid = RGrid([1.0, 2.0])
        assert grid.layer_of(2.0001) == grid.beyond == 2

    def test_layers_of_vectorized_matches_scalar(self):
        grid = RGrid([1.0, 2.5, 7.0])
        d = np.asarray([0.0, 1.0, 1.1, 2.5, 3.0, 7.0, 7.1])
        vec = grid.layers_of(d)
        assert list(vec) == [grid.layer_of(x) for x in d]

    def test_layer_of_r_exact(self):
        grid = RGrid([1.0, 2.0, 4.0])
        assert grid.layer_of_r(2.0) == 1

    def test_layer_of_r_rejects_non_grid_value(self):
        with pytest.raises(ValueError):
            RGrid([1.0, 2.0]).layer_of_r(1.5)

    def test_radius_of_layer_roundtrip(self):
        grid = RGrid([1.0, 2.0, 4.0])
        assert grid.radius_of_layer(grid.layer_of_r(4.0)) == 4.0


class TestSkybandPlan:
    def test_subgroups_sorted_by_k(self):
        plan = parse_workload(QueryGroup([q(5, 3), q(1, 1), q(2, 3)]))
        assert plan.k_list == (1, 3)
        assert plan.k_max == 3

    def test_subgroup_layers(self):
        plan = parse_workload(QueryGroup([q(5, 3), q(1, 3), q(2, 1)]))
        # grid = (1, 2, 5); subgroup k=3 has layers {2, 0}
        sg3 = [sg for sg in plan.subgroups if sg.k == 3][0]
        assert sg3.min_layer == 0 and sg3.max_layer == 2

    def test_query_layers_aligned(self):
        group = QueryGroup([q(5, 3), q(1, 3), q(2, 1)])
        plan = parse_workload(group)
        assert plan.query_layers == (2, 0, 1)

    def test_query_subgroup_mapping(self):
        group = QueryGroup([q(5, 3), q(1, 1), q(2, 3)])
        plan = parse_workload(group)
        ks = [plan.subgroups[j].k for j in plan.query_subgroup]
        assert ks == [3, 1, 3]

    def test_allowed_layer_def6(self):
        # Example 3's workload: QG1 = k=2 over r {1,3,4}; QG2 = k=3 over
        # r {2,3,4}.  Grid = (1,2,3,4) -> layers 0..3.
        group = QueryGroup([
            q(1, 2), q(3, 2), q(4, 2),
            q(2, 3), q(3, 3), q(4, 3),
        ])
        plan = parse_workload(group)
        # dominator count 0 or 1: both subgroups (k=2, k=3) still reachable
        # -> max over their max layers = 3
        assert plan.allowed_layer[0] == 3
        assert plan.allowed_layer[1] == 3
        # dominator count 2: only k=3 remains -> its max layer 3
        assert plan.allowed_layer[2] == 3

    def test_allowed_layer_shrinks_with_small_high_k_reach(self):
        # high-k subgroup only covers small r: points far out that are
        # already dominated by the low k are useless (Def. 6 cond. 3)
        group = QueryGroup([q(10, 2), q(1, 5)])
        plan = parse_workload(group)
        # grid (1, 10): c=0,1 -> k=2 and k=5 reachable, max layer = 1
        assert plan.allowed_layer[0] == 1
        assert plan.allowed_layer[1] == 1
        # c in {2,3,4}: only k=5 reachable, its max layer = layer(1) = 0
        assert plan.allowed_layer[2] == 0
        assert plan.allowed_layer[3] == 0
        assert plan.allowed_layer[4] == 0

    def test_swift_from_group(self):
        plan = parse_workload(QueryGroup([
            q(1, 1, win=100, slide=20), q(2, 1, win=400, slide=30)]))
        assert plan.swift.win == 400 and plan.swift.slide == 10

    def test_describe_mentions_counts(self):
        plan = parse_workload(QueryGroup([q(1, 1), q(2, 4)]))
        text = plan.describe()
        assert "2 queries" in text and "k_max=4" in text
