"""Unit tests for the simulated STT stock-trade stream."""

import math

import pytest

from repro import StockTradeSimulator, make_stock_points


class TestValidation:
    @pytest.mark.parametrize("kw", [
        {"n_tickers": 0}, {"n_tickers": 999}, {"anomaly_rate": -0.1},
        {"anomaly_rate": 0.5}, {"n_trades": 0},
    ])
    def test_rejects_bad_params(self, kw):
        with pytest.raises(ValueError):
            StockTradeSimulator(**kw)

    def test_unknown_attribute_rejected(self):
        sim = StockTradeSimulator(n_trades=10)
        with pytest.raises(ValueError, match="unknown attributes"):
            sim.points(attributes=("price", "spread"))


class TestRecords:
    def _records(self, **kw):
        return list(StockTradeSimulator(n_trades=500, seed=4, **kw).records())

    def test_schema(self):
        rec = self._records()[0]
        assert set(["name", "trans_id", "time", "volume", "price", "type"]
                   ) <= set(rec.__dataclass_fields__)

    def test_trans_ids_sequential(self):
        recs = self._records()
        assert [r.trans_id for r in recs] == list(range(500))

    def test_times_sorted_within_day(self):
        recs = self._records()
        times = [r.time for r in recs]
        assert times == sorted(times)
        assert 0 <= times[0] and times[-1] <= 6.5 * 3600

    def test_anomaly_rate_honored(self):
        recs = self._records(anomaly_rate=0.02)
        assert sum(r.is_anomaly for r in recs) == 10

    def test_prices_and_volumes_positive(self):
        recs = self._records()
        assert all(r.price > 0 and r.volume >= 1 for r in recs)

    def test_trade_types(self):
        recs = self._records()
        assert {r.type for r in recs} <= {"BUY", "SELL"}

    def test_ticker_universe(self):
        recs = list(StockTradeSimulator(n_trades=300, n_tickers=3,
                                        seed=1).records())
        assert len({r.name for r in recs}) <= 3

    def test_deterministic(self):
        assert self._records() == self._records()

    def test_anomalies_are_extreme(self):
        recs = self._records(anomaly_rate=0.05)
        normal_vol = sorted(r.volume for r in recs if not r.is_anomaly)
        median = normal_vol[len(normal_vol) // 2]
        big_anomalies = [r for r in recs if r.is_anomaly
                         and r.volume > 20 * median]
        # roughly half the anomalies are block trades
        assert big_anomalies


class TestPoints:
    def test_default_projection(self):
        pts = make_stock_points(100, seed=2)
        assert all(p.dim == 2 for p in pts)

    def test_log_volume(self):
        sim = StockTradeSimulator(n_trades=50, seed=2)
        recs = list(sim.records())
        pts = sim.points(attributes=("log_volume",))
        for rec, p in zip(recs, pts):
            assert p.values[0] == pytest.approx(math.log1p(rec.volume))

    def test_seq_is_trans_id_and_time_is_trade_time(self):
        sim = StockTradeSimulator(n_trades=50, seed=2)
        recs = list(sim.records())
        pts = sim.points()
        for rec, p in zip(recs, pts):
            assert p.seq == rec.trans_id and p.time == rec.time

    def test_time_of_day_attribute(self):
        pts = make_stock_points(30, seed=2, attributes=("time_of_day",))
        assert all(p.values[0] == p.time for p in pts)

    def test_u_shaped_intensity(self):
        # open + close hours carry far more than a uniform share of trades
        recs = list(StockTradeSimulator(n_trades=4000, seed=8).records())
        day = 6.5 * 3600
        edges = sum(1 for r in recs
                    if r.time < 0.15 * day or r.time > 0.85 * day)
        assert edges / len(recs) > 0.5
