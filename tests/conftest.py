"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import (
    NaiveDetector,
    OutlierQuery,
    Point,
    QueryGroup,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)


def pytest_collection_modifyitems(items):
    # Everything under tests/serving/ is the asyncio service e2e suite:
    # deterministic and in-process, but it exercises real sockets and an
    # event loop, so CI runs it as its own job (``pytest -m serving``)
    # and the tier-1 leg deselects it.
    for item in items:
        if "serving" in str(getattr(item, "fspath", "")):
            item.add_marker(pytest.mark.serving)


def line_points(values, start_seq=0, times=None):
    """1-D points from a list of scalars (controlled-distance streams)."""
    if times is None:
        return [
            Point(seq=start_seq + i, values=(float(v),))
            for i, v in enumerate(values)
        ]
    return [
        Point(seq=start_seq + i, values=(float(v),), time=float(t))
        for i, (v, t) in enumerate(zip(values, times))
    ]


def assert_equivalent(group: QueryGroup, points, detector, oracle_cls=NaiveDetector):
    """Run ``detector`` and the naive oracle; assert identical outputs."""
    expected = oracle_cls(group).run(points)
    actual = detector.run(points)
    diffs = compare_outputs(expected.outputs, actual.outputs)
    assert not diffs, "\n".join(diffs)
    return actual


@pytest.fixture
def small_stream():
    """1200 synthetic points with a visible outlier rate."""
    return make_synthetic_points(1200, dim=2, outlier_rate=0.05, seed=3)


@pytest.fixture
def small_group():
    """A mixed workload touching all four parameters."""
    return QueryGroup([
        OutlierQuery(r=300, k=4, window=WindowSpec(win=200, slide=50)),
        OutlierQuery(r=700, k=9, window=WindowSpec(win=400, slide=100)),
        OutlierQuery(r=1500, k=6, window=WindowSpec(win=300, slide=75)),
        OutlierQuery(r=300, k=9, window=WindowSpec(win=150, slide=50)),
    ])


@pytest.fixture
def rng():
    return np.random.default_rng(20160626)  # SIGMOD'16 opening day


# ---------------------------------------------------------------------------
# chaos-suite outcome report (CI artifact)
# ---------------------------------------------------------------------------

#: records appended by the ``chaos_report`` fixture, one per scenario
_CHAOS_RECORDS: list = []


@pytest.fixture
def chaos_report(request):
    """Record a chaos scenario's fault plan + outcome for the CI artifact.

    Tests call ``chaos_report(test=..., plan=plan.as_dict(), ...)``; when
    the ``CHAOS_REPORT`` environment variable names a path, the session
    hook below writes every record there as JSON.
    """
    def record(**entry):
        entry.setdefault("nodeid", request.node.nodeid)
        _CHAOS_RECORDS.append(entry)
    return record


def pytest_sessionfinish(session, exitstatus):
    target = os.environ.get("CHAOS_REPORT")
    if not target:
        return
    with open(target, "w") as fh:
        json.dump({
            "exitstatus": int(exitstatus),
            "scenarios": _CHAOS_RECORDS,
        }, fh, indent=2, default=str)
        fh.write("\n")
