"""Unit tests for meters, run results, and output comparison."""

import time

import pytest

from repro import CpuMeter, MemoryMeter, RunResult, compare_outputs
from repro.metrics.meters import EVIDENCE_ENTRY_BYTES, POINT_STATE_BYTES


class TestCpuMeter:
    def test_accumulates_samples(self):
        meter = CpuMeter()
        for _ in range(3):
            meter.start()
            meter.stop()
        assert len(meter) == 3
        assert meter.total_seconds >= 0

    def test_mean_ms(self):
        meter = CpuMeter()
        meter.samples_ns = [1_000_000, 3_000_000]
        assert meter.mean_ms_per_window == pytest.approx(2.0)
        assert meter.max_ms == pytest.approx(3.0)

    def test_empty_meter(self):
        meter = CpuMeter()
        assert meter.mean_ms_per_window == 0.0
        assert meter.max_ms == 0.0

    def test_measures_real_time(self):
        meter = CpuMeter()
        meter.start()
        time.sleep(0.01)
        meter.stop()
        assert meter.total_seconds >= 0.009


class TestMemoryMeter:
    def test_tracks_peak(self):
        meter = MemoryMeter()
        meter.sample(10, tracked_points=2)
        meter.sample(50, tracked_points=1)
        meter.sample(20, tracked_points=9)
        assert meter.peak_units == 50
        assert meter.peak_points == 9
        assert meter.last_units == 20

    def test_bytes_cost_model(self):
        meter = MemoryMeter()
        meter.sample(10, tracked_points=3)
        assert meter.peak_bytes == 10 * EVIDENCE_ENTRY_BYTES + \
            3 * POINT_STATE_BYTES
        assert meter.peak_kb == pytest.approx(meter.peak_bytes / 1024)


class TestRunResult:
    def _result(self):
        res = RunResult(detector="test")
        res.outputs = {
            (0, 10): frozenset({1, 2}),
            (0, 20): frozenset(),
            (1, 10): frozenset({3}),
        }
        return res

    def test_total_outliers(self):
        assert self._result().total_outliers() == 3

    def test_outliers_for_query(self):
        per_q = self._result().outliers_for_query(0)
        assert per_q == {10: frozenset({1, 2}), 20: frozenset()}

    def test_summary_mentions_detector(self):
        assert "test" in self._result().summary()

    def test_work_stats_snapshot_is_a_detached_plain_dict(self):
        res = self._result()
        res.work = {"distance_rows": 7, "kernel_calls": 2}
        snap = res.work_stats_snapshot()
        assert type(snap) is dict
        assert snap == {"distance_rows": 7, "kernel_calls": 2}
        # a snapshot, not a view: mutating it leaves the result intact
        snap["distance_rows"] = 0
        snap["new_key"] = 1
        assert res.work == {"distance_rows": 7, "kernel_calls": 2}

    def test_work_stats_snapshot_empty(self):
        assert RunResult(detector="x").work_stats_snapshot() == {}


class TestCompareOutputs:
    def test_identical(self):
        a = {(0, 1): frozenset({1})}
        assert compare_outputs(a, dict(a)) == []

    def test_missing_keys_both_directions(self):
        a = {(0, 1): frozenset()}
        b = {(0, 2): frozenset()}
        diffs = compare_outputs(a, b)
        assert any("only in first" in d for d in diffs)
        assert any("only in second" in d for d in diffs)

    def test_value_differences(self):
        a = {(0, 1): frozenset({1, 2})}
        b = {(0, 1): frozenset({2, 3})}
        diffs = compare_outputs(a, b)
        assert len(diffs) == 1
        assert "first-only=[1]" in diffs[0]
        assert "second-only=[3]" in diffs[0]

    def test_limit_respected(self):
        a = {(0, t): frozenset({t}) for t in range(50)}
        b = {(0, t): frozenset() for t in range(50)}
        assert len(compare_outputs(a, b, limit=5)) == 5
