"""Unit tests for the Table 1 / Table 2 workload builders."""

import pytest

from repro.bench import (
    PAPER_RANGES,
    WORKLOAD_SPECS,
    ScaledRanges,
    build_workload,
    default_ranges,
)


class TestSpecsTable1:
    def test_all_seven_classes(self):
        assert sorted(WORKLOAD_SPECS) == list("ABCDEFG")

    def test_class_g_varies_everything(self):
        assert WORKLOAD_SPECS["G"] == (True, True, True, True)

    def test_paper_ranges_table2(self):
        assert PAPER_RANGES["K"] == (30, 1500)
        assert PAPER_RANGES["R"] == (200.0, 2000.0)
        assert PAPER_RANGES["W"] == (1_000, 500_000)
        assert PAPER_RANGES["S"] == (50, 50_000)


class TestBuilder:
    def test_size(self):
        assert len(build_workload("A", 25, seed=1)) == 25

    def test_deterministic_per_seed(self):
        a = build_workload("G", 10, seed=4)
        b = build_workload("G", 10, seed=4)
        assert [q.name for q in a] == [q.name for q in b]

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown workload spec"):
            build_workload("Z", 5)

    def test_zero_queries_rejected(self):
        with pytest.raises(ValueError):
            build_workload("A", 0)

    def test_case_insensitive(self):
        assert len(build_workload("g", 3, seed=0)) == 3

    def _varies(self, group, attr):
        return len({getattr(q, attr) for q in group}) > 1

    def test_workload_a_varies_only_r(self):
        g = build_workload("A", 30, seed=2)
        assert self._varies(g, "r")
        assert not self._varies(g, "k")
        assert not self._varies(g, "win")
        assert not self._varies(g, "slide")

    def test_workload_b_varies_only_k(self):
        g = build_workload("B", 30, seed=2)
        assert not self._varies(g, "r") and self._varies(g, "k")

    def test_workload_d_varies_only_win(self):
        g = build_workload("D", 30, seed=2)
        assert self._varies(g, "win")
        assert not self._varies(g, "r") and not self._varies(g, "slide")

    def test_workload_e_varies_only_slide(self):
        g = build_workload("E", 30, seed=2)
        assert self._varies(g, "slide") and not self._varies(g, "win")

    def test_workload_g_varies_all(self):
        g = build_workload("G", 40, seed=2)
        for attr in ("r", "k", "win", "slide"):
            assert self._varies(g, attr), attr

    def test_values_within_ranges(self):
        ranges = default_ranges()
        g = build_workload("G", 100, seed=9, ranges=ranges)
        for q in g:
            assert ranges.r[0] <= q.r < ranges.r[1]
            assert ranges.k[0] <= q.k < ranges.k[1]
            assert ranges.win[0] <= q.win < ranges.win[1]
            assert q.slide <= q.win

    def test_slides_are_quantum_multiples(self):
        ranges = default_ranges()
        g = build_workload("F", 50, seed=3, ranges=ranges)
        assert all(q.slide % ranges.slide_quantum == 0 for q in g)

    def test_fixed_slide_clamped_to_window(self):
        # fixed slide 100 > smallest possible window must be clamped
        ranges = ScaledRanges(win=(40, 80), fixed_slide=100)
        g = build_workload("D", 20, seed=5, ranges=ranges)
        assert all(q.slide <= q.win for q in g)


class TestScaling:
    def test_scale_factor(self):
        base = default_ranges()
        double = base.scale(2.0)
        assert double.fixed_win == 2 * base.fixed_win
        assert double.k == (2 * base.k[0], 2 * base.k[1])
        # r untouched: data geometry is scale-independent
        assert double.r == base.r

    def test_scale_validates(self):
        with pytest.raises(ValueError):
            default_ranges().scale(0)

    def test_default_ranges_fixed_r_override(self):
        assert default_ranges(fixed_r=200.0).fixed_r == 200.0
