"""Unit tests for the LSky layered skyband structure."""

import pytest

from repro import LSky


def build(entries, n_layers=4):
    """entries: list of (seq, layer); pos defaults to seq."""
    sky = LSky(n_layers)
    for seq, layer in entries:
        sky.insert(seq, float(seq), layer)
    return sky


class TestInsert:
    def test_requires_descending_seq(self):
        sky = build([(10, 0)])
        with pytest.raises(ValueError, match="descending"):
            sky.insert(10, 10.0, 1)
        with pytest.raises(ValueError, match="descending"):
            sky.insert(11, 11.0, 1)

    def test_layer_bounds(self):
        sky = LSky(3)
        with pytest.raises(ValueError):
            sky.insert(1, 1.0, 3)
        with pytest.raises(ValueError):
            sky.insert(1, 1.0, -1)

    def test_len(self):
        assert len(build([(9, 1), (5, 0), (2, 2)])) == 3

    def test_needs_at_least_one_layer(self):
        with pytest.raises(ValueError):
            LSky(0)


class TestDominatorCount:
    def test_counts_layer_prefix(self):
        sky = build([(9, 1), (8, 0), (7, 2), (6, 0)])
        assert sky.dominator_count(0) == 2
        assert sky.dominator_count(1) == 3
        assert sky.dominator_count(2) == 4
        assert sky.dominator_count(3) == 4

    def test_empty(self):
        assert LSky(2).dominator_count(1) == 0


class TestCountWithin:
    def test_layer_and_window_filters(self):
        sky = build([(9, 1), (8, 0), (4, 0), (2, 2)])
        assert sky.count_within(max_layer=0, min_pos=0.0, cap=10) == 2
        assert sky.count_within(max_layer=0, min_pos=5.0, cap=10) == 1
        assert sky.count_within(max_layer=2, min_pos=0.0, cap=10) == 4

    def test_cap_short_circuits(self):
        sky = build([(9, 0), (8, 0), (7, 0)])
        assert sky.count_within(0, 0.0, cap=2) == 2

    def test_stops_at_expired_prefix(self):
        # entries are pos-descending: an expired entry ends the scan
        sky = build([(9, 0), (3, 0), (2, 0)])
        assert sky.count_within(0, min_pos=4.0, cap=10) == 1


class TestSuccLayers:
    def test_prefix_of_younger_entries(self):
        sky = build([(9, 1), (8, 0), (4, 2), (2, 0)])
        assert sky.succ_layers(p_seq=5) == [1, 0]
        assert sky.succ_layers(p_seq=0) == [1, 0, 2, 0]
        assert sky.succ_layers(p_seq=9) == []


class TestKDistance:
    def test_layer_of_kth_nearest(self):
        sky = build([(9, 2), (8, 0), (7, 1), (6, 0)])
        assert sky.k_distance_layer(1) == 0
        assert sky.k_distance_layer(2) == 0
        assert sky.k_distance_layer(3) == 1
        assert sky.k_distance_layer(4) == 2

    def test_none_when_insufficient(self):
        assert build([(9, 0)]).k_distance_layer(2) is None

    def test_k_validated(self):
        with pytest.raises(ValueError):
            build([]).k_distance_layer(0)


class TestExpiry:
    def test_unexpired_entries_keep_order(self):
        sky = build([(9, 1), (7, 0), (3, 2), (1, 0)])
        assert sky.unexpired_entries(4.0) == [(9, 9.0, 1), (7, 7.0, 0)]

    def test_all_unexpired(self):
        sky = build([(9, 1), (7, 0)])
        assert len(sky.unexpired_entries(0.0)) == 2

    def test_all_expired(self):
        sky = build([(9, 1)])
        assert sky.unexpired_entries(100.0) == []


class TestIntrospection:
    def test_layer_buckets_arrival_order(self):
        # Fig. 2: within each bucket, earliest arrival at the head
        sky = build([(9, 1), (8, 0), (4, 1), (2, 0)])
        assert sky.layer_buckets() == {0: [2, 8], 1: [4, 9]}

    def test_layer_cardinalities(self):
        sky = build([(9, 1), (8, 0), (4, 1)])
        assert sky.layer_cardinalities() == {0: 1, 1: 2}

    def test_entries_iteration(self):
        sky = build([(9, 1), (8, 0)])
        assert list(sky.entries()) == [(9, 9.0, 1), (8, 8.0, 0)]


class TestIntrospectionCaching:
    """layer_buckets()/layer_cardinalities() are cached keyed on entry
    count; every mutation path -- insert, extend_older, and the batched
    scan's direct list appends -- must be reflected in the next call."""

    def test_cache_refreshes_after_insert(self):
        sky = build([(9, 1), (8, 0)])
        assert sky.layer_buckets() == {0: [8], 1: [9]}
        assert sky.layer_cardinalities() == {0: 1, 1: 1}
        sky.insert(5, 5.0, 1)
        assert sky.layer_buckets() == {0: [8], 1: [5, 9]}
        assert sky.layer_cardinalities() == {0: 1, 1: 2}

    def test_cache_refreshes_after_extend_older(self):
        sky = build([(9, 1)])
        assert sky.layer_cardinalities() == {1: 1}
        sky.extend_older([(7, 7.0, 0), (4, 4.0, 1)])
        assert sky.layer_buckets() == {0: [7], 1: [4, 9]}
        assert sky.layer_cardinalities() == {0: 1, 1: 2}

    def test_cache_refreshes_after_direct_append(self):
        # the batched K-SKY scan appends to the raw lists (bypassing
        # insert); the count-keyed cache must notice
        sky = build([(9, 1)])
        assert sky.layer_buckets() == {1: [9]}
        sky.seqs.append(3)
        sky.poss.append(3.0)
        sky.layers.append(0)
        sky._sorted_layers.insert(0, 0)
        assert sky.layer_buckets() == {0: [3], 1: [9]}
        assert sky.layer_cardinalities() == {0: 1, 1: 1}

    def test_cached_values_are_defensive_copies(self):
        sky = build([(9, 1), (8, 0)])
        sky.layer_buckets()[1].append(999)
        sky.layer_cardinalities()[0] = 999
        assert sky.layer_buckets() == {0: [8], 1: [9]}
        assert sky.layer_cardinalities() == {0: 1, 1: 1}
