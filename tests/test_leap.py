"""Unit tests for the LEAP baseline: probing, safety, independence."""


from repro import (
    LEAPDetector,
    OutlierQuery,
    QueryGroup,
    WindowSpec,
)

from conftest import assert_equivalent, line_points


def group_of(*params):
    return QueryGroup([
        OutlierQuery(r=float(r), k=k, window=WindowSpec(win=w, slide=s))
        for r, k, w, s in params
    ])


class TestSingleQuery:
    def test_equivalence(self, small_stream):
        g = group_of((400, 5, 200, 50))
        assert_equivalent(g, small_stream, LEAPDetector(g))

    def test_safe_inliers_drop_evidence(self):
        g = group_of((1.0, 2, 40, 10))
        det = LEAPDetector(g)
        det.run(line_points([0.0] * 100))
        inst = det.instances[0]
        safe = sum(1 for ev in inst._evidence.values() if ev.safe)
        assert safe > 0
        # safe points report zero stored units
        assert all(ev.units(2) == 0 for ev in inst._evidence.values()
                   if ev.safe)

    def test_minimal_probing_keeps_at_most_k_preds(self):
        g = group_of((1.0, 3, 60, 20))
        det = LEAPDetector(g)
        det.run(line_points([0.0] * 120))
        inst = det.instances[0]
        assert all(len(ev.pred_poss) <= 3
                   for ev in inst._evidence.values())

    def test_probe_resumes_after_expiry(self):
        """Evidence expiry forces deeper probing, not a restart."""
        # neighbors early, then the probed point, then silence
        values = [0.0, 0.1, 0.2, 0.3] + [0.05] + [50.0] * 35
        g = group_of((1.0, 4, 20, 5))
        assert_equivalent(g, line_points(values), LEAPDetector(g))


class TestMultiQueryIndependence:
    def test_equivalence(self, small_stream, small_group):
        assert_equivalent(small_group, small_stream,
                          LEAPDetector(small_group))

    def test_instance_per_query(self, small_group):
        det = LEAPDetector(small_group)
        assert len(det.instances) == len(small_group)

    def test_memory_grows_with_queries(self, small_stream):
        one = group_of((400, 6, 200, 50))
        four = group_of(*[(400, 6, 200, 50)] * 4)
        m1 = LEAPDetector(one).run(small_stream).peak_memory_units
        m4 = LEAPDetector(four).run(small_stream).peak_memory_units
        assert m4 >= 3 * m1  # no sharing across instances

    def test_cpu_grows_with_queries(self, small_stream):
        """The paper's core complaint: LEAP redoes work per query."""
        one = group_of((400, 6, 200, 50))
        eight = group_of(*[(400, 6, 200, 50)] * 8)
        c1 = LEAPDetector(one).run(small_stream).cpu_total_s
        c8 = LEAPDetector(eight).run(small_stream).cpu_total_s
        assert c8 > 3 * c1


class TestWindowHandling:
    def test_varying_windows_equivalence(self, small_stream):
        g = group_of((500, 4, 100, 50), (500, 4, 300, 50), (500, 4, 200, 50))
        assert_equivalent(g, small_stream, LEAPDetector(g))

    def test_varying_slides_equivalence(self, small_stream):
        g = group_of((500, 4, 200, 40), (500, 4, 200, 100),
                     (500, 4, 200, 60))
        assert_equivalent(g, small_stream, LEAPDetector(g))

    def test_outlier_to_inlier_transition(self):
        # a lonely point gains neighbors later (succeeding neighbors)
        values = [0.0] + [50.0] * 9 + [0.1, 0.2] + [50.0] * 8
        g = group_of((1.0, 2, 30, 10))
        assert_equivalent(g, line_points(values), LEAPDetector(g))
