"""Unit tests for the MCOD baseline: clusters, PD lists, equivalence."""


from repro import (
    MCODDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
)

from conftest import assert_equivalent, line_points


def group_of(*params):
    return QueryGroup([
        OutlierQuery(r=float(r), k=k, window=WindowSpec(win=w, slide=s))
        for r, k, w, s in params
    ])


class TestMicroClusters:
    def test_cluster_forms_on_dense_mass(self):
        g = group_of((2.0, 3, 40, 10))
        det = MCODDetector(g)
        det.run(line_points([0.0] * 40))
        assert det.stats["clusters_formed"] >= 1
        assert det.stats["cluster_joins"] > 0

    def test_cluster_radius_is_half_r_min(self):
        g = group_of((2.0, 3, 40, 10), (8.0, 2, 40, 10))
        assert MCODDetector(g).cluster_radius == 1.0

    def test_threshold_is_k_max_plus_one(self):
        g = group_of((2.0, 3, 40, 10), (8.0, 7, 40, 10))
        assert MCODDetector(g).cluster_threshold == 8

    def test_sparse_points_stay_pd(self):
        g = group_of((1.0, 3, 40, 10))
        det = MCODDetector(g)
        det.run(line_points([float(10 * i) for i in range(40)]))
        assert det.stats["clusters_formed"] == 0
        assert det.tracked_points() > 0

    def test_cluster_dissolves_after_expiry(self):
        # dense burst then silence far away: the cluster shrinks below
        # k_max + 1 as members expire and must dissolve
        g = group_of((2.0, 3, 20, 10))
        values = [0.0] * 20 + [100.0] * 40
        det = MCODDetector(g)
        det.run(line_points(values))
        assert det.stats["clusters_formed"] >= 1
        assert det.stats["clusters_dissolved"] >= 1

    def test_memory_counts_neighbor_lists(self):
        g = group_of((5.0, 3, 40, 10))
        det = MCODDetector(g)
        res = det.run(line_points([float(i % 7) for i in range(80)]))
        assert res.peak_memory_units > 0


class TestEquivalence:
    def test_single_query(self, small_stream):
        g = group_of((400, 5, 200, 50))
        assert_equivalent(g, small_stream, MCODDetector(g))

    def test_multi_query(self, small_stream, small_group):
        assert_equivalent(small_group, small_stream, MCODDetector(small_group))

    def test_cluster_fallback_path_small_windows(self):
        """Queries with windows smaller than a cluster's in-window mass hit
        the per-member fallback evaluation."""
        # dense stream, one query with a tiny window: clusters form on the
        # big swift window but hold < k+1 members inside the small window
        g = group_of((2.0, 4, 60, 10), (2.0, 4, 12, 10))
        values = [float(i % 3) * 0.4 for i in range(90)]
        assert_equivalent(g, line_points(values), MCODDetector(g))

    def test_outliers_during_dissolution(self):
        g = group_of((2.0, 3, 20, 10))
        values = [0.0] * 20 + [100.0, 200.0, 300.0, 400.0] * 10
        assert_equivalent(g, line_points(values), MCODDetector(g))


class TestMemoryContrast:
    def test_mcod_stores_more_than_sop(self, small_stream, small_group):
        """The paper's Fig. 7(b) claim: MCOD keeps every neighbor, SOP only
        the minimal skyband evidence."""
        mcod = MCODDetector(small_group).run(small_stream)
        sop = SOPDetector(small_group).run(small_stream)
        assert mcod.peak_memory_units > 3 * sop.peak_memory_units
