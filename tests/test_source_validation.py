"""Ingest guard: poison records never reach (or corrupt) the detector.

Unit tests pin every rejection reason; hypothesis property tests assert
the two contracts that matter:

* admitting a poisoned interleaving yields exactly the clean subsequence
  (so detector state -- and therefore every outlier verdict -- is what a
  clean stream would have produced);
* nothing is silently dropped: the quarantine counter equals the number
  of injected poison records, per reason.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DetectorConfig,
    IngestGuard,
    OutlierQuery,
    Point,
    QueryGroup,
    Runtime,
    WindowSpec,
    compare_outputs,
)

NAN = float("nan")
INF = float("inf")


def clean_points(n, start_seq=0):
    return [Point(seq=start_seq + i, values=(float(i % 7), float(i % 3)))
            for i in range(n)]


# ---------------------------------------------------------------- unit tests


class TestReasons:
    def test_non_finite_values(self):
        guard = IngestGuard()
        assert guard.admit({"seq": 0, "values": (NAN, 1.0)}) is None
        assert guard.admit((1, (INF,))) is None
        assert guard.admit((2, (-INF,))) is None
        assert guard.counts == {"non-finite": 3}

    def test_non_finite_time(self):
        guard = IngestGuard()
        assert guard.admit({"seq": 0, "values": (1.0,), "time": NAN}) is None
        assert guard.counts == {"non-finite": 1}

    def test_seq_regression(self):
        guard = IngestGuard()
        assert guard.admit((5, (1.0,))) is not None
        assert guard.admit((5, (1.0,))) is None   # duplicate
        assert guard.admit((3, (1.0,))) is None   # backwards
        assert guard.admit((6, (1.0,))) is not None
        assert guard.counts == {"seq-regression": 2}

    def test_time_regression(self):
        guard = IngestGuard()
        assert guard.admit((0, (1.0,), 100.0)) is not None
        assert guard.admit((1, (1.0,), 99.0)) is None
        assert guard.admit((2, (1.0,), 100.0)) is not None  # equal stamps ok
        assert guard.counts == {"time-regression": 1}

    def test_dim_mismatch_learned_from_first(self):
        guard = IngestGuard()
        assert guard.admit((0, (1.0, 2.0))) is not None
        assert guard.admit((1, (1.0,))) is None
        assert guard.expect_dim == 2
        assert guard.counts == {"dim-mismatch": 1}

    def test_dim_mismatch_explicit(self):
        guard = IngestGuard(expect_dim=3)
        assert guard.admit((0, (1.0, 2.0))) is None
        assert guard.counts == {"dim-mismatch": 1}
        with pytest.raises(ValueError):
            IngestGuard(expect_dim=0)

    def test_malformed(self):
        guard = IngestGuard()
        for garbage in ("junk", None, {"seq": 1}, {"values": (1.0,)},
                        (1,), (1, 2, 3, 4), {"seq": "x", "values": (1.0,)},
                        (0, ())):
            assert guard.admit(garbage) is None
        assert guard.counts == {"malformed": 8}

    def test_quarantine_keeps_originals(self):
        guard = IngestGuard()
        guard.admit("junk")
        guard.admit({"seq": 0, "values": (NAN,)})
        assert [reason for _, reason in guard.quarantined] == \
            ["malformed", "non-finite"]
        assert guard.quarantined[0][0] == "junk"
        assert guard.total_quarantined == 2


class TestShapesAndState:
    def test_all_record_shapes_admitted(self):
        guard = IngestGuard()
        p = guard.admit(Point(seq=0, values=(1.0,)))
        d = guard.admit({"seq": 1, "values": [2.0], "time": 1.5})
        t2 = guard.admit((2, (3.0,)))
        t3 = guard.admit((3, [4.0], 3.0))
        assert all(isinstance(x, Point) for x in (p, d, t2, t3))
        assert d.time == 1.5 and t3.time == 3.0

    def test_state_persists_across_filter_calls(self):
        """Record-at-a-time operation on an infinite stream: the second
        batch is validated against the first batch's high-water marks."""
        guard = IngestGuard()
        first = guard.filter(clean_points(5))
        second = guard.filter([(2, (1.0, 1.0)),   # regresses into batch 1
                               (7, (1.0, 1.0))])
        assert [p.seq for p in first] == [0, 1, 2, 3, 4]
        assert [p.seq for p in second] == [7]
        assert guard.counts == {"seq-regression": 1}


# ------------------------------------------------------------ property tests

#: poison that is invalid at *any* position in a 2-D stream (so an
#: interleaving cannot accidentally legalize it)
poison_records = st.one_of(
    st.sampled_from([
        {"seq": 10**9, "values": (NAN, 0.0)},
        {"seq": 10**9, "values": (0.0, INF)},
        {"seq": 10**9, "values": (1.0,)},         # dim-mismatch vs 2-D
        {"seq": 10**9, "values": (1.0, 2.0, 3.0)},
        "garbage",
        {"seq": 10**9},
        (10**9,),
    ]),
    st.builds(lambda v: {"seq": 10**9, "values": (v, NAN)},
              st.floats(allow_nan=False, allow_infinity=False,
                        min_value=-1e3, max_value=1e3)),
)


@st.composite
def poisoned_streams(draw):
    """(interleaved records, clean subsequence, poison count)."""
    n = draw(st.integers(min_value=5, max_value=60))
    clean = clean_points(n)
    poison = draw(st.lists(poison_records, min_size=0, max_size=10))
    slots = draw(st.lists(st.integers(min_value=0, max_value=n),
                          min_size=len(poison), max_size=len(poison)))
    interleaved = list(clean)
    for record, slot in sorted(zip(poison, slots), key=lambda e: -e[1]):
        interleaved.insert(slot, record)
    return interleaved, clean, len(poison)


@given(poisoned_streams())
@settings(max_examples=50, deadline=None)
def test_filter_recovers_exactly_the_clean_subsequence(case):
    interleaved, clean, n_poison = case
    guard = IngestGuard(expect_dim=2)
    admitted = guard.filter(interleaved)
    assert admitted == clean
    assert guard.total_quarantined == n_poison
    assert sum(guard.counts.values()) == n_poison


@given(poisoned_streams())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_poison_never_changes_outlier_sets(case):
    """End to end: a validated run over the poisoned stream answers
    exactly what the clean stream answers, and counts the quarantine."""
    interleaved, clean, n_poison = case
    group = QueryGroup([OutlierQuery(r=2.0, k=2,
                                     window=WindowSpec(win=8, slide=4))])
    ref = Runtime(group).run(clean)
    rt = Runtime(group, config=DetectorConfig(validate_ingest=True))
    res = rt.run(interleaved)
    assert not compare_outputs(ref.outputs, res.outputs)
    assert res.work.get("records_quarantined", 0) == n_poison


# ------------------------------------------------------------ runtime wiring


class TestRuntimeWiring:
    def group(self):
        return QueryGroup([OutlierQuery(r=3.0, k=2,
                                        window=WindowSpec(win=10, slide=5))])

    def test_counters_surface_per_reason(self):
        stream = list(clean_points(30))
        stream.insert(4, {"seq": 10**9, "values": (NAN, 0.0)})
        stream.insert(11, "garbage")
        rt = Runtime(self.group(),
                     config=DetectorConfig(validate_ingest=True, shards=2))
        result = rt.run(stream)
        assert result.work["records_quarantined"] == 2
        assert result.work["quarantined_non_finite"] == 1
        assert result.work["quarantined_malformed"] == 1

    def test_off_by_default(self):
        rt = Runtime(self.group())
        assert rt.guard is None
        with pytest.raises((TypeError, AttributeError)):
            rt.run(list(clean_points(10)) + ["garbage"])

    def test_step_path_validates(self):
        rt = Runtime(self.group(), config=DetectorConfig(validate_ingest=True))
        batch = list(clean_points(5)) + [{"seq": 2, "values": (0.0, 0.0)}]
        rt.step(5, batch)
        rt.step(10, [])
        result = rt.finish()
        assert result.work["records_quarantined"] == 1
        assert result.work["quarantined_seq_regression"] == 1

    def test_guarded_points_stay_finite(self):
        """Whatever the guard admits constructs a valid Point -- the
        Point invariant (finite coordinates) can no longer raise deep
        inside a shard."""
        guard = IngestGuard()
        admitted = guard.filter([
            (0, (1.0, 2.0)), {"seq": 1, "values": (NAN, 0.0)},
            (2, (3.0, 4.0)), "junk",
        ])
        assert all(math.isfinite(v) for p in admitted for v in p.values)
