"""Tiered pre-filter: exactness, adaptivity, and integration gates.

The first-tier screen (``repro.core.prefilter``) may only prune points
whose skipped scan the baseline refresh would have turned into a
fully-safe marking at the same boundary (DESIGN.md section 14).  The
suite pins that claim the strong way: per-boundary *outputs*, surviving
*evidence* (per-point seqs/poss/layers/fully-safe flags), and
``memory_units`` must be bit-identical to a ``prefilter="none"`` run --
not merely the outlier sets -- across the Table 1 workload grid, both
window kinds, every refresh strategy, and the sharded runtime.  Work
counters are where the tiers are *allowed* to differ: a screened run may
only examine fewer points, never more.

Fast mode is approximate by design, but one containment theorem still
holds: a pruned point is excluded from outlier reports while everyone
else's evidence is untouched, so fast-mode outputs are a per-boundary
subset of the exact outputs.  That is asserted too -- it is what makes
"measured recall" (``benchmarks/bench_prefilter.py``) well-defined.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DetectorConfig,
    OutlierQuery,
    Point,
    QueryGroup,
    Runtime,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import ScaledRanges, build_workload
from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core.prefilter import (
    QnScreen,
    SensitivityScreen,
    build_prefilter,
    windowed_qn_scale,
)
from repro.streams.source import batches_by_boundary

#: compact Table 2-shaped ranges, sized so windows clear the screen's
#: ``min_candidates`` floor and neighbor density makes pruning plausible
RANGES = ScaledRanges(
    r=(200.0, 2000.0),
    k=(3, 10),
    win=(128, 512),
    slide=(32, 128),
    slide_quantum=32,
    fixed_r=700.0,
    fixed_k=5,
    fixed_win=256,
    fixed_slide=64,
)

SCREENS = ("qn", "sensitivity")


def _stream(n=1200, seed=9, **kw):
    kw.setdefault("outlier_rate", 0.03)
    kw.setdefault("n_clusters", 4)
    kw.setdefault("cluster_spread", 60)
    return make_synthetic_points(n, dim=2, seed=seed, **kw)


def _evidence(det):
    out = {}
    for seq, st_ in det._states.items():
        if st_.seqs is None:
            out[seq] = (None, st_.fully_safe)
        else:
            out[seq] = ((st_.seqs.tolist(), st_.poss.tolist(),
                         st_.layers.tolist()), st_.fully_safe)
    return out


def _lockstep(group, points, strategy, screen, mode="exact"):
    """Drive baseline and screened detectors boundary-by-boundary,
    asserting output/evidence/memory equality at every step (exact mode);
    returns both detectors for counter checks."""
    base = SOPDetector(group, config=DetectorConfig(
        refresh_strategy=strategy))
    scr = SOPDetector(group, config=DetectorConfig(
        refresh_strategy=strategy, prefilter=screen, prefilter_mode=mode))
    for t, batch in batches_by_boundary(points, group.swift.slide,
                                        group.kind):
        out_b = base.step(t, batch)
        out_s = scr.step(t, batch)
        if mode == "exact":
            assert out_s == out_b, f"outputs diverge at t={t}"
            assert _evidence(scr) == _evidence(base), (
                f"evidence diverges at t={t}")
            assert scr.memory_units() == base.memory_units()
        else:
            for qi, seqs in out_s.items():
                assert set(seqs) <= set(out_b.get(qi, seqs)), (
                    f"fast mode reported a non-baseline outlier at t={t}")
    return base, scr


# ------------------------------------------------------------ scale unit


def test_qn_scale_zero_for_tiny_and_degenerate_windows():
    assert (windowed_qn_scale(np.zeros((4, 3))) == 0.0).all()
    flat = np.tile([[2.5, -1.0]], (64, 1))
    assert (windowed_qn_scale(flat) == 0.0).all()


def test_qn_scale_tracks_normal_sigma():
    rng = np.random.default_rng(3)
    mat = rng.normal(0.0, 50.0, size=(4096, 2))
    scale = windowed_qn_scale(mat)
    assert (np.abs(scale - 50.0) < 10.0).all()


# ------------------------------------------------------- screen mechanics


def _plan(k=5, r=200.0, win=256):
    det = SOPDetector(QueryGroup([OutlierQuery(
        r=r, k=k, window=WindowSpec(win=win, slide=64, kind="count"))]))
    return det.plan


def test_build_prefilter_dispatch():
    plan = _plan()
    assert build_prefilter(DetectorConfig(), plan) is None
    assert isinstance(
        build_prefilter(DetectorConfig(prefilter="qn"), plan), QnScreen)
    assert isinstance(
        build_prefilter(DetectorConfig(prefilter="sensitivity"), plan),
        SensitivityScreen)


def test_config_rejects_unsound_prefilter_combinations():
    with pytest.raises(ValueError, match="prefilter"):
        DetectorConfig(prefilter="bogus")
    with pytest.raises(ValueError, match="prefilter_mode"):
        DetectorConfig(prefilter="qn", prefilter_mode="wild")
    with pytest.raises(ValueError, match="use_safe_inliers"):
        DetectorConfig(prefilter="qn", use_safe_inliers=False)
    # the certification argument needs the triangle inequality
    with pytest.raises(ValueError, match="metric"):
        DetectorConfig(prefilter="qn", metric="dot_bogus")


def test_screen_backoff_trips_and_reprobes():
    screen = QnScreen(_plan(), patience=2, backoff=5, min_prune_rate=0.5)
    # two consecutive low-yield boundaries -> backoff
    screen._boundary = 1
    screen.observe(100, 0)
    screen._boundary = 2
    screen.observe(100, 1)
    assert screen._disabled_until == 2 + 5
    kinds = [k for _, k, _ in screen.decisions]
    assert kinds == ["screened", "screened", "backoff"]
    # a high-yield boundary after re-probe resets the streak
    screen._boundary = 9
    screen.observe(100, 90)
    assert screen._low_streak == 0


def test_screen_sits_out_tiny_windows():
    group = QueryGroup([OutlierQuery(
        r=200.0, k=3, window=WindowSpec(win=32, slide=8, kind="count"))])
    det = SOPDetector(group, config=DetectorConfig(prefilter="qn"))
    det.run(_stream(n=128, seed=4))
    # min_candidates=64 > window: every boundary skipped
    assert det.profile.prefilter_screened == 0
    assert det.profile.prefilter_pruned == 0


def test_screen_runs_are_deterministic():
    group = build_workload("A", n_queries=4, seed=11, ranges=RANGES)
    pts = _stream(seed=13)
    runs = []
    for _ in range(2):
        det = SOPDetector(group, config=DetectorConfig(
            prefilter="sensitivity"))
        res = det.run(pts)
        work = det.work_stats()
        work.pop("refresh_ns")  # wall-clock: the one permitted difference
        runs.append((res.outputs, dict(det.stats), work))
    assert runs[0] == runs[1]


# ------------------------------------------- exact-mode equivalence grid


@pytest.mark.parametrize("spec", list("ABCDEFG"))
@pytest.mark.parametrize("screen", SCREENS)
def test_table1_exact_screen_is_bit_identical(spec, screen):
    group = build_workload(spec, n_queries=5, seed=ord(spec), ranges=RANGES)
    base, scr = _lockstep(group, _stream(seed=50 + ord(spec)), "batched",
                          screen)
    # exactness lemma, counter form: the skipped scans are exactly the
    # ones the baseline turned into fully-safe markings
    assert scr.stats["fully_safe_marked"] == base.stats["fully_safe_marked"]
    assert scr.stats["points_examined"] <= base.stats["points_examined"]
    assert scr.stats["ksky_runs"] <= base.stats["ksky_runs"]


@pytest.mark.parametrize("strategy", ["per-point", "batched", "grid", "auto"])
def test_exact_screen_across_refresh_strategies(strategy):
    group = build_workload("C", n_queries=4, seed=23, ranges=RANGES)
    _lockstep(group, _stream(n=900, seed=5), strategy, "qn")


@pytest.mark.parametrize("screen", SCREENS)
def test_exact_screen_time_windows(screen):
    ranges = ScaledRanges(
        r=(200.0, 2000.0), k=(3, 8), win=(96, 256), slide=(24, 96),
        slide_quantum=24, fixed_r=700.0, fixed_k=4,
        fixed_win=192, fixed_slide=48, kind="time",
    )
    group = build_workload("G", n_queries=4, seed=9, ranges=ranges)
    base = _stream(n=900, seed=31)
    points, clock = [], 0.0
    for p in base:
        clock += 0.2 + ((p.seq * 37) % 7) * 0.9
        points.append(Point(seq=p.seq, values=p.values, time=clock))
    _lockstep(group, points, "batched", screen)


@pytest.mark.parametrize("screen", SCREENS)
def test_dense_stream_actually_prunes(screen):
    """Anti-vacuity: on a dense high-inlier stream the screen must do
    real work (certify and prune), not just pass everything through --
    and still match the baseline exactly."""
    group = QueryGroup([
        OutlierQuery(r=200.0, k=5,
                     window=WindowSpec(win=512, slide=128, kind="count")),
        OutlierQuery(r=300.0, k=8,
                     window=WindowSpec(win=256, slide=128, kind="count")),
    ])
    pts = _stream(n=2048, seed=7, outlier_rate=0.02, cluster_spread=40)
    base, scr = _lockstep(group, pts, "batched", screen)
    assert scr.profile.prefilter_pruned > 0
    assert (scr.profile.prefilter_screened
            == scr.profile.prefilter_suspects
            + scr.profile.prefilter_pruned)
    assert scr.stats["points_examined"] < base.stats["points_examined"]


@pytest.mark.parametrize("screen", SCREENS)
def test_exact_tile_and_anchor_paths_both_exact(screen):
    """Force each certification path (small-suffix pairwise tile vs
    anchor ladder) and pin exactness for both."""
    group = QueryGroup([OutlierQuery(
        r=200.0, k=5, window=WindowSpec(win=512, slide=128, kind="count"))])
    pts = _stream(n=2048, seed=19, outlier_rate=0.02, cluster_spread=40)
    base = SOPDetector(group, config=DetectorConfig()).run(pts)
    for budget in (0, 1 << 30):
        det = SOPDetector(group, config=DetectorConfig(prefilter=screen))
        det.prefilter.pairwise_budget = budget
        got = det.run(pts)
        assert got.outputs == base.outputs, f"budget={budget}"
        assert det.profile.prefilter_pruned > 0, f"budget={budget}"


# ------------------------------------------------------------- fast mode


@pytest.mark.parametrize("screen", SCREENS)
def test_fast_mode_outputs_are_subset_of_exact(screen):
    group = build_workload("D", n_queries=4, seed=3, ranges=RANGES)
    _lockstep(group, _stream(seed=29), "batched", screen, mode="fast")


# --------------------------------------------------------------- sharded


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("screen", SCREENS)
def test_sharded_exact_screen_equivalence(shards, screen):
    group = build_workload("B", n_queries=4, seed=2, ranges=RANGES)
    pts = _stream(n=1000, seed=41)
    expected = SOPDetector(group).run(pts).outputs
    run = Runtime(QueryGroup(list(group.queries)), shards=shards,
                  config=DetectorConfig(prefilter=screen)).run(pts)
    diffs = compare_outputs(expected, run.outputs)
    assert not diffs, "\n".join(diffs[:10])
    # per-shard screen tallies merge additively into the run's work dict
    assert "prefilter_screened" in run.work
    assert run.work["prefilter_suspects"] + run.work["prefilter_pruned"] \
        == run.work["prefilter_screened"]


# ------------------------------------------------------------ checkpoints


def test_checkpoint_roundtrip_preserves_prefilter_config(tmp_path):
    group = build_workload("E", n_queries=4, seed=41, ranges=RANGES)
    points = _stream(n=1000, seed=19)
    cfg = DetectorConfig(prefilter="qn")
    batches = list(batches_by_boundary(points, group.swift.slide,
                                       group.kind))
    full = SOPDetector(group, config=cfg).run(points)

    det = SOPDetector(group, config=cfg)
    outputs = {}
    half = len(batches) // 2
    for t, batch in batches[:half]:
        for qi, seqs in det.step(t, batch).items():
            outputs[(qi, t)] = seqs
    path = tmp_path / "prefilter.ckpt"
    save_checkpoint(det, batches[half - 1][0], path)

    restored, last_t = load_checkpoint(path)
    assert restored.config.prefilter == "qn"
    assert restored.config.prefilter_mode == "exact"
    assert restored.prefilter is not None

    # a factory that silently drops the screen fails loudly
    with pytest.raises(ValueError, match="prefilter"):
        load_checkpoint(path, factory=lambda g: SOPDetector(
            g, config=DetectorConfig()))

    # exactness makes the resumed screen's fresh adaptivity state
    # harmless: outputs stay identical to the uninterrupted run
    got = dict(outputs)
    for t, batch in batches[half:]:
        for qi, seqs in restored.step(t, batch).items():
            got[(qi, t)] = seqs
    assert got == {(qi, t): seqs for (qi, t), seqs in full.outputs.items()}


# ---------------------------------------------------- hypothesis property


values_2d = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
    min_size=150, max_size=400,
)

query_params = st.tuples(
    st.floats(min_value=0.5, max_value=8.0),    # r
    st.integers(min_value=1, max_value=5),      # k
    st.integers(min_value=3, max_value=8),      # win/32
    st.integers(min_value=1, max_value=2),      # slide/32
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_2d,
       params=st.lists(query_params, min_size=1, max_size=3),
       screen=st.sampled_from(SCREENS))
def test_property_exact_screen_equals_unscreened(values, params, screen):
    queries = []
    for r, k, win32, slide32 in params:
        win, slide = win32 * 32, slide32 * 32
        queries.append(OutlierQuery(
            r=round(float(r), 3), k=k,
            window=WindowSpec(win=win, slide=min(slide, win)),
        ))
    points = [Point(seq=i, values=(float(x), float(y)))
              for i, (x, y) in enumerate(values)]
    group = QueryGroup(queries)
    base = SOPDetector(group).run(points)
    det = SOPDetector(group, config=DetectorConfig(prefilter=screen))
    # drop the screen floor so small hypothesis windows get screened too
    det.prefilter.min_candidates = 16
    got = det.run(points)
    assert got.outputs == base.outputs
    assert _evidence(det) is not None  # states walked without error
