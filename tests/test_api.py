"""Unit tests for the one-shot convenience API."""

import numpy as np
import pytest

from repro import (
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    WindowSpec,
    compare_outputs,
    detect_outliers,
    outlier_flags,
    points_from_array,
)


def rows_with_spike(n=120, spike_at=60):
    rng = np.random.default_rng(2)
    rows = rng.normal(0.0, 0.2, size=(n, 2))
    rows[spike_at] = (25.0, 25.0)
    return rows


class TestDetectOutliers:
    def test_tuple_queries(self):
        rows = rows_with_spike()
        result = detect_outliers(rows, [(1.0, 3, 40, 20)])
        flagged = set()
        for seqs in result.outputs.values():
            flagged |= seqs
        assert 60 in flagged

    def test_matches_explicit_pipeline(self):
        rows = rows_with_spike()
        result = detect_outliers(rows, [(1.0, 3, 40, 20), (5.0, 2, 60, 20)])
        group = QueryGroup([
            OutlierQuery(r=1.0, k=3, window=WindowSpec(win=40, slide=20)),
            OutlierQuery(r=5.0, k=2, window=WindowSpec(win=60, slide=20)),
        ])
        expected = NaiveDetector(group).run(points_from_array(rows))
        assert not compare_outputs(expected.outputs, result.outputs)

    def test_mixed_query_specs(self):
        rows = rows_with_spike()
        explicit = OutlierQuery(r=1.0, k=3,
                                window=WindowSpec(win=40, slide=20))
        result = detect_outliers(rows, [explicit, (5.0, 2, 40, 20)])
        assert len({qi for qi, _ in result.outputs}) == 2

    def test_accepts_points(self):
        pts = points_from_array(rows_with_spike())
        result = detect_outliers(pts, [(1.0, 3, 40, 20)])
        assert result.boundaries > 0

    def test_time_based(self):
        rows = [[0.0], [0.1], [9.0], [0.2]]
        times = [1.0, 2.0, 5.0, 11.0]
        result = detect_outliers(rows, [(1.0, 1, 8, 4)], times=times,
                                 kind="time")
        assert 2 in result.outputs[(0, 8)]

    def test_metric_selection(self):
        # cross-group distance: euclidean sqrt(2) > 1.2, chebyshev 1.0 < 1.2
        # with k=15 a point needs the other group as neighbors, so the
        # metric flips every verdict
        rows = [[0.0, 0.0], [1.0, 1.0]] * 10
        cheby = detect_outliers(rows, [(1.2, 15, 20, 20)],
                                metric="chebyshev")
        euclid = detect_outliers(rows, [(1.2, 15, 20, 20)],
                                 metric="euclidean")
        assert cheby.outputs[(0, 20)] == frozenset()
        assert len(euclid.outputs[(0, 20)]) == 20

    def test_empty_queries_rejected(self):
        with pytest.raises(ValueError, match="at least one query"):
            detect_outliers(rows_with_spike(), [])

    def test_bad_query_spec_rejected(self):
        with pytest.raises(TypeError, match="OutlierQuery or an"):
            detect_outliers(rows_with_spike(), [(1.0, 3)])

    def test_until(self):
        result = detect_outliers(rows_with_spike(), [(1.0, 3, 40, 20)],
                                 until=40)
        assert max(t for _, t in result.outputs) == 40


class TestOutlierFlags:
    def test_mask_aligned_with_rows(self):
        rows = rows_with_spike()
        mask = outlier_flags(rows, r=1.0, k=3, win=40, slide=20)
        assert mask.shape == (len(rows),)
        assert mask[60]
        assert mask.sum() < len(rows) / 4

    def test_dense_data_all_clear(self):
        rows = [[0.0]] * 60
        mask = outlier_flags(rows, r=1.0, k=2, win=20, slide=10)
        assert not mask.any()
