"""Cross-detector equivalence over the paper's full workload grid.

Table 1 defines workload classes A-G; every detector must produce exactly
the same outlier set for every member query at every output boundary.
These are the integration tests binding the whole system together.
"""

import pytest

from repro import (
    LEAPDetector,
    MCODDetector,
    NaiveDetector,
    SOPDetector,
    compare_outputs,
    make_stock_points,
    make_synthetic_points,
)
from repro.bench import ScaledRanges, build_workload

DETECTORS = [SOPDetector, MCODDetector, LEAPDetector]

# ranges shrunk so the naive oracle stays fast
TEST_RANGES = ScaledRanges(
    r=(150.0, 1800.0),
    k=(2, 10),
    win=(60, 240),
    slide=(20, 120),
    slide_quantum=20,
    fixed_r=500.0,
    fixed_k=4,
    fixed_win=150,
    fixed_slide=50,
)


@pytest.fixture(scope="module")
def stream():
    return make_synthetic_points(900, dim=2, outlier_rate=0.04, seed=11)


@pytest.fixture(scope="module")
def stock_stream():
    return make_stock_points(700, seed=13)


@pytest.mark.parametrize("spec", list("ABCDEFG"))
@pytest.mark.parametrize("detector_cls", DETECTORS)
def test_workload_grid_on_synthetic(spec, detector_cls, stream):
    group = build_workload(spec, n_queries=6, seed=ord(spec),
                           ranges=TEST_RANGES)
    expected = NaiveDetector(group).run(stream)
    actual = detector_cls(group).run(stream)
    diffs = compare_outputs(expected.outputs, actual.outputs)
    assert not diffs, f"workload {spec}, {detector_cls.__name__}:\n" + \
        "\n".join(diffs)


@pytest.mark.parametrize("spec", ["C", "F", "G"])
@pytest.mark.parametrize("detector_cls", DETECTORS)
def test_workload_grid_on_stock(spec, detector_cls, stock_stream):
    group = build_workload(spec, n_queries=5, seed=100 + ord(spec),
                           ranges=TEST_RANGES)
    expected = NaiveDetector(group).run(stock_stream)
    actual = detector_cls(group).run(stock_stream)
    diffs = compare_outputs(expected.outputs, actual.outputs)
    assert not diffs, f"workload {spec}, {detector_cls.__name__}:\n" + \
        "\n".join(diffs)


@pytest.mark.parametrize("detector_cls", DETECTORS)
def test_larger_workload_equivalence(detector_cls, stream):
    """A 25-query fully-arbitrary workload (class G)."""
    group = build_workload("G", n_queries=25, seed=77, ranges=TEST_RANGES)
    expected = NaiveDetector(group).run(stream)
    actual = detector_cls(group).run(stream)
    diffs = compare_outputs(expected.outputs, actual.outputs)
    assert not diffs, "\n".join(diffs)


@pytest.mark.parametrize("detector_cls", DETECTORS)
def test_duplicate_queries_get_identical_answers(detector_cls, stream):
    group = build_workload("A", n_queries=1, seed=5, ranges=TEST_RANGES)
    dup_group = build_workload("A", n_queries=1, seed=5, ranges=TEST_RANGES)
    from repro import QueryGroup
    group2 = QueryGroup(list(group.queries) + list(dup_group.queries))
    res = detector_cls(group2).run(stream)
    for (qi, t), seqs in res.outputs.items():
        twin = 1 - qi
        assert res.outputs[(twin, t)] == seqs


@pytest.mark.parametrize("detector_cls", DETECTORS)
def test_identical_cpu_accounting_boundaries(detector_cls, stream):
    """All detectors process exactly the same swift boundaries."""
    group = build_workload("F", n_queries=4, seed=3, ranges=TEST_RANGES)
    naive = NaiveDetector(group).run(stream)
    other = detector_cls(group).run(stream)
    assert naive.boundaries == other.boundaries
    assert set(naive.outputs) == set(other.outputs)
