"""Golden service equivalence: concurrent sessions == offline run.

The service's determinism contract: outlier sets pushed to subscribers
are **bit-identical** to an offline ``Runtime.run`` over the merged
stream, regardless of how many clients stream concurrently, how their
sends interleave, or how the stream is sharded.  This pins it over a
Table 1 grid subset x {1, 4} shards x both window kinds, with four
concurrent sessions driving seeded, jittered interleavings.
"""

from __future__ import annotations

import asyncio
from dataclasses import replace

import pytest

from repro import (
    DynamicSOPDetector,
    QueryGroup,
    Runtime,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import ScaledRanges, build_workload
from repro.engine.config import DetectorConfig
from repro.streams.source import batches_by_boundary
from repro.streams.windows import TIME

from helpers import (
    ServiceClient,
    close_clients,
    connect_clients,
    interleave_rng,
    merged_outputs,
    run_async,
    running_server,
)

pytestmark = pytest.mark.serving

#: compact Table 2 ranges (same shape as tests/test_runtime_equivalence)
TEST_RANGES = ScaledRanges(
    r=(200.0, 2000.0),
    k=(3, 12),
    win=(80, 320),
    slide=(20, 80),
    slide_quantum=20,
    fixed_r=700.0,
    fixed_k=5,
    fixed_win=160,
    fixed_slide=40,
)

N_CLIENTS = 4
N_POINTS = 600


def grid_workload(spec: str, kind: str = "count") -> QueryGroup:
    ranges = (TEST_RANGES if kind == "count"
              else replace(TEST_RANGES, kind=TIME))
    return build_workload(spec, 3, seed=ord(spec), ranges=ranges)


async def serve_merged_stream(config, queries, points, seed):
    """Drive N_CLIENTS concurrent sessions; the union of their pushes.

    Client 0 registers the workload (so handles land in group order);
    the others claim the handles.  Every client subscribes, streams a
    round-robin slice with a seeded jittered chunking, ends, and waits
    for the stream-end push.
    """
    async with running_server(config) as server:
        clients = await connect_clients(server, N_CLIENTS)
        for query in queries:
            await clients[0].register(query)
        for client in clients[1:]:
            for handle in clients[0].handles:
                await client.claim(handle)
        for client in clients:
            await client.subscribe()
        await asyncio.gather(*[
            client.stream(points[i::N_CLIENTS], chunk=40,
                          rng=interleave_rng(seed * 31 + i))
            for i, client in enumerate(clients)
        ])
        for client in clients:
            await client.end()
        await asyncio.gather(*[
            asyncio.wait_for(c.stream_end.wait(), 60) for c in clients
        ])
        union = merged_outputs(clients)
        await close_clients(clients)
        return union


def assert_service_equivalent(queries, points, shards, seed=0):
    config = DetectorConfig(shards=shards)
    served = run_async(serve_merged_stream(config, queries, points, seed))
    offline = Runtime(QueryGroup(queries), config=config).run(points)
    diffs = compare_outputs(offline.outputs, served)
    assert not diffs, "\n".join(diffs[:10])
    assert len(served) == len(offline.outputs)


# ----------------------------------------------------- Table 1 grid leg


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("spec", ["A", "C", "G"])
def test_grid_count_windows(spec, shards):
    queries = list(grid_workload(spec).queries)
    points = make_synthetic_points(N_POINTS, dim=2, outlier_rate=0.04,
                                   seed=ord(spec))
    assert_service_equivalent(queries, points, shards, seed=ord(spec))


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("spec", ["A", "G"])
def test_grid_time_windows(spec, shards):
    queries = list(grid_workload(spec, kind="time").queries)
    points = make_synthetic_points(N_POINTS, dim=2, outlier_rate=0.04,
                                   seed=100 + ord(spec))
    assert_service_equivalent(queries, points, shards, seed=7 * ord(spec))


def test_interleavings_vary_but_outputs_do_not():
    """Three different seeded interleavings, one identical answer."""
    queries = list(grid_workload("G").queries)
    points = make_synthetic_points(400, dim=2, outlier_rate=0.05, seed=3)
    config = DetectorConfig(shards=2)
    offline = Runtime(QueryGroup(queries), config=config).run(points)
    for seed in (1, 2, 3):
        served = run_async(
            serve_merged_stream(config, queries, points, seed))
        diffs = compare_outputs(offline.outputs, served)
        assert not diffs, f"seed {seed}:\n" + "\n".join(diffs[:10])


# ----------------------------------------------- dynamic workload leg


def test_mid_stream_registration_matches_dynamic_oracle():
    """A query registered mid-stream answers exactly like the dynamic
    detector fed the same mutation schedule at the same boundary."""
    queries = list(grid_workload("A").queries)
    first, second = queries[0], queries[1]
    points = make_synthetic_points(400, dim=2, outlier_rate=0.05, seed=11)
    slide = first.window.slide

    async def scenario():
        async with running_server(DetectorConfig(shards=2)) as server:
            client = await ServiceClient.connect(server.address)
            await client.register(first)
            await client.subscribe()
            half = len(points) // 2
            await client.stream(points[:half], chunk=50)
            # wait until every complete boundary of the first half is
            # answered, so the registration lands at a known boundary
            target = ((half - 1) // slide) * slide
            while (await client.stat())["last_boundary"] < target:
                await asyncio.sleep(0.01)
            switch_t = (await client.stat())["last_boundary"]
            await client.register(second)
            await client.stream(points[half:], chunk=50)
            await client.end()
            await asyncio.wait_for(client.stream_end.wait(), 60)
            outputs = dict(client.outputs)
            await client.close()
            return switch_t, outputs

    switch_t, served = run_async(scenario())

    # oracle: the dynamic detector with the identical mutation schedule
    oracle = DynamicSOPDetector([first])
    expected = {}
    added = False
    for t, batch in batches_by_boundary(points, slide, kind=first.kind):
        if t > switch_t and not added:
            oracle.add_query(second)
            added = True
        for handle, seqs in oracle.step(t, batch).items():
            expected[(handle, t)] = seqs
    assert added, "switch boundary never reached"
    diffs = compare_outputs(expected, served)
    assert not diffs, "\n".join(diffs[:10])
