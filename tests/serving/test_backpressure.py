"""Backpressure and admission control: bounded queues, typed errors.

Rejections are never silent: every refused batch gets a typed error
with retry-sizing detail, every poison record is quarantined and
counted, and all of it is visible in ``/metrics``.  The drain loop's
pause/resume test hooks make queue pressure deterministic.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import OutlierQuery, WindowSpec, make_synthetic_points
from repro.engine.config import DetectorConfig

from helpers import (
    ServiceClient,
    http_get,
    record,
    run_async,
    running_server,
)

pytestmark = pytest.mark.serving

QUERY = OutlierQuery(r=500.0, k=4, window=WindowSpec(win=80, slide=20))
POINTS = make_synthetic_points(200, dim=2, outlier_rate=0.05, seed=5)


def test_reject_mode_queue_full_is_typed_and_all_or_nothing():
    async def scenario():
        async with running_server(DetectorConfig(),
                                  queue_bound=8) as server:
            client = await ServiceClient.connect(server.address,
                                                 admission="reject")
            await client.register(QUERY)
            server.pause_drain()
            first = await client.call(
                "points", records=[record(p) for p in POINTS[:6]])
            assert first["ok"] and first["admitted"] == 6
            # 6 queued, 2 free: a batch of 6 must be refused whole
            refused = await client.call(
                "points", records=[record(p) for p in POINTS[6:12]])
            assert not refused["ok"]
            err = refused["error"]
            assert err["code"] == "queue-full"
            assert err["capacity"] == 8
            assert err["pending"] == 6
            assert err["batch"] == 6
            # nothing of the refused batch was enqueued
            _, metrics = await http_get(server.http_address, "/metrics")
            assert metrics["service"]["queue"]["depth"] == 6
            assert metrics["service"]["records"]["rejected"] == 6
            assert metrics["service"]["records"]["admitted"] == 6
            server.resume_drain()
            # wait for the queue to drain, then the identical batch is
            # admitted -- no seq-regression quarantine from the retry
            while (await client.stat())["records_ingested"] < 6:
                await asyncio.sleep(0.01)
            retried = await client.call(
                "points", records=[record(p) for p in POINTS[6:12]])
            assert retried["ok"] and retried["admitted"] == 6
            assert retried["quarantined"] == 0
            await client.close()

    run_async(scenario())


def test_block_mode_delays_ack_until_drain_resumes():
    async def scenario():
        async with running_server(DetectorConfig(),
                                  queue_bound=4) as server:
            client = await ServiceClient.connect(server.address,
                                                 admission="block")
            await client.register(QUERY)
            server.pause_drain()
            filled = await client.call(
                "points", records=[record(p) for p in POINTS[:4]])
            assert filled["ok"] and filled["admitted"] == 4
            # the queue is full: the next batch must block, not drop
            await client.send(
                "points", records=[record(p) for p in POINTS[4:6]])
            with pytest.raises(asyncio.TimeoutError):
                await client.reply(timeout=0.2)
            server.resume_drain()
            blocked = await client.reply(timeout=10.0)
            assert blocked["ok"] and blocked["admitted"] == 2
            _, metrics = await http_get(server.http_address, "/metrics")
            assert metrics["service"]["records"]["admitted"] == 6
            assert metrics["service"]["records"]["rejected"] == 0
            await client.close()

    run_async(scenario())


def test_batch_larger_than_queue_bound_is_typed_in_both_modes():
    async def scenario():
        async with running_server(DetectorConfig(),
                                  queue_bound=8) as server:
            for admission in ("block", "reject"):
                client = await ServiceClient.connect(server.address,
                                                     admission=admission)
                if admission == "block":
                    await client.register(QUERY)
                refused = await client.call(
                    "points", records=[record(p) for p in POINTS[:9]])
                assert not refused["ok"]
                assert refused["error"]["code"] == "batch-too-large"
                assert refused["error"]["capacity"] == 8
                await client.close()

    run_async(scenario())


def test_poison_records_quarantined_with_exact_counts():
    async def scenario():
        async with running_server(DetectorConfig()) as server:
            client = await ServiceClient.connect(server.address)
            await client.register(QUERY)
            good = [record(p) for p in POINTS[:5]]
            poison = [
                [5, [float("nan"), 1.0]],       # non-finite
                [3, [1.0, 2.0]],                # seq regression (< 5)
                [6, [1.0]],                      # dim mismatch (learned 2)
                "garbage",                       # malformed
                [7, [1.0, 2.0]],                # fine
            ]
            reply = await client.call("points", records=good + poison)
            assert reply["ok"]
            assert reply["admitted"] == 6
            assert reply["quarantined"] == 4
            _, metrics = await http_get(server.http_address, "/metrics")
            reasons = metrics["service"]["quarantined_reasons"]
            assert reasons == {"non-finite": 1, "seq-regression": 1,
                               "dim-mismatch": 1, "malformed": 1}
            assert metrics["service"]["records"]["quarantined"] == 4
            await client.close()

    run_async(scenario())


def test_typed_protocol_rejections():
    async def scenario():
        async with running_server(DetectorConfig()) as server:
            # an op before hello
            reader, writer = await asyncio.open_connection(*server.address)
            writer.write(b'{"op":"points","records":[]}\n')
            await writer.drain()
            msg = json.loads(await reader.readline())
            assert not msg["ok"] and msg["error"]["code"] == "no-session"
            # unparseable JSON
            writer.write(b'this is not json\n')
            await writer.drain()
            msg = json.loads(await reader.readline())
            assert not msg["ok"] and msg["error"]["code"] == "bad-request"
            writer.close()

            client = await ServiceClient.connect(server.address)
            # points with no registered query
            refused = await client.call("points",
                                        records=[record(POINTS[0])])
            assert refused["error"]["code"] == "no-queries"
            # unknown op
            unknown = await client.call("frobnicate")
            assert unknown["error"]["code"] == "unknown-op"
            # claim of a handle that does not exist
            missing = await client.call("claim", handle=42)
            assert missing["error"]["code"] == "unknown-handle"
            # deregister of someone else's handle
            owner = await ServiceClient.connect(server.address)
            handle = await owner.register(QUERY)
            stolen = await client.call("deregister", handle=handle)
            assert stolen["error"]["code"] == "not-owner"
            # points after end
            await client.end()
            late = await client.call("points", records=[record(POINTS[0])])
            assert late["error"]["code"] == "ended"
            await client.close()
            await owner.close()

    run_async(scenario())


def test_round_robin_fairness_under_flood():
    """A flooding tenant cannot starve a trickling one: the per-cycle
    quota caps the flooder while the trickler's whole backlog moves."""
    async def scenario():
        async with running_server(DetectorConfig(),
                                  queue_bound=64) as server:
            server.drain_quota = 8
            flood = await ServiceClient.connect(server.address,
                                                tenant="flood")
            trickle = await ServiceClient.connect(server.address,
                                                  tenant="trickle")
            await flood.register(QUERY)
            await trickle.claim(flood.handles[0])
            server.pause_drain()
            await flood.ok("points",
                           records=[record(p) for p in POINTS[0::2][:30]])
            await trickle.ok("points",
                             records=[record(p) for p in POINTS[1::2][:3]])
            # one fair cycle: flooder capped at the quota, trickler fully
            # served -- 8 + 3 records reach the engine
            assert server._drain_cycle() == 11
            assert server.engine.records_ingested == 11
            assert flood.hello["session"] != trickle.hello["session"]
            server.resume_drain()
            await flood.close()
            await trickle.close()

    run_async(scenario())
