"""Graceful drain and resume: SIGTERM mid-stream loses nothing.

The drill mirrors tests/test_fault_recovery.py, but over the wire: a
client streams a prefix, the server is torn down mid-stream (signal
handler or direct shutdown), the drain flushes exactly the boundaries
the watermark proves complete and writes one atomic sharded
checkpoint, and a resumed server -- fed the *full* stream again by a
re-attaching client -- answers the remaining boundaries so the union
is bit-exact versus an uninterrupted offline run.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro import (
    OutlierQuery,
    QueryGroup,
    Runtime,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.engine.config import DetectorConfig

from helpers import ServiceClient, run_async, running_server

pytestmark = pytest.mark.serving

QUERIES = [
    OutlierQuery(r=600.0, k=4, window=WindowSpec(win=120, slide=40)),
    OutlierQuery(r=350.0, k=6, window=WindowSpec(win=80, slide=40)),
]
POINTS = make_synthetic_points(500, dim=2, outlier_rate=0.05, seed=23)
SHARDS = 2


async def stream_prefix_then_stop(ckpt, n_prefix, stop):
    """Phase 1: stream a prefix, tear the server down via ``stop``.

    Returns (outputs collected before the drain, drained push payload).
    """
    async with running_server(DetectorConfig(shards=SHARDS),
                              checkpoint_path=ckpt) as server:
        client = await ServiceClient.connect(server.address)
        for q in QUERIES:
            await client.register(q)
        await client.subscribe()
        await client.stream(POINTS[:n_prefix], chunk=40)
        # let the drain loop answer every boundary the prefix completes
        slide = (await client.stat())["slide"]
        target = ((n_prefix - 1) // slide) * slide
        while (await client.stat())["last_boundary"] < target:
            await asyncio.sleep(0.01)
        await stop(server)
        await asyncio.wait_for(client.drained.wait(), 30)
        await asyncio.wait_for(server.stopped.wait(), 30)
        drained = client.drained_info
        outputs = dict(client.outputs)
        await client.close()
        return outputs, drained


async def resume_and_replay(ckpt):
    """Phase 2: resume from the checkpoint, replay the full stream."""
    async with running_server(checkpoint_path=ckpt, resume=True) as server:
        client = await ServiceClient.connect(server.address)
        assert client.hello["resumed_at"] > 0
        for handle in range(len(QUERIES)):
            await client.claim(handle)
        await client.subscribe()
        await client.stream(POINTS, chunk=40)  # full replay, from seq 0
        await client.end()
        await asyncio.wait_for(client.stream_end.wait(), 60)
        stat = await client.stat()
        outputs = dict(client.outputs)
        await client.close()
        return outputs, stat


def assert_drain_resume_bit_exact(before, drained, tmp_path):
    boundary = drained["checkpoint_boundary"]
    assert boundary and boundary > 0
    # the checkpoint is the atomic sharded layout: manifest + segments
    manifest = json.loads((tmp_path / "ckpt").read_text())
    assert manifest["last_boundary"] == boundary
    assert manifest["shards"] == SHARDS
    for name in manifest["segments"]:
        assert (tmp_path / name).exists()
    # every pre-drain push was a complete boundary at or below it
    assert before, "no outputs collected before the drain"
    assert max(t for _, t in before) == boundary

    after, stat = run_async(resume_and_replay(tmp_path / "ckpt"))
    # replayed records at positions the checkpoint already covers are
    # skipped, not reprocessed
    assert stat["records_replay_skipped"] == boundary
    assert after and min(t for _, t in after) == boundary + 40

    union = dict(before)
    union.update(after)
    offline = Runtime(QueryGroup(QUERIES),
                      config=DetectorConfig(shards=SHARDS)).run(POINTS)
    diffs = compare_outputs(offline.outputs, union)
    assert not diffs, "\n".join(diffs[:10])
    assert len(union) == len(offline.outputs)


def test_shutdown_drain_then_resume_is_bit_exact(tmp_path):
    async def stop(server):
        await server.shutdown(reason="test")

    before, drained = run_async(
        stream_prefix_then_stop(tmp_path / "ckpt", 300, stop))
    assert_drain_resume_bit_exact(before, drained, tmp_path)


def test_sigterm_handler_drains_and_checkpoints(tmp_path):
    async def stop(server):
        server.install_signal_handlers(asyncio.get_running_loop())
        os.kill(os.getpid(), signal.SIGTERM)

    before, drained = run_async(
        stream_prefix_then_stop(tmp_path / "ckpt", 260, stop))
    assert_drain_resume_bit_exact(before, drained, tmp_path)


def test_draining_server_refuses_new_work(tmp_path):
    async def scenario():
        async with running_server(DetectorConfig(),
                                  checkpoint_path=tmp_path / "c") as server:
            client = await ServiceClient.connect(server.address)
            await client.register(QUERIES[0])
            await client.subscribe()
            await client.stream(POINTS[:100], chunk=50)
            drain_task = asyncio.create_task(server.shutdown())
            await asyncio.wait_for(client.drained.wait(), 30)
            await drain_task
            # new connections are refused outright (listener closed) or
            # rejected with the typed draining error
            try:
                late = await asyncio.wait_for(
                    ServiceClient.connect(server.address), 2)
            except (OSError, asyncio.TimeoutError,
                    asyncio.IncompleteReadError):
                return
            assert not late.hello["ok"]
            assert late.hello["error"]["code"] == "draining"
            await late.close()

    run_async(scenario())
