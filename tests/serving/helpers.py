"""Deterministic async test helpers for the ingestion service.

No pytest-asyncio: tests are plain functions that hand a coroutine to
:func:`run_async`, which runs it on a fresh event loop under a hard
timeout (a hung service fails loudly instead of wedging the suite).

:class:`ServiceClient` is a scripted NDJSON client with a background
reader that routes request replies (``ok`` present) to a queue and
asynchronous pushes (``outliers`` / ``stream-end`` / ``drained``) into
collected state, mirroring how a real client multiplexes one socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import random

from repro.engine.config import DetectorConfig
from repro.serve import build_service

DEFAULT_TIMEOUT = 120.0


def run_async(coro, timeout: float = DEFAULT_TIMEOUT):
    """Run a test coroutine on a fresh loop with a hard timeout."""
    async def bounded():
        return await asyncio.wait_for(coro, timeout)
    return asyncio.run(bounded())


def record(point):
    """The wire form of a Point: ``[seq, [values...], time]``."""
    return [point.seq, list(point.values), point.time]


def query_dict(query):
    """The wire form of an OutlierQuery for the ``register`` op."""
    return {"r": query.r, "k": query.k, "win": query.window.win,
            "slide": query.window.slide, "kind": query.kind}


@contextlib.asynccontextmanager
async def running_server(config=None, queries=(), **kwargs):
    """An in-process server on ephemeral ports, shut down on exit."""
    if config is None:
        config = DetectorConfig()
    server = build_service(config, queries=queries, host="127.0.0.1",
                           port=0, http_port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.shutdown()


async def http_get(address, path):
    """Minimal HTTP GET against the control plane: (status, json body)."""
    reader, writer = await asyncio.open_connection(*address)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("ascii"))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return int(head.split(b" ", 2)[1]), json.loads(body)


class ServiceClient:
    """A scripted NDJSON client for one session."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.replies: "asyncio.Queue[dict]" = asyncio.Queue()
        #: (handle, boundary) -> outlier seqs, accumulated from pushes
        self.outputs = {}
        self.handles = []
        self.stream_end = asyncio.Event()
        self.drained = asyncio.Event()
        self.drained_info = None
        self.hello = None
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, address, tenant="tenant", admission="block",
                      producer=True):
        reader, writer = await asyncio.open_connection(*address)
        client = cls(reader, writer)
        client.hello = await client.call("hello", tenant=tenant,
                                         admission=admission,
                                         producer=producer)
        assert client.hello["ok"], client.hello
        return client

    async def _read_loop(self):
        while True:
            line = await self.reader.readline()
            if not line:
                break
            msg = json.loads(line)
            if "ok" in msg:
                await self.replies.put(msg)
                continue
            kind = msg.get("type")
            if kind == "outliers":
                for handle, seqs in msg["outputs"].items():
                    self.outputs[(int(handle), int(msg["t"]))] = (
                        frozenset(seqs))
            elif kind == "stream-end":
                self.stream_end.set()
            elif kind == "drained":
                self.drained_info = msg
                self.drained.set()

    # --------------------------------------------------------------- ops

    async def send(self, op, **fields):
        """Fire one request without waiting for its reply."""
        self.writer.write(
            (json.dumps({"op": op, **fields}) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def reply(self, timeout=30.0):
        return await asyncio.wait_for(self.replies.get(), timeout)

    async def call(self, op, **fields):
        await self.send(op, **fields)
        return await self.reply()

    async def ok(self, op, **fields):
        msg = await self.call(op, **fields)
        assert msg["ok"], f"{op} failed: {msg}"
        return msg

    async def register(self, query) -> int:
        handle = (await self.ok("register", query=query_dict(query)))["handle"]
        self.handles.append(handle)
        return handle

    async def claim(self, handle) -> None:
        await self.ok("claim", handle=handle)
        self.handles.append(handle)

    async def subscribe(self):
        await self.ok("subscribe")

    async def stream(self, points, chunk=32, rng=None):
        """Send points in chunks, yielding between sends.

        ``rng`` (a seeded ``random.Random``) makes the interleaving with
        other clients varied but reproducible: chunk sizes jitter and an
        occasional real sleep lets the drain loop overtake the senders.
        """
        i = 0
        while i < len(points):
            n = chunk if rng is None else rng.randint(1, chunk)
            await self.ok("points",
                          records=[record(p) for p in points[i:i + n]])
            i += n
            if rng is not None and rng.random() < 0.2:
                await asyncio.sleep(0.001)
            else:
                await asyncio.sleep(0)

    async def end(self):
        await self.ok("end")

    async def stat(self) -> dict:
        return (await self.ok("stat"))["engine"]

    async def close(self):
        self._reader_task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await self._reader_task
        self.writer.close()


async def connect_clients(server, n, **kwargs):
    return [await ServiceClient.connect(server.address, tenant=f"t{i}",
                                        **kwargs) for i in range(n)]


async def close_clients(clients):
    for c in clients:
        await c.close()


def merged_outputs(clients) -> dict:
    """Union of per-client collected pushes; asserts no conflicts."""
    union = {}
    for c in clients:
        for key, seqs in c.outputs.items():
            assert union.setdefault(key, seqs) == seqs, (
                f"clients disagree at {key}")
    return union


def interleave_rng(seed: int) -> random.Random:
    return random.Random(seed)
