"""The ``/metrics`` contract: pinned schema, monotone additive counters.

Dashboards and the CI smoke job parse this document, so its shape is
part of the public API: the key sets below are asserted exactly, every
counter only ever grows, and the ``work`` block is the merged per-shard
``work_stats`` (so it stays additive across shards and across workload
rebuilds).
"""

from __future__ import annotations

import asyncio

import pytest

from repro import OutlierQuery, WindowSpec, make_synthetic_points
from repro.engine.config import DetectorConfig

from helpers import ServiceClient, http_get, run_async, running_server

pytestmark = pytest.mark.serving

QUERY = OutlierQuery(r=500.0, k=4, window=WindowSpec(win=80, slide=20))
POINTS = make_synthetic_points(300, dim=2, outlier_rate=0.05, seed=9)

SERVICE_KEYS = {
    "draining", "admitting", "sessions", "queue", "records",
    "quarantined_reasons", "queries", "boundaries", "checkpoints_written",
}
RECORD_KEYS = {"admitted", "rejected", "quarantined", "replay_skipped"}

#: counters that must never decrease between two polls
MONOTONE = [
    ("service", "sessions", "total"),
    ("service", "records", "admitted"),
    ("service", "records", "rejected"),
    ("service", "records", "quarantined"),
    ("service", "queries", "registered_total"),
    ("service", "boundaries", "processed"),
    ("service", "boundaries", "last"),
    ("service", "checkpoints_written"),
]


def dig(doc, path):
    for key in path:
        doc = doc[key]
    return doc


def test_metrics_schema_and_monotonicity():
    async def scenario():
        async with running_server(DetectorConfig(shards=4)) as server:
            status, first = await http_get(server.http_address, "/metrics")
            assert status == 200
            assert set(first) == {"service", "work", "config", "shards"}
            assert set(first["service"]) == SERVICE_KEYS
            assert set(first["service"]["records"]) == RECORD_KEYS
            assert first["shards"] == 4
            assert first["config"]["shards"] == 4

            client = await ServiceClient.connect(server.address)
            await client.register(QUERY)
            await client.subscribe()
            await client.stream(POINTS, chunk=50)
            await client.end()
            await asyncio.wait_for(client.stream_end.wait(), 60)

            snapshots = [first]
            for _ in range(3):
                status, doc = await http_get(server.http_address,
                                             "/metrics")
                assert status == 200
                snapshots.append(doc)
                await asyncio.sleep(0.01)
            for a, b in zip(snapshots, snapshots[1:]):
                for path in MONOTONE:
                    assert dig(a, path) <= dig(b, path), path
                for key, value in a["work"].items():
                    assert b["work"].get(key, 0) >= value, key

            last = snapshots[-1]
            assert last["service"]["records"]["admitted"] == len(POINTS)
            assert last["service"]["boundaries"]["processed"] > 0
            # the work block is the merged per-shard counters of the
            # runtime -- additive across the 4 shards, not per-shard
            engine_work = server.engine.work_stats_snapshot()
            assert last["work"] == engine_work
            assert engine_work["distance_rows"] > 0
            await client.close()

    run_async(scenario())


def test_work_counters_survive_workload_rebuild():
    """Deregistering a query rebuilds the runtime; merged work counters
    must not go backwards (the retired runtime folds into the base)."""
    other = OutlierQuery(r=900.0, k=3, window=WindowSpec(win=80, slide=20))

    async def scenario():
        async with running_server(DetectorConfig()) as server:
            client = await ServiceClient.connect(server.address)
            h0 = await client.register(QUERY)
            await client.register(other)
            await client.subscribe()
            await client.stream(POINTS[:150], chunk=50)
            while (await client.stat())["last_boundary"] < 100:
                await asyncio.sleep(0.01)
            _, before = await http_get(server.http_address, "/metrics")
            await client.ok("deregister", handle=h0)
            await client.stream(POINTS[150:], chunk=50)
            await client.end()
            await asyncio.wait_for(client.stream_end.wait(), 60)
            _, after = await http_get(server.http_address, "/metrics")
            for key, value in before["work"].items():
                assert after["work"].get(key, 0) >= value, key
            assert after["service"]["queries"]["active"] == 1
            assert after["service"]["queries"]["registered_total"] == 2
            await client.close()

    run_async(scenario())


def test_healthz_reports_draining():
    async def scenario():
        async with running_server(DetectorConfig()) as server:
            status, body = await http_get(server.http_address, "/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body = await http_get(server.http_address, "/nope")
            assert status == 404
            # the draining health answer (503) -- checked at the handler
            # level, since shutdown also closes the control plane
            server.draining = True
            status, body = server._health()
            assert status == 503 and body["status"] == "draining"
            server.draining = False

    run_async(scenario())
