"""Tests for detector checkpoint/restore."""

import pytest

from repro import (
    MCODDetector,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.checkpoint import CheckpointedRun, load_checkpoint, save_checkpoint
from repro.streams.source import batches_by_boundary


def group(kind="count"):
    return QueryGroup([
        OutlierQuery(r=400.0, k=4, window=WindowSpec(win=200, slide=50,
                                                     kind=kind)),
        OutlierQuery(r=900.0, k=6, window=WindowSpec(win=150, slide=50,
                                                     kind=kind), name="wide"),
    ])


@pytest.fixture(scope="module")
def stream():
    return make_synthetic_points(800, seed=61)


class TestSaveLoad:
    def test_roundtrip_workload_and_window(self, tmp_path, stream):
        det = SOPDetector(group())
        batches = list(batches_by_boundary(stream, 50, "count"))
        for t, batch in batches[:6]:
            det.step(t, batch)
        path = tmp_path / "ckpt.jsonl"
        n = save_checkpoint(det, batches[5][0], path)
        assert n == len(det.buffer)
        restored, last_t = load_checkpoint(path)
        assert last_t == batches[5][0]
        assert [q.name for q in restored.group] == [q.name for q in det.group]
        assert [p.seq for p in restored.buffer.points] == \
            [p.seq for p in det.buffer.points]

    def test_resume_produces_identical_outputs(self, tmp_path, stream):
        """Run half, checkpoint, restore, run the rest: outputs match an
        uninterrupted run exactly."""
        batches = list(batches_by_boundary(stream, 50, "count"))
        full = SOPDetector(group()).run(stream)

        det = SOPDetector(group())
        outputs = {}
        half = len(batches) // 2
        for t, batch in batches[:half]:
            for qi, seqs in det.step(t, batch).items():
                outputs[(qi, t)] = seqs
        path = tmp_path / "ckpt.jsonl"
        save_checkpoint(det, batches[half - 1][0], path)

        restored, last_t = load_checkpoint(path)
        assert last_t == batches[half - 1][0]
        for t, batch in batches[half:]:
            for qi, seqs in restored.step(t, batch).items():
                outputs[(qi, t)] = seqs
        assert not compare_outputs(full.outputs, outputs)

    def test_restore_into_different_algorithm(self, tmp_path, stream):
        """Evidence is rebuilt, so restoring into MCOD is legitimate."""
        batches = list(batches_by_boundary(stream, 50, "count"))
        det = SOPDetector(group())
        half = len(batches) // 2
        for t, batch in batches[:half]:
            det.step(t, batch)
        path = tmp_path / "ckpt.jsonl"
        save_checkpoint(det, batches[half - 1][0], path)
        restored, _ = load_checkpoint(path, factory=MCODDetector)
        outputs = {}
        for t, batch in batches[half:]:
            for qi, seqs in restored.step(t, batch).items():
                outputs[(qi, t)] = seqs
        full = NaiveDetector(group()).run(stream)
        expected = {k: v for k, v in full.outputs.items()
                    if k[1] > batches[half - 1][0]}
        assert not compare_outputs(expected, outputs)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="header"):
            load_checkpoint(path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"version": 99, "queries": []}\n')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_malformed_point_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            '{"version": 1, "last_boundary": 0, "kind": "count", '
            '"queries": [{"r": 1, "k": 1, "win": 10, "slide": 5}]}\n'
            '{"seq": "nope"}\n'
        )
        with pytest.raises(ValueError, match="malformed point"):
            load_checkpoint(path)

    def test_detector_without_buffer_rejected(self):
        class NoBuffer:
            name = "x"
            group = None
        with pytest.raises(TypeError, match="buffer"):
            save_checkpoint(NoBuffer(), 0, "/tmp/never-written")


class TestCheckpointedRun:
    def test_periodic_writes(self, tmp_path, stream):
        path = tmp_path / "live.jsonl"
        run = CheckpointedRun(SOPDetector(group()), path, interval=3)
        batches = list(batches_by_boundary(stream, 50, "count"))
        for t, batch in batches[:7]:
            run.step(t, batch)
        assert run.checkpoints_written == 2
        restored, last_t = load_checkpoint(path)
        assert last_t == batches[5][0]  # 6th boundary (two intervals of 3)

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointedRun(SOPDetector(group()), tmp_path / "x", interval=0)


class TestAtomicity:
    """Torn-write regressions: a truncated checkpoint must fail loudly
    (naming the file), and a save must never leave temp droppings."""

    def saved(self, tmp_path, stream):
        det = SOPDetector(group())
        batches = list(batches_by_boundary(stream, 50, "count"))
        for t, batch in batches[:6]:
            det.step(t, batch)
        path = tmp_path / "ckpt.jsonl"
        save_checkpoint(det, batches[5][0], path)
        return path

    def test_header_promises_point_count(self, tmp_path, stream):
        import json
        path = self.saved(tmp_path, stream)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["points"] == len(path.read_text().splitlines()) - 1

    def test_dropped_line_raises_naming_file(self, tmp_path, stream):
        """Whole trailing lines lost (truncation on a line boundary):
        the body disagrees with the promised count."""
        path = self.saved(tmp_path, stream)
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]))
        with pytest.raises(ValueError, match="truncated checkpoint") as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_mid_line_tear_raises_naming_file(self, tmp_path, stream):
        """A tear mid-line leaves unparseable JSON: also loud, also
        naming the file."""
        from repro import tear_file
        path = self.saved(tmp_path, stream)
        tear_file(path, path.stat().st_size - 7)
        with pytest.raises(ValueError, match="malformed point") as exc:
            load_checkpoint(path)
        assert str(path) in str(exc.value)

    def test_truncate_fault_plan_produces_the_tear(self, tmp_path, stream):
        """The chaos harness's ``truncate`` fault is exactly this tear."""
        from repro import Fault, FaultPlan
        path = self.saved(tmp_path, stream)
        plan = FaultPlan((Fault("truncate", path=path.name,
                                keep_bytes=path.stat().st_size - 5),))
        torn = plan.apply_truncations(tmp_path)
        assert torn == [path]
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_no_tmp_left_behind(self, tmp_path, stream):
        self.saved(tmp_path, stream)
        assert not list(tmp_path.glob("*.tmp"))

    def test_save_overwrites_atomically(self, tmp_path, stream):
        """Re-checkpointing over an existing file goes through the same
        temp+rename path; the result is the new complete file."""
        path = self.saved(tmp_path, stream)
        first = path.read_text()
        det, last_t = load_checkpoint(path)
        save_checkpoint(det, last_t, path)
        assert not list(tmp_path.glob("*.tmp"))
        restored, t2 = load_checkpoint(path)
        assert t2 == last_t
        assert path.read_text().splitlines()[1:] == \
            first.splitlines()[1:]

    def test_sharded_manifest_tear_is_loud(self, tmp_path, stream):
        from repro import (DetectorConfig, Runtime, load_sharded_checkpoint,
                           save_sharded_checkpoint, tear_file)
        runtime = Runtime(group(), config=DetectorConfig(shards=2))
        for t, batch in list(batches_by_boundary(stream, 50, "count"))[:6]:
            runtime.step(t, batch)
        manifest = tmp_path / "sharded.jsonl"
        save_sharded_checkpoint(runtime, 300, manifest)
        assert not list(tmp_path.glob("*.tmp"))
        tear_file(manifest, 10)
        with pytest.raises(ValueError, match="malformed sharded") as exc:
            load_sharded_checkpoint(manifest)
        assert str(manifest) in str(exc.value)

    def test_sharded_segment_truncation_is_loud(self, tmp_path, stream):
        from repro import (DetectorConfig, Runtime, load_sharded_checkpoint,
                           save_sharded_checkpoint)
        runtime = Runtime(group(), config=DetectorConfig(shards=2))
        for t, batch in list(batches_by_boundary(stream, 50, "count"))[:6]:
            runtime.step(t, batch)
        manifest = tmp_path / "sharded.jsonl"
        save_sharded_checkpoint(runtime, 300, manifest)
        segment = tmp_path / "sharded.jsonl.shard1"
        lines = segment.read_text().splitlines(keepends=True)
        segment.write_text("".join(lines[:-1]))
        with pytest.raises(ValueError, match="truncated checkpoint") as exc:
            load_sharded_checkpoint(manifest)
        assert "shard1" in str(exc.value)
