"""Tests for detector checkpoint/restore."""

import pytest

from repro import (
    MCODDetector,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.checkpoint import CheckpointedRun, load_checkpoint, save_checkpoint
from repro.streams.source import batches_by_boundary


def group(kind="count"):
    return QueryGroup([
        OutlierQuery(r=400.0, k=4, window=WindowSpec(win=200, slide=50,
                                                     kind=kind)),
        OutlierQuery(r=900.0, k=6, window=WindowSpec(win=150, slide=50,
                                                     kind=kind), name="wide"),
    ])


@pytest.fixture(scope="module")
def stream():
    return make_synthetic_points(800, seed=61)


class TestSaveLoad:
    def test_roundtrip_workload_and_window(self, tmp_path, stream):
        det = SOPDetector(group())
        batches = list(batches_by_boundary(stream, 50, "count"))
        for t, batch in batches[:6]:
            det.step(t, batch)
        path = tmp_path / "ckpt.jsonl"
        n = save_checkpoint(det, batches[5][0], path)
        assert n == len(det.buffer)
        restored, last_t = load_checkpoint(path)
        assert last_t == batches[5][0]
        assert [q.name for q in restored.group] == [q.name for q in det.group]
        assert [p.seq for p in restored.buffer.points] == \
            [p.seq for p in det.buffer.points]

    def test_resume_produces_identical_outputs(self, tmp_path, stream):
        """Run half, checkpoint, restore, run the rest: outputs match an
        uninterrupted run exactly."""
        batches = list(batches_by_boundary(stream, 50, "count"))
        full = SOPDetector(group()).run(stream)

        det = SOPDetector(group())
        outputs = {}
        half = len(batches) // 2
        for t, batch in batches[:half]:
            for qi, seqs in det.step(t, batch).items():
                outputs[(qi, t)] = seqs
        path = tmp_path / "ckpt.jsonl"
        save_checkpoint(det, batches[half - 1][0], path)

        restored, last_t = load_checkpoint(path)
        assert last_t == batches[half - 1][0]
        for t, batch in batches[half:]:
            for qi, seqs in restored.step(t, batch).items():
                outputs[(qi, t)] = seqs
        assert not compare_outputs(full.outputs, outputs)

    def test_restore_into_different_algorithm(self, tmp_path, stream):
        """Evidence is rebuilt, so restoring into MCOD is legitimate."""
        batches = list(batches_by_boundary(stream, 50, "count"))
        det = SOPDetector(group())
        half = len(batches) // 2
        for t, batch in batches[:half]:
            det.step(t, batch)
        path = tmp_path / "ckpt.jsonl"
        save_checkpoint(det, batches[half - 1][0], path)
        restored, _ = load_checkpoint(path, factory=MCODDetector)
        outputs = {}
        for t, batch in batches[half:]:
            for qi, seqs in restored.step(t, batch).items():
                outputs[(qi, t)] = seqs
        full = NaiveDetector(group()).run(stream)
        expected = {k: v for k, v in full.outputs.items()
                    if k[1] > batches[half - 1][0]}
        assert not compare_outputs(expected, outputs)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="header"):
            load_checkpoint(path)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"version": 99, "queries": []}\n')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(path)

    def test_malformed_point_rejected(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text(
            '{"version": 1, "last_boundary": 0, "kind": "count", '
            '"queries": [{"r": 1, "k": 1, "win": 10, "slide": 5}]}\n'
            '{"seq": "nope"}\n'
        )
        with pytest.raises(ValueError, match="malformed point"):
            load_checkpoint(path)

    def test_detector_without_buffer_rejected(self):
        class NoBuffer:
            name = "x"
            group = None
        with pytest.raises(TypeError, match="buffer"):
            save_checkpoint(NoBuffer(), 0, "/tmp/never-written")


class TestCheckpointedRun:
    def test_periodic_writes(self, tmp_path, stream):
        path = tmp_path / "live.jsonl"
        run = CheckpointedRun(SOPDetector(group()), path, interval=3)
        batches = list(batches_by_boundary(stream, 50, "count"))
        for t, batch in batches[:7]:
            run.step(t, batch)
        assert run.checkpoints_written == 2
        restored, last_t = load_checkpoint(path)
        assert last_t == batches[5][0]  # 6th boundary (two intervals of 3)

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointedRun(SOPDetector(group()), tmp_path / "x", interval=0)
