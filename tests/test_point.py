"""Unit tests for the point model and distance metrics."""


import numpy as np
import pytest

from repro import (
    DistanceMetric,
    Point,
    available_metrics,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    points_from_array,
    register_metric,
)


class TestPoint:
    def test_time_defaults_to_seq(self):
        p = Point(seq=7, values=(1.0, 2.0))
        assert p.time == 7.0

    def test_explicit_time_kept(self):
        p = Point(seq=7, values=(1.0,), time=3.5)
        assert p.time == 3.5

    def test_values_coerced_to_tuple(self):
        p = Point(seq=0, values=[1, 2, 3])
        assert p.values == (1.0, 2.0, 3.0)
        assert isinstance(p.values, tuple)

    def test_dim(self):
        assert Point(seq=0, values=(1.0, 2.0, 3.0)).dim == 3

    def test_hashable_and_frozen(self):
        p = Point(seq=1, values=(0.0,))
        assert p in {p}
        with pytest.raises(AttributeError):
            p.seq = 2

    def test_project_keeps_identity(self):
        p = Point(seq=5, values=(1.0, 2.0, 3.0), time=9.0)
        q = p.project([2, 0])
        assert q.values == (3.0, 1.0)
        assert q.seq == 5 and q.time == 9.0

    def test_equality_by_fields(self):
        assert Point(seq=1, values=(2.0,)) == Point(seq=1, values=(2.0,))
        assert Point(seq=1, values=(2.0,)) != Point(seq=2, values=(2.0,))


class TestMetrics:
    def test_euclidean_scalar(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_manhattan_scalar(self):
        assert manhattan((0, 0), (3, 4)) == pytest.approx(7.0)

    def test_chebyshev_scalar(self):
        assert chebyshev((0, 0), (3, 4)) == pytest.approx(4.0)

    def test_between_points(self):
        a = Point(seq=0, values=(0.0, 0.0))
        b = Point(seq=1, values=(3.0, 4.0))
        assert euclidean.between_points(a, b) == pytest.approx(5.0)

    @pytest.mark.parametrize("metric", [euclidean, manhattan, chebyshev])
    def test_block_matches_scalar(self, metric, rng):
        q = rng.normal(size=3)
        block = rng.normal(size=(20, 3))
        vec = metric.to_block(q, block)
        for i in range(20):
            assert vec[i] == pytest.approx(metric(q, block[i]))

    def test_block_empty(self):
        out = euclidean.to_block(np.zeros(2), np.empty((0, 2)))
        assert out.shape == (0,)

    def test_get_metric_by_name(self):
        assert get_metric("manhattan") is manhattan

    def test_get_metric_passthrough(self):
        assert get_metric(euclidean) is euclidean

    def test_get_metric_unknown(self):
        with pytest.raises(KeyError, match="unknown distance metric"):
            get_metric("cosine")

    def test_register_custom_metric(self):
        halved = DistanceMetric(
            "halved",
            lambda a, b: euclidean(a, b) / 2,
            lambda q, b: euclidean.to_block(q, b) / 2,
        )
        register_metric(halved)
        assert "halved" in available_metrics()
        assert get_metric("halved")((0, 0), (6, 8)) == pytest.approx(5.0)

    def test_register_rejects_non_metric(self):
        with pytest.raises(TypeError):
            register_metric(lambda a, b: 0)


class TestPointsFromArray:
    def test_basic(self):
        pts = points_from_array([[1, 2], [3, 4]])
        assert [p.seq for p in pts] == [0, 1]
        assert pts[1].values == (3.0, 4.0)

    def test_start_seq(self):
        pts = points_from_array([[1]], start_seq=10)
        assert pts[0].seq == 10

    def test_with_times(self):
        pts = points_from_array([[1], [2]], times=[0.5, 1.5])
        assert [p.time for p in pts] == [0.5, 1.5]

    def test_times_length_mismatch(self):
        with pytest.raises(ValueError, match="times has"):
            points_from_array([[1], [2]], times=[0.5])

    def test_times_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            points_from_array([[1], [2]], times=[2.0, 1.0])

    def test_numpy_input(self):
        pts = points_from_array(np.arange(6).reshape(3, 2))
        assert pts[2].values == (4.0, 5.0)
