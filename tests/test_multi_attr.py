"""Unit tests for the multi-attribute divide-and-conquer extension."""

import pytest

from repro import (
    MultiAttributeDetector,
    MultiAttributeSOP,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
    partition_by_attributes,
)


def q(r, k, win, slide, attrs=None):
    return OutlierQuery(r=float(r), k=k,
                        window=WindowSpec(win=win, slide=slide),
                        attributes=attrs)


@pytest.fixture(scope="module")
def stream3d():
    return make_synthetic_points(700, dim=3, outlier_rate=0.04, seed=21)


MIXED = [
    q(300, 4, 200, 50, attrs=(0, 1)),
    q(500, 6, 300, 100, attrs=(2,)),
    q(800, 5, 250, 50, attrs=(0, 1)),
    q(400, 3, 150, 50),            # all attributes
]


class TestPartitioning:
    def test_partition_by_attributes(self):
        parts = partition_by_attributes(MIXED)
        assert parts[(0, 1)] == [0, 2]
        assert parts[(2,)] == [1]
        assert parts[None] == [3]

    def test_partitions_property(self):
        det = MultiAttributeSOP(MIXED)
        assert det.partitions == 3

    def test_name_reflects_inner_detector(self):
        assert "sop" in MultiAttributeSOP(MIXED).name
        assert "naive" in MultiAttributeDetector(
            MIXED, factory=NaiveDetector).name


class TestEquivalence:
    def test_sop_vs_naive_per_partition(self, stream3d):
        expected = MultiAttributeDetector(MIXED, factory=NaiveDetector
                                          ).run(stream3d)
        actual = MultiAttributeSOP(MIXED).run(stream3d)
        diffs = compare_outputs(expected.outputs, actual.outputs)
        assert not diffs, "\n".join(diffs)

    def test_homogeneous_partition_equals_plain_group(self, stream3d):
        """With a single attribute set, the wrapper matches a direct run."""
        queries = [q(300, 4, 200, 50), q(800, 6, 300, 100)]
        wrapper = MultiAttributeSOP(queries).run(stream3d)
        from repro import SOPDetector
        direct = SOPDetector(QueryGroup(queries)).run(stream3d)
        assert not compare_outputs(direct.outputs, wrapper.outputs)

    def test_projection_actually_changes_results(self, stream3d):
        """Sanity: a projected query sees different geometry than the full
        space (otherwise Fig. 10(b) would be testing nothing)."""
        full = MultiAttributeSOP([q(500, 5, 200, 50)]).run(stream3d)
        proj = MultiAttributeSOP([q(500, 5, 200, 50, attrs=(0,))]
                                 ).run(stream3d)
        assert any(full.outputs[key] != proj.outputs[key]
                   for key in full.outputs)


class TestAccounting:
    def test_memory_sums_partitions(self, stream3d):
        det = MultiAttributeSOP(MIXED)
        det.run(stream3d)
        assert det.memory_units() == sum(
            sub.memory_units() for _, _, sub in det._partitions)

    def test_tracked_points_sum(self, stream3d):
        det = MultiAttributeSOP(MIXED)
        det.run(stream3d)
        assert det.tracked_points() > 0

    def test_mixed_group_rejected_by_plain_querygroup(self):
        with pytest.raises(ValueError, match="multi_attr"):
            QueryGroup(MIXED)
