"""Unit tests for dynamic workloads (runtime query add/remove)."""

import pytest

from repro import (
    DynamicSOPDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    make_synthetic_points,
)
from repro.streams.source import batches_by_boundary

from conftest import line_points


def q(r, k, win, slide, kind="count"):
    return OutlierQuery(r=float(r), k=k,
                        window=WindowSpec(win=win, slide=slide, kind=kind))


class TestWorkloadManagement:
    def test_handles_are_stable(self):
        det = DynamicSOPDetector()
        h0 = det.add_query(q(300, 4, 200, 50))
        h1 = det.add_query(q(700, 6, 200, 50))
        det.remove_query(h0)
        h2 = det.add_query(q(900, 3, 200, 50))
        assert h0 != h1 != h2
        assert set(det.queries) == {h1, h2}

    def test_remove_unknown_handle(self):
        det = DynamicSOPDetector()
        with pytest.raises(KeyError, match="handle"):
            det.remove_query(99)

    def test_add_requires_query(self):
        with pytest.raises(TypeError):
            DynamicSOPDetector().add_query("not a query")

    def test_kind_mismatch_rejected(self):
        det = DynamicSOPDetector([q(1, 1, 10, 5)])
        with pytest.raises(ValueError, match="kind"):
            det.add_query(q(1, 1, 10, 5, kind="time"))

    def test_swift_reflects_membership(self):
        det = DynamicSOPDetector()
        assert det.swift is None
        det.add_query(q(1, 1, 100, 20))
        assert det.swift.slide == 20 and det.swift.win == 100
        det.add_query(q(1, 1, 300, 30))
        assert det.swift.slide == 10 and det.swift.win == 300

    def test_len(self):
        det = DynamicSOPDetector([q(1, 1, 10, 5)])
        assert len(det) == 1


class TestExecution:
    def test_empty_workload_steps_are_noops(self):
        det = DynamicSOPDetector()
        assert det.step(10, line_points([0.0] * 10)) == {}
        assert det.memory_units() == 0

    def test_outputs_keyed_by_handle(self):
        det = DynamicSOPDetector()
        h0 = det.add_query(q(1, 2, 20, 10))
        h1 = det.add_query(q(5, 2, 20, 10))
        pts = line_points([0.0] * 10)
        out = det.step(10, pts)
        assert set(out) == {h0, h1}

    def test_matches_static_detector_from_scratch(self, small_stream):
        queries = [q(400, 5, 200, 50), q(900, 8, 300, 50)]
        static = SOPDetector(QueryGroup(queries)).run(small_stream)
        dyn = DynamicSOPDetector(queries)
        outputs = {}
        for t, batch in batches_by_boundary(small_stream, dyn.swift.slide,
                                            "count"):
            for h, seqs in dyn.step(t, batch).items():
                outputs[(h, t)] = seqs
        from repro import compare_outputs
        assert not compare_outputs(static.outputs, outputs)

    def test_added_query_answers_like_static_afterwards(self):
        """A query added mid-stream sees the retained window and from then
        on produces exactly what a static detector would."""
        pts = make_synthetic_points(800, seed=31)
        base = q(400, 4, 200, 50)
        extra = q(900, 6, 150, 50)
        dyn = DynamicSOPDetector([base])
        h_extra = None
        dyn_outputs = {}
        for t, batch in batches_by_boundary(pts, 50, "count"):
            out = dyn.step(t, batch)
            for h, seqs in out.items():
                dyn_outputs[(h, t)] = seqs
            if t == 400:
                h_extra = dyn.add_query(extra)
        static = SOPDetector(QueryGroup([base, extra])).run(pts)
        for (qi, t), seqs in static.outputs.items():
            if qi == 1 and t > 400:
                assert dyn_outputs[(h_extra, t)] == seqs, f"t={t}"
        # the pre-existing query is unaffected throughout
        for (qi, t), seqs in static.outputs.items():
            if qi == 0:
                assert dyn_outputs[(0, t)] == seqs, f"t={t}"

    def test_removed_query_stops_reporting(self):
        dyn = DynamicSOPDetector()
        h0 = dyn.add_query(q(1, 2, 20, 10))
        pts = line_points([0.0] * 40)
        batches = list(batches_by_boundary(pts, 10, "count"))
        out = dyn.step(*batches[0])
        assert h0 in out
        dyn.remove_query(h0)
        h1 = dyn.add_query(q(2, 2, 20, 10))
        out = dyn.step(*batches[1])
        assert h0 not in out and h1 in out

    def test_rebuild_retains_window(self):
        """After a mutation, old points still count as neighbors."""
        # neighbors arrive early; the probe point arrives after the rebuild
        values = [0.0] * 15 + [0.1] + [50.0] * 24
        pts = line_points(values)
        dyn = DynamicSOPDetector([q(1, 2, 40, 10)])
        batches = list(batches_by_boundary(pts, 10, "count"))
        dyn.step(*batches[0])
        dyn.add_query(q(1, 5, 40, 10))  # forces rebuild at next step
        out2 = dyn.step(*batches[1])
        # seq 15 has >= 2 neighbors among the retained seqs 0..14
        assert 15 not in out2[0]

    def test_plan_property(self):
        dyn = DynamicSOPDetector([q(1, 2, 20, 10)])
        assert dyn.plan is None  # stale until first step
        dyn.step(10, line_points([0.0] * 10))
        assert dyn.plan is not None and dyn.plan.k_max == 2
