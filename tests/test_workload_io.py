"""Unit tests for workload JSON specs."""

import json

import pytest

from repro import OutlierQuery, WindowSpec, load_workload, save_workload


def q(r=100.0, k=3, win=100, slide=10, kind="count", **kw):
    return OutlierQuery(r=r, k=k,
                        window=WindowSpec(win=win, slide=slide, kind=kind),
                        **kw)


class TestRoundtrip:
    def test_basic(self, tmp_path):
        queries = [q(r=5, k=2), q(r=9, k=7, name="fraud")]
        path = tmp_path / "wl.json"
        assert save_workload(queries, path) == 2
        loaded = load_workload(path)
        assert loaded == queries

    def test_attributes_preserved(self, tmp_path):
        queries = [q(attributes=(0, 2)), q()]
        path = tmp_path / "wl.json"
        save_workload(queries, path)
        loaded = load_workload(path)
        assert loaded[0].attributes == (0, 2)
        assert loaded[1].attributes is None

    def test_time_kind_preserved(self, tmp_path):
        queries = [q(kind="time")]
        path = tmp_path / "wl.json"
        save_workload(queries, path)
        assert load_workload(path)[0].kind == "time"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_workload([], tmp_path / "wl.json")

    def test_mixed_kinds_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="kind"):
            save_workload([q(), q(kind="time")], tmp_path / "wl.json")


class TestLoadValidation:
    def _write(self, tmp_path, doc):
        path = tmp_path / "wl.json"
        path.write_text(json.dumps(doc) if not isinstance(doc, str) else doc)
        return path

    def test_not_json(self, tmp_path):
        path = self._write(tmp_path, "{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_workload(path)

    def test_missing_queries(self, tmp_path):
        path = self._write(tmp_path, {"kind": "count"})
        with pytest.raises(ValueError, match="'queries'"):
            load_workload(path)

    def test_bad_kind(self, tmp_path):
        path = self._write(tmp_path, {"kind": "session", "queries": [
            {"r": 1, "k": 1, "win": 10, "slide": 5}]})
        with pytest.raises(ValueError, match="kind"):
            load_workload(path)

    def test_empty_queries_list(self, tmp_path):
        path = self._write(tmp_path, {"queries": []})
        with pytest.raises(ValueError, match="non-empty"):
            load_workload(path)

    def test_missing_field(self, tmp_path):
        path = self._write(tmp_path, {"queries": [{"r": 1, "k": 1,
                                                   "win": 10}]})
        with pytest.raises(ValueError, match="missing field"):
            load_workload(path)

    def test_invalid_values_surface_query_index(self, tmp_path):
        path = self._write(tmp_path, {"queries": [
            {"r": 1, "k": 1, "win": 10, "slide": 5},
            {"r": -1, "k": 1, "win": 10, "slide": 5},
        ]})
        with pytest.raises(ValueError, match="query #1"):
            load_workload(path)

    def test_kind_defaults_to_count(self, tmp_path):
        path = self._write(tmp_path, {"queries": [
            {"r": 1, "k": 1, "win": 10, "slide": 5}]})
        assert load_workload(path)[0].kind == "count"
