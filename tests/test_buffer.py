"""Unit tests for the window buffer substrate."""

import numpy as np
import pytest

from repro import Point, WindowBuffer, euclidean

from conftest import line_points


def make_buffer(values, **kw):
    buf = WindowBuffer(euclidean, **kw)
    buf.extend(line_points(values))
    return buf


class TestAppendExtend:
    def test_len(self):
        assert len(make_buffer([1, 2, 3])) == 3

    def test_points_in_order(self):
        buf = make_buffer([5, 6, 7])
        assert [p.seq for p in buf.points] == [0, 1, 2]

    def test_getitem_and_negative_index(self):
        buf = make_buffer([5, 6, 7])
        assert buf[0].values == (5.0,)
        assert buf[-1].values == (7.0,)

    def test_getitem_out_of_range(self):
        with pytest.raises(IndexError):
            make_buffer([1])[3]

    def test_seq_order_enforced(self):
        buf = make_buffer([1, 2])
        with pytest.raises(ValueError, match="increasing seq order"):
            buf.append(Point(seq=0, values=(3.0,)))

    def test_dim_enforced(self):
        buf = make_buffer([1.0])
        with pytest.raises(ValueError, match="dim"):
            buf.append(Point(seq=5, values=(1.0, 2.0)))

    def test_empty_extend_noop(self):
        buf = make_buffer([1])
        buf.extend([])
        assert len(buf) == 1

    def test_capacity_growth(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(range(5000)))
        assert len(buf) == 5000
        assert buf.matrix().shape == (5000, 1)


class TestEviction:
    def test_evict_by_seq(self):
        buf = make_buffer(range(10))
        evicted = buf.evict_before(4, by_time=False)
        assert [p.seq for p in evicted] == [0, 1, 2, 3]
        assert [p.seq for p in buf.points] == list(range(4, 10))

    def test_evict_by_time(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([1, 2, 3], times=[0.5, 2.5, 9.0]))
        evicted = buf.evict_before(2.0, by_time=True)
        assert [p.seq for p in evicted] == [0]

    def test_evict_nothing(self):
        buf = make_buffer(range(5))
        assert buf.evict_before(0, by_time=False) == []

    def test_matrix_follows_eviction(self):
        buf = make_buffer(range(6))
        buf.evict_before(2, by_time=False)
        np.testing.assert_allclose(buf.matrix()[:, 0], [2, 3, 4, 5])

    def test_compaction_preserves_content(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(range(10_000)))
        buf.evict_before(9_000, by_time=False)
        # compaction threshold passed: storage shrank but content intact
        assert len(buf) == 1000
        assert buf.points[0].seq == 9000
        np.testing.assert_allclose(
            buf.matrix()[:, 0], np.arange(9000, 10000, dtype=float)
        )
        # still appendable after compaction
        buf.extend(line_points([1.0], start_seq=10_000))
        assert buf[-1].seq == 10_000

    def test_clear(self):
        buf = make_buffer(range(5))
        buf.clear()
        assert len(buf) == 0


class TestLookup:
    def test_position_of_seq(self):
        buf = make_buffer(range(10))
        buf.evict_before(3, by_time=False)
        assert buf.position_of_seq(3) == 0
        assert buf.position_of_seq(9) == 6

    def test_position_of_missing_seq(self):
        buf = make_buffer(range(10))
        buf.evict_before(3, by_time=False)
        with pytest.raises(KeyError):
            buf.position_of_seq(2)
        with pytest.raises(KeyError):
            buf.position_of_seq(10)

    def test_first_index_at_or_after_time(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([0, 0, 0], times=[1.0, 2.0, 3.0]))
        assert buf.first_index_at_or_after_time(2.0) == 1
        assert buf.first_index_at_or_after_time(2.5) == 2
        assert buf.first_index_at_or_after_time(99.0) == 3


class TestVectorized:
    def test_distances_from(self):
        buf = make_buffer([0, 3, 4])
        np.testing.assert_allclose(buf.distances_from((0.0,)), [0, 3, 4])

    def test_distances_slice(self):
        buf = make_buffer([0, 3, 4])
        np.testing.assert_allclose(buf.distances_from((0.0,), 1, 3), [3, 4])

    def test_neighbor_count_includes_self_match(self):
        buf = make_buffer([0, 1, 2, 10])
        # query vector equals the first point: self counted, caller subtracts
        assert buf.neighbor_count((0.0,), radius=2.0) == 3

    def test_empty_buffer_matrix(self):
        buf = WindowBuffer(euclidean)
        assert buf.matrix().shape[0] == 0
