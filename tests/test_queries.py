"""Unit tests for the outlier query model and query groups."""

import pytest

from repro import COUNT, TIME, OutlierQuery, QueryGroup, WindowSpec


def q(r=100.0, k=3, win=100, slide=10, kind=COUNT, **kw):
    return OutlierQuery(r=r, k=k, window=WindowSpec(win=win, slide=slide,
                                                    kind=kind), **kw)


class TestOutlierQueryValidation:
    def test_valid(self):
        query = q()
        assert query.r == 100.0 and query.k == 3

    @pytest.mark.parametrize("bad_k", [0, -2])
    def test_k_positive(self, bad_k):
        with pytest.raises(ValueError):
            q(k=bad_k)

    @pytest.mark.parametrize("bad_k", [2.5, True])
    def test_k_int(self, bad_k):
        with pytest.raises(TypeError):
            q(k=bad_k)

    @pytest.mark.parametrize("bad_r", [0, -1.0])
    def test_r_positive(self, bad_r):
        with pytest.raises(ValueError):
            q(r=bad_r)

    def test_r_coerced_to_float(self):
        assert isinstance(q(r=5).r, float)

    def test_window_type_checked(self):
        with pytest.raises(TypeError):
            OutlierQuery(r=1.0, k=1, window=(100, 10))

    def test_attributes_deduplicated_check(self):
        with pytest.raises(ValueError, match="duplicate"):
            q(attributes=(0, 0))

    def test_attributes_nonnegative(self):
        with pytest.raises(ValueError):
            q(attributes=(-1,))

    def test_default_name(self):
        assert q(r=2.5, k=7, win=50, slide=5).name == \
            "q(r=2.5,k=7,win=50,slide=5)"

    def test_custom_name_kept(self):
        assert q(name="fraud-fast").name == "fraud-fast"

    def test_accessors(self):
        query = q(win=80, slide=20, kind=TIME)
        assert (query.win, query.slide, query.kind) == (80, 20, TIME)

    def test_replace_pattern_params(self):
        query = q(r=10, k=2).replace(r=20.0)
        assert query.r == 20.0 and query.k == 2

    def test_replace_window_params(self):
        query = q(win=100, slide=10).replace(win=200, slide=25)
        assert query.win == 200 and query.slide == 25

    def test_replace_regenerates_name(self):
        assert "r=9" in q(r=3).replace(r=9.0).name

    def test_frozen(self):
        with pytest.raises(AttributeError):
            q().k = 5


class TestQueryGroup:
    def test_requires_queries(self):
        with pytest.raises(ValueError):
            QueryGroup([])

    def test_kind_homogeneous(self):
        with pytest.raises(ValueError, match="window kind"):
            QueryGroup([q(kind=COUNT), q(kind=TIME)])

    def test_attribute_homogeneous(self):
        with pytest.raises(ValueError, match="attribute"):
            QueryGroup([q(attributes=(0,)), q(attributes=(1,))])

    def test_container_protocol(self):
        g = QueryGroup([q(r=1), q(r=2)])
        assert len(g) == 2
        assert g[1].r == 2.0
        assert [m.r for m in g] == [1.0, 2.0]

    def test_r_grid_sorted_unique(self):
        g = QueryGroup([q(r=5), q(r=1), q(r=5), q(r=3)])
        assert g.r_grid == (1.0, 3.0, 5.0)

    def test_k_values_and_k_max(self):
        g = QueryGroup([q(k=7), q(k=2), q(k=7)])
        assert g.k_values == (2, 7) and g.k_max == 7

    def test_r_min_max(self):
        g = QueryGroup([q(r=4), q(r=9)])
        assert (g.r_min, g.r_max) == (4.0, 9.0)

    def test_subgroups_by_k_sorted(self):
        g = QueryGroup([q(k=5, r=1), q(k=2, r=2), q(k=5, r=3)])
        subs = g.subgroups_by_k()
        assert list(subs) == [2, 5]
        assert subs[5] == [0, 2]

    def test_swift_schedule_derived(self):
        g = QueryGroup([q(win=100, slide=20), q(win=300, slide=50)])
        assert g.swift.win == 300 and g.swift.slide == 10

    def test_due_members(self):
        g = QueryGroup([q(slide=20), q(slide=30)])
        assert g.due_members(60) == [0, 1]
        assert g.due_members(20) == [0]
        assert g.due_members(10) == []
