"""Cross-module integration scenarios stitching several subsystems."""


from repro import (
    CollectingSink,
    DynamicSOPDetector,
    LEAPDetector,
    MCODDetector,
    MultiAttributeDetector,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    load_results_jsonl,
    make_stock_points,
    make_synthetic_points,
    run_with_alerts,
    save_results_jsonl,
)
from repro.bench import ScaledRanges, build_workload
from repro.streams.source import batches_by_boundary


def q(r, k, win, slide, kind="count", **kw):
    return OutlierQuery(r=float(r), k=k,
                        window=WindowSpec(win=win, slide=slide, kind=kind),
                        **kw)


class TestPaperRegimeIntegration:
    """The benchmark data regime, validated against the oracle once."""

    def test_mixed_workload_on_paper_regime_stream(self):
        pts = make_synthetic_points(1000, dim=2, outlier_rate=0.02,
                                    seed=7, n_clusters=2,
                                    cluster_spread=185)
        ranges = ScaledRanges(
            r=(200.0, 2000.0), k=(5, 40), win=(100, 400),
            slide=(50, 200), slide_quantum=50, fixed_r=700.0,
            fixed_k=8, fixed_win=300, fixed_slide=50,
        )
        group = build_workload("G", 12, seed=99, ranges=ranges)
        oracle = NaiveDetector(group).run(pts)
        for cls in (SOPDetector, MCODDetector, LEAPDetector):
            res = cls(group).run(pts)
            diffs = compare_outputs(oracle.outputs, res.outputs)
            assert not diffs, f"{cls.__name__}: " + "\n".join(diffs)


class TestAlertsOverBaselines:
    def test_router_is_detector_agnostic(self):
        pts = make_synthetic_points(600, seed=5)
        group = QueryGroup([q(400, 4, 200, 100), q(900, 6, 200, 100)])
        feeds = {}
        for cls in (SOPDetector, MCODDetector):
            sink = CollectingSink()
            run_with_alerts(cls(group), pts, [sink], dedupe="transitions")
            feeds[cls.__name__] = [(a.boundary, a.query_index, a.seq)
                                   for a in sink.alerts]
        assert feeds["SOPDetector"] == feeds["MCODDetector"]


class TestArchiveAudit:
    def test_archive_roundtrip_supports_cross_algorithm_audit(self, tmp_path):
        pts = make_stock_points(500, seed=19)
        group = QueryGroup([
            q(8, 3, 2000, 500, kind="time"),
            q(20, 5, 4000, 1000, kind="time"),
        ])
        sop = SOPDetector(group).run(pts)
        path = tmp_path / "archive.jsonl"
        save_results_jsonl(sop.outputs, path)
        audit = LEAPDetector(group).run(pts)
        assert not compare_outputs(load_results_jsonl(path), audit.outputs)


class TestDynamicLifecycle:
    def test_full_lifecycle_empty_to_full_to_empty(self):
        pts = make_synthetic_points(400, seed=23)
        dyn = DynamicSOPDetector()
        batches = list(batches_by_boundary(pts, 50, "count"))
        # phase 1: empty workload
        assert dyn.step(*batches[0]) == {}
        # phase 2: add two queries
        h0 = dyn.add_query(q(400, 4, 200, 50))
        h1 = dyn.add_query(q(900, 6, 100, 50))
        out = dyn.step(*batches[1])
        assert set(out) == {h0, h1}
        # phase 3: drop one, keep stepping
        dyn.remove_query(h0)
        out = dyn.step(*batches[2])
        assert set(out) == {h1}
        # phase 4: drop all -> silent again; retained buffer cleared lazily
        dyn.remove_query(h1)
        assert dyn.step(*batches[3]) == {}
        assert dyn.swift is None

    def test_readding_after_empty_still_exact(self):
        pts = make_synthetic_points(400, seed=29)
        batches = list(batches_by_boundary(pts, 50, "count"))
        dyn = DynamicSOPDetector([q(400, 4, 100, 50)])
        dyn.step(*batches[0])
        dyn.remove_query(0)
        dyn.step(*batches[1])
        h = dyn.add_query(q(400, 4, 100, 50))
        outputs = {}
        for t, batch in batches[2:]:
            for handle, seqs in dyn.step(t, batch).items():
                outputs[(0, t)] = seqs
        static = SOPDetector(QueryGroup([q(400, 4, 100, 50)])).run(pts)
        for (qi, t), seqs in static.outputs.items():
            if t >= batches[2][0] + 100:  # past the retained-history seam
                assert outputs[(0, t)] == seqs


class TestMultiAttrBaselines:
    def test_all_detectors_agree_on_mixed_attribute_workload(self):
        pts = make_synthetic_points(500, dim=3, seed=41)
        queries = [
            q(400, 4, 150, 50, attributes=(0, 1)),
            q(700, 5, 200, 50, attributes=(2,)),
            q(500, 3, 100, 50),
        ]
        oracle = MultiAttributeDetector(queries, factory=NaiveDetector
                                        ).run(pts)
        for factory in (SOPDetector, MCODDetector, LEAPDetector):
            res = MultiAttributeDetector(queries, factory=factory).run(pts)
            diffs = compare_outputs(oracle.outputs, res.outputs)
            assert not diffs, f"{factory.__name__}: " + "\n".join(diffs)
