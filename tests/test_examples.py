"""Every example script must run cleanly end to end.

Each example is executed in-process (cheaper than subprocesses, and
coverage-friendly) with its stdout captured; smoke assertions pin the
load-bearing lines of each script's output.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "verified against brute force: IDENTICAL" in out
        assert "skyband plan" in out

    def test_credit_fraud(self, capsys):
        out = run_example("credit_fraud", capsys)
        assert "per-analyst detection quality" in out
        assert "consensus alerts" in out
        # every analyst line reports precision/recall
        assert out.count("precision") >= 4

    def test_stock_monitoring(self, capsys):
        out = run_example("stock_monitoring", capsys)
        assert "per-query alert quality" in out
        assert "skyband entries" in out

    def test_parameter_exploration(self, capsys):
        out = run_example("parameter_exploration", capsys)
        assert "outlier rate (%) by (r, k)" in out
        assert "window sensitivity" in out

    def test_csv_pipeline(self, capsys):
        out = run_example("csv_pipeline", capsys)
        assert "audit vs MCOD re-run: CLEAN" in out
        assert "transition alerts" in out

    def test_resilient_monitor(self, capsys):
        out = run_example("resilient_monitor", capsys)
        assert "0 mismatches" in out and "CLEAN" in out
        assert "restored monitor" in out
