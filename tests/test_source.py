"""Unit tests for stream sources and boundary batching."""

import pytest

from repro import COUNT, TIME, ListSource, batches_by_boundary
from repro.streams.source import positions

from conftest import line_points


class TestPositions:
    def test_count_positions_are_seqs(self):
        pts = line_points([5, 6], times=[0.1, 0.2])
        assert positions(pts, COUNT) == [0.0, 1.0]

    def test_time_positions_are_times(self):
        pts = line_points([5, 6], times=[0.1, 0.2])
        assert positions(pts, TIME) == [0.1, 0.2]

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            positions([], "epoch")


class TestListSource:
    def test_iteration_and_len(self):
        src = ListSource(line_points([1, 2, 3]))
        assert len(src) == 3
        assert [p.seq for p in src] == [0, 1, 2]

    def test_take(self):
        src = ListSource(line_points(range(10)))
        assert [p.seq for p in src.take(4)] == [0, 1, 2, 3]

    def test_take_beyond_end(self):
        src = ListSource(line_points([1]))
        assert len(src.take(5)) == 1


class TestBatchesByBoundary:
    def test_count_based_batching(self):
        pts = line_points(range(10))
        batches = list(batches_by_boundary(pts, slide=4, kind=COUNT))
        assert [t for t, _ in batches] == [4, 8, 12]
        assert [[p.seq for p in b] for _, b in batches] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_every_point_delivered_exactly_once(self):
        pts = line_points(range(23))
        seen = [p.seq for _, b in batches_by_boundary(pts, 5, COUNT)
                for p in b]
        assert seen == list(range(23))

    def test_until_truncates(self):
        pts = line_points(range(10))
        batches = list(batches_by_boundary(pts, 4, COUNT, until=8))
        assert [t for t, _ in batches] == [4, 8]

    def test_until_extends_with_empty_batches(self):
        pts = line_points(range(4))
        batches = list(batches_by_boundary(pts, 4, COUNT, until=12))
        assert [t for t, _ in batches] == [4, 8, 12]
        assert [len(b) for _, b in batches] == [4, 0, 0]

    def test_time_based_batching(self):
        pts = line_points([0, 0, 0, 0], times=[0.5, 3.0, 3.5, 9.0])
        batches = list(batches_by_boundary(pts, 4, TIME))
        assert [t for t, _ in batches] == [4, 8, 12]
        assert [[p.seq for p in b] for _, b in batches] == [
            [0, 1, 2], [], [3]]

    def test_empty_stream(self):
        assert list(batches_by_boundary([], 5, COUNT)) == []

    def test_bad_slide(self):
        with pytest.raises(ValueError):
            list(batches_by_boundary(line_points([1]), 0, COUNT))

    def test_unsorted_times_rejected(self):
        pts = [line_points([1], times=[5.0])[0],
               line_points([2], start_seq=1, times=[1.0])[0]]
        with pytest.raises(ValueError, match="non-decreasing"):
            list(batches_by_boundary(pts, 4, TIME))

    def test_boundary_point_goes_to_next_batch(self):
        # a point exactly at position t belongs to the window ending at
        # t + slide, not the one ending at t (half-open intervals)
        pts = line_points([0, 0], times=[4.0, 5.0])
        batches = dict(batches_by_boundary(pts, 4, TIME))
        assert [p.seq for p in batches[4]] == []
        assert [p.seq for p in batches[8]] == [0, 1]
