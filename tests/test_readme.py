"""The README's code blocks must actually run.

Documentation that drifts from the API is worse than no documentation;
this extracts every ```python fenced block from README.md and executes
them in order in a shared namespace (later blocks may use earlier names).
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _blocks():
    return _FENCE.findall(README.read_text())


class TestReadme:
    def test_readme_has_python_blocks(self):
        assert len(_blocks()) >= 2

    def test_all_python_blocks_execute(self, capsys):
        namespace = {}
        # the streaming block references `points`/`detector` from block 1
        for i, block in enumerate(_blocks()):
            try:
                exec(compile(block, f"README block {i}", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - failure detail
                pytest.fail(f"README block {i} failed: {exc}\n{block}")
        # block 1 defined a result with real outputs
        assert "result" in namespace
        assert namespace["result"].boundaries > 0

    def test_architecture_tree_mentions_real_modules(self):
        text = README.read_text()
        import repro
        root = Path(repro.__file__).parent
        for mod in ("parser.py", "lsky.py", "ksky.py", "sop.py", "mcod.py",
                    "leap.py", "windows.py", "buffer.py", "synthetic.py",
                    "stock.py", "alerts.py", "cli.py", "dynamic.py"):
            assert mod in text, f"README tree missing {mod}"
            assert list(root.rglob(mod)), f"module {mod} missing on disk"

    def test_examples_table_matches_directory(self):
        text = README.read_text()
        examples = Path(__file__).resolve().parent.parent / "examples"
        for script in examples.glob("*.py"):
            assert f"examples/{script.name}" in text, \
                f"README examples table missing {script.name}"
