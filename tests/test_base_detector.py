"""Tests for the shared detector driver and work accounting."""

import pytest

from repro import (
    LEAPDetector,
    MCODDetector,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
)

from conftest import line_points


def group(kind="count"):
    return QueryGroup([
        OutlierQuery(r=1.0, k=2, window=WindowSpec(win=20, slide=10,
                                                   kind=kind)),
        OutlierQuery(r=3.0, k=3, window=WindowSpec(win=40, slide=20,
                                                   kind=kind)),
    ])


class TestPosition:
    def test_count_position_is_seq(self):
        det = SOPDetector(group())
        p = line_points([5.0], times=[0.25])[0]
        assert det.position(p) == 0.0

    def test_time_position_is_time(self):
        det = SOPDetector(group(kind="time"))
        p = line_points([5.0], times=[0.25])[0]
        assert det.position(p) == 0.25


class TestRunDriver:
    def test_boundaries_follow_swift_slide(self):
        det = SOPDetector(group())
        res = det.run(line_points([0.0] * 60))
        # swift slide = gcd(10, 20) = 10; stream of 60 -> boundaries 10..60
        assert res.boundaries == 6

    def test_outputs_only_on_due_boundaries(self):
        res = SOPDetector(group()).run(line_points([0.0] * 60))
        assert (0, 10) in res.outputs
        assert (1, 10) not in res.outputs
        assert (1, 20) in res.outputs

    def test_memory_sampled_each_boundary(self):
        det = MCODDetector(group())
        res = det.run(line_points([0.0] * 60))
        assert res.memory.peak_units >= res.memory.last_units >= 0


class TestWorkStats:
    @pytest.mark.parametrize("cls", [SOPDetector, MCODDetector,
                                     LEAPDetector, NaiveDetector])
    def test_distance_rows_counted(self, cls, small_stream, small_group):
        res = cls(small_group).run(small_stream)
        assert res.work["distance_rows"] > 0

    def test_naive_counts_quadratic_work(self):
        g = QueryGroup([OutlierQuery(r=1.0, k=1,
                                     window=WindowSpec(win=20, slide=20))])
        det = NaiveDetector(g)
        det.run(line_points([0.0] * 40))
        # two boundaries, each a 20-point population -> 2 * 400
        assert det.work_stats()["distance_rows"] == 800

    def test_sop_does_less_distance_work_than_leap(self, small_stream,
                                                   small_group):
        sop = SOPDetector(small_group).run(small_stream)
        leap = LEAPDetector(small_group).run(small_stream)
        assert sop.work["distance_rows"] < leap.work["distance_rows"]

    def test_multiattr_sums_partitions(self, small_stream):
        from repro import MultiAttributeSOP
        queries = [
            OutlierQuery(r=300.0, k=3, window=WindowSpec(win=100, slide=50),
                         attributes=(0,)),
            OutlierQuery(r=300.0, k=3, window=WindowSpec(win=100, slide=50),
                         attributes=(1,)),
        ]
        det = MultiAttributeSOP(queries)
        det.run(small_stream)
        assert det.work_stats()["distance_rows"] > 0
