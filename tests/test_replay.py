"""Unit tests for stream/result persistence (CSV / JSONL round-trips)."""

import pytest

from repro import (
    StockTradeSimulator,
    load_points_csv,
    load_results_jsonl,
    load_trades_csv,
    make_synthetic_points,
    save_points_csv,
    save_results_jsonl,
    save_trades_csv,
)

from conftest import line_points


class TestPointsCsv:
    def test_roundtrip_exact(self, tmp_path):
        pts = make_synthetic_points(200, dim=3, seed=4)
        path = tmp_path / "pts.csv"
        assert save_points_csv(pts, path) == 200
        assert load_points_csv(path) == pts

    def test_roundtrip_preserves_times(self, tmp_path):
        pts = line_points([1.5, 2.5], times=[0.25, 7.75])
        path = tmp_path / "pts.csv"
        save_points_csv(pts, path)
        loaded = load_points_csv(path)
        assert [p.time for p in loaded] == [0.25, 7.75]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_points_csv([], tmp_path / "x.csv")

    def test_mixed_dims_rejected(self, tmp_path):
        from repro import Point
        pts = [Point(seq=0, values=(1.0,)), Point(seq=1, values=(1.0, 2.0))]
        with pytest.raises(ValueError, match="dim"):
            save_points_csv(pts, tmp_path / "x.csv")

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="header"):
            load_points_csv(path)

    def test_no_attribute_columns_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("seq,time\n0,0.0\n")
        with pytest.raises(ValueError, match="attribute"):
            load_points_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("seq,time,v0\n0,0.0,1.0\n1,1.0\n")
        with pytest.raises(ValueError, match="columns"):
            load_points_csv(path)

    def test_non_increasing_seq_rejected(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("seq,time,v0\n5,0.0,1.0\n5,1.0,2.0\n")
        with pytest.raises(ValueError, match="strictly increase"):
            load_points_csv(path)


class TestTradesCsv:
    def test_roundtrip(self, tmp_path):
        recs = list(StockTradeSimulator(n_trades=150, seed=2).records())
        path = tmp_path / "trades.csv"
        assert save_trades_csv(recs, path) == 150
        assert list(load_trades_csv(path)) == recs

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            save_trades_csv([], tmp_path / "t.csv")

    def test_wrong_header_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("nope\n")
        with pytest.raises(ValueError, match="header"):
            load_trades_csv(path)


class TestResultsJsonl:
    def test_roundtrip(self, tmp_path):
        outputs = {
            (0, 10): frozenset({3, 1}),
            (1, 10): frozenset(),
            (0, 20): frozenset({9}),
        }
        path = tmp_path / "res.jsonl"
        assert save_results_jsonl(outputs, path) == 3
        assert load_results_jsonl(path) == outputs

    def test_detector_outputs_roundtrip(self, tmp_path, small_stream,
                                        small_group):
        from repro import SOPDetector, compare_outputs
        res = SOPDetector(small_group).run(small_stream)
        path = tmp_path / "res.jsonl"
        save_results_jsonl(res.outputs, path)
        assert not compare_outputs(res.outputs, load_results_jsonl(path))

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "res.jsonl"
        path.write_text('{"query": 0}\n')
        with pytest.raises(ValueError, match="malformed"):
            load_results_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "res.jsonl"
        path.write_text('\n{"query": 0, "boundary": 5, "outliers": [1]}\n\n')
        assert load_results_jsonl(path) == {(0, 5): frozenset({1})}
