"""Direct tests of the paper's three lemmas and section-4 properties.

These complement the equivalence suite by exercising each claim in the
specific scenario the paper uses to argue it.
"""


from repro import (
    KSkyRunner,
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowBuffer,
    WindowSpec,
    compare_outputs,
    euclidean,
    parse_workload,
)

from conftest import line_points


def q(r, k, win, slide):
    return OutlierQuery(r=float(r), k=k,
                        window=WindowSpec(win=win, slide=slide))


class TestLemma1Necessity:
    """Appendix A's necessity argument: dropping a non-kNN skyband point
    breaks a *future* window's verdict."""

    def test_non_knn_skyband_point_needed_later(self):
        # Example 1/2's scenario, detector-level: p7 is outside kNN(p) in
        # W_c but becomes the decisive 3rd neighbor in W_{c+1}.  A correct
        # detector must keep it; we assert the W_{c+1} verdict both ways.
        distances = [2, 3, 2, 1, 1, 4, 3] + [5, 6, 7, 5]
        # evaluated point p sits at the origin and arrives last in W_c
        pts = line_points(distances[:7] + [0.0] + distances[7:])
        # p = seq 7 (value 0); q3 has r=3, k=3
        group = QueryGroup([q(3, 3, 8, 4)])
        res = SOPDetector(group).run(pts)
        # W at t=8 covers seqs 0..7: p has neighbors within 3 at seqs
        # 0,2,3,4,6 -> inlier
        assert 7 not in res.outputs[(0, 8)]
        # W at t=12 covers seqs 4..11: neighbors of p within 3 are seqs
        # 4 (d=1) and 6 (d=3) only -> fewer than 3 -> outlier
        assert 7 in res.outputs[(0, 12)]


class TestLemma2Optimality:
    """K-SKY examines no point that a correct skyband can avoid."""

    def test_single_query_scan_stops_at_k_dominated_rmin_point(self):
        # 20 points all at distance 0.5 <= r_min: the scan must stop after
        # k+1 examinations (k skyband points + the first dominated one is
        # never reached -- resolution fires at the k-th insert)
        plan = parse_workload(QueryGroup([q(1.0, 3, 20, 10)]))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([0.5] * 20))
        result = KSkyRunner(plan).run_new_point((0.0,), -1, buf)
        assert result.examined == 3
        assert result.terminated_early

    def test_least_examination_never_rescans_window(self):
        plan = parse_workload(QueryGroup([q(1.0, 2, 40, 10)]))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([5.0] * 40))
        runner = KSkyRunner(plan)
        first = runner.run_new_point((0.0,), -1, buf)
        assert first.examined == 40  # nothing within grid: full scan
        buf.extend(line_points([5.0] * 10, start_seq=40))
        buf.evict_before(10, by_time=False)
        old = first.lsky.unexpired_entries(10.0)
        second = runner.run_existing_point((0.0,), -1, buf, old, 30)
        # only the 10 new arrivals (plus 0 old entries) are examined
        assert second.examined == 10


class TestLemma3WindowDelimiting:
    """p is an outlier exactly for the queries whose window starts after
    the k-th youngest neighbor arrived."""

    def test_verdicts_split_by_window_size(self):
        # neighbors of p (at 0.0): seqs 2 and 5; probe p arrives at seq 11
        values = [9, 9, 0.1, 9, 9, 0.2, 9, 9, 9, 9, 9, 0.0]
        pts = line_points(values)
        group = QueryGroup([
            q(0.5, 2, 12, 4),  # window [0,12): both neighbors inside
            q(0.5, 2, 8, 4),   # window [4,12): only seq 5 inside
            q(0.5, 2, 4, 4),   # window [8,12): no neighbors
        ])
        res = SOPDetector(group).run(pts)
        assert 11 not in res.outputs[(0, 12)]
        assert 11 in res.outputs[(1, 12)]
        assert 11 in res.outputs[(2, 12)]

    def test_outlier_for_largest_window_implies_outlier_for_all(self):
        """Sec. 4.1: if q_max marks p as outlier, every smaller window
        does too (its neighbor set is a subset)."""
        import numpy as np
        rng = np.random.default_rng(5)
        pts = line_points(list(rng.uniform(0, 4, size=200)))
        group = QueryGroup([q(0.3, 3, 50, 25), q(0.3, 3, 100, 25),
                            q(0.3, 3, 150, 25)])
        res = SOPDetector(group).run(pts)
        for t in range(25, 201, 25):
            big = res.outputs.get((2, t), frozenset())
            for qi, win in ((0, 50), (1, 100)):
                small = res.outputs.get((qi, t), frozenset())
                ws = max(0, t - win)
                in_window = {s for s in big if s >= ws}
                assert in_window <= small


class TestSwiftQueryProperty:
    """Sec. 4.2: at any boundary of q_i, the swift query's window equals
    q_i's window, so their outlier sets coincide."""

    def test_swift_answers_equal_member_answers(self):
        import numpy as np
        rng = np.random.default_rng(8)
        pts = line_points(list(rng.uniform(0, 3, size=240)))
        member = q(0.4, 2, 60, 40)
        swift_only = q(0.4, 2, 60, 20)  # gcd(40, 60)-style finer slide
        res_member = SOPDetector(QueryGroup([member])).run(pts)
        res_swift = SOPDetector(QueryGroup([swift_only])).run(pts)
        for t in range(40, 241, 40):
            assert res_member.outputs[(0, t)] == res_swift.outputs[(0, t)]


class TestSafeForAll:
    """Sec. 4.1/4.2: a safe inlier of the swift query is safe for every
    member query, for its entire remaining lifetime."""

    def test_safe_point_inlier_for_every_query_and_window(self):
        # p at seq 0 with many succeeding close neighbors
        values = [0.0] + [0.05 * i for i in range(1, 12)] + [9.0] * 28
        pts = line_points(values)
        group = QueryGroup([
            q(1.0, 2, 10, 5), q(1.0, 4, 20, 5), q(2.0, 6, 40, 10),
        ])
        det = SOPDetector(group)
        res = det.run(pts)
        for (qi, t), seqs in res.outputs.items():
            assert 0 not in seqs, f"safe point reported by q{qi} at t={t}"

    def test_safety_shared_across_detectors(self, small_stream, small_group):
        """Safety is an optimization, never a semantic: outputs equal the
        oracle regardless (re-asserted here for the safe-heavy stream)."""
        expected = NaiveDetector(small_group).run(small_stream)
        actual = SOPDetector(small_group).run(small_stream)
        assert not compare_outputs(expected.outputs, actual.outputs)
