"""Unit tests for sliding-window semantics and swift-schedule arithmetic."""

import pytest

from repro import COUNT, TIME, SwiftSchedule, WindowSpec, gcd_all


class TestGcdAll:
    def test_basic(self):
        assert gcd_all([12, 18, 24]) == 6

    def test_single(self):
        assert gcd_all([7]) == 7

    def test_coprime(self):
        assert gcd_all([3, 5]) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gcd_all([])


class TestWindowSpecValidation:
    def test_valid(self):
        spec = WindowSpec(win=100, slide=10)
        assert spec.kind == COUNT

    def test_bad_kind(self):
        with pytest.raises(ValueError, match="window kind"):
            WindowSpec(win=10, slide=5, kind="session")

    @pytest.mark.parametrize("win,slide", [(0, 1), (-5, 1), (10, 0), (10, -1)])
    def test_positive_required(self, win, slide):
        with pytest.raises(ValueError):
            WindowSpec(win=win, slide=slide)

    def test_slide_larger_than_win_rejected(self):
        with pytest.raises(ValueError, match="slide .* larger than win"):
            WindowSpec(win=10, slide=20)

    @pytest.mark.parametrize("win,slide", [(10.0, 5), (10, 5.0), (True, 1)])
    def test_int_required(self, win, slide):
        with pytest.raises(TypeError):
            WindowSpec(win=win, slide=slide)


class TestWindowSchedule:
    def test_due_at_multiples_only(self):
        spec = WindowSpec(win=100, slide=25)
        assert spec.due_at(25) and spec.due_at(50) and spec.due_at(100)
        assert not spec.due_at(0)  # no output before the first slide
        assert not spec.due_at(30)

    def test_interval_full_window(self):
        spec = WindowSpec(win=100, slide=25)
        assert spec.interval_at(150) == (50, 150)

    def test_interval_partial_warmup(self):
        spec = WindowSpec(win=100, slide=25)
        assert spec.interval_at(25) == (0, 25)

    def test_boundaries(self):
        spec = WindowSpec(win=100, slide=30)
        assert list(spec.boundaries(100)) == [30, 60, 90]

    def test_contains_half_open(self):
        spec = WindowSpec(win=10, slide=5)
        assert spec.contains(10, 20)      # start inclusive
        assert spec.contains(19, 20)
        assert not spec.contains(20, 20)  # end exclusive
        assert not spec.contains(9, 20)


class TestSwiftSchedule:
    def _specs(self):
        return [
            WindowSpec(win=100, slide=20),
            WindowSpec(win=300, slide=30),
            WindowSpec(win=200, slide=50),
        ]

    def test_win_is_max(self):
        assert SwiftSchedule(self._specs()).win == 300

    def test_slide_is_gcd(self):
        assert SwiftSchedule(self._specs()).slide == 10

    def test_kind_must_match(self):
        with pytest.raises(ValueError, match="share a kind"):
            SwiftSchedule([
                WindowSpec(win=10, slide=5, kind=COUNT),
                WindowSpec(win=10, slide=5, kind=TIME),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SwiftSchedule([])

    def test_due_members(self):
        sched = SwiftSchedule(self._specs())
        # at t=60: slides 20 and 30 divide, 50 does not
        assert sched.due_members(60) == [0, 1]
        assert sched.due_members(50) == [2]
        assert sched.due_members(10) == []

    def test_every_member_boundary_is_swift_boundary(self):
        sched = SwiftSchedule(self._specs())
        swift = set(sched.boundaries(600))
        for spec in self._specs():
            for t in spec.boundaries(600):
                assert t in swift

    def test_member_boundaries_include_idle_ticks(self):
        sched = SwiftSchedule([WindowSpec(win=100, slide=40),
                               WindowSpec(win=100, slide=60)])
        pairs = dict(sched.member_boundaries(120))
        assert sched.slide == 20
        assert pairs[20] == []          # swift tick, nothing due
        assert pairs[40] == [0]
        assert pairs[60] == [1]
        assert pairs[120] == [0, 1]

    def test_single_member(self):
        sched = SwiftSchedule([WindowSpec(win=50, slide=25)])
        assert sched.win == 50 and sched.slide == 25
