"""Unit tests for the brute-force oracle itself (verified by hand)."""


from repro import (
    NaiveDetector,
    OutlierQuery,
    QueryGroup,
    WindowSpec,
    brute_force_outliers,
    euclidean,
    manhattan,
)

from conftest import line_points


class TestBruteForce:
    def test_hand_computed_case(self):
        # values 0, 0.5, 3, 10; r=1: pairs (0,1) are mutual neighbors
        pts = line_points([0.0, 0.5, 3.0, 10.0])
        out = brute_force_outliers(pts, r=1.0, k=1, metric=euclidean)
        assert out == frozenset({2, 3})

    def test_k_larger_than_population(self):
        pts = line_points([0.0, 0.0])
        assert brute_force_outliers(pts, 1.0, 5, euclidean) == frozenset({0, 1})

    def test_self_not_counted_as_neighbor(self):
        pts = line_points([0.0])
        assert brute_force_outliers(pts, 1.0, 1, euclidean) == frozenset({0})

    def test_boundary_distance_is_neighbor(self):
        # Def. 1 uses dist <= r
        pts = line_points([0.0, 1.0])
        assert brute_force_outliers(pts, 1.0, 1, euclidean) == frozenset()

    def test_empty_population(self):
        assert brute_force_outliers([], 1.0, 1, euclidean) == frozenset()

    def test_respects_metric(self):
        from repro import Point
        pts = [Point(seq=0, values=(0.0, 0.0)), Point(seq=1, values=(1.0, 1.0))]
        # euclidean distance sqrt(2) > 1.3, manhattan 2 > 1.3
        assert brute_force_outliers(pts, 1.3, 1, manhattan) == \
            frozenset({0, 1})
        assert brute_force_outliers(pts, 1.5, 1, euclidean) == frozenset()


class TestNaiveDetector:
    def test_windows_and_boundaries(self):
        g = QueryGroup([OutlierQuery(r=1.0, k=1,
                                     window=WindowSpec(win=4, slide=2))])
        # seqs 0..7: values alternate near/far
        pts = line_points([0.0, 0.1, 9.0, 0.2, 0.3, 50.0, 0.4, 0.5])
        res = NaiveDetector(g).run(pts)
        # t=2 window [0,2): both close -> no outliers
        assert res.outputs[(0, 2)] == frozenset()
        # t=4 window [0,4): seq 2 at 9.0 is isolated
        assert res.outputs[(0, 4)] == frozenset({2})
        # t=6 window [2,6): 9.0 isolated, 50.0 isolated
        assert res.outputs[(0, 6)] == frozenset({2, 5})

    def test_memory_units_track_window(self):
        g = QueryGroup([OutlierQuery(r=1.0, k=1,
                                     window=WindowSpec(win=4, slide=2))])
        det = NaiveDetector(g)
        det.run(line_points([0.0] * 20))
        assert det.memory_units() <= 4

    def test_partial_warmup_window(self):
        g = QueryGroup([OutlierQuery(r=1.0, k=3,
                                     window=WindowSpec(win=100, slide=2))])
        pts = line_points([0.0, 0.1])
        res = NaiveDetector(g).run(pts)
        # only 2 points: neither can have 3 neighbors
        assert res.outputs[(0, 2)] == frozenset({0, 1})
