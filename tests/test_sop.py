"""SOP detector behaviour: end-to-end runs, sharing, safe-inlier pruning."""

import pytest

from repro import (
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    compare_outputs,
)

from conftest import assert_equivalent, line_points


def group_of(*params, kind="count"):
    return QueryGroup([
        OutlierQuery(r=float(r), k=k,
                     window=WindowSpec(win=w, slide=s, kind=kind))
        for r, k, w, s in params
    ])


class TestEndToEnd:
    def test_single_query_equivalence(self, small_stream):
        g = group_of((400, 5, 200, 50))
        assert_equivalent(g, small_stream, SOPDetector(g))

    def test_multi_query_equivalence(self, small_stream, small_group):
        assert_equivalent(small_group, small_stream, SOPDetector(small_group))

    def test_isolated_point_is_outlier_everywhere(self):
        # one far point among a dense cluster
        values = [0.0] * 30 + [100.0] + [0.0] * 9
        g = group_of((1, 3, 40, 10), (50, 3, 20, 10))
        det = SOPDetector(g)
        res = det.run(line_points(values))
        assert 30 in res.outputs[(0, 40)]
        assert 30 in res.outputs[(1, 40)]

    def test_dense_stream_has_no_outliers(self):
        g = group_of((1, 3, 40, 20))
        res = SOPDetector(g).run(line_points([0.0] * 100))
        assert all(not v for v in res.outputs.values())

    def test_outputs_only_for_due_queries(self):
        g = group_of((1, 2, 40, 20), (1, 2, 60, 30))
        res = SOPDetector(g).run(line_points([0.0] * 120))
        # query 0 due at multiples of 20, query 1 at multiples of 30
        assert (0, 20) in res.outputs and (1, 20) not in res.outputs
        assert (1, 30) in res.outputs and (0, 30) not in res.outputs

    def test_status_flips_when_preceding_neighbors_expire(self):
        # seq 6 has two preceding neighbors (seqs 0, 1); once they expire
        # it becomes an outlier -- the per-window re-evaluation of Def. 3
        values = [0.0, 0.1] + [50.0] * 4 + [0.2] + [50.0] * 13
        g = group_of((1, 2, 10, 5))
        res = SOPDetector(g).run(line_points(values))
        assert 6 not in res.outputs[(0, 10)]  # window [0,10): has 0 and 1
        assert 6 in res.outputs[(0, 15)]      # window [5,15): neighbors gone


class TestTimeBasedWindows:
    def test_equivalence_on_irregular_times(self):
        times = [0.5, 1.0, 1.1, 4.0, 4.2, 9.5, 9.6, 9.9, 15.0, 18.0,
                 18.1, 18.2, 25.0, 26.0, 27.5, 31.0, 31.2, 33.3, 40.0, 41.5]
        values = [0, 1, 0, 9, 9, 0, 1, 2, 5, 0,
                  0, 1, 7, 7, 7, 0, 0, 1, 3, 3]
        pts = line_points(values, times=times)
        g = group_of((1.5, 2, 10, 5), (4.0, 3, 20, 10), kind="time")
        assert_equivalent(g, pts, SOPDetector(g))


class TestSafeInlierPruning:
    def test_safe_points_drop_evidence(self):
        g = group_of((1, 2, 40, 10))
        det = SOPDetector(g)
        det.run(line_points([0.0] * 100))
        assert det.stats["fully_safe_marked"] > 0
        # fully safe points hold no skyband: memory stays tiny
        assert det.memory_units() < 40

    def test_pruning_reduces_ksky_runs(self):
        pts = line_points([0.0] * 200)
        g = group_of((1, 2, 50, 10))
        with_safe = SOPDetector(g)
        with_safe.run(pts)
        without = SOPDetector(g, use_safe_inliers=False)
        without.run(pts)
        assert with_safe.stats["ksky_runs"] < without.stats["ksky_runs"]

    def test_disabled_safe_inliers_same_output(self, small_stream,
                                               small_group):
        a = SOPDetector(small_group).run(small_stream)
        b = SOPDetector(small_group, use_safe_inliers=False).run(small_stream)
        assert not compare_outputs(a.outputs, b.outputs)


class TestAblations:
    @pytest.mark.parametrize("kwargs", [
        {"eager": False},
        {"use_least_examination": False},
        {"eager": False, "use_safe_inliers": False,
         "use_least_examination": False},
    ])
    def test_flags_preserve_output(self, small_stream, small_group, kwargs):
        base = SOPDetector(small_group).run(small_stream)
        other = SOPDetector(small_group, **kwargs).run(small_stream)
        assert not compare_outputs(base.outputs, other.outputs)

    def test_least_examination_examines_fewer_points(self, small_stream,
                                                     small_group):
        fast = SOPDetector(small_group)
        fast.run(small_stream)
        slow = SOPDetector(small_group, use_least_examination=False)
        slow.run(small_stream)
        assert fast.stats["points_examined"] < slow.stats["points_examined"]

    def test_lazy_mode_refreshes_less(self):
        # slides 40 and 60 -> swift slide 20 with idle boundaries; lazy mode
        # skips the idle refreshes
        g = group_of((1, 2, 100, 40), (1, 2, 100, 60))
        pts = line_points([0.0, 5.0] * 120)
        eager = SOPDetector(g, use_safe_inliers=False)
        eager.run(pts)
        lazy = SOPDetector(g, eager=False, use_safe_inliers=False)
        lazy.run(pts)
        assert lazy.stats["ksky_runs"] < eager.stats["ksky_runs"]


class TestStateManagement:
    def test_states_evicted_with_window(self):
        g = group_of((1, 2, 40, 20))
        det = SOPDetector(g)
        det.run(line_points([0.0] * 200))
        assert det.tracked_points() <= 40

    def test_state_of_exposes_safety(self):
        g = group_of((1, 2, 40, 20))
        det = SOPDetector(g)
        det.run(line_points([0.0] * 60))
        st = det.state_of(55)
        assert st is not None and st.fully_safe

    def test_memory_peak_recorded(self, small_stream, small_group):
        res = SOPDetector(small_group).run(small_stream)
        assert res.peak_memory_units > 0
        assert res.peak_memory_kb > 0
