"""End-to-end tests of the command-line interface."""

import pytest

from repro.cli import main
from repro import load_points_csv, load_results_jsonl, load_workload


@pytest.fixture
def stream_csv(tmp_path):
    path = tmp_path / "stream.csv"
    assert main(["generate", "synthetic", "--n", "600", "--seed", "3",
                 "--out", str(path)]) == 0
    return path


@pytest.fixture
def workload_json(tmp_path):
    path = tmp_path / "wl.json"
    assert main(["workload", "--spec", "C", "--n", "4", "--seed", "9",
                 "--out", str(path)]) == 0
    return path


class TestGenerate:
    def test_synthetic(self, stream_csv):
        pts = load_points_csv(stream_csv)
        assert len(pts) == 600 and pts[0].dim == 2

    def test_synthetic_options(self, tmp_path):
        path = tmp_path / "s.csv"
        main(["generate", "synthetic", "--n", "50", "--dim", "4",
              "--outlier-rate", "0.1", "--out", str(path)])
        assert load_points_csv(path)[0].dim == 4

    def test_stock_with_trace(self, tmp_path):
        pts_path = tmp_path / "pts.csv"
        trades_path = tmp_path / "trades.csv"
        assert main(["generate", "stock", "--n", "120",
                     "--out", str(pts_path),
                     "--trades-out", str(trades_path)]) == 0
        from repro import load_trades_csv
        assert len(load_points_csv(pts_path)) == 120
        assert len(load_trades_csv(trades_path)) == 120

    def test_stock_attribute_selection(self, tmp_path):
        path = tmp_path / "pts.csv"
        main(["generate", "stock", "--n", "60", "--attributes", "price",
              "--out", str(path)])
        assert load_points_csv(path)[0].dim == 1


class TestWorkloadAndExplain:
    def test_workload_file(self, workload_json):
        queries = load_workload(workload_json)
        assert len(queries) == 4

    def test_explain_prints_plan(self, workload_json, capsys):
        assert main(["explain", "--workload", str(workload_json)]) == 0
        out = capsys.readouterr().out
        assert "swift query" in out and "k sub-groups" in out

    def test_explain_multiattr(self, tmp_path, capsys):
        import json
        path = tmp_path / "wl.json"
        path.write_text(json.dumps({"queries": [
            {"r": 10, "k": 2, "win": 50, "slide": 10, "attributes": [0]},
            {"r": 10, "k": 2, "win": 50, "slide": 10, "attributes": [1]},
        ]}))
        assert main(["explain", "--workload", str(path)]) == 0
        assert "divide & conquer" in capsys.readouterr().out


class TestDetect:
    def test_detect_and_archive(self, tmp_path, stream_csv, workload_json):
        out = tmp_path / "res.jsonl"
        assert main(["detect", "--stream", str(stream_csv),
                     "--workload", str(workload_json),
                     "--algorithm", "sop", "--out", str(out)]) == 0
        results = load_results_jsonl(out)
        assert results

    def test_detectors_agree_via_cli(self, tmp_path, stream_csv,
                                     workload_json):
        a = tmp_path / "sop.jsonl"
        b = tmp_path / "naive.jsonl"
        main(["detect", "--stream", str(stream_csv), "--workload",
              str(workload_json), "--algorithm", "sop", "--out", str(a)])
        main(["detect", "--stream", str(stream_csv), "--workload",
              str(workload_json), "--algorithm", "naive", "--out", str(b)])
        assert main(["compare", "--a", str(a), "--b", str(b)]) == 0

    def test_compare_detects_differences(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text('{"query": 0, "boundary": 5, "outliers": [1]}\n')
        b.write_text('{"query": 0, "boundary": 5, "outliers": [2]}\n')
        assert main(["compare", "--a", str(a), "--b", str(b)]) == 1
        assert "DIFFER" in capsys.readouterr().out

    def test_detect_until(self, tmp_path, stream_csv, workload_json):
        out = tmp_path / "res.jsonl"
        main(["detect", "--stream", str(stream_csv), "--workload",
              str(workload_json), "--until", "200", "--out", str(out)])
        results = load_results_jsonl(out)
        assert max(t for _, t in results) <= 200

    def test_detect_prints_work_stats(self, tmp_path, stream_csv,
                                      workload_json, capsys):
        assert main(["detect", "--stream", str(stream_csv),
                     "--workload", str(workload_json)]) == 0
        out = capsys.readouterr().out
        assert "work:" in out and "distance_rows=" in out

    def test_detect_tuning_flags_keep_outputs_identical(self, tmp_path,
                                                        stream_csv,
                                                        workload_json):
        """--no-batched-refresh / --batch-min-rows / --lazy change the
        execution strategy, never the answers."""
        base = tmp_path / "base.jsonl"
        main(["detect", "--stream", str(stream_csv), "--workload",
              str(workload_json), "--out", str(base)])
        for flags in (["--no-batched-refresh"],
                      ["--batch-min-rows", "100"],
                      ["--lazy"]):
            out = tmp_path / "variant.jsonl"
            assert main(["detect", "--stream", str(stream_csv),
                         "--workload", str(workload_json),
                         "--out", str(out)] + flags) == 0
            assert main(["compare", "--a", str(base), "--b", str(out)]) == 0

    def test_tuning_flags_noted_for_non_sop(self, stream_csv, workload_json,
                                            capsys):
        assert main(["detect", "--stream", str(stream_csv),
                     "--workload", str(workload_json),
                     "--algorithm", "mcod", "--lazy"]) == 0
        assert "ignored by mcod" in capsys.readouterr().out

    def test_detect_multiattr_workload(self, tmp_path, stream_csv):
        import json
        wl = tmp_path / "wl.json"
        wl.write_text(json.dumps({"queries": [
            {"r": 400, "k": 3, "win": 100, "slide": 50, "attributes": [0]},
            {"r": 400, "k": 3, "win": 100, "slide": 50, "attributes": [1]},
        ]}))
        out = tmp_path / "res.jsonl"
        assert main(["detect", "--stream", str(stream_csv),
                     "--workload", str(wl), "--out", str(out)]) == 0
        assert load_results_jsonl(out)


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_algorithm_exits(self, stream_csv, workload_json):
        with pytest.raises(SystemExit):
            main(["detect", "--stream", str(stream_csv), "--workload",
                  str(workload_json), "--algorithm", "magic"])
