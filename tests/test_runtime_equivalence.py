"""Golden equivalence: N-shard runs answer exactly like 1-shard runs.

The partitioner's border replication makes per-shard neighbor counts
locally exact and the merger's ownership filter removes the replica
double-counting, so a sharded run must produce the *identical* outlier
set for every (query, boundary) -- not merely similar.  This suite pins
that across the full Table 1 workload grid (classes A..G), both window
kinds, a shard sweep, and randomized streams/workloads via hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    OutlierQuery,
    Point,
    QueryGroup,
    Runtime,
    SOPDetector,
    StreamExecutor,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import ScaledRanges, build_workload

#: compact Table 2 ranges -- same shape (slide/win ratio, k density),
#: laptop-test scale
TEST_RANGES = ScaledRanges(
    r=(200.0, 2000.0),
    k=(3, 12),
    win=(80, 320),
    slide=(20, 80),
    slide_quantum=20,
    fixed_r=700.0,
    fixed_k=5,
    fixed_win=160,
    fixed_slide=40,
)


def single_shard_outputs(group, points):
    return StreamExecutor(SOPDetector(group)).run(points).outputs


def assert_shard_equivalent(group, points, shards, backend="serial"):
    queries = list(group.queries)
    expected = single_shard_outputs(group, points)
    actual = Runtime(QueryGroup(queries), shards=shards,
                     backend=backend).run(points).outputs
    diffs = compare_outputs(expected, actual)
    assert not diffs, f"{shards} shards diverged:\n" + "\n".join(diffs[:10])


# --------------------------------------------------------- Table 1 grid


@pytest.mark.parametrize("spec", list("ABCDEFG"))
@pytest.mark.parametrize("shards", [2, 4])
def test_table1_workload_equivalence(spec, shards):
    group = build_workload(spec, 5, seed=ord(spec), ranges=TEST_RANGES)
    points = make_synthetic_points(1000, dim=2, outlier_rate=0.04,
                                   seed=100 + ord(spec))
    assert_shard_equivalent(group, points, shards)


def test_many_shards_beyond_data_spread():
    """More shards than distinct value cells: some shards stay empty."""
    group = build_workload("G", 4, seed=2, ranges=TEST_RANGES)
    points = make_synthetic_points(700, dim=2, seed=21)
    assert_shard_equivalent(group, points, 8)


def test_process_backend_equivalence():
    group = build_workload("C", 4, seed=5, ranges=TEST_RANGES)
    points = make_synthetic_points(800, dim=2, seed=23)
    try:
        assert_shard_equivalent(group, points, 4, backend="process")
    except OSError as exc:  # pragma: no cover - restricted sandboxes
        pytest.skip(f"process pool unavailable: {exc}")


# --------------------------------------------------------- TIME windows


@pytest.mark.parametrize("shards", [2, 3])
def test_time_window_equivalence(shards):
    kind_ranges = ScaledRanges(
        r=(200.0, 2000.0), k=(3, 10), win=(60, 240), slide=(20, 60),
        slide_quantum=20, fixed_r=700.0, fixed_k=4,
        fixed_win=120, fixed_slide=20, kind="time",
    )
    group = build_workload("G", 4, seed=9, ranges=kind_ranges)
    base = make_synthetic_points(900, dim=2, outlier_rate=0.05, seed=31)
    # irregular arrival times (bursts + gaps), decoupled from seq:
    # deterministic per-point gaps accumulated into a monotone clock
    points, clock = [], 0.0
    for p in base:
        clock += 0.2 + ((p.seq * 37) % 7) * 0.9
        points.append(Point(seq=p.seq, values=p.values, time=clock))
    assert_shard_equivalent(group, points, shards)


# ---------------------------------------------------- hypothesis property


values_1d = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
              allow_infinity=False),
    min_size=12, max_size=100,
)

query_params = st.tuples(
    st.floats(min_value=0.1, max_value=8.0),   # r
    st.integers(min_value=1, max_value=5),     # k
    st.integers(min_value=2, max_value=10),    # win/4
    st.integers(min_value=1, max_value=4),     # slide/4
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d,
       params=st.lists(query_params, min_size=1, max_size=4),
       shards=st.integers(min_value=2, max_value=4))
def test_property_sharded_equals_single(values, params, shards):
    queries = []
    for r, k, win4, slide4 in params:
        win, slide = win4 * 4, slide4 * 4
        queries.append(OutlierQuery(
            r=round(float(r), 3), k=k,
            window=WindowSpec(win=win, slide=min(slide, win)),
        ))
    points = [Point(seq=i, values=(float(v),))
              for i, v in enumerate(values)]
    expected = single_shard_outputs(QueryGroup(queries), points)
    actual = Runtime(QueryGroup(list(queries)),
                     shards=shards).run(points).outputs
    diffs = compare_outputs(expected, actual)
    assert not diffs, "\n".join(diffs[:10])
