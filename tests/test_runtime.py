"""Unit tests for the sharded runtime layer.

The load-bearing property is the 1-shard oracle: a ``Runtime`` with one
shard and the serial backend must be *indistinguishable* from the classic
``StreamExecutor`` path -- identical outputs, deterministic work counters,
memory accounting, and checkpoint bytes.  Everything sharded is then
tested against that oracle (full N-shard equivalence lives in
``test_runtime_equivalence.py``).
"""

from __future__ import annotations

import json

import pytest

from repro import (
    CollectingSink,
    DetectorConfig,
    Merger,
    OutlierQuery,
    Point,
    ProcessPoolBackend,
    QueryGroup,
    Runtime,
    SOPDetector,
    SerialBackend,
    ShardedCheckpointSubscriber,
    StreamExecutor,
    StreamPartitioner,
    WindowSpec,
    batches_by_boundary,
    compare_outputs,
    detect_outliers,
    load_checkpoint,
    load_sharded_checkpoint,
    make_backend,
    make_synthetic_points,
    merge_work,
    run_with_alerts,
    save_checkpoint,
    save_sharded_checkpoint,
    stream_end_boundary,
)
from repro.metrics.meters import CpuMeter, MemoryMeter

from conftest import line_points


def small_workload():
    return QueryGroup([
        OutlierQuery(r=300, k=4, window=WindowSpec(win=200, slide=50)),
        OutlierQuery(r=700, k=9, window=WindowSpec(win=400, slide=100)),
        OutlierQuery(r=1500, k=6, window=WindowSpec(win=300, slide=75)),
    ])


def deterministic_work(work):
    """Work counters minus wall-clock timings (non-deterministic)."""
    return {k: v for k, v in work.items() if not k.endswith("_ns")}


# ---------------------------------------------------------------- partitioner


class TestStreamPartitioner:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamPartitioner(0, 1.0)
        with pytest.raises(ValueError):
            StreamPartitioner(2, -1.0)
        with pytest.raises(ValueError):
            StreamPartitioner(2, 1.0, axis=-1)
        with pytest.raises(ValueError):
            StreamPartitioner(2, 1.0, bounds=(5.0, 1.0))

    def test_bounds_learned_once(self):
        part = StreamPartitioner(4, 0.5)
        assert not part.initialized and part.bounds is None
        part.ensure_bounds(line_points([0.0, 4.0, 8.0]))
        assert part.initialized
        assert part.bounds == (0.0, 8.0)
        # idempotent: later data never re-partitions
        part.ensure_bounds(line_points([100.0]))
        assert part.bounds == (0.0, 8.0)

    def test_shard_of_is_monotone_and_clamped(self):
        part = StreamPartitioner(4, 0.0, bounds=(0.0, 8.0))
        shards = [part.shard_of((v,)) for v in
                  (-5.0, 0.0, 1.9, 2.0, 3.9, 4.0, 6.0, 7.9, 8.0, 99.0)]
        assert shards == sorted(shards)
        assert shards[0] == 0 and shards[-1] == 3
        assert part.shard_of((2.0,)) == 1
        assert part.shard_of((6.0,)) == 3

    def test_replica_span_covers_radius(self):
        part = StreamPartitioner(4, 0.5, bounds=(0.0, 8.0))
        # 2.2 is within 0.5 of the shard-0/shard-1 border at 2.0
        assert part.replica_span((2.2,)) == (0, 1)
        # 3.0 is interior to shard 1
        assert part.replica_span((3.0,)) == (1, 1)

    def test_split_owners_and_replicas(self):
        part = StreamPartitioner(2, 0.5, bounds=(0.0, 4.0))
        pts = line_points([0.5, 1.8, 2.5, 3.9])
        shard_batches, owners = part.split(pts)
        assert owners == {0: 0, 1: 0, 2: 1, 3: 1}
        # 1.8 is strictly within 0.5 of the border at 2.0 -> both shards;
        # 2.5 spans down to exactly 2.0, which is already shard 1 territory
        # (any shard-0-owned neighbor is strictly below 2.0, so strictly
        # farther than the radius -- no replication needed)
        assert [p.seq for p in shard_batches[0]] == [0, 1]
        assert [p.seq for p in shard_batches[1]] == [1, 2, 3]

    def test_every_neighbor_within_radius_lands_on_owner_shard(self):
        part = StreamPartitioner(5, 1.0, bounds=(0.0, 10.0))
        pts = line_points([i * 0.13 for i in range(77)])
        shard_batches, owners = part.split(pts)
        holders = {p.seq: {s for s in range(5)
                           if p in shard_batches[s]} for p in pts}
        for p in pts:
            for q in pts:
                if abs(p.values[0] - q.values[0]) <= 1.0:
                    assert owners[p.seq] in holders[q.seq], (p.seq, q.seq)

    def test_empty_batch_and_degenerate_bounds(self):
        part = StreamPartitioner(3, 1.0)
        batches, owners = part.split([])
        assert batches == [[], [], []] and owners == {}
        # all values equal: width 0, everything owned by shard 0
        part.ensure_bounds(line_points([5.0, 5.0, 5.0]))
        shard_batches, owners = part.split(line_points([5.0, 5.0]))
        assert [p.seq for p in shard_batches[0]] == [0, 1]
        assert shard_batches[1] == [] and shard_batches[2] == []
        assert set(owners.values()) == {0}

    def test_axis_out_of_range_is_loud(self):
        part = StreamPartitioner(2, 0.5, bounds=(0.0, 4.0), axis=3)
        with pytest.raises(ValueError, match="axis 3 out of range"):
            part.split(line_points([1.0]))

    def test_split_before_bounds_is_loud(self):
        part = StreamPartitioner(2, 0.5)
        with pytest.raises(RuntimeError, match="no bounds"):
            part.split(line_points([1.0]))


# --------------------------------------------------------------------- merger


class TestMerger:
    def test_replica_verdicts_are_dropped(self):
        merger = Merger({10: 0, 11: 1})
        merged = merger.merge_boundary([
            {0: frozenset({10, 11})},   # shard 0 also reports replica 11
            {0: frozenset({11})},
        ])
        assert merged == {0: frozenset({10, 11})}

    def test_empty_shard_keeps_due_query_keys(self):
        merger = Merger({})
        merged = merger.merge_boundary([
            {0: frozenset(), 1: frozenset()},
            {0: frozenset({5})},
        ])
        assert merged == {0: frozenset({5}), 1: frozenset()}

    def test_merge_results_single_shard_is_identity(self):
        group = small_workload()
        points = make_synthetic_points(600, dim=2, seed=5)
        result = StreamExecutor(SOPDetector(group)).run(points)
        merged = Merger({}).merge_results([result])
        assert merged.outputs == result.outputs
        assert merged.work == result.work
        assert merged.boundaries == result.boundaries
        assert merged.memory.peak_units == result.memory.peak_units

    def test_merge_results_empty_is_loud(self):
        with pytest.raises(ValueError):
            Merger({}).merge_results([])


# ------------------------------------------------------------- meter merging


class TestMeterMerges:
    def test_cpu_merge_sums_boundary_aligned_samples(self):
        a, b = CpuMeter(), CpuMeter()
        a.samples_ns.extend([10, 20, 30])
        b.samples_ns.extend([1, 2])
        merged = CpuMeter.merge([a, b])
        assert merged.samples_ns == [11, 22, 30]

    def test_memory_merge_sums_peaks(self):
        a, b = MemoryMeter(), MemoryMeter()
        a.sample(10, 4)
        b.sample(7, 3)
        merged = MemoryMeter.merge([a, b])
        assert merged.peak_units == 17
        assert merged.peak_points == 7

    def test_merge_work_sums_keywise(self):
        assert merge_work([{"a": 1, "b": 2}, {"a": 3, "c": 4}]) == \
            {"a": 4, "b": 2, "c": 4}
        assert merge_work([]) == {}


# ------------------------------------------------------------- configuration


class TestConfig:
    def test_shard_fields_validate(self):
        with pytest.raises(ValueError):
            DetectorConfig(shards=0)
        with pytest.raises(ValueError):
            DetectorConfig(backend="threads")
        with pytest.raises(ValueError):
            DetectorConfig(replication_radius=-1.0)
        cfg = DetectorConfig(shards=4, backend="process",
                             replication_radius=2.5)
        assert cfg.shards == 4

    def test_runtime_rejects_insufficient_radius(self):
        with pytest.raises(ValueError, match="r_max"):
            Runtime(small_workload(), replication_radius=1.0)

    def test_runtime_rejects_mismatched_partitioner(self):
        with pytest.raises(ValueError, match="shards"):
            Runtime(small_workload(), shards=2,
                    partitioner=StreamPartitioner(3, 2000.0))

    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("process"), ProcessPoolBackend)
        backend = SerialBackend()
        assert make_backend(backend) is backend
        with pytest.raises(ValueError):
            make_backend("threads")


# ------------------------------------------------------------ 1-shard oracle


class TestSingleShardOracle:
    def test_identical_outputs_counters_and_memory(self):
        group = small_workload()
        points = make_synthetic_points(900, dim=2, outlier_rate=0.05, seed=3)
        base = StreamExecutor(SOPDetector(group)).run(points)
        result = Runtime(small_workload()).run(points)
        assert result.outputs == base.outputs
        assert deterministic_work(result.work) == deterministic_work(base.work)
        assert result.boundaries == base.boundaries
        assert result.memory.peak_units == base.memory.peak_units
        assert result.memory.peak_points == base.memory.peak_points
        assert len(result.cpu.samples_ns) == len(base.cpu.samples_ns)

    def test_checkpoint_bytes_identical(self, tmp_path):
        group = small_workload()
        points = make_synthetic_points(500, dim=2, seed=9)
        detector = SOPDetector(group)
        executor = StreamExecutor(detector)
        runtime = Runtime(small_workload())
        slide, kind = group.swift.slide, group.kind
        until = stream_end_boundary(points, slide, kind)
        runtime.partitioner.ensure_bounds(points)
        for t, batch in batches_by_boundary(points, slide, kind, until):
            executor.step(t, batch)
            runtime.step(t, batch)
        a, b = tmp_path / "classic.ckpt", tmp_path / "runtime.ckpt"
        save_checkpoint(detector, until, a)
        save_checkpoint(runtime.shards[0].detector, until, b)
        assert a.read_bytes() == b.read_bytes()

    def test_detect_outliers_api_routes_through_runtime(self):
        rows = [[float(i % 17), float((i * 7) % 5)] for i in range(300)]
        base = detect_outliers(rows, [(2.0, 3, 60, 20)])
        sharded = detect_outliers(rows, [(2.0, 3, 60, 20)], shards=2)
        assert sharded.outputs == base.outputs


# ------------------------------------------------- empty-batch regressions


class TestEmptyBatchRegressions:
    def test_quiet_slides_still_emit_due_outputs(self):
        """A boundary with no arrivals must still answer due queries."""
        # a quiet gap is impossible for COUNT windows, so use TIME
        # windows: points early, then nothing until t=40
        tgroup = QueryGroup([
            OutlierQuery(r=1.0, k=2,
                         window=WindowSpec(win=8, slide=4, kind="time")),
        ])
        pts = line_points([0.0, 0.1, 0.2, 5.0, 5.1, 40.0],
                          times=[0, 1, 2, 3, 4, 40])
        base = StreamExecutor(SOPDetector(tgroup)).run(pts)
        res = Runtime(QueryGroup(list(tgroup.queries)), shards=2).run(pts)
        assert res.outputs == base.outputs
        # the quiet boundaries are present in both (empty verdicts kept)
        quiet = [key for key in base.outputs if base.outputs[key] == frozenset()]
        for key in quiet:
            assert key in res.outputs

    def test_zero_point_shard_advances_with_the_stream(self):
        """A shard whose value range never sees data must stay aligned."""
        group = QueryGroup([
            OutlierQuery(r=0.5, k=2, window=WindowSpec(win=12, slide=4)),
        ])
        # all data in [0, 1] except one early point at 10.0 that fixes the
        # bounds; shard 2 of 3 owns a dead middle range forever after
        values = [10.0] + [((i * 37) % 100) / 100.0 for i in range(60)]
        pts = line_points(values)
        base = StreamExecutor(SOPDetector(group)).run(pts)
        res = Runtime(QueryGroup(list(group.queries)), shards=3).run(pts)
        assert res.outputs == base.outputs

    def test_executor_step_accepts_empty_batches(self):
        group = small_workload()
        executor = StreamExecutor(SOPDetector(group))
        outputs = executor.step(group.swift.slide, [])
        assert outputs == {}
        executor.step(group.swift.slide * 2, [])
        result = executor.finish()
        assert result.boundaries == 2


# ------------------------------------------------------------- run modes


class TestRunModes:
    def test_step_then_finish_equals_run(self):
        points = make_synthetic_points(700, dim=2, seed=4)
        whole = Runtime(small_workload(), shards=2).run(points)
        rt = Runtime(small_workload(), shards=2)
        slide, kind = rt.swift.slide, rt.group.kind
        until = stream_end_boundary(points, slide, kind)
        rt.partitioner.ensure_bounds(points)
        for t, batch in batches_by_boundary(points, slide, kind, until):
            rt.step(t, batch)
        stepped = rt.finish()
        assert stepped.outputs == whole.outputs

    def test_process_backend_cannot_step(self):
        rt = Runtime(small_workload(), shards=2, backend="process")
        with pytest.raises(RuntimeError, match="stepped"):
            rt.step(50, [])
        with pytest.raises(RuntimeError, match="worker"):
            rt.shards

    def test_process_backend_matches_serial(self):
        points = make_synthetic_points(600, dim=2, seed=8)
        serial = Runtime(small_workload(), shards=2).run(points)
        try:
            proc = Runtime(small_workload(), shards=2,
                           backend="process").run(points)
        except OSError as exc:  # pragma: no cover - restricted sandboxes
            pytest.skip(f"process pool unavailable: {exc}")
        assert proc.outputs == serial.outputs

    def test_alerts_identical_across_sharding(self):
        points = make_synthetic_points(800, dim=2, outlier_rate=0.05, seed=6)
        plain, sharded = CollectingSink(), CollectingSink()
        base = run_with_alerts(SOPDetector(small_workload()), points, [plain])
        res = run_with_alerts(Runtime(small_workload(), shards=3),
                              points, [sharded])
        assert res.outputs == base.outputs

        def key(a):
            return (a.seq, a.query_index, a.boundary, a.first_seen)

        assert list(map(key, sharded.alerts)) == list(map(key, plain.alerts))


# ------------------------------------------------------- sharded checkpoints


class TestShardedCheckpoints:
    def _run_half(self, points, stop):
        rt = Runtime(small_workload(), shards=3)
        slide, kind = rt.swift.slide, rt.group.kind
        rt.partitioner.ensure_bounds(points)
        head = [p for p in points if p.seq < stop]
        for t, batch in batches_by_boundary(head, slide, kind, stop):
            rt.step(t, batch)
        return rt

    def test_roundtrip_resumes_exactly(self, tmp_path):
        points = make_synthetic_points(800, dim=2, seed=12)
        full = Runtime(small_workload(), shards=3).run(points)
        rt = self._run_half(points, 400)
        path = tmp_path / "sharded.ckpt"
        save_sharded_checkpoint(rt, 400, path)

        restored, last = load_sharded_checkpoint(path)
        assert last == 400
        assert restored.n_shards == 3
        assert restored.partitioner.bounds == rt.partitioner.bounds
        slide, kind = restored.swift.slide, restored.group.kind
        until = stream_end_boundary(points, slide, kind)
        tail = [p for p in points if p.seq >= 400]
        for t, batch in batches_by_boundary(tail, slide, kind, until):
            if t > last:
                restored.step(t, batch)
        resumed = restored.finish()
        expect = {k: v for k, v in full.outputs.items() if k[1] > 400}
        actual = {k: v for k, v in resumed.outputs.items() if k[1] > 400}
        assert actual == expect

    def test_shard_count_change_is_loud(self, tmp_path):
        points = make_synthetic_points(300, dim=2, seed=13)
        rt = self._run_half(points, 200)
        path = tmp_path / "sharded.ckpt"
        save_sharded_checkpoint(rt, 200, path)
        with pytest.raises(ValueError, match="shard count cannot change"):
            load_sharded_checkpoint(path, shards=2)

    def test_loader_crossing_is_loud(self, tmp_path):
        points = make_synthetic_points(300, dim=2, seed=14)
        rt = self._run_half(points, 200)
        manifest = tmp_path / "sharded.ckpt"
        save_sharded_checkpoint(rt, 200, manifest)
        with pytest.raises(ValueError, match="load_sharded_checkpoint"):
            load_checkpoint(manifest)
        classic = tmp_path / "classic.ckpt"
        save_checkpoint(rt.shards[0].detector, 200, classic)
        with pytest.raises(ValueError, match="load_checkpoint"):
            load_sharded_checkpoint(classic)

    def test_tampered_manifest_is_loud(self, tmp_path):
        points = make_synthetic_points(300, dim=2, seed=15)
        rt = self._run_half(points, 200)
        path = tmp_path / "sharded.ckpt"
        save_sharded_checkpoint(rt, 200, path)
        manifest = json.loads(path.read_text())
        manifest["segments"] = manifest["segments"][:-1]
        path.write_text(json.dumps(manifest) + "\n")
        with pytest.raises(ValueError, match="segment"):
            load_sharded_checkpoint(path)

    def test_periodic_subscriber_writes_manifest(self, tmp_path):
        points = make_synthetic_points(600, dim=2, seed=16)
        path = tmp_path / "periodic.ckpt"
        sub = ShardedCheckpointSubscriber(path, interval=4)
        Runtime(small_workload(), shards=2, subscribers=[sub]).run(points)
        assert sub.checkpoints_written > 0
        restored, last = load_sharded_checkpoint(path)
        assert restored.n_shards == 2
        assert last > 0
        with pytest.raises(ValueError):
            ShardedCheckpointSubscriber(path, interval=0)


class TestPreloadAndSnapshots:
    """The serving layer's runtime hooks: retained_points / preload /
    work_stats_snapshot."""

    def test_retained_points_dedups_border_replicas(self):
        points = make_synthetic_points(500, dim=2, seed=21)
        rt = Runtime(small_workload(), shards=4)
        rt.run(points, until=400)
        retained = rt.retained_points()
        seqs = [p.seq for p in retained]
        # replicas collapse: each seq exactly once, in stream order
        assert seqs == sorted(set(seqs))
        # the retained set is exactly the union of live shard windows
        expected = {p.seq for shard in rt.shards
                    for p in shard.detector.buffer.points}
        assert set(seqs) == expected

    def test_preload_matches_straight_run(self):
        points = make_synthetic_points(600, dim=2, seed=22)
        group = small_workload()
        full = Runtime(group, shards=2).run(points)
        # run the first half, carry the window into a fresh runtime,
        # continue with the second half: outputs must line up exactly
        first = Runtime(small_workload(), shards=2)
        first.run(points, until=300)
        carried = Runtime(small_workload(), shards=2)
        carried.preload(first.retained_points())
        resumed = {}
        for t, batch in batches_by_boundary(
                points, group.swift.slide, group.kind, start=300):
            for qi, seqs in carried.step(t, batch).items():
                resumed[(qi, t)] = seqs
        expected = {key: val for key, val in full.outputs.items()
                    if key[1] > 300}
        diffs = compare_outputs(expected, resumed)
        assert not diffs, "\n".join(diffs[:10])

    def test_work_stats_snapshot_includes_quarantine(self):
        points = make_synthetic_points(200, dim=2, seed=23)
        rt = Runtime(small_workload(), shards=2,
                     config=DetectorConfig(shards=2, validate_ingest=True))
        rt.run(list(points) + ["garbage"])
        snap = rt.work_stats_snapshot()
        assert type(snap) is dict
        assert snap["records_quarantined"] == 1
        assert snap["quarantined_malformed"] == 1
        assert snap["distance_rows"] == rt.work_stats()["distance_rows"]
