"""Chaos matrix for the supervised backend.

Every failure mode the supervised runner claims to survive is produced
on demand with a deterministic :class:`~repro.testing.FaultPlan` and
asserted against the fault-free serial answer:

* crash by exception (captured + retried) and by hard ``os._exit``
  (exitcode-detected) -- both bit-identical to serial after retry;
* a stuck worker past its deadline is killed and retried;
* exhausted retries raise a :class:`~repro.runtime.ShardFailure` that
  names the dead shard;
* ``drop-and-flag`` degrades loudly: the merged result is PARTIAL,
  never passed off as exact;
* the single-task path (``process`` backend, 1 shard) runs under the
  same supervision as the N-shard case;
* the CLI surfaces all of it with distinct exit codes.
"""

import pytest

from repro import (
    DetectorConfig,
    Fault,
    FaultPlan,
    OutlierQuery,
    ProcessPoolBackend,
    QueryGroup,
    Runtime,
    ShardFailure,
    SupervisedProcessBackend,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)

pytestmark = pytest.mark.chaos

N_SHARDS = 4
#: boundaries land at 40, 80, ..., 640 (slide 40, 600 points)
CRASH_T = 320


def group():
    return QueryGroup([
        OutlierQuery(r=300, k=4, window=WindowSpec(win=200, slide=40)),
        OutlierQuery(r=700, k=6, window=WindowSpec(win=160, slide=40)),
    ])


@pytest.fixture(scope="module")
def stream():
    return make_synthetic_points(600, seed=5)


@pytest.fixture(scope="module")
def reference(stream):
    """The fault-free serial answer every chaos run must reproduce."""
    return Runtime(group(), config=DetectorConfig(shards=N_SHARDS)).run(stream)


def run_supervised(stream, plan, **knobs):
    backend = SupervisedProcessBackend(fault_plan=plan, **knobs)
    runtime = Runtime(group(), config=DetectorConfig(shards=N_SHARDS),
                      backend=backend)
    return backend, runtime.run(stream)


def outcomes(backend):
    return [(e["shard"], e["attempt"], e["outcome"]) for e in backend.report]


class TestRetryRecovers:
    def test_exception_crash_retried_bitexact(self, stream, reference,
                                              chaos_report):
        plan = FaultPlan((Fault("crash", shard=1, boundary=CRASH_T),))
        backend, result = run_supervised(stream, plan, on_failure="retry",
                                         max_retries=2, backoff=0.01)
        assert not compare_outputs(reference.outputs, result.outputs)
        assert not result.partial
        log = outcomes(backend)
        assert (1, 0, "error") in log and (1, 1, "ok") in log
        assert all(o == "ok" for s, a, o in log if s != 1)
        chaos_report(test="exception_crash_retried", plan=plan.as_dict(),
                     report=backend.report, exact=True)

    def test_hard_exit_crash_detected_and_retried(self, stream, reference,
                                                  chaos_report):
        """``os._exit`` leaves no exception to report; the supervisor
        must detect the loss from the exitcode alone."""
        plan = FaultPlan((Fault("crash", shard=0, boundary=CRASH_T,
                                mode="exit"),))
        backend, result = run_supervised(stream, plan, on_failure="retry",
                                         max_retries=1, backoff=0.01)
        assert not compare_outputs(reference.outputs, result.outputs)
        log = outcomes(backend)
        assert (0, 0, "crash") in log and (0, 1, "ok") in log
        crash = next(e for e in backend.report if e["outcome"] == "crash")
        assert "66" in crash["detail"]  # the injected exitcode, named
        chaos_report(test="hard_exit_crash_retried", plan=plan.as_dict(),
                     report=backend.report, exact=True)

    def test_deadline_timeout_then_retry_success(self, stream, reference,
                                                 chaos_report):
        """A worker stalled past its deadline is killed; the retry (the
        fault fires only on attempt 0) completes and the answer is exact."""
        plan = FaultPlan((Fault("delay", shard=2, boundary=40,
                                seconds=5.0),))
        backend, result = run_supervised(stream, plan, on_failure="retry",
                                         max_retries=1, deadline=0.5,
                                         backoff=0.01)
        assert not compare_outputs(reference.outputs, result.outputs)
        log = outcomes(backend)
        assert (2, 0, "timeout") in log and (2, 1, "ok") in log
        chaos_report(test="deadline_timeout_retried", plan=plan.as_dict(),
                     report=backend.report, exact=True)


class TestPermanentFailure:
    def test_retry_exhaustion_raises_naming_shard(self, stream, chaos_report):
        plan = FaultPlan((Fault("crash", shard=2, boundary=CRASH_T,
                                times=99),))
        with pytest.raises(ShardFailure, match=r"shard 2 failed permanently "
                                               r"after 2 attempt\(s\)") as exc:
            run_supervised(stream, plan, on_failure="retry", max_retries=1,
                           backoff=0.01)
        assert exc.value.shard_id == 2
        assert "InjectedCrash" in exc.value.cause
        chaos_report(test="retry_exhaustion", plan=plan.as_dict(),
                     raised=str(exc.value))

    def test_fail_policy_skips_retry(self, stream):
        plan = FaultPlan((Fault("crash", shard=3, boundary=CRASH_T),))
        with pytest.raises(ShardFailure, match="shard 3") as exc:
            # max_retries is ignored under "fail": first loss is final
            run_supervised(stream, plan, on_failure="fail", max_retries=5)
        assert exc.value.attempts == 1


class TestDropAndFlag:
    def test_partial_result_loudly_marked(self, stream, reference,
                                          chaos_report):
        plan = FaultPlan((Fault("crash", shard=1, boundary=CRASH_T,
                                times=99),))
        backend, result = run_supervised(stream, plan,
                                         on_failure="drop-and-flag",
                                         max_retries=1, backoff=0.01)
        assert result.partial
        assert result.failed_shards == (1,)
        assert "PARTIAL" in result.summary() and "1" in result.summary()
        assert result.work.get("shard_failures") == 1
        # the surviving shards' outputs are a subset of the exact answer:
        # degraded, never wrong
        for key, seqs in result.outputs.items():
            assert seqs <= reference.outputs.get(key, frozenset())
        chaos_report(test="drop_and_flag", plan=plan.as_dict(),
                     report=backend.report,
                     failed_shards=list(result.failed_shards))

    def test_exact_result_is_not_marked(self, stream, reference):
        backend, result = run_supervised(stream, None,
                                         on_failure="drop-and-flag")
        assert not result.partial
        assert "PARTIAL" not in result.summary()
        assert not compare_outputs(reference.outputs, result.outputs)


class TestSingleTaskSupervision:
    def test_process_backend_is_supervised(self):
        assert isinstance(ProcessPoolBackend(), SupervisedProcessBackend)

    def test_single_shard_runs_under_supervision(self, stream):
        """1 shard and N shards go through the identical supervised
        runner: even the single-task fast path produces an attempt log."""
        backend = ProcessPoolBackend()
        result = Runtime(group(), config=DetectorConfig(shards=1),
                         backend=backend).run(stream)
        assert outcomes(backend) == [(0, 0, "ok")]
        serial = Runtime(group(), config=DetectorConfig(shards=1)).run(stream)
        assert not compare_outputs(serial.outputs, result.outputs)

    def test_single_shard_crash_is_named(self, stream):
        plan = FaultPlan((Fault("crash", shard=0, boundary=CRASH_T,
                                mode="exit"),))
        backend = SupervisedProcessBackend(on_failure="fail",
                                           fault_plan=plan)
        with pytest.raises(ShardFailure, match="shard 0"):
            Runtime(group(), config=DetectorConfig(shards=1),
                    backend=backend).run(stream)


class TestCli:
    @pytest.fixture
    def paths(self, tmp_path):
        from repro import load_workload
        from repro.cli import main
        stream = tmp_path / "stream.csv"
        wl = tmp_path / "wl.json"
        assert main(["generate", "synthetic", "--n", "400", "--seed", "5",
                     "--out", str(stream)]) == 0
        assert main(["workload", "--spec", "C", "--n", "3", "--seed", "9",
                     "--out", str(wl)]) == 0
        slide = QueryGroup(load_workload(wl)).swift.slide
        return stream, wl, slide

    def base_argv(self, paths):
        stream, wl, _ = paths
        return ["detect", "--stream", str(stream), "--workload", str(wl),
                "--shards", "2", "--backend", "supervised",
                "--max-shard-retries", "0"]

    def crash_plan(self, paths):
        # the workload's first boundary is its swift (gcd) slide; a fault
        # pinned there fires on every attempt (times=99), so retries can
        # never rescue the shard
        _, _, slide = paths
        return FaultPlan((Fault("crash", shard=1, boundary=slide,
                                times=99),))

    def test_fail_policy_exit_code_3(self, paths, capsys):
        from repro.cli import main
        rc = main(self.base_argv(paths) + [
            "--on-shard-failure", "fail",
            "--fault-plan", self.crash_plan(paths).to_json()])
        assert rc == 3
        err = capsys.readouterr().err
        assert "shard 1 failed permanently" in err

    def test_drop_and_flag_exit_code_1(self, paths, capsys):
        from repro.cli import main
        rc = main(self.base_argv(paths) + [
            "--on-shard-failure", "drop-and-flag",
            "--fault-plan", self.crash_plan(paths).to_json()])
        assert rc == 1
        captured = capsys.readouterr()
        assert "PARTIAL" in captured.out or "PARTIAL" in captured.err

    def test_plan_file_resolution(self, paths, tmp_path, capsys):
        from repro.cli import main
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(self.crash_plan(paths).to_json())
        rc = main(self.base_argv(paths) + [
            "--on-shard-failure", "fail", "--fault-plan", str(plan_path)])
        assert rc == 3

    def test_clean_supervised_run_exit_code_0(self, paths):
        from repro.cli import main
        assert main(self.base_argv(paths) +
                    ["--on-shard-failure", "retry"]) == 0
