"""Unit tests for outlier-status evaluation and safe-inlier logic."""


from repro import (
    KSkyRunner,
    OutlierQuery,
    QueryGroup,
    WindowBuffer,
    WindowSpec,
    euclidean,
    is_fully_safe,
    is_outlier_for_query,
    outlier_query_indexes,
    parse_workload,
    safe_min_layers,
)
from repro.core.evaluator import statuses_by_k_distance
from repro.core.lsky import LSky

from conftest import line_points


def make_plan(rs_and_ks, win=8, slide=4):
    return parse_workload(QueryGroup([
        OutlierQuery(r=float(r), k=k, window=WindowSpec(win=win, slide=slide))
        for r, k in rs_and_ks
    ]))


def sky_from(entries, n_layers):
    sky = LSky(n_layers)
    for seq, layer in entries:
        sky.insert(seq, float(seq), layer)
    return sky


class TestSafeMinLayers:
    def test_succeeding_only(self):
        plan = make_plan([(1, 1), (2, 2), (3, 2)])
        sky = sky_from([(9, 2), (8, 0), (3, 0), (2, 0)], plan.n_layers)
        layers = safe_min_layers(plan, sky, p_seq=5)
        # succ entries (seq > 5): layers [2, 0] sorted -> [0, 2]
        assert layers[1] == 0
        assert layers[2] == 2

    def test_none_when_insufficient_successors(self):
        plan = make_plan([(1, 3)])
        sky = sky_from([(9, 0), (2, 0), (1, 0)], plan.n_layers)
        assert safe_min_layers(plan, sky, p_seq=5)[3] is None

    def test_all_successors_when_p_oldest(self):
        plan = make_plan([(1, 2)])
        sky = sky_from([(9, 0), (8, 0)], plan.n_layers)
        assert safe_min_layers(plan, sky, p_seq=-1)[2] == 0


class TestIsFullySafe:
    def test_safe_when_every_subgroup_covered(self):
        plan = make_plan([(1, 1), (2, 2)])
        assert is_fully_safe(plan, {1: 0, 2: 0})
        assert is_fully_safe(plan, {1: 0, 2: 1})

    def test_not_safe_when_layer_above_subgroup_min(self):
        # subgroup k=2 has min layer 0 (its hardest query has r=1)
        plan = make_plan([(1, 2), (2, 2)])
        assert not is_fully_safe(plan, {2: 1})

    def test_not_safe_with_missing_k(self):
        plan = make_plan([(1, 1), (2, 5)])
        assert not is_fully_safe(plan, {1: 0, 5: None})


class TestIsOutlierForQuery:
    def _setup(self):
        plan = make_plan([(1, 2), (3, 2)], win=8, slide=4)
        # entries: two close-and-recent, one far-and-old
        sky = sky_from([(7, 0), (6, 0), (1, 1)], plan.n_layers)
        return plan, sky

    def test_inlier_with_enough_recent_neighbors(self):
        plan, sky = self._setup()
        assert not is_outlier_for_query(plan, sky, 0, t=8)

    def test_window_filter_lemma3(self):
        # at t=12 the window is [4, 12): entry at pos 1 expired; entries at
        # 7 and 6 still cover k=2 for the small radius
        plan, sky = self._setup()
        assert not is_outlier_for_query(plan, sky, 0, t=12)
        # at t=14 the window is [6, 14): only the entry at 7 and 6 remain
        # -- still 2.  At t=15, [7, 15): one neighbor left -> outlier
        assert is_outlier_for_query(plan, sky, 0, t=15)

    def test_outlier_query_indexes_respects_population(self):
        plan, sky = self._setup()
        # p at position 2 is outside the window [7, 15): no verdicts at all
        assert outlier_query_indexes(plan, sky, p_pos=2.0,
                                     due=[0, 1], t=15) == []

    def test_outlier_query_indexes_returns_failing_queries(self):
        plan = make_plan([(1, 2), (3, 2)], win=8, slide=4)
        sky = sky_from([(7, 1), (6, 1)], plan.n_layers)  # only far neighbors
        assert outlier_query_indexes(plan, sky, p_pos=7.0,
                                     due=[0, 1], t=8) == [0]


class TestKDistanceStatuses:
    def test_matches_definition(self):
        plan = make_plan([(1, 2), (2, 2), (3, 2)])
        sky = sky_from([(9, 1), (8, 1), (7, 2)], plan.n_layers)
        # k=2 nearest layers: [1, 1] -> k-distance layer 1
        assert statuses_by_k_distance(plan, sky, 2) == [True, False, False]

    def test_all_outlier_when_insufficient(self):
        plan = make_plan([(1, 3), (2, 3)])
        sky = sky_from([(9, 0)], plan.n_layers)
        assert statuses_by_k_distance(plan, sky, 3) == [True, True]


class TestSafeInlierEndToEnd:
    def test_safe_point_never_reported_later(self):
        """A point with k succeeding close neighbors stays inlier forever."""
        plan = make_plan([(1.0, 2)], win=6, slide=2)
        buf = WindowBuffer(euclidean)
        # p at seq 0; two close successors right after
        buf.extend(line_points([0.0, 0.1, 0.2, 5.0, 5.0, 5.0]))
        result = KSkyRunner(plan).run_new_point((0.0,), 0, buf)
        layers = safe_min_layers(plan, result.lsky, p_seq=0)
        assert layers[2] == 0
        assert is_fully_safe(plan, layers)

    def test_preceding_neighbors_do_not_make_safe(self):
        plan = make_plan([(1.0, 2)], win=6, slide=2)
        buf = WindowBuffer(euclidean)
        # p at seq 5 (last); its neighbors all precede it
        buf.extend(line_points([0.0, 0.1, 0.2, 5.0, 5.0, 0.05]))
        result = KSkyRunner(plan).run_new_point((0.05,), 5, buf)
        layers = safe_min_layers(plan, result.lsky, p_seq=5)
        assert layers[2] is None
        assert not is_fully_safe(plan, layers)
