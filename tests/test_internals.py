"""Edge-case tests for internal APIs added by the optimized paths."""

import pytest

from repro import (
    KSkyRunner,
    LSky,
    MCODDetector,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowBuffer,
    WindowSpec,
    euclidean,
    parse_workload,
)

from conftest import line_points


def q(r, k, win=40, slide=10):
    return OutlierQuery(r=float(r), k=k,
                        window=WindowSpec(win=win, slide=slide))


class TestExtendOlder:
    def test_appends_in_bulk(self):
        sky = LSky(4)
        sky.insert(9, 9.0, 1)
        sky.extend_older([(5, 5.0, 0), (3, 3.0, 2)])
        assert list(sky.entries()) == [(9, 9.0, 1), (5, 5.0, 0),
                                       (3, 3.0, 2)]
        assert sky.dominator_count(1) == 2

    def test_rejects_younger_entries(self):
        sky = LSky(4)
        sky.insert(5, 5.0, 1)
        with pytest.raises(ValueError, match="older"):
            sky.extend_older([(9, 9.0, 0)])

    def test_rejects_unsorted_batch(self):
        sky = LSky(4)
        sky.insert(9, 9.0, 1)
        with pytest.raises(ValueError, match="descending"):
            sky.extend_older([(3, 3.0, 0), (5, 5.0, 0)])

    def test_rejects_bad_layer(self):
        sky = LSky(2)
        with pytest.raises(ValueError, match="layer"):
            sky.extend_older([(3, 3.0, 5)])

    def test_empty_batch_noop(self):
        sky = LSky(2)
        sky.extend_older([])
        assert len(sky) == 0

    def test_k_distance_after_bulk(self):
        sky = LSky(4)
        sky.insert(9, 9.0, 3)
        sky.extend_older([(5, 5.0, 0), (3, 3.0, 1)])
        assert sky.k_distance_layer(2) == 1


class TestScanNewArrivals:
    def test_scans_only_suffix(self):
        plan = parse_workload(QueryGroup([q(1.0, 2)]))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([0.0] * 30))
        runner = KSkyRunner(plan)
        res = runner.scan_new_arrivals((0.0,), -1, buf, new_from_index=25)
        assert res.examined <= 5
        assert all(seq >= 25 for seq in res.lsky.seqs)

    def test_empty_suffix(self):
        plan = parse_workload(QueryGroup([q(1.0, 2)]))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([0.0] * 10))
        res = KSkyRunner(plan).scan_new_arrivals((0.0,), -1, buf, 10)
        assert res.examined == 0 and len(res.lsky) == 0


class TestBufferViewCache:
    def test_view_refreshes_after_extend(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([1.0]))
        first = buf.points
        assert len(first) == 1
        buf.extend(line_points([2.0], start_seq=1))
        assert len(buf.points) == 2

    def test_view_refreshes_after_evict(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(range(10)))
        _ = buf.points
        buf.evict_before(5, by_time=False)
        assert [p.seq for p in buf.points] == list(range(5, 10))

    def test_view_identity_stable_without_mutation(self):
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(range(10)))
        buf.evict_before(3, by_time=False)
        assert buf.points is buf.points  # cached, no re-slice


class TestMCODClusteringSwitch:
    def test_single_pattern_enables_clusters(self):
        g = QueryGroup([q(2.0, 3, win=40, slide=10),
                        q(2.0, 3, win=80, slide=20)])
        assert MCODDetector(g).clustering_enabled

    def test_multi_pattern_disables_clusters(self):
        g = QueryGroup([q(2.0, 3), q(4.0, 3)])
        det = MCODDetector(g)
        assert not det.clustering_enabled
        det.run(line_points([0.0] * 80))
        assert det.stats["clusters_formed"] == 0

    def test_range_query_mode_still_exact(self, small_stream):
        from conftest import assert_equivalent
        g = QueryGroup([q(300, 4, win=200, slide=50),
                        q(900, 7, win=200, slide=50)])
        assert_equivalent(g, small_stream, MCODDetector(g))


class TestPointStateView:
    def test_lsky_view_reconstructs_evidence(self):
        g = QueryGroup([q(1.0, 2, win=20, slide=10)])
        det = SOPDetector(g, use_safe_inliers=False)
        det.run(line_points([0.0, 0.1, 5.0, 0.2] * 5))
        st = det.state_of(18)
        view = st.as_object_lsky()
        assert view is not None
        assert len(view) == st.entry_count()
        seqs = view.seqs
        assert all(a > b for a, b in zip(seqs, seqs[1:]))

    def test_safe_state_has_no_view(self):
        g = QueryGroup([q(1.0, 2, win=20, slide=10)])
        det = SOPDetector(g)
        det.run(line_points([0.0] * 40))
        safe_states = [det.state_of(s) for s in range(20, 30)]
        assert any(st.fully_safe and st.as_object_lsky() is None
                   for st in safe_states)


class TestDetectorRunUntil:
    def test_until_bounds_boundaries(self, small_stream, small_group):
        res = SOPDetector(small_group).run(small_stream, until=300)
        assert max(t for _, t in res.outputs) <= 300

    def test_until_beyond_stream_adds_empty_batches(self):
        g = QueryGroup([q(1.0, 1, win=20, slide=10)])
        res = SOPDetector(g).run(line_points([0.0] * 20), until=60)
        # boundaries 10..60 all processed; windows past the data drain
        assert res.boundaries == 6
        assert res.outputs[(0, 40)] == frozenset()
