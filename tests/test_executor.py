"""Tests for the staged detector runtime: StreamExecutor, lifecycle
hooks, DetectorConfig plumbing, and checkpoint/alert subscribers.

The refactor contract is *byte-identical accounting*: driving a detector
through :class:`~repro.engine.StreamExecutor` must reproduce exactly what
the legacy copy-pasted drive loops produced -- same outputs, same boundary
count, same memory samples, same work counters.
"""

import pytest

from repro import (
    DetectorConfig,
    DynamicSOPDetector,
    ExecutorSubscriber,
    LEAPDetector,
    MCODDetector,
    OutlierQuery,
    QueryGroup,
    RunResult,
    SOPDetector,
    StreamExecutor,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.baselines.base import Detector
from repro.bench import build_workload
from repro.bench.workloads import ScaledRanges
from repro.checkpoint import (
    CheckpointSubscriber,
    CheckpointedRun,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.refresh import BatchedRefresh, PerPointRefresh
from repro.streams.buffer import WindowBuffer
from repro.streams.source import batches_by_boundary

#: compact windows so a short stream still exercises expiry
_RANGES = ScaledRanges(
    r=(200.0, 2000.0), k=(3, 8), win=(100, 400), slide=(50, 100),
    fixed_r=700.0, fixed_k=4, fixed_win=200, fixed_slide=50,
)

_ALGOS = {
    "sop": SOPDetector,
    "mcod": MCODDetector,
    "leap": LEAPDetector,
}


def _stream(n=600, seed=3):
    return make_synthetic_points(n, dim=2, outlier_rate=0.05, seed=seed)


def _group(spec="C", n=3, seed=17):
    return build_workload(spec, n_queries=n, seed=seed, ranges=_RANGES)


def legacy_run(detector, points, until=None):
    """The pre-executor drive loop, verbatim (the golden reference)."""
    result = RunResult(detector=detector.name)
    for t, batch in batches_by_boundary(
        points, detector.swift.slide, detector.group.kind, until
    ):
        result.cpu.start()
        outputs = detector.step(t, batch)
        result.cpu.stop()
        result.boundaries += 1
        result.memory.sample(detector.memory_units(),
                             detector.tracked_points())
        for qi, seqs in outputs.items():
            result.outputs[(qi, t)] = frozenset(seqs)
    result.work = detector.work_stats()
    return result


class RecordingSubscriber(ExecutorSubscriber):
    """Logs every hook invocation as (hook_name, boundary)."""

    def __init__(self):
        self.events = []

    def on_ingest(self, t, batch):
        self.events.append(("ingest", t, len(batch)))

    def on_expire(self, t, evicted):
        self.events.append(("expire", t, len(evicted)))

    def on_refresh(self, t):
        self.events.append(("refresh", t, None))

    def on_evaluate(self, t, outputs):
        self.events.append(("evaluate", t, dict(outputs)))

    def on_boundary_end(self, t, outputs):
        self.events.append(("boundary_end", t, dict(outputs)))

    def on_stream_end(self, result):
        self.events.append(("stream_end", None, result))


# --------------------------------------------------------- golden equivalence


@pytest.mark.parametrize("algo", sorted(_ALGOS))
@pytest.mark.parametrize("spec", list("ABCDEFG"))
def test_executor_matches_legacy_loop(spec, algo):
    """StreamExecutor reproduces the legacy drive loop exactly, per
    algorithm, per Table 1 workload class."""
    group = _group(spec)
    points = _stream()
    expected = legacy_run(_ALGOS[algo](group), points)
    actual = StreamExecutor(_ALGOS[algo](group)).run(points)
    assert not compare_outputs(expected.outputs, actual.outputs)
    assert actual.boundaries == expected.boundaries
    assert actual.peak_memory_units == expected.peak_memory_units
    # identical deterministic work counters (wall-clock entries excluded)
    deterministic = {k: v for k, v in expected.work.items()
                     if not k.endswith("_ns")}
    assert {k: actual.work[k] for k in deterministic} == deterministic


def test_detector_run_is_executor_run():
    group = _group("G")
    points = _stream()
    via_run = SOPDetector(group).run(points)
    via_executor = StreamExecutor(SOPDetector(group)).run(points)
    assert not compare_outputs(via_run.outputs, via_executor.outputs)
    assert via_run.boundaries == via_executor.boundaries


def test_until_bounds_the_run():
    group = _group("A")
    result = StreamExecutor(SOPDetector(group)).run(_stream(), until=200)
    assert result.outputs
    assert max(t for _, t in result.outputs) <= 200


# ------------------------------------------------------------- hook ordering


def test_sop_hook_order_per_boundary():
    """Eager SOP fires ingest -> expire -> refresh -> evaluate ->
    boundary_end at every boundary, stream_end once at the end."""
    group = _group("A")
    sub = RecordingSubscriber()
    StreamExecutor(SOPDetector(group), [sub]).run(_stream(n=300))
    assert sub.events[-1][0] == "stream_end"
    per_boundary = [e for e in sub.events if e[0] != "stream_end"]
    stages = [e[0] for e in per_boundary]
    expected_cycle = ["ingest", "expire", "refresh", "evaluate",
                      "boundary_end"]
    assert len(stages) % len(expected_cycle) == 0
    for i in range(0, len(stages), len(expected_cycle)):
        assert stages[i:i + len(expected_cycle)] == expected_cycle
    # every hook of one boundary reports the same t
    for i in range(0, len(per_boundary), len(expected_cycle)):
        ts = {e[1] for e in per_boundary[i:i + len(expected_cycle)]}
        assert len(ts) == 1


def test_lazy_sop_skips_refresh_hook_when_nothing_due():
    # slides 100 and 150 give a swift slide of 50, so boundaries like
    # t=50 and t=250 have no due member at all
    group = QueryGroup([
        OutlierQuery(r=300, k=3, window=WindowSpec(win=200, slide=100)),
        OutlierQuery(r=300, k=3, window=WindowSpec(win=300, slide=150)),
    ])
    sub = RecordingSubscriber()
    det = SOPDetector(group, config=DetectorConfig(eager=False))
    StreamExecutor(det, [sub]).run(_stream(n=300))
    refreshes = [e for e in sub.events if e[0] == "refresh"]
    evaluates = [e for e in sub.events if e[0] == "evaluate"]
    assert refreshes and evaluates
    # lazy mode refreshes only at due boundaries -- but evaluate still
    # fires (with {}) at every boundary
    assert len(refreshes) < len(evaluates)


def test_mcod_hook_order_reports_algorithm_order():
    """MCOD expires before it ingests; the hooks report what actually
    happened rather than a normalized order."""
    sub = RecordingSubscriber()
    StreamExecutor(MCODDetector(_group("A")), [sub]).run(_stream(n=300))
    stages = [e[0] for e in sub.events]
    first_expire = stages.index("expire")
    first_ingest = stages.index("ingest")
    assert first_expire < first_ingest


def test_monolithic_step_detector_still_drivable():
    """A third-party detector implementing only step() runs through the
    executor via the default run_boundary wrapper."""

    class Monolith(Detector):
        name = "monolith"

        def __init__(self, group, metric="euclidean"):
            super().__init__(group, metric)
            self.buffer = WindowBuffer(self.metric)

        def step(self, t, batch):
            self.buffer.extend(batch)
            self._expire_swift(t)
            return {qi: frozenset() for qi in self.group.due_members(t)}

    sub = RecordingSubscriber()
    result = StreamExecutor(Monolith(_group("A")), [sub]).run(_stream(n=200))
    assert result.boundaries > 0
    stages = [e[0] for e in sub.events if e[0] != "stream_end"]
    # the wrapper exposes ingest and evaluate only
    assert "ingest" in stages and "evaluate" in stages
    assert "expire" not in stages and "refresh" not in stages


def test_detector_without_step_or_run_boundary_fails_loudly():
    class Empty(Detector):
        name = "empty"

    with pytest.raises(NotImplementedError, match="step"):
        Empty(_group("A")).step(50, [])


def test_subscriber_exception_propagates():
    class Boom(ExecutorSubscriber):
        def on_evaluate(self, t, outputs):
            raise RuntimeError("subscriber failed")

    with pytest.raises(RuntimeError, match="subscriber failed"):
        StreamExecutor(SOPDetector(_group("A")), [Boom()]).run(_stream(n=200))


def test_subscribe_mid_stream():
    group = _group("A")
    executor = StreamExecutor(SOPDetector(group))
    batches = list(batches_by_boundary(_stream(n=300), group.swift.slide,
                                       group.kind))
    executor.step(*batches[0])
    late = executor.subscribe(RecordingSubscriber())
    assert late.executor is executor
    executor.step(*batches[1])
    assert any(e[0] == "boundary_end" for e in late.events)


# ------------------------------------------------- checkpoint resume + config


def test_checkpoint_resume_mid_stream_roundtrip(tmp_path):
    """Crash after the Nth periodic checkpoint, restore, finish the
    stream: outputs match an uninterrupted run exactly."""
    group = _group("C")
    points = _stream(n=600, seed=61)
    full = SOPDetector(group).run(points)

    path = tmp_path / "live.jsonl"
    run = CheckpointedRun(SOPDetector(group), path, interval=3)
    batches = list(batches_by_boundary(points, group.swift.slide, group.kind))
    cut = 7  # two checkpoints written (boundaries 3 and 6), then "crash"
    outputs = {}
    for t, batch in batches[:cut]:
        for qi, seqs in run.step(t, batch).items():
            outputs[(qi, t)] = seqs
    assert run.checkpoints_written == 2

    restored, last_t = load_checkpoint(path)
    assert last_t == batches[5][0]
    assert restored.config == SOPDetector(group).config
    # drop boundaries after the last checkpoint (lost in the crash) and
    # replay from there
    outputs = {k: v for k, v in outputs.items() if k[1] <= last_t}
    executor = StreamExecutor(restored)
    for t, batch in batches[6:]:
        for qi, seqs in executor.step(t, batch).items():
            outputs[(qi, t)] = seqs
    assert not compare_outputs(full.outputs, outputs)


def test_checkpoint_persists_config(tmp_path):
    group = _group("A")
    cfg = DetectorConfig(use_batched_refresh=False, eager=False,
                         batch_min_rows=13)
    det = SOPDetector(group, config=cfg)
    det.run(_stream(n=200))
    path = tmp_path / "ckpt.jsonl"
    save_checkpoint(det, 200, path)
    restored, _ = load_checkpoint(path)
    assert restored.config == cfg
    assert isinstance(restored.refresh_engine, PerPointRefresh)
    assert not isinstance(restored.refresh_engine, BatchedRefresh)


def test_checkpoint_config_mismatch_fails_loudly(tmp_path):
    group = _group("A")
    det = SOPDetector(group, config=DetectorConfig(use_batched_refresh=False))
    det.step(50, _stream(n=50))
    path = tmp_path / "ckpt.jsonl"
    save_checkpoint(det, 50, path)
    # a factory that silently reverts to defaults must be rejected
    with pytest.raises(ValueError, match="config mismatch"):
        load_checkpoint(path, factory=SOPDetector)
    # ... unless the reconfiguration is explicit
    restored, _ = load_checkpoint(path, factory=SOPDetector,
                                  allow_config_mismatch=True)
    assert restored.config.use_batched_refresh
    # a config-less detector (different algorithm) skips the check
    restored, _ = load_checkpoint(path, factory=MCODDetector)
    assert restored.name == "mcod"


def test_checkpoint_malformed_config_rejected(tmp_path):
    path = tmp_path / "x.jsonl"
    path.write_text(
        '{"version": 1, "last_boundary": 0, "kind": "count", '
        '"config": {"no_such_switch": 1}, '
        '"queries": [{"r": 1, "k": 1, "win": 10, "slide": 5}]}\n'
    )
    with pytest.raises(ValueError, match="malformed detector config"):
        load_checkpoint(path)


def test_checkpoint_subscriber_standalone(tmp_path):
    group = _group("A")
    path = tmp_path / "sub.jsonl"
    sub = CheckpointSubscriber(path, interval=2)
    executor = StreamExecutor(SOPDetector(group), [sub])
    executor.run(_stream(n=300))
    assert sub.checkpoints_written >= 1
    restored, last_t = load_checkpoint(path)
    assert last_t > 0


# -------------------------------------------------------------- config object


class TestDetectorConfig:
    def test_roundtrip(self):
        cfg = DetectorConfig(metric="manhattan", eager=False,
                             batch_min_rows=5)
        assert DetectorConfig.from_dict(cfg.as_dict()) == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            DetectorConfig.from_dict({"metric": "euclidean", "bogus": 1})

    def test_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(chunk_size=0)
        with pytest.raises(ValueError):
            DetectorConfig(batch_min_rows=0)

    def test_diff(self):
        a = DetectorConfig()
        b = DetectorConfig(eager=False, batch_min_rows=5)
        d = a.diff(b)
        assert d == {"eager": (True, False), "batch_min_rows": (8, 5)}
        assert a.diff(a) == {}

    def test_replace(self):
        cfg = DetectorConfig().replace(use_safe_inliers=False)
        assert not cfg.use_safe_inliers
        assert cfg.use_least_examination

    def test_explicit_config_wins_over_legacy_kwargs(self):
        group = _group("A")
        cfg = DetectorConfig(use_batched_refresh=False)
        det = SOPDetector(group, use_batched_refresh=True, config=cfg)
        assert det.config == cfg
        assert isinstance(det.refresh_engine, PerPointRefresh)
        assert not isinstance(det.refresh_engine, BatchedRefresh)

    def test_legacy_kwargs_build_equivalent_config(self):
        group = _group("A")
        det = SOPDetector(group, eager=False, batch_min_rows=11)
        assert det.config == DetectorConfig(eager=False, batch_min_rows=11)


# -------------------------------------------------------- dynamic workloads


def test_dynamic_rebuild_preserves_config():
    """Satellite 1: register/withdraw must not reset ablation flags."""
    cfg = DetectorConfig(use_batched_refresh=False, eager=False,
                         use_safe_inliers=False)
    q1 = OutlierQuery(r=300, k=3, window=WindowSpec(win=200, slide=50))
    q2 = OutlierQuery(r=700, k=5, window=WindowSpec(win=100, slide=50))
    dyn = DynamicSOPDetector([q1], config=cfg)
    points = _stream(n=400)
    batches = list(batches_by_boundary(points, 50, "count"))
    dyn.step(*batches[0])
    assert dyn._inner.config == cfg
    handle = dyn.add_query(q2)
    dyn.step(*batches[1])
    assert dyn._inner.config == cfg
    assert isinstance(dyn._inner.refresh_engine, PerPointRefresh)
    dyn.remove_query(handle)
    dyn.step(*batches[2])
    assert dyn._inner.config == cfg


def test_dynamic_rejects_config_plus_kwargs():
    with pytest.raises(TypeError, match="not both"):
        DynamicSOPDetector(config=DetectorConfig(), eager=False)
