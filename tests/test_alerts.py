"""Unit tests for alert routing and sinks."""

import pytest

from repro import (
    AlertRouter,
    CallbackSink,
    CollectingSink,
    CountingSink,
    OutlierQuery,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    run_with_alerts,
)

from conftest import line_points


def group():
    return QueryGroup([
        OutlierQuery(r=1.0, k=2, window=WindowSpec(win=20, slide=10),
                     name="q0"),
        OutlierQuery(r=5.0, k=2, window=WindowSpec(win=20, slide=10),
                     name="q1"),
    ])


class TestSinks:
    def test_collecting_sink_orders(self):
        sink = CollectingSink()
        router = AlertRouter(group(), [sink], dedupe="all")
        router.dispatch(10, {0: frozenset({5, 3}), 1: frozenset({3})})
        assert [(a.query_index, a.seq) for a in sink.alerts] == \
            [(0, 3), (0, 5), (1, 3)]
        assert sink.by_query()[0][0].query_name == "q0"

    def test_callback_sink(self):
        seen = []
        router = AlertRouter(group(), [CallbackSink(seen.append)],
                             dedupe="all")
        router.dispatch(10, {0: frozenset({1})})
        assert seen[0].seq == 1 and seen[0].boundary == 10

    def test_callback_requires_callable(self):
        with pytest.raises(TypeError):
            CallbackSink("not callable")

    def test_counting_sink(self):
        sink = CountingSink()
        router = AlertRouter(group(), [sink], dedupe="all")
        router.dispatch(10, {0: frozenset({1, 2}), 1: frozenset({1})})
        router.dispatch(20, {0: frozenset({2})})
        assert sink.total == 4
        assert sink.per_query == {0: 3, 1: 1}
        # seq 2 at t=20 was already an outlier at t=10: not first_seen
        assert sink.first_seen == 3


class TestDedupeModes:
    def _alerts(self, dedupe, frames):
        sink = CollectingSink()
        router = AlertRouter(group(), [sink], dedupe=dedupe)
        for t, out in frames:
            router.dispatch(t, out)
        return [(a.boundary, a.seq) for a in sink.alerts
                if a.query_index == 0]

    FRAMES = [
        (10, {0: frozenset({1})}),
        (20, {0: frozenset({1, 2})}),
        (30, {0: frozenset({2})}),     # 1 recovers
        (40, {0: frozenset({1, 2})}),  # 1 relapses
    ]

    def test_all_mode(self):
        assert self._alerts("all", self.FRAMES) == [
            (10, 1), (20, 1), (20, 2), (30, 2), (40, 1), (40, 2)]

    def test_transitions_mode(self):
        assert self._alerts("transitions", self.FRAMES) == [
            (10, 1), (20, 2), (40, 1)]

    def test_first_mode_with_recovery_reset(self):
        # point 1 re-alerts at 40 because it recovered at 30
        assert self._alerts("first", self.FRAMES) == [
            (10, 1), (20, 2), (40, 1)]

    def test_first_mode_without_recovery_reset(self):
        sink = CollectingSink()
        router = AlertRouter(group(), [sink], dedupe="first",
                             reset_on_recovery=False)
        for t, out in self.FRAMES:
            router.dispatch(t, out)
        assert [(a.boundary, a.seq) for a in sink.alerts
                if a.query_index == 0] == [(10, 1), (20, 2)]

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            AlertRouter(group(), [], dedupe="sometimes")

    def test_dispatch_returns_emitted_count(self):
        router = AlertRouter(group(), [], dedupe="all")
        assert router.dispatch(10, {0: frozenset({1, 2})}) == 2


class TestRunWithAlerts:
    def test_end_to_end(self):
        # an isolated value appears mid-stream
        values = [0.0] * 25 + [50.0] + [0.0] * 14
        sink = CollectingSink()
        detector = SOPDetector(group())
        result = run_with_alerts(detector, line_points(values), [sink])
        assert result.boundaries == 4
        flagged = {a.seq for a in sink.alerts}
        assert 25 in flagged

    def test_outputs_match_plain_run(self, small_stream, small_group):
        from repro import compare_outputs
        plain = SOPDetector(small_group).run(small_stream)
        routed = run_with_alerts(SOPDetector(small_group), small_stream,
                                 [CountingSink()])
        assert not compare_outputs(plain.outputs, routed.outputs)
