"""Unit tests for the experiment runner and report formatting."""

import pytest

from repro import NaiveDetector, SOPDetector, make_synthetic_points
from repro.bench import (
    AlgoSpec,
    DEFAULT_ALGOS,
    ScaledRanges,
    build_workload,
    format_ranges,
    format_series,
    format_table,
    run_series,
)

RANGES = ScaledRanges(
    r=(200.0, 1500.0), k=(2, 6), win=(60, 160), slide=(20, 80),
    slide_quantum=20, fixed_r=500.0, fixed_k=3, fixed_win=100,
    fixed_slide=20,
)


@pytest.fixture(scope="module")
def series():
    pts = make_synthetic_points(500, seed=8)
    return run_series(
        "Fig X", pts, [2, 4],
        lambda n: build_workload("C", n, seed=n, ranges=RANGES),
        [AlgoSpec("sop", SOPDetector),
         AlgoSpec("naive", NaiveDetector, max_queries=2)],
    )


class TestRunSeries:
    def test_all_cells_present(self, series):
        assert series.sizes == [2, 4]
        assert set(series.runs) == {"sop", "naive"}

    def test_cap_skips_large_sizes(self, series):
        assert series.runs["naive"][0] is not None
        assert series.runs["naive"][1] is None

    def test_metric_accessors(self, series):
        cpu = series.cpu_ms("sop")
        assert len(cpu) == 2 and all(c is not None and c >= 0 for c in cpu)
        assert series.memory_units("naive")[1] is None
        assert series.memory_kb("sop")[0] > 0

    def test_speedup_over(self, series):
        sp = series.speedup_over("sop", "naive")
        assert sp[0] is not None and sp[0] > 0
        assert sp[1] is None  # naive skipped at size 4

    def test_default_algos_caps(self):
        algos = DEFAULT_ALGOS(mcod_cap=10, leap_cap=5)
        by_name = {a.name: a for a in algos}
        assert by_name["sop"].max_queries is None
        assert by_name["mcod"].max_queries == 10
        assert by_name["leap"].max_queries == 5


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", "n", [1, 10], ["a", "b"],
                            [[1.0, 2.5], [None, 1234.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "(skipped)" in text
        assert "1,234" in text

    def test_format_series_sections(self, series):
        text = format_series(series)
        assert "CPU time per window" in text
        assert "peak memory" in text
        assert "CPU speedup of sop" in text
        assert "vs naive" in text

    def test_format_ranges_lists_table2_shape(self):
        text = format_ranges(RANGES)
        assert "K in [2, 6)" in text and "fixed" in text
