"""Unit tests for the synthetic (Gaussian + uniform) stream generator."""

import numpy as np
import pytest

from repro import SyntheticConfig, SyntheticStream, make_synthetic_points


class TestConfigValidation:
    def test_defaults(self):
        cfg = SyntheticConfig()
        assert cfg.dim == 2 and 0 < cfg.outlier_rate < 0.05 + 1e-9

    @pytest.mark.parametrize("kw", [
        {"outlier_rate": -0.1}, {"outlier_rate": 1.0}, {"dim": 0},
        {"n_clusters": 0}, {"segment_len": 0}, {"value_range": (5.0, 5.0)},
    ])
    def test_rejects_bad_values(self, kw):
        with pytest.raises(ValueError):
            SyntheticConfig(**kw)

    def test_stream_rejects_config_plus_overrides(self):
        with pytest.raises(TypeError):
            SyntheticStream(SyntheticConfig(), dim=3)


class TestGeneration:
    def test_deterministic_for_seed(self):
        a = make_synthetic_points(500, seed=42)
        b = make_synthetic_points(500, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_synthetic_points(200, seed=1)
        b = make_synthetic_points(200, seed=2)
        assert a != b

    def test_seq_contiguous_from_zero(self):
        pts = make_synthetic_points(300, seed=0)
        assert [p.seq for p in pts] == list(range(300))

    def test_dimensionality(self):
        pts = make_synthetic_points(10, dim=5, seed=0)
        assert all(p.dim == 5 for p in pts)

    def test_outlier_slots_per_segment(self):
        stream = SyntheticStream(SyntheticConfig(segment_len=200,
                                                 outlier_rate=0.04))
        assert stream.segment_outlier_count() == 8

    def test_zero_outlier_rate(self):
        pts = make_synthetic_points(400, outlier_rate=0.0, seed=5,
                                    segment_len=100)
        # all points are Gaussian around cluster centers: the spread of the
        # whole sample is far below the uniform box
        arr = np.asarray([p.values for p in pts])
        assert arr.std() < 2500

    def test_gaussian_mass_concentrated(self):
        # with a 3% outlier rate, >90% of points sit near some cluster
        stream = SyntheticStream(SyntheticConfig(seed=9, outlier_rate=0.03,
                                                 cluster_spread=50.0))
        pts = stream.take(1000)
        arr = np.asarray([p.values for p in pts])
        # distance to the nearest of the other points: inliers are dense
        close = 0
        for i in range(0, 1000, 10):
            d = np.sqrt(((arr - arr[i]) ** 2).sum(axis=1))
            d[i] = np.inf
            if d.min() < 200:
                close += 1
        assert close >= 85

    def test_values_clipped_to_box(self):
        pts = make_synthetic_points(2000, seed=3,
                                    value_range=(0.0, 1000.0))
        arr = np.asarray([p.values for p in pts])
        # Gaussians can spill past the box by a few sigma, uniforms cannot;
        # everything stays in a sane envelope
        assert arr.min() > -1500 and arr.max() < 2500

    def test_take_is_prefix(self):
        stream = SyntheticStream(SyntheticConfig(seed=7))
        first = stream.take(50)
        again = stream.take(100)
        assert again[:50] == first
