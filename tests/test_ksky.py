"""General K-SKY behaviour beyond the paper's worked examples."""

import pytest

from repro import (
    KSkyRunner,
    OutlierQuery,
    QueryGroup,
    WindowBuffer,
    WindowSpec,
    euclidean,
    parse_workload,
    sky_evaluate,
)
from repro.core.lsky import LSky

from conftest import line_points


def make_plan(rs_and_ks, win=100, slide=10):
    return parse_workload(QueryGroup([
        OutlierQuery(r=float(r), k=k, window=WindowSpec(win=win, slide=slide))
        for r, k in rs_and_ks
    ]))


def run_on(values, plan, p_values=(0.0,), p_seq=-1, chunk_size=256):
    buf = WindowBuffer(euclidean)
    buf.extend(line_points(values))
    return KSkyRunner(plan, chunk_size=chunk_size).run_new_point(
        p_values, p_seq, buf)


class TestSkyEvaluate:
    def test_beyond_grid_rejected(self):
        plan = make_plan([(1, 2)])
        assert not sky_evaluate(plan, LSky(plan.n_layers), layer=plan.n_layers)

    def test_insertable_when_underdominated(self):
        plan = make_plan([(1, 2), (5, 2)])
        sky = LSky(plan.n_layers)
        assert sky_evaluate(plan, sky, layer=1)

    def test_rejected_at_kmax_dominators(self):
        plan = make_plan([(1, 2)])
        sky = LSky(plan.n_layers)
        sky.insert(9, 9.0, 0)
        sky.insert(8, 8.0, 0)
        assert not sky_evaluate(plan, sky, layer=0)

    def test_condition3_rejects_far_point_for_exhausted_low_k(self):
        # k=2 reaches r=10 (layer 1), k=5 only r=1 (layer 0); with 2
        # dominators only k=5 still cares, and it cannot use layer 1
        plan = make_plan([(10, 2), (1, 5)])
        sky = LSky(plan.n_layers)
        sky.insert(9, 9.0, 0)
        sky.insert(8, 8.0, 0)
        assert not sky_evaluate(plan, sky, layer=1)
        assert sky_evaluate(plan, sky, layer=0)


class TestTermination:
    def test_early_termination_skips_old_points(self):
        # ten zeros: k=2 within r=1 resolves after two insertions
        plan = make_plan([(1.0, 2)])
        result = run_on([0.0] * 10, plan)
        assert result.terminated_early
        assert result.examined < 10
        assert len(result.lsky) == 2

    def test_exhausts_when_unresolved(self):
        plan = make_plan([(1.0, 5)])
        result = run_on([0.0, 10.0, 10.0, 0.0, 10.0], plan)
        assert not result.terminated_early
        assert result.examined == 5
        assert not result.resolved_all

    def test_resolution_requires_min_layer(self):
        # neighbors only at the far radius: the small-r query never
        # resolves, so the scan cannot stop (Alg. 1 line 12 semantics)
        plan = make_plan([(1.0, 2), (10.0, 2)])
        result = run_on([5.0] * 8, plan)
        assert not result.terminated_early
        assert result.examined == 8

    def test_multi_subgroup_requires_all_resolved(self):
        # k=1 resolves immediately; k=3 needs three close points that only
        # appear early in the stream (scanned last)
        plan = make_plan([(1.0, 1), (1.0, 3)])
        values = [0.0, 0.0, 0.0, 5.0, 5.0, 0.0]
        result = run_on(values, plan)
        assert result.resolved_all
        # had to dig past the two far points to find the 3rd close one
        assert result.examined >= 4


class TestSelfExclusion:
    def test_evaluated_point_skipped(self):
        plan = make_plan([(1.0, 1)])
        buf = WindowBuffer(euclidean)
        buf.extend(line_points([0.0, 50.0]))
        result = KSkyRunner(plan).run_new_point((0.0,), 0, buf)
        # the point at seq 0 is p itself: its only potential neighbor is
        # far away, so the skyband is empty
        assert len(result.lsky) == 0
        assert result.examined == 1


class TestChunking:
    @pytest.mark.parametrize("chunk", [1, 2, 3, 7, 256])
    def test_chunk_size_does_not_change_output(self, chunk, rng):
        plan = make_plan([(0.5, 2), (1.5, 4), (3.0, 3)])
        values = rng.uniform(0, 4, size=60)
        baseline = run_on(list(values), plan, chunk_size=256)
        other = run_on(list(values), plan, chunk_size=chunk)
        assert list(baseline.lsky.entries()) == list(other.lsky.entries())
        assert baseline.examined == other.examined

    def test_chunk_size_validated(self):
        plan = make_plan([(1, 1)])
        with pytest.raises(ValueError):
            KSkyRunner(plan, chunk_size=0)


class TestOnePassProperty:
    def test_entries_strictly_time_descending(self, rng):
        plan = make_plan([(0.5, 3), (2.0, 5)])
        values = rng.uniform(0, 3, size=80)
        result = run_on(list(values), plan)
        seqs = result.lsky.seqs
        assert all(a > b for a, b in zip(seqs, seqs[1:]))

    def test_skyband_size_bounded_by_layers_times_kmax(self, rng):
        plan = make_plan([(0.5, 2), (1.0, 4), (2.0, 3)])
        values = rng.uniform(0, 2, size=200)
        result = run_on(list(values), plan)
        assert len(result.lsky) <= plan.n_layers * plan.k_max

    def test_every_entry_underdominated_at_insertion(self, rng):
        """Replay the insertion log; each entry obeyed Def. 6 (1)+(2)."""
        plan = make_plan([(0.4, 3), (1.2, 2), (2.5, 4)])
        values = rng.uniform(0, 3, size=120)
        result = run_on(list(values), plan)
        replay = LSky(plan.n_layers)
        for seq, pos, layer in result.lsky.entries():
            assert replay.dominator_count(layer) < plan.k_max
            replay.insert(seq, pos, layer)


class TestLeastExamination:
    def test_rebuild_equals_scratch(self, rng):
        """Incremental K-SKY gives the same skyband as a full rescan."""
        plan = make_plan([(0.5, 2), (1.5, 3)], win=60, slide=20)
        values = list(rng.uniform(0, 2, size=80))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(values[:60]))
        runner = KSkyRunner(plan)
        p_values, p_seq = (0.7,), -1
        first = runner.run_new_point(p_values, p_seq, buf)

        buf.extend(line_points(values[60:80], start_seq=60))
        buf.evict_before(20, by_time=False)
        old = first.lsky.unexpired_entries(20.0)
        new_from = 60 - buf.points[0].seq
        incremental = runner.run_existing_point(
            p_values, p_seq, buf, old, new_from)
        scratch = runner.run_new_point(p_values, p_seq, buf)
        # identical windowed counts for every (layer, window-start) pair the
        # evaluator can ask about
        for m in range(plan.n_layers):
            for ws in (20.0, 35.0, 50.0, 70.0):
                for cap in (1, 2, 3):
                    assert (incremental.lsky.count_within(m, ws, cap)
                            == scratch.lsky.count_within(m, ws, cap))

    def test_incremental_examines_fewer(self, rng):
        plan = make_plan([(0.5, 2)], win=60, slide=20)
        values = list(rng.uniform(0, 5, size=80))
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(values[:60]))
        runner = KSkyRunner(plan)
        first = runner.run_new_point((2.5,), -1, buf)
        buf.extend(line_points(values[60:80], start_seq=60))
        buf.evict_before(20, by_time=False)
        old = first.lsky.unexpired_entries(20.0)
        incremental = runner.run_existing_point((2.5,), -1, buf, old,
                                                60 - buf.points[0].seq)
        assert incremental.examined <= 20 + len(old)
