"""Property-based tests (hypothesis) for the core invariants.

These generate random streams and workloads and assert the properties the
paper proves:

* Lemma 1 (sufficiency): SOP's answers equal brute force for every query
  at every boundary;
* LSky structural invariants (descending time, dominator bound);
* safe-inlier soundness (a point marked fully safe is never reported);
* schedule arithmetic (every member boundary is a swift boundary).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    KSkyRunner,
    NaiveDetector,
    OutlierQuery,
    Point,
    QueryGroup,
    SOPDetector,
    SwiftSchedule,
    WindowBuffer,
    WindowSpec,
    compare_outputs,
    euclidean,
    parse_workload,
)

# ---------------------------------------------------------------- strategies

values_1d = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False,
              allow_infinity=False),
    min_size=8, max_size=120,
)

query_params = st.tuples(
    st.floats(min_value=0.1, max_value=8.0),   # r
    st.integers(min_value=1, max_value=6),     # k
    st.integers(min_value=2, max_value=12),    # win/4 (scaled below)
    st.integers(min_value=1, max_value=4),     # slide/4
)

workloads = st.lists(query_params, min_size=1, max_size=5)


def build_group(params):
    queries = []
    for r, k, win4, slide4 in params:
        win, slide = win4 * 4, slide4 * 4
        queries.append(OutlierQuery(
            r=round(float(r), 3), k=k,
            window=WindowSpec(win=win, slide=min(slide, win)),
        ))
    return QueryGroup(queries)


def build_points(values):
    return [Point(seq=i, values=(float(v),)) for i, v in enumerate(values)]


# ------------------------------------------------------------------- lemma 1

@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads)
def test_sop_equals_brute_force(values, params):
    group = build_group(params)
    pts = build_points(values)
    expected = NaiveDetector(group).run(pts)
    actual = SOPDetector(group).run(pts)
    diffs = compare_outputs(expected.outputs, actual.outputs)
    assert not diffs, "\n".join(diffs)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads,
       flags=st.tuples(st.booleans(), st.booleans(), st.booleans()))
def test_sop_ablations_equal_brute_force(values, params, flags):
    eager, safe, least = flags
    group = build_group(params)
    pts = build_points(values)
    expected = NaiveDetector(group).run(pts)
    actual = SOPDetector(group, eager=eager, use_safe_inliers=safe,
                         use_least_examination=least).run(pts)
    assert not compare_outputs(expected.outputs, actual.outputs)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads)
def test_mcod_equals_brute_force(values, params):
    from repro import MCODDetector
    group = build_group(params)
    pts = build_points(values)
    expected = NaiveDetector(group).run(pts)
    actual = MCODDetector(group).run(pts)
    assert not compare_outputs(expected.outputs, actual.outputs)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads)
def test_leap_equals_brute_force(values, params):
    from repro import LEAPDetector
    group = build_group(params)
    pts = build_points(values)
    expected = NaiveDetector(group).run(pts)
    actual = LEAPDetector(group).run(pts)
    assert not compare_outputs(expected.outputs, actual.outputs)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads,
       split=st.integers(min_value=1, max_value=6))
def test_dynamic_detector_matches_static(values, params, split):
    """Adding all queries up front through the dynamic wrapper is
    indistinguishable from a static detector."""
    from repro import DynamicSOPDetector
    from repro.streams.source import batches_by_boundary

    group = build_group(params)
    pts = build_points(values)
    static = SOPDetector(group).run(pts)
    dyn = DynamicSOPDetector(list(group.queries))
    outputs = {}
    for t, batch in batches_by_boundary(pts, dyn.swift.slide, group.kind):
        for h, seqs in dyn.step(t, batch).items():
            outputs[(h, t)] = seqs
    assert not compare_outputs(static.outputs, outputs)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(rows=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
              st.floats(min_value=0.0, max_value=5.0, allow_nan=False)),
    min_size=8, max_size=60),
    params=workloads)
def test_time_based_windows_equal_brute_force(rows, params):
    """Detector equivalence holds for time-based windows with irregular
    inter-arrival gaps (including simultaneous timestamps)."""
    values = [v for v, _ in rows]
    gaps = [g for _, g in rows]
    times, now = [], 0.0
    for g in gaps:
        now += g
        times.append(now)
    pts = [Point(seq=i, values=(float(v),), time=t)
           for i, (v, t) in enumerate(zip(values, times))]
    queries = [q.replace(kind="time") for q in build_group(params).queries]
    group = QueryGroup(queries)
    expected = NaiveDetector(group).run(pts)
    actual = SOPDetector(group).run(pts)
    assert not compare_outputs(expected.outputs, actual.outputs)


# ------------------------------------------------------------ LSky invariants

@settings(max_examples=60, deadline=None)
@given(values=values_1d, params=workloads,
       probe=st.floats(min_value=0.0, max_value=10.0))
def test_lsky_invariants(values, params, probe):
    group = build_group(params)
    plan = parse_workload(group)
    buf = WindowBuffer(euclidean)
    buf.extend(build_points(values))
    result = KSkyRunner(plan).run_new_point((float(probe),), -1, buf)
    sky = result.lsky
    # strictly descending arrival order
    assert all(a > b for a, b in zip(sky.seqs, sky.seqs[1:]))
    # layers within the grid
    assert all(0 <= m < plan.n_layers for m in sky.layers)
    # replaying insertions never exceeds k_max dominators
    from repro.core.lsky import LSky
    replay = LSky(plan.n_layers)
    for seq, pos, layer in sky.entries():
        assert replay.dominator_count(layer) < plan.k_max
        replay.insert(seq, pos, layer)
    # examined count never exceeds the population
    assert result.examined <= len(values)


@settings(max_examples=40, deadline=None)
@given(values=values_1d, params=workloads,
       probe=st.floats(min_value=0.0, max_value=10.0))
def test_ksky_sufficiency_per_query(values, params, probe):
    """Lemma 1 sufficiency, windowed: for every member query and every
    window suffix, the skyband's capped neighbor count equals the true
    capped count.  (The raw skyband may hold *less* than the k_max nearest
    neighbors: K-SKY stops as soon as every sub-group is resolved --
    Example 3 terminates before p1 -- so sufficiency is per query, not per
    kNN set.)
    """
    group = build_group(params)
    plan = parse_workload(group)
    buf = WindowBuffer(euclidean)
    pts = build_points(values)
    buf.extend(pts)
    result = KSkyRunner(plan).run_new_point((float(probe),), -1, buf)
    for qi, q in enumerate(group):
        m_q = plan.query_layers[qi]
        for ws in (0.0, len(values) / 3, 2 * len(values) / 3):
            true_count = sum(
                1 for p in pts
                if p.seq >= ws
                and plan.grid.layer_of(abs(p.values[0] - probe)) <= m_q
            )
            sky_count = result.lsky.count_within(m_q, ws, q.k)
            assert min(q.k, sky_count) == min(q.k, true_count)


# ----------------------------------------------------------- safe inliers

@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(values=values_1d, params=workloads)
def test_fully_safe_points_never_reported(values, params):
    group = build_group(params)
    pts = build_points(values)
    det = SOPDetector(group)
    safe_at = {}  # seq -> boundary when marked safe
    reported_after_safe = []
    from repro.streams.source import batches_by_boundary
    for t, batch in batches_by_boundary(pts, det.swift.slide, group.kind):
        out = det.step(t, batch)
        for p in det.buffer.points:
            st_ = det.state_of(p.seq)
            if st_ is not None and st_.fully_safe and p.seq not in safe_at:
                safe_at[p.seq] = t
        for qi, seqs in out.items():
            for s in seqs:
                if s in safe_at and safe_at[s] < t:
                    reported_after_safe.append((s, qi, t))
    assert not reported_after_safe


# ------------------------------------------------------------ persistence

@settings(max_examples=40, deadline=None)
@given(rows=st.lists(
    st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
             min_size=2, max_size=2),
    min_size=1, max_size=30))
def test_points_csv_roundtrip_exact(rows, tmp_path_factory):
    from repro import load_points_csv, points_from_array, save_points_csv
    path = tmp_path_factory.mktemp("csv") / "pts.csv"
    pts = points_from_array(rows)
    save_points_csv(pts, path)
    assert load_points_csv(path) == pts


@settings(max_examples=40, deadline=None)
@given(params=workloads)
def test_workload_json_roundtrip_exact(params, tmp_path_factory):
    from repro import load_workload, save_workload
    path = tmp_path_factory.mktemp("wl") / "wl.json"
    queries = list(build_group(params).queries)
    save_workload(queries, path)
    assert load_workload(path) == queries


# ------------------------------------------------------------- schedules

@settings(max_examples=80, deadline=None)
@given(slides=st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                       max_size=6),
       wins=st.lists(st.integers(min_value=40, max_value=200), min_size=1,
                     max_size=6))
def test_swift_schedule_covers_members(slides, wins):
    n = min(len(slides), len(wins))
    specs = [WindowSpec(win=w, slide=min(s, w))
             for w, s in zip(wins[:n], slides[:n])]
    sched = SwiftSchedule(specs)
    assert sched.win == max(sp.win for sp in specs)
    for sp in specs:
        assert sp.slide % sched.slide == 0
    swift_boundaries = set(sched.boundaries(800))
    for sp in specs:
        assert set(sp.boundaries(800)) <= swift_boundaries


@settings(max_examples=60, deadline=None)
@given(values=values_1d)
def test_naive_outlier_monotone_in_r(values):
    """With fixed k, a larger radius can only shrink the outlier set."""
    from repro import brute_force_outliers
    pts = build_points(values)
    small = brute_force_outliers(pts, 0.5, 2, euclidean)
    large = brute_force_outliers(pts, 2.0, 2, euclidean)
    assert large <= small


@settings(max_examples=60, deadline=None)
@given(values=values_1d)
def test_naive_outlier_monotone_in_k(values):
    """With fixed r, a larger k can only grow the outlier set."""
    from repro import brute_force_outliers
    pts = build_points(values)
    low = brute_force_outliers(pts, 1.0, 1, euclidean)
    high = brute_force_outliers(pts, 1.0, 4, euclidean)
    assert low <= high
