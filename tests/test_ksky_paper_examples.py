"""K-SKY verified against the paper's worked examples (Figs. 1-4).

The examples describe an evaluated point ``p`` and stream points given by
``<arrival time, distance to p>``.  We realize them as 1-D points with
``p`` at the origin and each ``p_i`` at value ``d_i``, so Euclidean
distance reproduces the figures exactly.  ``p_i`` of the paper is
``seq = i - 1`` here.
"""


from repro import (
    KSkyRunner,
    OutlierQuery,
    QueryGroup,
    WindowBuffer,
    WindowSpec,
    euclidean,
    parse_workload,
)

from conftest import line_points


def make_plan(rs_and_ks, win=8, slide=4):
    queries = [
        OutlierQuery(r=float(r), k=k, window=WindowSpec(win=win, slide=slide))
        for r, k in rs_and_ks
    ]
    return parse_workload(QueryGroup(queries))


class TestExample1And2:
    """Q = {q1(1), q2(2), q3(3)}, k = 3, distances (2,3,2,1,1,4,3,2)."""

    DISTANCES = [2, 3, 2, 1, 1, 4, 3, 2]

    def _run(self):
        plan = make_plan([(1, 3), (2, 3), (3, 3)])
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(self.DISTANCES))
        runner = KSkyRunner(plan)
        return plan, buf, runner, runner.run_new_point((0.0,), -1, buf)

    def test_skyband_points_match_example1(self):
        # "the skyband points are {<t4,1>, <t5,1>, <t7,3>, <t8,2>}"
        _, _, _, result = self._run()
        assert sorted(result.lsky.seqs) == [3, 4, 6, 7]

    def test_bucket_placement_matches_figure2(self):
        # B1 = {p4, p5}, B2 = {p8}, B3 = {p7}; p6 excluded (d=4 > r_max)
        _, _, _, result = self._run()
        assert result.lsky.layer_buckets() == {0: [3, 4], 1: [7], 2: [6]}

    def test_p6_excluded_by_def5_condition3(self):
        _, _, _, result = self._run()
        assert 5 not in result.lsky.seqs

    def test_p1_p2_p3_dominated_out(self):
        # "all of them are excluded ... dominated by at least 3 data points"
        _, _, _, result = self._run()
        assert not {0, 1, 2} & set(result.lsky.seqs)

    def test_all_points_examined_no_early_termination(self):
        # only two points lie within r_min=1, so the k=3 termination
        # condition never fires and the scan sees all 8 points
        _, _, _, result = self._run()
        assert result.examined == 8
        assert not result.terminated_early

    def test_k_distance_observation(self):
        # kNN(p) = {p4, p5, p8}; k-distance = 2 -> outlier for q1 only
        plan, _, _, result = self._run()
        kd = result.lsky.k_distance_layer(3)
        assert kd == plan.grid.layer_of(2.0) == 1
        # outlier iff the query layer is below the k-distance layer
        assert [result.lsky.count_within(m, 0.0, 3) < 3 for m in range(3)] \
            == [True, False, False]

    def test_example2_window_slide(self):
        """W_{c+1}: p1-p4 expire, p9-p12 arrive far away (d > 3)."""
        plan, buf, runner, result = self._run()
        old = result.lsky.unexpired_entries(4.0)  # window now starts at p5
        # p7 (not in kNN of W_c) was retained -- the necessity argument
        assert [seq for seq, _, _ in old] == [7, 6, 4]
        buf.evict_before(4, by_time=False)
        buf.extend(line_points([5, 6, 7, 5], start_seq=8))
        new_from = 8 - buf.points[0].seq
        res2 = runner.run_existing_point((0.0,), -1, buf, old, new_from)
        # kNN is now {p5:1, p8:2, p7:3}: k-distance = 3
        assert sorted(res2.lsky.seqs) == [4, 6, 7]
        assert res2.lsky.k_distance_layer(3) == plan.grid.layer_of(3.0) == 2
        # "p is an outlier for q1 and q2, while being an inlier only for q3"
        assert [res2.lsky.count_within(m, 4.0, 3) < 3 for m in range(3)] \
            == [True, True, False]

    def test_least_examination_skips_non_skyband_survivors(self):
        plan, buf, runner, result = self._run()
        old = result.lsky.unexpired_entries(4.0)
        buf.evict_before(4, by_time=False)
        buf.extend(line_points([5, 6, 7, 5], start_seq=8))
        res2 = runner.run_existing_point((0.0,), -1, buf, old, 4)
        # examined = 4 new arrivals + 3 unexpired skyband points, although
        # the window holds 8 points
        assert res2.examined == 7


class TestExample3:
    """QG1 = (k=2; r 1,3,4), QG2 = (k=3; r 2,3,4); Fig. 4 distances."""

    # distances to p per the Example 3 narrative (p1's distance is never
    # examined; any in-range value works)
    DISTANCES = [2, 1, 3, 2, 1, 4, 3, 2]

    def _run(self):
        plan = make_plan([(1, 2), (3, 2), (4, 2), (2, 3), (3, 3), (4, 3)])
        buf = WindowBuffer(euclidean)
        buf.extend(line_points(self.DISTANCES))
        runner = KSkyRunner(plan)
        return plan, runner.run_new_point((0.0,), -1, buf)

    def test_grid_is_figure3(self):
        plan, _ = self._run()
        assert plan.grid.values == (1.0, 2.0, 3.0, 4.0)
        assert plan.k_list == (2, 3)

    def test_bucket_placement_matches_figure4(self):
        # p8->B2, p7->B3, p6->B4, p5->B1, p4->B2, p2->B1; p3 excluded
        _, result = self._run()
        assert result.lsky.layer_buckets() == {
            0: [1, 4],   # B1: p2, p5
            1: [3, 7],   # B2: p4, p8
            2: [6],      # B3: p7
            3: [5],      # B4: p6
        }

    def test_p3_excluded(self):
        # "p3 will be excluded from LSky, since p3 (in B3) is dominated by
        # four points" (here: p5, p4, p8, p7 at layers <= 2 when examined;
        # either way >= k_max = 3)
        _, result = self._run()
        assert 2 not in result.lsky.seqs

    def test_p1_never_examined(self):
        # "The earliest arrival p1 is not evaluated."
        _, result = self._run()
        assert result.examined == 7
        assert result.terminated_early
        assert result.resolved_all

    def test_all_queries_classify_p_as_inlier(self):
        plan, result = self._run()
        for qi, query in enumerate(plan.group):
            m = plan.query_layers[qi]
            count = result.lsky.count_within(m, 0.0, query.k)
            assert count >= query.k, f"{query.name} should be inlier"

    def test_qg2_resolution_at_p4(self):
        # after p4 is processed, three points sit at layers <= layer(r2=2):
        # p5(B1), p8(B2), p4(B2) -- that resolves QG2 (k=3)
        _, result = self._run()
        sky = result.lsky
        upto_p4 = [s for s in sky.seqs if s >= 3]
        assert len([s for s in upto_p4
                    if sky.layers[sky.seqs.index(s)] <= 1]) == 3
