"""Batched-vs-per-point refresh equivalence (the correctness gate of the
batched K-SKY engine).

The batched path must be *indistinguishable* from the per-point path: same
outlier sets, same per-boundary ``memory_units()`` (evidence content), same
work accounting (``examined``, terminations, safe markings,
``distance_rows``).  Everything here runs both engines and compares.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DynamicSOPDetector,
    OutlierQuery,
    Point,
    QueryGroup,
    SOPDetector,
    WindowSpec,
    make_synthetic_points,
)
from repro.bench import build_workload, default_ranges
from repro.core.ksky import KSkyRunner
from repro.core.parser import parse_workload
from repro.streams.source import batches_by_boundary
from repro.streams.windows import TIME

from conftest import line_points


def _stream(n=1500, seed=9):
    return make_synthetic_points(n, dim=2, outlier_rate=0.04, seed=seed)


def _run_lockstep(group, points, **kwargs):
    """Drive batched and per-point detectors boundary-by-boundary, asserting
    per-boundary equality of outputs and evidence volume."""
    det_b = SOPDetector(group, use_batched_refresh=True, **kwargs)
    det_p = SOPDetector(group, use_batched_refresh=False, **kwargs)
    for t, batch in batches_by_boundary(points, group.swift.slide,
                                        group.kind):
        out_b = det_b.step(t, batch)
        out_p = det_p.step(t, batch)
        assert out_b == out_p, f"outputs diverge at t={t}"
        assert det_b.memory_units() == det_p.memory_units(), (
            f"evidence volume diverges at t={t}"
        )
        assert det_b.tracked_points() == det_p.tracked_points()
    return det_b, det_p


# --------------------------------------------------------------- Table 1 grid


@pytest.mark.parametrize("spec", list("ABCDEFG"))
def test_table1_grid_equivalence(spec):
    group = build_workload(spec, n_queries=6, seed=17,
                           ranges=default_ranges())
    det_b, det_p = _run_lockstep(group, _stream())
    # identical work accounting, not just identical answers
    for key in ("ksky_runs", "points_examined", "early_terminations",
                "fully_safe_marked"):
        assert det_b.stats[key] == det_p.stats[key], key
    assert det_b.buffer.distance_rows == det_p.buffer.distance_rows
    # ... and the batched engine actually engaged
    assert det_b.stats["batched_scans"] > 0
    assert det_p.stats["batched_scans"] == 0
    assert det_b.buffer.kernel_calls < det_p.buffer.kernel_calls


@pytest.mark.parametrize("spec", ["A", "C", "G"])
def test_time_window_equivalence(spec):
    group = build_workload(spec, n_queries=5, seed=23,
                           ranges=default_ranges(kind=TIME))
    _run_lockstep(group, _stream())


def test_warmup_partial_windows():
    """Streams shorter than the largest window: every boundary evaluates a
    partially filled window."""
    group = QueryGroup([
        OutlierQuery(r=300, k=3, window=WindowSpec(win=5000, slide=100)),
        OutlierQuery(r=900, k=8, window=WindowSpec(win=4000, slide=200)),
    ])
    _run_lockstep(group, _stream(n=900))


def test_crossover_and_ablation_flags():
    group = build_workload("A", n_queries=4, seed=5)
    stream = _stream(n=800)
    # a crossover above any batch size keeps everything on the per-point path
    det_hi = SOPDetector(group, use_batched_refresh=True,
                         batch_min_rows=10 ** 6)
    res_hi = det_hi.run(stream)
    assert det_hi.stats["batched_scans"] == 0
    det_off = SOPDetector(group, use_batched_refresh=False)
    res_off = det_off.run(stream)
    assert det_off.stats["batched_scans"] == 0
    det_on = SOPDetector(group, use_batched_refresh=True, batch_min_rows=1)
    res_on = det_on.run(stream)
    assert det_on.stats["batched_scans"] > 0
    assert res_hi.outputs == res_off.outputs == res_on.outputs


def test_ablation_interactions():
    """The batched flag composes with the paper's other ablations."""
    group = build_workload("C", n_queries=5, seed=31)
    stream = _stream(n=1000)
    for kwargs in (
        {"use_least_examination": False},
        {"use_safe_inliers": False},
        {"eager": False},
        {"chunk_size": 64},
    ):
        det_b, det_p = _run_lockstep(group, stream, **kwargs)
        assert det_b.stats["points_examined"] == det_p.stats["points_examined"]


# ------------------------------------------------------------- dynamic path


def test_dynamic_register_withdraw_equivalence():
    stream = _stream(n=1400)
    qs = [
        OutlierQuery(r=400, k=4, window=WindowSpec(win=300, slide=100)),
        OutlierQuery(r=900, k=7, window=WindowSpec(win=500, slide=100)),
    ]
    extra = OutlierQuery(r=1300, k=5, window=WindowSpec(win=400, slide=200))
    dets = [DynamicSOPDetector(qs, use_batched_refresh=flag)
            for flag in (True, False)]
    handle = {}
    slide = dets[0].swift.slide
    for t, batch in batches_by_boundary(stream, slide, qs[0].kind):
        outs = [d.step(t, batch) for d in dets]
        assert outs[0] == outs[1], f"dynamic outputs diverge at t={t}"
        assert dets[0].memory_units() == dets[1].memory_units()
        if t == 600:
            for d in dets:
                handle[d] = d.add_query(extra)
        if t == 1000:
            for d in dets:
                d.remove_query(handle[d])


# ----------------------------------------------------------- property-based


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    n_points=st.integers(min_value=40, max_value=220),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_random_stream_equivalence(data, n_points, seed):
    """Random workloads over random 1-D streams: the two engines agree on
    every boundary output and every evidence count."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0, 1000, size=n_points)
    points = line_points(values)
    n_queries = data.draw(st.integers(min_value=1, max_value=5))
    queries = []
    for _ in range(n_queries):
        win = data.draw(st.integers(min_value=2, max_value=12)) * 10
        slide = data.draw(st.sampled_from([10, 20, 30]))
        queries.append(OutlierQuery(
            r=data.draw(st.floats(min_value=1.0, max_value=400.0,
                                  allow_nan=False)),
            k=data.draw(st.integers(min_value=1, max_value=8)),
            window=WindowSpec(win=win, slide=min(slide, win)),
        ))
    group = QueryGroup(queries)
    _run_lockstep(group, points, batch_min_rows=1)


# ------------------------------------------------------- runner-level checks


def _plan_and_buffer(points, group):
    from repro.core.point import get_metric
    from repro.streams.buffer import WindowBuffer

    plan = parse_workload(group)
    runner = KSkyRunner(plan, chunk_size=16)
    buf = WindowBuffer(get_metric("euclidean"))
    buf.extend(points)
    return plan, runner, buf


def test_scan_precomputed_matches_scan_new_arrivals(small_group):
    points = _stream(n=300)
    plan, runner, buf = _plan_and_buffer(points, small_group)
    new_from = 120
    tail = buf.points[new_from:]
    cand_seqs = [q.seq for q in tail]
    cand_poss = [float(q.seq) for q in tail]
    for p in buf.points[::17]:
        ref = runner.scan_new_arrivals(p.values, p.seq, buf, new_from)
        dists = buf.pairwise_block(
            np.asarray([p.values]), new_from, len(buf))
        layers = plan.grid.layers_of(dists)[0].tolist()
        got = runner.scan_precomputed(p.seq, layers, cand_seqs, cand_poss)
        assert got.examined == ref.examined
        assert got.terminated_early == ref.terminated_early
        assert list(got.lsky.entries()) == list(ref.lsky.entries())


@pytest.mark.parametrize("lo", [0, 75])
def test_scan_batched_matches_per_point(small_group, lo):
    points = _stream(n=260)
    _, runner, buf = _plan_and_buffer(points, small_group)
    rows = list(range(0, len(buf), 5))
    seqs = [buf.points[i].seq for i in rows]
    batched = runner.scan_batched(rows, seqs, buf, lo)
    for i, row in enumerate(rows):
        p = buf.points[row]
        if lo == 0:
            ref = runner.run_new_point(p.values, p.seq, buf)
        else:
            ref = runner.scan_new_arrivals(p.values, p.seq, buf, lo)
        got = batched[i]
        assert got.examined == ref.examined, f"row {row}"
        assert got.terminated_early == ref.terminated_early, f"row {row}"
        assert list(got.lsky.entries()) == list(ref.lsky.entries()), (
            f"row {row}"
        )


# ------------------------------------------------------------- observability


def test_refresh_profile_records_boundaries():
    group = build_workload("A", n_queries=4, seed=2)
    det = SOPDetector(group)
    res = det.run(_stream(n=1000))
    prof = det.profile
    assert prof.boundaries == res.boundaries
    assert prof.refresh_ns > 0
    assert prof.kernel_launches > 0
    assert prof.batch_rows > 0
    # SoA default: python_insert_iters is the interpreted work actually
    # spent (replays + fallback visits), a strict subset of the logical
    # scan; the bulk of the inserts land as soa_insert_rows instead.
    assert 0 < prof.python_insert_iters <= det.stats["points_examined"]
    assert prof.soa_insert_rows > 0
    # the object oracle keeps the paper's L == points_examined identity
    obj = SOPDetector(build_workload("A", n_queries=4, seed=2),
                      skyband_impl="object")
    obj.run(_stream(n=1000))
    assert (obj.profile.python_insert_iters
            == obj.stats["points_examined"])
    assert obj.profile.soa_insert_rows == 0
    assert len(prof.samples) == prof.boundaries
    work = det.work_stats()
    for key in ("refresh_boundaries", "refresh_ns", "kernel_launches",
                "batch_rows", "python_insert_iters"):
        assert work[key] == prof.as_dict()[key]
    assert work["distance_rows"] == det.buffer.distance_rows


def test_evaluate_cache_reuses_flatten():
    """Due evaluations between mutations reuse the flattened arrays; any
    mutation (new batch, eviction, evidence change) invalidates them."""
    group = build_workload("A", n_queries=4, seed=2)
    det = SOPDetector(group)
    stream = _stream(n=1000)
    res = det.run(stream)
    rebuilds = det.stats["eval_flatten_rebuilds"]
    assert 0 < rebuilds <= det.profile.boundaries
    # repeated evaluation with no intervening mutation: zero extra rebuilds,
    # identical answers
    due = list(range(len(group.queries)))
    t = res.boundaries * det.swift.slide
    first = det._evaluate_due(due, t)
    mid = det.stats["eval_flatten_rebuilds"]
    second = det._evaluate_due(due, t)
    assert det.stats["eval_flatten_rebuilds"] == mid
    assert first == second
    # a new batch invalidates the cache
    last = stream[-1]
    det.step(t, [Point(seq=last.seq + 1, values=last.values,
                       time=last.time + 1.0)])
    det._evaluate_due(due, t)
    assert det.stats["eval_flatten_rebuilds"] > mid
