"""SoA skyband tier: object-vs-array equivalence gates.

Three layers of defense, mirroring the house lockstep style:

* property tests drive :class:`LSky` and :class:`LSkySoA` through random
  insert/extend_older interleavings and compare every observable;
* the vectorized resolve (`insert_limits` + `resolve_chunk_inserts`) is
  checked against a literal sequential reference loop;
* full-detector lockstep runs every Table 1 spec with
  ``skyband_impl="object"`` and ``"soa"`` side by side, asserting
  per-boundary output, evidence, and work-stat equality -- including
  crash+resume through checkpoints that restore the SoA config.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    AutoRefresh,
    DetectorConfig,
    KSkyRunner,
    LSky,
    LSkySoA,
    SOPDetector,
    VectorizedSkybandEngine,
    make_synthetic_points,
    parse_workload,
)
from repro.bench import build_workload, default_ranges
from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.core.lsky_soa import (
    insert_limits,
    numba_active,
    resolve_chunk_inserts,
    resolve_chunk_inserts_numba,
)
from repro.streams.source import batches_by_boundary

# --------------------------------------------------------- structure twins


def _observables(sky, n_layers, probe_seqs, probe_poss):
    """Every queryable fact about a skyband, python-typed."""
    return {
        "len": len(sky),
        "entries": [tuple(e) for e in sky.entries()],
        "dominators": [sky.dominator_count(m)
                       for m in range(-1, n_layers + 2)],
        "kdist": [sky.k_distance_layer(k) for k in range(1, len(sky) + 2)],
        "succ": [list(sky.succ_layers(s)) for s in probe_seqs],
        "within": [sky.count_within(m, p, cap)
                   for m in range(n_layers)
                   for p in probe_poss
                   for cap in (1, 3, 10**9)],
        "unexpired": [[tuple(e) for e in sky.unexpired_entries(p)]
                      for p in probe_poss],
        "buckets": sky.layer_buckets(),
        "cards": sky.layer_cardinalities(),
    }


@st.composite
def _skyband_script(draw):
    """(n_layers, ops): ops are single inserts or extend_older batches."""
    n_layers = draw(st.integers(1, 5))
    n_entries = draw(st.integers(0, 40))
    seqs = sorted(draw(st.lists(st.integers(0, 10_000), min_size=n_entries,
                                max_size=n_entries, unique=True)),
                  reverse=True)
    ops = []
    i = 0
    while i < len(seqs):
        batch = draw(st.integers(1, 6))
        chunk = [(s, float(draw(st.integers(0, 500))),
                  draw(st.integers(0, n_layers - 1)))
                 for s in seqs[i: i + batch]]
        kind = draw(st.sampled_from(["insert", "extend"]))
        if kind == "insert":
            ops.extend(("insert", e) for e in chunk)
        else:
            ops.append(("extend", chunk))
        i += batch
    return n_layers, ops


@settings(max_examples=120, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_skyband_script())
def test_soa_matches_object_under_interleavings(script):
    n_layers, ops = script
    obj, soa = LSky(n_layers), LSkySoA(n_layers)
    for kind, payload in ops:
        if kind == "insert":
            seq, pos, layer = payload
            obj.insert(seq, pos, layer)
            soa.insert(seq, pos, layer)
        else:
            obj.extend_older(payload)
            soa.extend_older(payload)
        probe_seqs = [-1, 0, 5_000, 10_001] + [e[0] for e in obj.entries()]
        probe_poss = [-1.0, 0.0, 250.0, 501.0]
        assert (_observables(obj, n_layers, probe_seqs, probe_poss)
                == _observables(soa, n_layers, probe_seqs, probe_poss))


@pytest.mark.parametrize("cls", [LSky, LSkySoA])
def test_validation_parity(cls):
    with pytest.raises(ValueError):
        cls(0)
    sky = cls(3)
    sky.insert(10, 10.0, 1)
    with pytest.raises(ValueError, match="descending"):
        sky.insert(10, 10.0, 0)
    with pytest.raises(ValueError, match="descending"):
        sky.insert(11, 11.0, 0)
    with pytest.raises(ValueError, match="out of range"):
        sky.insert(5, 5.0, 3)
    with pytest.raises(ValueError, match="out of range"):
        sky.insert(5, 5.0, -1)
    with pytest.raises(ValueError, match="strictly older"):
        sky.extend_older([(10, 10.0, 0)])
    with pytest.raises(ValueError, match="seq-descending"):
        sky.extend_older([(8, 8.0, 0), (9, 9.0, 0)])
    with pytest.raises(ValueError, match="out of range"):
        sky.extend_older([(8, 8.0, 0), (7, 7.0, 5)])
    with pytest.raises(ValueError):
        sky.k_distance_layer(0)
    sky.extend_older([])  # no-op, no error
    assert len(sky) == 1


def test_from_parts_adopts_arrays():
    seqs = np.array([9, 7, 4], dtype=np.int64)
    poss = np.array([9.0, 7.0, 4.0])
    layers = np.array([1, 0, 1], dtype=np.int64)
    sky = LSkySoA.from_parts(3, seqs, poss, layers)
    assert [tuple(e) for e in sky.entries()] == [
        (9, 9.0, 1), (7, 7.0, 0), (4, 4.0, 1)]
    assert sky.dominator_count(0) == 1
    assert sky.dominator_count(1) == 3
    assert sky.layer_cardinalities() == {0: 1, 1: 2}


def test_soa_cache_invalidation_across_mutation():
    sky = LSkySoA(3)
    sky.insert(9, 9.0, 0)
    assert sky.layer_buckets() == {0: [9]}
    assert sky.layer_cardinalities() == {0: 1}
    sky.insert(7, 7.0, 1)
    assert sky.layer_buckets() == {0: [9], 1: [7]}
    sky.extend_older([(5, 5.0, 1), (3, 3.0, 0)])
    assert sky.layer_buckets() == {0: [3, 9], 1: [5, 7]}
    assert sky.layer_cardinalities() == {0: 2, 1: 2}
    assert sky.dominator_count(0) == 2
    sky.extend_arrays(np.array([1], dtype=np.int64), np.array([1.0]),
                      np.array([2], dtype=np.int64))
    assert sky.layer_cardinalities() == {0: 2, 1: 2, 2: 1}
    assert sky.k_distance_layer(5) == 2


# --------------------------------------------------- vectorized resolve


def _sequential_resolve(m_scan, layer_counts, allowed, k_max):
    """The literal Alg. 2 insert loop -- the oracle for the resolve."""
    counts = list(layer_counts)
    out = []
    for s, m in enumerate(m_scan):
        dc = sum(counts[: m + 1])
        if dc < k_max and m <= allowed[dc]:
            counts[m] += 1
            out.append(s)
    return out


@st.composite
def _resolve_case(draw):
    n_layers = draw(st.integers(1, 6))
    k_max = draw(st.integers(1, 8))
    # allowed_layer is a suffix max in the plan => nonincreasing
    allowed = sorted(
        draw(st.lists(st.integers(0, n_layers - 1), min_size=k_max,
                      max_size=k_max)), reverse=True)
    m_scan = draw(st.lists(st.integers(0, n_layers - 1), max_size=60))
    counts = draw(st.lists(st.integers(0, 4), min_size=n_layers,
                           max_size=n_layers))
    return n_layers, k_max, allowed, m_scan, counts


@settings(max_examples=200, deadline=None)
@given(_resolve_case())
def test_resolve_matches_sequential_loop(case):
    n_layers, k_max, allowed, m_scan, counts = case
    limits = insert_limits(allowed, k_max, n_layers)
    m_arr = np.asarray(m_scan, dtype=np.int64)
    c_arr = np.asarray(counts, dtype=np.int64)
    pos, layers = resolve_chunk_inserts(m_arr, c_arr, limits)
    expect = _sequential_resolve(m_scan, counts, allowed, k_max)
    assert pos.tolist() == expect
    assert layers.tolist() == [m_scan[p] for p in expect]
    # the input counts must not be mutated by the resolve
    assert c_arr.tolist() == counts


def test_insert_limits_closed_form():
    # allowed = [2, 2, 1, 0]: layer 0 admitted while c < 4 (= k_max),
    # layer 1 while c < 3, layer 2 while c < 2, layer 3 never
    limits = insert_limits([2, 2, 1, 0], k_max=4, n_layers=4)
    assert limits.tolist() == [4, 3, 2, 0]


@pytest.mark.skipif(not numba_active(),
                    reason="numba unavailable or REPRO_NUMBA!=1")
@settings(max_examples=50, deadline=None)
@given(_resolve_case())
def test_numba_resolve_matches_numpy(case):  # pragma: no cover
    n_layers, k_max, allowed, m_scan, counts = case
    limits = insert_limits(allowed, k_max, n_layers)
    m_arr = np.asarray(m_scan, dtype=np.int64)
    c_arr = np.asarray(counts, dtype=np.int64)
    a_arr = np.asarray(allowed, dtype=np.int64)
    pos_np, lay_np = resolve_chunk_inserts(m_arr, c_arr, limits)
    pos_nb, lay_nb = resolve_chunk_inserts_numba(m_arr, c_arr, a_arr, k_max)
    assert pos_np.tolist() == pos_nb.tolist()
    assert lay_np.tolist() == lay_nb.tolist()


# --------------------------------------------- full-detector lockstep


def _stream(n=1500, seed=9):
    return make_synthetic_points(n, dim=2, outlier_rate=0.04, seed=seed)


def _evidence(det):
    out = {}
    for seq, st_ in det._states.items():
        if st_.seqs is None:
            out[seq] = (None, st_.fully_safe)
        else:
            out[seq] = ((st_.seqs.tolist(), st_.poss.tolist(),
                         st_.layers.tolist()), st_.fully_safe)
    return out


def _lockstep_impls(group, points, strategy):
    dets = {impl: SOPDetector(group, config=DetectorConfig(
        refresh_strategy=strategy, skyband_impl=impl))
        for impl in ("object", "soa")}
    ref = dets["object"]
    for t, batch in batches_by_boundary(points, group.swift.slide,
                                        group.kind):
        outs = {impl: d.step(t, batch) for impl, d in dets.items()}
        assert outs["soa"] == outs["object"], f"outputs diverge at t={t}"
        assert _evidence(dets["soa"]) == _evidence(ref), (
            f"LSky contents diverge at t={t}")
        assert dets["soa"].memory_units() == ref.memory_units()
    for key in ("ksky_runs", "points_examined", "early_terminations",
                "fully_safe_marked", "batched_scans"):
        assert dets["soa"].stats[key] == ref.stats[key], key
    assert dets["soa"].buffer.distance_rows == ref.buffer.distance_rows
    assert dets["soa"].buffer.kernel_calls == ref.buffer.kernel_calls
    return dets


@pytest.mark.parametrize("spec", list("ABCDEFG"))
def test_table1_soa_lockstep_grid(spec):
    group = build_workload(spec, n_queries=6, seed=17,
                           ranges=default_ranges())
    dets = _lockstep_impls(group, _stream(), "grid")
    # the soa engine actually did the work in arrays, not the python loop
    soa, obj = dets["soa"], dets["object"]
    assert soa.profile.soa_insert_rows > 0
    assert obj.profile.soa_insert_rows == 0
    assert (soa.profile.python_insert_iters
            < obj.profile.python_insert_iters)


@pytest.mark.parametrize("strategy", ["batched", "per-point", "auto"])
def test_soa_lockstep_other_strategies(strategy):
    group = build_workload("C", n_queries=5, seed=23,
                           ranges=default_ranges())
    _lockstep_impls(group, _stream(n=1000), strategy)


def test_soa_checkpoint_crash_resume(tmp_path):
    """Half-run a soa detector, checkpoint, restore, finish: identical to
    an uninterrupted soa run AND to an uninterrupted object run."""
    group = build_workload("D", n_queries=5, seed=31,
                           ranges=default_ranges())
    points = _stream(n=1200, seed=13)
    config = DetectorConfig(refresh_strategy="grid", skyband_impl="soa")
    batches = list(batches_by_boundary(points, group.swift.slide,
                                       group.kind))
    full = SOPDetector(group, config=config).run(points)
    full_obj = SOPDetector(group, config=DetectorConfig(
        refresh_strategy="grid")).run(points)
    assert full.outputs == full_obj.outputs

    det = SOPDetector(group, config=config)
    outputs = {}
    half = len(batches) // 2
    for t, batch in batches[:half]:
        for qi, seqs in det.step(t, batch).items():
            outputs[(qi, t)] = seqs
    path = tmp_path / "soa.ckpt"
    save_checkpoint(det, batches[half - 1][0], path)
    restored, last_t = load_checkpoint(path)
    assert last_t == batches[half - 1][0]
    # the config (and with it the soa engine) rode the checkpoint header
    assert restored.config.skyband_impl == "soa"
    assert restored.skyband_engine is not None
    for t, batch in batches[half:]:
        for qi, seqs in restored.step(t, batch).items():
            outputs[(qi, t)] = seqs
    assert outputs == {(qi, t): seqs
                       for (qi, t), seqs in full.outputs.items()}


# ---------------------------------------- per-point engine entry points


def _result_facts(res):
    """Everything a caller can observe about a KSkyResult."""
    return {
        "entries": [tuple(e) for e in res.lsky.entries()],
        "examined": res.examined,
        "terminated_early": res.terminated_early,
        "resolved_all": res.resolved_all,
    }


@st.composite
def _perpoint_case(draw):
    spec = draw(st.sampled_from("ABC"))
    n_queries = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 50))
    chunk = draw(st.sampled_from([3, 7, 16, 64, 256]))
    n_points = draw(st.integers(2, 90))
    stream_seed = draw(st.integers(0, 50))
    # evaluated point: an index into the buffer (self-skip path) or an
    # external probe absent from the buffer (j_self == -1 path)
    self_idx = draw(st.one_of(st.none(), st.integers(0, n_points - 1)))
    new_from = draw(st.integers(0, n_points))
    n_old = draw(st.integers(0, 6))
    return (spec, n_queries, seed, chunk, n_points, stream_seed,
            self_idx, new_from, n_old)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(_perpoint_case())
def test_perpoint_engine_lockstep(case):
    """Every per-point entry point of the SoA engine is bit-identical to
    the ``KSkyRunner`` oracle: same skyband entries, examined counts,
    termination, and resolution flags, across chunk boundaries, self-skip
    vs external probes, arbitrary suffixes, and old-evidence merges."""
    (spec, n_queries, seed, chunk, n_points, stream_seed,
     self_idx, new_from, n_old) = case
    group = build_workload(spec, n_queries=n_queries, seed=seed,
                           ranges=default_ranges())
    plan = parse_workload(group)
    runner = KSkyRunner(plan, chunk_size=chunk)
    engine = VectorizedSkybandEngine(plan, chunk_size=chunk)
    det = SOPDetector(group)  # buffer factory only: metric + kernels
    buf = det.buffer
    buf.extend(make_synthetic_points(n_points, dim=2, outlier_rate=0.1,
                                     seed=stream_seed))
    if self_idx is None:
        p_values, p_seq = (0.25, -0.5), -1
    else:
        p = buf.points[self_idx]
        p_values, p_seq = p.values, p.seq

    a = runner.run_new_point(p_values, p_seq, buf)
    b = engine.run_new_point(p_values, p_seq, buf)
    assert _result_facts(a) == _result_facts(b)

    a = runner.scan_new_arrivals(p_values, p_seq, buf, new_from)
    b = engine.scan_new_arrivals(p_values, p_seq, buf, new_from)
    assert _result_facts(a) == _result_facts(b)

    # old evidence: strictly arrival-descending, older than every new
    # arrival in the scanned suffix, layers within the plan
    first_new_seq = (buf.points[new_from].seq if new_from < len(buf)
                    else buf.points[-1].seq + 1)
    old_entries = [(first_new_seq - 1 - i, float(10 + 3 * i),
                    i % plan.n_layers) for i in range(n_old)]
    a = runner.run_existing_point(p_values, p_seq, buf, old_entries,
                                  new_from)
    b = engine.run_existing_point(p_values, p_seq, buf, old_entries,
                                  new_from)
    assert _result_facts(a) == _result_facts(b)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=st.sampled_from("ABCDEFG"), seed=st.integers(0, 30),
       stream_seed=st.integers(0, 30))
def test_perpoint_detector_hypothesis_lockstep(spec, seed, stream_seed):
    """Full-detector lockstep under the per-point strategy: hypothesis
    picks the workload and stream, ``_lockstep_impls`` asserts identical
    outputs, evidence, memory, and work stats at every boundary."""
    group = build_workload(spec, n_queries=4, seed=seed,
                           ranges=default_ranges())
    _lockstep_impls(group, _stream(n=400, seed=stream_seed), "per-point")


@pytest.mark.parametrize("shards,backend",
                         [(2, "serial"), (2, "process")])
def test_sharded_skyband_impl_equivalence(shards, backend):
    """skyband_impl flows through the sharded runtime: object and soa
    shardings produce identical outputs at every boundary."""
    from functools import partial

    from repro import QueryGroup, Runtime, compare_outputs

    group = build_workload("C", n_queries=4, seed=5,
                           ranges=default_ranges())
    points = make_synthetic_points(800, dim=2, outlier_rate=0.05, seed=23)

    def run(impl):
        config = DetectorConfig(refresh_strategy="grid", skyband_impl=impl,
                                shards=shards, backend=backend)
        factory = partial(SOPDetector, config=config)
        runtime = Runtime(QueryGroup(list(group.queries)), factory=factory,
                          config=config)
        return runtime.run(points).outputs

    try:
        got = run("soa")
        want = run("object")
    except OSError as exc:  # pragma: no cover - restricted sandboxes
        pytest.skip(f"process pool unavailable: {exc}")
    diffs = compare_outputs(want, got)
    assert not diffs, "\n".join(diffs[:10])


def test_legacy_object_checkpoint_resumes_under_soa_default(tmp_path):
    """A pre-refactor checkpoint (header config pins
    ``skyband_impl="object"``) restores cleanly now that the default is
    "soa", and the resumed run is bit-exact however it is restored:

    * no factory -> the saved config rides along (still "object");
    * factory with the new default -> loud mismatch naming both impls;
    * factory + ``allow_config_mismatch=True`` -> deliberate upgrade to
      the canonical SoA tier, same outputs.
    """
    group = build_workload("E", n_queries=5, seed=41,
                           ranges=default_ranges())
    points = _stream(n=1200, seed=19)
    legacy = DetectorConfig(refresh_strategy="grid", skyband_impl="object")
    batches = list(batches_by_boundary(points, group.swift.slide,
                                       group.kind))
    full = SOPDetector(group, config=legacy).run(points)

    det = SOPDetector(group, config=legacy)
    outputs = {}
    half = len(batches) // 2
    for t, batch in batches[:half]:
        for qi, seqs in det.step(t, batch).items():
            outputs[(qi, t)] = seqs
    path = tmp_path / "legacy_object.ckpt"
    save_checkpoint(det, batches[half - 1][0], path)

    # 1. default restore: the saved object config is preserved
    restored, last_t = load_checkpoint(path)
    assert last_t == batches[half - 1][0]
    assert restored.config.skyband_impl == "object"
    assert restored.skyband_engine is None

    # 2. a factory carrying the new default fails loudly, naming impls
    with pytest.raises(ValueError, match="skyband_impl.*object.*soa"):
        load_checkpoint(path, factory=lambda g: SOPDetector(
            g, config=legacy.replace(skyband_impl="soa")))

    # 3. explicit upgrade to the canonical SoA tier
    upgraded, _ = load_checkpoint(
        path,
        factory=lambda g: SOPDetector(
            g, config=legacy.replace(skyband_impl="soa")),
        allow_config_mismatch=True)
    assert upgraded.config.skyband_impl == "soa"
    assert upgraded.skyband_engine is not None

    # both resumed runs finish bit-exact vs the uninterrupted legacy run
    for resumed in (restored, upgraded):
        got = dict(outputs)
        for t, batch in batches[half:]:
            for qi, seqs in resumed.step(t, batch).items():
                got[(qi, t)] = seqs
        assert got == {(qi, t): seqs
                       for (qi, t), seqs in full.outputs.items()}


# ------------------------------------------------------------- AutoRefresh


class _FakeDet:
    """Just enough detector surface for AutoRefresh._pick/_observe."""

    class _Buf(list):
        pass

    def __init__(self, n):
        self.buffer = [0] * n
        self.stats = {"ksky_runs": 0}

        class P:
            candidates_pruned = 0
        self.profile = P()


def test_auto_small_windows_probe_per_point_never_grid():
    """Small-regime ineligibility: after warmup, the probe target below
    ``_MIN_WINDOW`` is the per-point engine; grid is never picked there.
    With the batched probe amortizing well (many rows per launch),
    per-point stays ineligible and is never *chosen* -- even though its
    measured ns-per-row is 10x cheaper.  The wall clock is evidence, not
    input: the choice must be reproducible across runs."""
    eng = AutoRefresh()
    det = _FakeDet(AutoRefresh._MIN_WINDOW - 1)
    picks = []
    for _ in range(200):
        name = eng._pick(det)
        picks.append(name)
        assert name != "grid"
        ns = 10_000 if name == "per-point" else 100_000
        eng._observe(name, ns=ns, rows=10, pruned=0,
                     batch_rows=200, launches=5)  # 40 rows/launch
        eng._boundary += 1
    assert picks[:AutoRefresh._WARMUP] == ["batched"] * AutoRefresh._WARMUP
    assert "per-point" in picks   # probed once for the trace...
    assert eng._chosen == "batched"   # ...but never chosen while amortized
    boundary, choice, ev = eng.decisions[0]
    assert ev["regime"] == "small"
    assert ev["per_point_eligible"] is False
    assert choice == "batched"
    # ineligible per-point is not even re-probed once the trace has it
    assert picks.count("per-point") == AutoRefresh._PROBE


def test_auto_small_windows_settle_on_eligible_per_point():
    """Small-regime eligibility: batched boundaries averaging under
    ``_PP_MAX_ROWS_PER_LAUNCH`` rows per kernel launch (the batch tier is
    pure overhead) make per-point eligible, and it is chosen on counters
    alone."""
    eng = AutoRefresh()
    det = _FakeDet(AutoRefresh._MIN_WINDOW - 1)
    for _ in range(AutoRefresh._WARMUP):
        assert eng._pick(det) == "batched"
        eng._observe("batched", ns=100_000, rows=10, pruned=0,
                     batch_rows=3, launches=10)  # 0.3 rows/launch
        eng._boundary += 1
    for _ in range(AutoRefresh._PROBE):
        assert eng._pick(det) == "per-point"
        eng._observe("per-point", ns=10_000, rows=10, pruned=0)
        eng._boundary += 1
    assert eng._chosen == "per-point"
    boundary, choice, ev = eng.decisions[-1]
    assert choice == "per-point"
    assert ev["regime"] == "small"
    assert ev["per_point_eligible"] is True
    # measured costs ride along as evidence only
    assert ev["per_point_ns_per_row"] < ev["batched_ns_per_row"]
    assert "grid_eligible" not in ev
    assert eng._pick(det) == "per-point"


def test_auto_regime_shift_sanitizes_choice_and_probes():
    """Growing past ``_MIN_WINDOW`` drops a settled per-point choice (not
    eligible in the large regime), then the large regime probes grid with
    its own cost book -- small-regime samples do not leak."""
    eng = AutoRefresh()
    small = _FakeDet(AutoRefresh._MIN_WINDOW - 1)
    for _ in range(AutoRefresh._WARMUP):
        eng._pick(small)
        eng._observe("batched", ns=100_000, rows=10, pruned=0,
                     batch_rows=3, launches=10)
        eng._boundary += 1
    for _ in range(AutoRefresh._PROBE):
        assert eng._pick(small) == "per-point"
        eng._observe("per-point", ns=10_000, rows=10, pruned=0)
        eng._boundary += 1
    assert eng._chosen == "per-point"

    large = _FakeDet(AutoRefresh._MIN_WINDOW)
    # first large pick: stale per-point choice falls back to batched and
    # the large regime has no grid sample yet, so grid is probed
    assert eng._pick(large) == "grid"
    assert eng._chosen == "batched"
    eng._observe("grid", ns=10_000, rows=10,
                 pruned=int(10 * AutoRefresh._MIN_PRUNE_PER_ROW))
    eng._boundary += 1
    assert eng._pick(large) == "grid"
    eng._observe("grid", ns=10_000, rows=10,
                 pruned=int(10 * AutoRefresh._MIN_PRUNE_PER_ROW))
    eng._boundary += 1
    # the large-regime decision compared grid against a batched cost that
    # must come from the large regime; none exists yet -> stays batched
    boundary, choice, ev = eng.decisions[-1]
    assert ev["regime"] == "large"
    assert ev["batched_ns_per_row"] is None
    assert choice == "batched"


def test_auto_probes_then_settles_on_measured_winner():
    eng = AutoRefresh()
    det = _FakeDet(AutoRefresh._MIN_WINDOW)
    # warmup boundaries run batched
    for _ in range(AutoRefresh._WARMUP):
        assert eng._pick(det) == "batched"
        eng._observe("batched", ns=100_000, rows=10, pruned=0)
        eng._boundary += 1
    # then it probes grid; feed it a cheap, well-pruning grid sample
    for _ in range(AutoRefresh._PROBE):
        assert eng._pick(det) == "grid"
        eng._observe("grid", ns=10_000, rows=10,
                     pruned=int(10 * AutoRefresh._MIN_PRUNE_PER_ROW))
        eng._boundary += 1
    assert eng._chosen == "grid"
    assert eng.decisions and eng.decisions[-1][1] == "grid"
    assert eng._pick(det) == "grid"


def test_auto_ineligible_grid_never_chosen():
    eng = AutoRefresh()
    det = _FakeDet(AutoRefresh._MIN_WINDOW)
    for _ in range(AutoRefresh._WARMUP):
        eng._pick(det)
        eng._observe("batched", ns=100_000, rows=10, pruned=0)
        eng._boundary += 1
    # grid measures *faster* but prunes nothing -> stays batched
    for _ in range(AutoRefresh._PROBE):
        assert eng._pick(det) == "grid"
        eng._observe("grid", ns=10_000, rows=10, pruned=0)
        eng._boundary += 1
    assert eng._chosen == "batched"
    ev = eng.decisions[-1][2]
    assert ev["grid_eligible"] is False


def test_auto_detector_equals_batched_outputs():
    """End-to-end: auto produces the same outputs as forced batched."""
    group = build_workload("B", n_queries=4, seed=7,
                           ranges=default_ranges())
    points = _stream(n=900, seed=5)
    out_auto = SOPDetector(group, config=DetectorConfig(
        refresh_strategy="auto")).run(points)
    out_b = SOPDetector(group, config=DetectorConfig(
        refresh_strategy="batched")).run(points)
    assert out_auto.outputs == out_b.outputs
