"""Grid-pruned refresh equivalence (the correctness gate of the pruning
engine).

``GridPrunedRefresh`` must be *indistinguishable* from ``BatchedRefresh``
and ``PerPointRefresh`` in everything except the kernel volume: same
outlier sets, same per-boundary ``memory_units()``, same LSky layer
contents per tracked point, same ``points_examined``.  Only
``distance_rows``/``kernel_calls`` may (and should) shrink -- pruned
candidates are precisely the ``layer >= n_layers`` discards, which never
touch scan state.  Everything here runs the engines side by side and
compares.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    DetectorConfig,
    GridPrunedRefresh,
    OutlierQuery,
    Point,
    QueryGroup,
    Runtime,
    SOPDetector,
    WindowSpec,
    compare_outputs,
    make_synthetic_points,
)
from repro.bench import build_workload, default_ranges
from repro.streams.source import batches_by_boundary
from repro.streams.windows import TIME

from conftest import line_points

STRATEGIES = ("per-point", "batched", "grid")


def _stream(n=1500, seed=9):
    return make_synthetic_points(n, dim=2, outlier_rate=0.04, seed=seed)


def _det(group, strategy, **kwargs):
    config = DetectorConfig(refresh_strategy=strategy, **kwargs)
    return SOPDetector(group, config=config)


def _evidence(det):
    """Frozen LSky layer contents (and safety state) per tracked point."""
    out = {}
    for seq, st_ in det._states.items():
        if st_.seqs is None:
            out[seq] = (None, st_.fully_safe)
        else:
            out[seq] = ((st_.seqs.tolist(), st_.poss.tolist(),
                         st_.layers.tolist()), st_.fully_safe)
    return out


def _run_lockstep(group, points, **kwargs):
    """Drive all three engines boundary-by-boundary, asserting per-boundary
    equality of outputs, evidence volume, and LSky layer contents."""
    dets = {s: _det(group, s, **kwargs) for s in STRATEGIES}
    ref = dets["batched"]
    for t, batch in batches_by_boundary(points, group.swift.slide,
                                        group.kind):
        outs = {s: d.step(t, batch) for s, d in dets.items()}
        ev_ref = _evidence(ref)
        for s, d in dets.items():
            assert outs[s] == outs["batched"], f"{s} outputs diverge at t={t}"
            assert d.memory_units() == ref.memory_units(), (
                f"{s} evidence volume diverges at t={t}")
            assert d.tracked_points() == ref.tracked_points()
            assert _evidence(d) == ev_ref, (
                f"{s} LSky contents diverge at t={t}")
    return dets


# --------------------------------------------------------------- Table 1 grid


@pytest.mark.parametrize("spec", list("ABCDEFG"))
def test_table1_grid_equivalence(spec):
    group = build_workload(spec, n_queries=6, seed=17,
                           ranges=default_ranges())
    dets = _run_lockstep(group, _stream())
    det_g, det_b = dets["grid"], dets["batched"]
    # identical logical work, not just identical answers
    for key in ("ksky_runs", "points_examined", "early_terminations",
                "fully_safe_marked"):
        assert det_g.stats[key] == det_b.stats[key], key
    # ... and the pruning actually engaged and shrank the kernels
    assert det_g.stats["batched_scans"] > 0
    assert det_g.profile.candidates_pruned > 0
    assert det_g.profile.kernel_cells_visited > 0
    assert det_b.profile.candidates_pruned == 0
    assert det_g.buffer.distance_rows <= det_b.buffer.distance_rows


@pytest.mark.parametrize("spec", ["A", "C", "G"])
def test_time_window_equivalence(spec):
    group = build_workload(spec, n_queries=5, seed=23,
                           ranges=default_ranges(kind=TIME))
    _run_lockstep(group, _stream())


def test_warmup_partial_windows():
    group = QueryGroup([
        OutlierQuery(r=300, k=3, window=WindowSpec(win=5000, slide=100)),
        OutlierQuery(r=900, k=8, window=WindowSpec(win=4000, slide=200)),
    ])
    _run_lockstep(group, _stream(n=900))


def test_ablation_interactions():
    """The grid strategy composes with the paper's other ablations."""
    group = build_workload("C", n_queries=5, seed=31)
    stream = _stream(n=1000)
    for kwargs in (
        {"use_least_examination": False},
        {"use_safe_inliers": False},
        {"eager": False},
        {"chunk_size": 64},
    ):
        dets = _run_lockstep(group, stream, **kwargs)
        assert (dets["grid"].stats["points_examined"]
                == dets["batched"].stats["points_examined"])


def test_crossover_falls_back_per_point():
    group = build_workload("A", n_queries=4, seed=5)
    stream = _stream(n=800)
    det_hi = _det(group, "grid", batch_min_rows=10 ** 6)
    res_hi = det_hi.run(stream)
    assert det_hi.stats["batched_scans"] == 0
    assert det_hi.profile.candidates_pruned == 0
    det_on = _det(group, "grid", batch_min_rows=1)
    res_on = det_on.run(stream)
    assert det_on.profile.candidates_pruned > 0
    assert res_hi.outputs == res_on.outputs


# ------------------------------------------------------------ config plumbing


def test_config_strategy_selection():
    group = build_workload("A", n_queries=3, seed=1)
    assert isinstance(_det(group, "grid").refresh_engine, GridPrunedRefresh)
    assert _det(group, "batched").refresh_engine.name == "batched"
    assert _det(group, "per-point").refresh_engine.name == "per-point"
    # auto names the measured crossover engine unless the legacy ablation
    # flag asks for per-point
    auto_on = SOPDetector(group, config=DetectorConfig(
        refresh_strategy="auto", use_batched_refresh=True))
    auto_off = SOPDetector(group, config=DetectorConfig(
        refresh_strategy="auto", use_batched_refresh=False))
    assert auto_on.refresh_engine.name == "auto"
    assert auto_off.refresh_engine.name == "per-point"
    # legacy kwarg spelling reaches the config too
    legacy = SOPDetector(group, refresh_strategy="grid")
    assert isinstance(legacy.refresh_engine, GridPrunedRefresh)
    with pytest.raises(ValueError, match="refresh_strategy"):
        DetectorConfig(refresh_strategy="quantum")


def test_config_roundtrip_preserves_strategy():
    config = DetectorConfig(refresh_strategy="grid")
    assert DetectorConfig.from_dict(config.as_dict()) == config
    # configs predating the field (old checkpoints) restore unchanged
    old = {k: v for k, v in DetectorConfig().as_dict().items()
           if k != "refresh_strategy"}
    assert DetectorConfig.from_dict(old).resolved_refresh_strategy() == (
        "auto")


# --------------------------------------------------- sharded runtime plumbing


@pytest.mark.parametrize("shards", [1, 2])
@pytest.mark.parametrize("backend", ["serial", "process"])
def test_sharded_grid_equivalence(shards, backend):
    """refresh_strategy flows through the sharded runtime; outputs stay
    identical to the batched engine at every shard count and backend."""
    group = build_workload("C", n_queries=4, seed=5)
    points = make_synthetic_points(800, dim=2, outlier_rate=0.05, seed=23)

    def run(strategy):
        config = DetectorConfig(refresh_strategy=strategy, shards=shards,
                                backend=backend)
        factory = partial(SOPDetector, config=config)
        runtime = Runtime(QueryGroup(list(group.queries)), factory=factory,
                          config=config)
        return runtime.run(points).outputs

    try:
        got = run("grid")
        want = run("batched")
    except OSError as exc:  # pragma: no cover - restricted sandboxes
        pytest.skip(f"process pool unavailable: {exc}")
    diffs = compare_outputs(want, got)
    assert not diffs, "\n".join(diffs[:10])


# ----------------------------------------------------------- property-based


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    data=st.data(),
    n_points=st.integers(min_value=40, max_value=220),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)
def test_random_stream_equivalence(data, n_points, seed):
    """Random workloads over random 1-D streams: all three engines agree on
    every boundary output and every LSky layer."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0, 1000, size=n_points)
    points = line_points(values)
    n_queries = data.draw(st.integers(min_value=1, max_value=5))
    queries = []
    for _ in range(n_queries):
        win = data.draw(st.integers(min_value=2, max_value=12)) * 10
        slide = data.draw(st.sampled_from([10, 20, 30]))
        queries.append(OutlierQuery(
            r=data.draw(st.floats(min_value=1.0, max_value=400.0,
                                  allow_nan=False)),
            k=data.draw(st.integers(min_value=1, max_value=8)),
            window=WindowSpec(win=win, slide=min(slide, win)),
        ))
    group = QueryGroup(queries)
    _run_lockstep(group, points, batch_min_rows=1)


# ------------------------------------------------------- boundary exactness


def test_neighbor_exactly_at_r_max_counted():
    """A neighbor at distance exactly r_max decides inlier-vs-outlier; the
    pruning layer must never drop it (d <= r is a neighbor, Def. 1)."""
    r = 100.0
    win, slide = 8, 4
    # pairs at exactly r, far from everything else
    values = [0.0, r, 1000.0, 1000.0 + r, 5000.0]
    points = [Point(seq=i, values=(v,)) for i, v in enumerate(values)]
    group = QueryGroup([OutlierQuery(
        r=r, k=1, window=WindowSpec(win=win, slide=slide))])
    outs = {}
    for s in STRATEGIES:
        det = _det(group, s, batch_min_rows=1)
        outs[s] = det.run(points).outputs
    assert outs["grid"] == outs["batched"] == outs["per-point"]
    # the isolated point is the lone outlier; the exact-r pairs are inliers
    last_t = max(t for _, t in outs["grid"])
    assert outs["grid"][(0, last_t)] == frozenset({4})
