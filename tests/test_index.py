"""Unit and property tests for the grid index substrate."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Point, euclidean, get_metric, manhattan
from repro.index import (
    GridCandidateIndex,
    GridIndex,
    IndexedWindow,
    cells_of_block,
)
from repro.streams.buffer import WindowBuffer

from conftest import line_points


def pts2d(rows, start_seq=0):
    return [Point(seq=start_seq + i, values=tuple(row))
            for i, row in enumerate(rows)]


class TestGridIndexBasics:
    def test_cell_size_validated(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_insert_and_len(self):
        idx = GridIndex(1.0)
        idx.insert(Point(seq=0, values=(0.5, 0.5)))
        assert len(idx) == 1 and 0 in idx

    def test_duplicate_seq_rejected(self):
        idx = GridIndex(1.0)
        idx.insert(Point(seq=0, values=(0.5,)))
        with pytest.raises(ValueError, match="already indexed"):
            idx.insert(Point(seq=0, values=(0.7,)))

    def test_remove(self):
        idx = GridIndex(1.0)
        p = Point(seq=3, values=(2.5,))
        idx.insert(p)
        assert idx.remove(3) == p
        assert len(idx) == 0 and idx.cell_count() == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            GridIndex(1.0).remove(7)

    def test_cell_of_negative_coordinates(self):
        idx = GridIndex(1.0)
        assert idx.cell_of((-0.5, 1.5)) == (-1, 1)


class TestRangeQueries:
    def _index(self):
        idx = GridIndex(1.0)
        for p in pts2d([(0.0, 0.0), (0.9, 0.0), (2.5, 2.5), (-0.8, 0.1)]):
            idx.insert(p)
        return idx

    def test_range_query_exact(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 1.0)}
        assert hits == {0, 1, 3}

    def test_exclude_seq(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 1.0,
                                               exclude_seq=0)}
        assert hits == {1, 3}

    def test_radius_beyond_one_cell(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 4.0)}
        assert hits == {0, 1, 2, 3}

    def test_range_count_stop_at(self):
        idx = self._index()
        assert idx.range_count((0.0, 0.0), 1.0, stop_at=2) == 2
        assert idx.range_count((0.0, 0.0), 1.0) == 3

    def test_respects_metric(self):
        idx = GridIndex(1.0, metric=manhattan)
        for p in pts2d([(0.0, 0.0), (0.7, 0.7)]):
            idx.insert(p)
        # manhattan distance 1.4 > 1.0; euclidean would be ~0.99
        assert idx.range_count((0.0, 0.0), 1.0, exclude_seq=0) == 0


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(st.tuples(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.floats(min_value=-50, max_value=50, allow_nan=False)),
    min_size=1, max_size=60),
    probe=st.tuples(st.floats(min_value=-50, max_value=50, allow_nan=False),
                    st.floats(min_value=-50, max_value=50, allow_nan=False)),
    r=st.floats(min_value=0.1, max_value=30),
    cell=st.floats(min_value=0.3, max_value=10))
def test_grid_matches_brute_force(rows, probe, r, cell):
    idx = GridIndex(cell)
    pts = pts2d(rows)
    for p in pts:
        idx.insert(p)
    expected = {p.seq for p in pts if euclidean(probe, p.values) <= r}
    got = {p.seq for p in idx.range_query(probe, r)}
    assert got == expected


class TestCellsOfBlock:
    def test_matches_scalar_cell_of_bitwise(self):
        """Block binning must agree with the scalar ``cell_of`` everywhere,
        including exact cell boundaries and negative coordinates."""
        idx = GridIndex(0.7)
        rows = [(0.0, 0.0), (0.7, -0.7), (1.4, 0.35), (-0.35, 2.1),
                (123.456, -98.7), (0.6999999999999999, 0.7000000000000001)]
        block = cells_of_block(np.asarray(rows), 0.7)
        for row, got in zip(rows, block.tolist()):
            assert tuple(got) == idx.cell_of(row)

    @given(rows=st.lists(st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
        min_size=1, max_size=40),
        cell=st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_scalar(self, rows, cell):
        idx = GridIndex(cell)
        block = cells_of_block(np.asarray(rows), cell)
        for row, got in zip(rows, block.tolist()):
            assert tuple(got) == idx.cell_of(row)


class TestInsertBlock:
    def test_equivalent_to_insert_loop(self):
        pts = pts2d([(0.1, 0.2), (5.5, -3.2), (0.15, 0.25), (-7.0, 7.0)])
        a, b = GridIndex(1.0), GridIndex(1.0)
        a.insert_block(pts)
        for p in pts:
            b.insert(p)
        assert a._cells.keys() == b._cells.keys()
        for cell in a._cells:
            assert a._cells[cell] == b._cells[cell]

    def test_duplicate_within_block_rejected_atomically(self):
        idx = GridIndex(1.0)
        pts = pts2d([(0.0, 0.0)]) + pts2d([(1.0, 1.0)])  # both seq 0
        with pytest.raises(ValueError, match="already indexed"):
            idx.insert_block(pts)
        assert len(idx) == 0

    def test_duplicate_against_existing_rejected(self):
        idx = GridIndex(1.0)
        idx.insert(Point(seq=0, values=(0.0,)))
        with pytest.raises(ValueError, match="already indexed"):
            idx.insert_block([Point(seq=0, values=(3.0,))])
        assert len(idx) == 1


def _buffer_with(values, metric="euclidean"):
    buf = WindowBuffer(get_metric(metric))
    buf.extend(line_points(values))
    return buf


class TestGridCandidateIndex:
    def test_cell_size_validated(self):
        with pytest.raises(ValueError):
            GridCandidateIndex(0.0)

    def test_sync_and_candidates(self):
        buf = _buffer_with([0.0, 0.5, 10.0, 10.4, 50.0])
        grid = GridCandidateIndex(1.0)
        grid.sync(buf)
        assert len(grid) == len(buf)
        arrays, assign = grid.candidates_within(buf.matrix()[:1], 1.0)
        assert sorted(arrays[int(assign[0])].tolist()) == [0, 1]

    def test_candidates_are_conservative_superset(self, rng):
        values = rng.uniform(0, 100, size=200)
        buf = _buffer_with(values)
        grid = GridCandidateIndex(7.0)
        grid.sync(buf)
        r = 7.0
        arrays, assign = grid.candidates_within(buf.matrix(), r)
        mat = buf.matrix()[:, 0]
        for i in range(len(buf)):
            cand = set(arrays[int(assign[i])].tolist())
            true = set(np.nonzero(np.abs(mat - mat[i]) <= r)[0].tolist())
            assert true <= cand

    def test_shared_cell_shares_array_object(self):
        buf = _buffer_with([0.1, 0.2, 0.3, 9.0])
        grid = GridCandidateIndex(1.0)
        grid.sync(buf)
        arrays, assign = grid.candidates_within(buf.matrix()[:3], 1.0)
        # three queries in one cell -> one unique cell, one array
        assert len(arrays) == 1
        assert assign.tolist() == [0, 0, 0]

    def test_eviction_drops_dead_candidates(self):
        buf = _buffer_with(np.linspace(0, 10, 50))
        grid = GridCandidateIndex(2.0)
        grid.sync(buf)
        buf.evict_before(20.0, by_time=False)  # seqs 0..19 evicted
        grid.sync(buf)
        assert len(grid) == len(buf) == 30
        arrays, assign = grid.candidates_within(buf.matrix(), 2.0)
        hi = len(buf)
        for arr in arrays:
            assert len(arr) == 0 or (0 <= arr[0] and arr[-1] < hi)
            assert (np.diff(arr) > 0).all()

    def test_fresh_grid_on_warm_buffer_fast_forwards(self):
        """A grid attached after the buffer has already evicted must index
        only the live region, on the right absolute axis."""
        buf = _buffer_with(np.linspace(0, 10, 40))
        buf.evict_before(25.0, by_time=False)
        grid = GridCandidateIndex(2.0)
        grid.sync(buf)
        assert len(grid) == len(buf) == 15
        arrays, assign = grid.candidates_within(buf.matrix(), 2.0)
        union = set()
        for arr in arrays:
            union |= set(arr.tolist())
        assert union <= set(range(len(buf)))

    def test_sweep_drops_empty_cells(self):
        n = GridCandidateIndex._SWEEP_THRESHOLD + 64
        buf = _buffer_with(np.arange(n, dtype=float))
        grid = GridCandidateIndex(1.0)
        grid.sync(buf)
        cells_before = grid.cell_count()
        buf.evict_before(float(n - 8), by_time=False)
        grid.sync(buf)
        assert grid.cell_count() < cells_before
        assert len(grid) == len(buf) == 8

    def test_candidate_exactly_at_r_max_never_pruned(self):
        """Cell-boundary off-by-one guard: a neighbor at distance exactly
        r_max sits ``reach`` whole cells away and must stay a candidate."""
        for r in (1.0, 0.1, 0.3, 100.0, 7.77):
            buf = _buffer_with([0.0, r])
            grid = GridCandidateIndex(r)
            grid.sync(buf)
            arrays, assign = grid.candidates_within(buf.matrix(), r)
            for i in (0, 1):
                cand = arrays[int(assign[i])].tolist()
                assert 1 - i in cand, f"r={r}: {1 - i} pruned for row {i}"

    def test_r_max_boundary_2d_diagonal(self):
        r = 5.0
        # exactly r away along an axis, and a diagonal point just inside r
        rows = [(0.0, 0.0), (r, 0.0), (r / math.sqrt(2) - 1e-9,
                                       r / math.sqrt(2) - 1e-9)]
        buf = WindowBuffer(get_metric("euclidean"))
        buf.extend([Point(seq=i, values=v) for i, v in enumerate(rows)])
        grid = GridCandidateIndex(r)
        grid.sync(buf)
        arrays, assign = grid.candidates_within(buf.matrix()[:1], r)
        cand = set(arrays[int(assign[0])].tolist())
        assert {1, 2} <= cand

    def test_cells_visited_counter_advances(self):
        buf = _buffer_with([0.0, 1.0, 2.0])
        grid = GridCandidateIndex(1.0)
        grid.sync(buf)
        assert grid.cells_visited == 0
        grid.candidates_within(buf.matrix(), 1.0)
        assert grid.cells_visited > 0


class TestIndexedWindow:
    def test_extend_and_evict(self):
        win = IndexedWindow(cell_size=1.0)
        win.extend(line_points(range(10)))
        assert len(win) == 10
        evicted = win.evict_before(4.0)
        assert [p.seq for p in evicted] == [0, 1, 2, 3]
        assert len(win) == 6
        assert len(win.index) == 6

    def test_order_enforced(self):
        win = IndexedWindow(cell_size=1.0)
        win.extend(line_points([1.0]))
        with pytest.raises(ValueError, match="increasing"):
            win.extend(line_points([2.0]))  # same seq 0

    def test_neighbor_count_matches_linear_scan(self, rng):
        values = rng.uniform(0, 20, size=100)
        win = IndexedWindow(cell_size=2.0)
        win.extend(line_points(values))
        win.evict_before(30.0)
        live = values[30:]
        for probe in (0.0, 5.0, 19.0):
            expected = int((np.abs(live - probe) <= 2.0).sum())
            assert win.neighbor_count((probe,), 2.0) == expected

    def test_time_based_eviction(self):
        win = IndexedWindow(cell_size=1.0, by_time=True)
        win.extend(line_points([1, 2, 3], times=[0.5, 5.0, 9.0]))
        win.evict_before(4.0)
        assert [p.seq for p in win.points] == [1, 2]

    def test_bulk_extend_equivalent_to_incremental(self, rng):
        values = rng.uniform(0, 30, size=120)
        bulk = IndexedWindow(cell_size=2.0)
        bulk.extend(line_points(values))
        inc = IndexedWindow(cell_size=2.0)
        for p in line_points(values):
            inc.extend([p])
        assert len(bulk) == len(inc)
        assert bulk.index._cells.keys() == inc.index._cells.keys()
        for probe in (0.0, 11.5, 29.0):
            assert (bulk.neighbor_count((probe,), 2.0)
                    == inc.neighbor_count((probe,), 2.0))

    def test_compaction_branch_regression(self, rng):
        """Evicting past the 4096 dead-prefix threshold triggers storage
        compaction; the window and grid must stay consistent through it."""
        n = 4200
        values = rng.uniform(0, 50, size=n)
        win = IndexedWindow(cell_size=5.0)
        win.extend(line_points(values))
        # evict everything: dead prefix (4200) > 4096 and >= live (0)
        evicted = win.evict_before(float(n))
        assert len(evicted) == n
        assert len(win) == 0 and win._start == 0 and win._points == []
        assert len(win.index) == 0
        # the window keeps working after compaction, and seq-order
        # validation still sees the pre-compaction tail
        tail = line_points(rng.uniform(0, 50, size=64), start_seq=n)
        win.extend(tail)
        assert len(win) == 64
        live = np.asarray([p.values[0] for p in win.points])
        for probe in (10.0, 40.0):
            expected = int((np.abs(live - probe) <= 5.0).sum())
            assert win.neighbor_count((probe,), 5.0) == expected
        with pytest.raises(ValueError, match="increasing"):
            win.extend(line_points([1.0], start_seq=n))  # stale seq
