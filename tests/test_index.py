"""Unit and property tests for the grid index substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Point, euclidean, manhattan
from repro.index import GridIndex, IndexedWindow

from conftest import line_points


def pts2d(rows, start_seq=0):
    return [Point(seq=start_seq + i, values=tuple(row))
            for i, row in enumerate(rows)]


class TestGridIndexBasics:
    def test_cell_size_validated(self):
        with pytest.raises(ValueError):
            GridIndex(0.0)

    def test_insert_and_len(self):
        idx = GridIndex(1.0)
        idx.insert(Point(seq=0, values=(0.5, 0.5)))
        assert len(idx) == 1 and 0 in idx

    def test_duplicate_seq_rejected(self):
        idx = GridIndex(1.0)
        idx.insert(Point(seq=0, values=(0.5,)))
        with pytest.raises(ValueError, match="already indexed"):
            idx.insert(Point(seq=0, values=(0.7,)))

    def test_remove(self):
        idx = GridIndex(1.0)
        p = Point(seq=3, values=(2.5,))
        idx.insert(p)
        assert idx.remove(3) == p
        assert len(idx) == 0 and idx.cell_count() == 0

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            GridIndex(1.0).remove(7)

    def test_cell_of_negative_coordinates(self):
        idx = GridIndex(1.0)
        assert idx.cell_of((-0.5, 1.5)) == (-1, 1)


class TestRangeQueries:
    def _index(self):
        idx = GridIndex(1.0)
        for p in pts2d([(0.0, 0.0), (0.9, 0.0), (2.5, 2.5), (-0.8, 0.1)]):
            idx.insert(p)
        return idx

    def test_range_query_exact(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 1.0)}
        assert hits == {0, 1, 3}

    def test_exclude_seq(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 1.0,
                                               exclude_seq=0)}
        assert hits == {1, 3}

    def test_radius_beyond_one_cell(self):
        idx = self._index()
        hits = {p.seq for p in idx.range_query((0.0, 0.0), 4.0)}
        assert hits == {0, 1, 2, 3}

    def test_range_count_stop_at(self):
        idx = self._index()
        assert idx.range_count((0.0, 0.0), 1.0, stop_at=2) == 2
        assert idx.range_count((0.0, 0.0), 1.0) == 3

    def test_respects_metric(self):
        idx = GridIndex(1.0, metric=manhattan)
        for p in pts2d([(0.0, 0.0), (0.7, 0.7)]):
            idx.insert(p)
        # manhattan distance 1.4 > 1.0; euclidean would be ~0.99
        assert idx.range_count((0.0, 0.0), 1.0, exclude_seq=0) == 0


@settings(max_examples=60, deadline=None)
@given(rows=st.lists(st.tuples(
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.floats(min_value=-50, max_value=50, allow_nan=False)),
    min_size=1, max_size=60),
    probe=st.tuples(st.floats(min_value=-50, max_value=50, allow_nan=False),
                    st.floats(min_value=-50, max_value=50, allow_nan=False)),
    r=st.floats(min_value=0.1, max_value=30),
    cell=st.floats(min_value=0.3, max_value=10))
def test_grid_matches_brute_force(rows, probe, r, cell):
    idx = GridIndex(cell)
    pts = pts2d(rows)
    for p in pts:
        idx.insert(p)
    expected = {p.seq for p in pts if euclidean(probe, p.values) <= r}
    got = {p.seq for p in idx.range_query(probe, r)}
    assert got == expected


class TestIndexedWindow:
    def test_extend_and_evict(self):
        win = IndexedWindow(cell_size=1.0)
        win.extend(line_points(range(10)))
        assert len(win) == 10
        evicted = win.evict_before(4.0)
        assert [p.seq for p in evicted] == [0, 1, 2, 3]
        assert len(win) == 6
        assert len(win.index) == 6

    def test_order_enforced(self):
        win = IndexedWindow(cell_size=1.0)
        win.extend(line_points([1.0]))
        with pytest.raises(ValueError, match="increasing"):
            win.extend(line_points([2.0]))  # same seq 0

    def test_neighbor_count_matches_linear_scan(self, rng):
        values = rng.uniform(0, 20, size=100)
        win = IndexedWindow(cell_size=2.0)
        win.extend(line_points(values))
        win.evict_before(30.0)
        live = values[30:]
        for probe in (0.0, 5.0, 19.0):
            expected = int((np.abs(live - probe) <= 2.0).sum())
            assert win.neighbor_count((probe,), 2.0) == expected

    def test_time_based_eviction(self):
        win = IndexedWindow(cell_size=1.0, by_time=True)
        win.extend(line_points([1, 2, 3], times=[0.5, 5.0, 9.0]))
        win.evict_before(4.0)
        assert [p.seq for p in win.points] == [1, 2]
