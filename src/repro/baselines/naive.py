"""Naive exact detector: per-query brute force over each window.

For every due query at every boundary, computes the full pairwise neighbor
counts of the query's population with the vectorized metric and reports
points with fewer than ``k`` neighbors within ``r``.  No state is carried
between windows, no sharing happens between queries.

This is the correctness oracle of the test suite: any divergence between a
detector and :class:`NaiveDetector` is a bug in the detector.  It also
serves as an (unshared, re-compute-everything) lower baseline in the small
benchmark configurations.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

import numpy as np

from ..core.point import Point
from ..core.queries import QueryGroup
from ..streams.buffer import WindowBuffer
from .base import Detector

__all__ = ["NaiveDetector", "brute_force_outliers"]


def brute_force_outliers(
    points: Sequence[Point], r: float, k: int, metric
) -> FrozenSet[int]:
    """Outlier seqs among ``points`` under ``(r, k)``, from first principles.

    Quadratic in the population size; neighbor counts exclude the point
    itself (Def. 1: a neighbor is any *other* object within ``r``).
    """
    n = len(points)
    if n == 0:
        return frozenset()
    mat = np.asarray([p.values for p in points], dtype=np.float64)
    outliers = []
    for i in range(n):
        d = metric.to_block(mat[i], mat)
        # subtract the self-match at distance zero
        if int((d <= r).sum()) - 1 < k:
            outliers.append(points[i].seq)
    return frozenset(outliers)


class NaiveDetector(Detector):
    """Recompute-from-scratch exact multi-query detector."""

    name = "naive"

    def __init__(self, group: QueryGroup, metric="euclidean"):
        super().__init__(group, metric)
        self.buffer = WindowBuffer(self.metric)
        self._direct_rows = 0

    def _extra_distance_rows(self) -> int:
        return self._direct_rows

    def run_boundary(self, t: int, batch: Sequence[Point],
                     hooks) -> Dict[int, FrozenSet[int]]:
        """Staged pipeline: ingest -> expire -> evaluate (no refresh --
        naive carries no per-point evidence between boundaries)."""
        self.buffer.extend(batch)
        hooks.on_ingest(t, batch)
        evicted = self._expire_swift(t)
        hooks.on_expire(t, evicted)
        out = self._evaluate_due(self.group.due_members(t), t)
        hooks.on_evaluate(t, out)
        return out

    def _evaluate_due(
        self, due: Sequence[int], t: int
    ) -> Dict[int, FrozenSet[int]]:
        out: Dict[int, FrozenSet[int]] = {}
        for qi in due:
            q = self.group[qi]
            ws = max(0, t - q.win)
            population = self._population(float(ws))
            self._direct_rows += len(population) * len(population)
            out[qi] = brute_force_outliers(population, q.r, q.k, self.metric)
        return out

    def _population(self, window_start: float) -> Sequence[Point]:
        pts = self.buffer.points
        if not pts:
            return []
        if self.by_time:
            i = self.buffer.first_index_at_or_after_time(window_start)
        else:
            i = self.buffer.first_index_at_or_after_seq(int(window_start))
        return pts[i:]

    def memory_units(self) -> int:
        """Naive stores the raw window only: one unit per buffered point."""
        return len(self.buffer)

    def tracked_points(self) -> int:
        return len(self.buffer)
