"""MCOD baseline [13] with the paper's multi-query extension (Sec. 6.1).

MCOD (Kontaki et al., ICDE 2011) maintains *micro-clusters* of radius
``r/2``: any two points in a cluster are within ``r`` of each other, so a
cluster holding more than ``k`` points makes every member a definitional
inlier.  Points not absorbed by a cluster ("PD" points) keep explicit
neighbor lists and are the only outlier candidates.

The SOP paper compares against an *augmented* MCOD ("we have extended MCOD
by inserting our window-specific techniques into MCOD"), which handles a
whole workload with one structure:

* the range query uses the *largest* ``r`` in the workload -- a PD point
  stores **all** neighbors within ``r_max`` together with their distances
  (this is the memory cost the paper highlights);
* micro-clusters use the *smallest* ``r`` and the *largest* ``k``
  (radius ``r_min / 2``, population threshold ``k_max + 1``), the
  "simulated most-restrictive query" of Sec. 6.2;
* the window-specific techniques are grafted on: the detector runs on the
  swift schedule (slide = gcd, window = max win) and answers each due query
  by filtering stored evidence by the query's own ``(r, win)``.

Unlike SOP, a new point performs a full range scan of the window whenever
it does not join a cluster, and every neighbor (not just the minimal
evidence) is stored -- reproducing the CPU and memory behaviour the paper
measures in Figs. 7-13.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..core.point import Point
from ..core.queries import QueryGroup
from ..streams.buffer import WindowBuffer
from .base import Detector

__all__ = ["MCODDetector"]


class _PDState:
    """A PD (non-cluster) point: all neighbors within ``r_max``.

    ``poss``/``dists`` are parallel lists in ascending position order
    (preceding neighbors are collected in arrival order at insertion time,
    succeeding ones appended as they arrive), enabling O(log) expiry.
    """

    __slots__ = ("poss", "dists")

    def __init__(self, poss: List[float], dists: List[float]):
        self.poss = poss
        self.dists = dists

    def append(self, pos: float, dist: float) -> None:
        self.poss.append(pos)
        self.dists.append(dist)

    def prune_before(self, min_pos: float) -> None:
        i = bisect_left(self.poss, min_pos)
        if i:
            del self.poss[:i]
            del self.dists[:i]

    def __len__(self) -> int:
        return len(self.poss)


class _Cluster:
    """A micro-cluster: fixed center, members sorted by arrival."""

    __slots__ = ("center", "seqs", "poss")

    def __init__(self, center: np.ndarray):
        self.center = center
        self.seqs: List[int] = []
        self.poss: List[float] = []

    def add(self, seq: int, pos: float) -> None:
        self.seqs.append(seq)
        self.poss.append(pos)

    def expire_before(self, min_pos: float) -> List[int]:
        """Drop expired members; return the seqs removed."""
        i = bisect_left(self.poss, min_pos)
        removed = self.seqs[:i]
        if i:
            del self.seqs[:i]
            del self.poss[:i]
        return removed

    def members_in_window(self, window_start: float) -> int:
        return len(self.poss) - bisect_left(self.poss, window_start)

    def __len__(self) -> int:
        return len(self.seqs)


class MCODDetector(Detector):
    """Micro-cluster based multi-query outlier detection (augmented MCOD)."""

    name = "mcod"

    def __init__(self, group: QueryGroup, metric="euclidean"):
        super().__init__(group, metric)
        self.buffer = WindowBuffer(self.metric)
        self.r_min = group.r_min
        self.r_max = group.r_max
        self.k_max = group.k_max
        self.cluster_radius = self.r_min / 2.0
        self.cluster_threshold = self.k_max + 1
        # Micro-clusters are MCOD's single-pattern machinery; the
        # multi-query technique of [13] that the paper compares against is
        # range-query based ("compare each data point with all the other
        # data points in each window", Sec. 6.2).  Clusters therefore stay
        # enabled only when every member query shares one (r, k) setting
        # (e.g. the window-parameter workloads D/E/F).
        self.clustering_enabled = len({(q.r, q.k) for q in group}) == 1
        self._pd: Dict[int, _PDState] = {}
        self._clusters: Dict[int, _Cluster] = {}
        self._membership: Dict[int, int] = {}
        self._next_cluster_id = 0
        self.stats = {"full_scans": 0, "cluster_joins": 0,
                      "clusters_formed": 0, "clusters_dissolved": 0}
        self._direct_rows = 0  # distance rows computed outside the buffer

    def _extra_distance_rows(self) -> int:
        return self._direct_rows

    def warm_start(self, points: Sequence[Point]) -> None:
        """Restore a retained window through the normal ingestion path
        (PD lists and clusters are built at insert time)."""
        self.buffer.extend(points)
        base = len(self.buffer) - len(points)
        for offset, p in enumerate(points):
            self._insert(p, base + offset)

    # --------------------------------------------------------------- step

    def run_boundary(self, t: int, batch: Sequence[Point],
                     hooks) -> Dict[int, FrozenSet[int]]:
        """Staged pipeline in MCOD's algorithmic order: expire *before*
        ingest (arrivals must not join dissolving clusters), then the PD
        prune as the refresh stage, then due-query evaluation."""
        start = float(max(0, t - self.swift.win))
        evicted = self._expire(start)
        hooks.on_expire(t, evicted)
        self.buffer.extend(batch)
        for offset, p in enumerate(batch):
            self._insert(p, len(self.buffer) - len(batch) + offset)
        hooks.on_ingest(t, batch)
        self._prune_pd(start)
        hooks.on_refresh(t)
        due = self.group.due_members(t)
        out = self._evaluate_due(due, t) if due else {}
        hooks.on_evaluate(t, out)
        return out

    # ------------------------------------------------------------- insertion

    def _insert(self, p: Point, live_index: int) -> None:
        """Process one arrival: cluster join, PD bookkeeping, formation."""
        pos_p = self.position(p)
        cid = self._nearest_cluster(p.values) if self.clustering_enabled \
            else None
        if cid is not None:
            self.stats["cluster_joins"] += 1
            self._clusters[cid].add(p.seq, pos_p)
            self._membership[p.seq] = cid
            # other PD points still need p in their neighbor lists; a
            # cluster-joining point only scans the PD set (the fast path
            # that makes single-query MCOD cheap)
            self._update_pd_only(p, live_index, pos_p)
            return
        dists = self._update_pd_lists(p, live_index, pos_p, own_list=True)
        self._maybe_form_cluster(p, live_index, pos_p, dists)

    def _nearest_cluster(self, values: Sequence[float]) -> Optional[int]:
        if not self._clusters:
            return None
        ids = list(self._clusters)
        centers = np.asarray([self._clusters[c].center for c in ids])
        self._direct_rows += len(ids)
        d = self.metric.to_block(np.asarray(values, dtype=np.float64), centers)
        best = int(np.argmin(d))
        if d[best] <= self.cluster_radius:
            return ids[best]
        return None

    def _update_pd_only(self, p: Point, live_index: int, pos_p: float) -> None:
        """Append ``p`` to the neighbor lists of PD points that precede it.

        Scans only the PD set (cluster members keep no lists), which is the
        efficiency micro-clusters buy MCOD when most mass is clustered.
        """
        if not self._pd:
            return
        pts = self.buffer.points
        indexes = []
        for seq in self._pd:
            idx = self.buffer.position_of_seq(seq)
            if idx < live_index:
                indexes.append(idx)
        if not indexes:
            return
        block = self.buffer.matrix()[indexes]
        self._direct_rows += len(indexes)
        d = self.metric.to_block(
            np.asarray(p.values, dtype=np.float64), block
        )
        for pos_in_list, dist in zip(indexes, d):
            if dist <= self.r_max:
                self._pd[pts[pos_in_list].seq].append(pos_p, float(dist))

    def _update_pd_lists(
        self, p: Point, live_index: int, pos_p: float, own_list: bool
    ) -> Optional[np.ndarray]:
        """Range-scan preceding points; update their lists (and p's own).

        Only points that arrived before ``p`` (live indexes < ``live_index``)
        are scanned: later batch points handle the symmetric update when
        they are themselves inserted.
        """
        self.stats["full_scans"] += 1
        pts = self.buffer.points
        d = self.buffer.distances_from(p.values, 0, live_index)
        neighbor_idx = np.flatnonzero(d <= self.r_max)
        own_poss: List[float] = []
        own_dists: List[float] = []
        for j in neighbor_idx:
            other = pts[int(j)]
            dist = float(d[int(j)])
            state = self._pd.get(other.seq)
            if state is not None:
                state.append(pos_p, dist)
            if own_list:
                own_poss.append(self.position(other))
                own_dists.append(dist)
        if own_list:
            self._pd[p.seq] = _PDState(own_poss, own_dists)
            return d
        return None

    def _maybe_form_cluster(
        self, p: Point, live_index: int, pos_p: float, dists: np.ndarray
    ) -> None:
        """Found a new micro-cluster if enough PD mass sits within r_min/2."""
        if not self.clustering_enabled:
            return
        close_idx = np.flatnonzero(dists <= self.cluster_radius)
        pts = self.buffer.points
        eligible = [
            pts[int(j)] for j in close_idx if pts[int(j)].seq in self._pd
        ]
        if len(eligible) + 1 < self.cluster_threshold:
            return
        self.stats["clusters_formed"] += 1
        cluster = _Cluster(np.asarray(p.values, dtype=np.float64))
        cid = self._next_cluster_id
        self._next_cluster_id += 1
        for member in eligible:
            del self._pd[member.seq]
            cluster.add(member.seq, self.position(member))
            self._membership[member.seq] = cid
        del self._pd[p.seq]
        cluster.add(p.seq, pos_p)
        self._membership[p.seq] = cid
        self._clusters[cid] = cluster

    # --------------------------------------------------------------- expiry

    def _expire(self, window_start: float) -> List[Point]:
        evicted = self.buffer.evict_before(window_start, self.by_time)
        for p in evicted:
            self._pd.pop(p.seq, None)
            self._membership.pop(p.seq, None)
        dissolved: List[int] = []
        for cid, cluster in self._clusters.items():
            cluster.expire_before(window_start)
            if len(cluster) < self.cluster_threshold:
                dissolved.append(cid)
        for cid in dissolved:
            self._dissolve(cid)
        return evicted

    def _dissolve(self, cid: int) -> None:
        """Shrunk cluster: surviving members revert to PD with fresh lists."""
        self.stats["clusters_dissolved"] += 1
        cluster = self._clusters.pop(cid)
        pts = self.buffer.points
        for seq in cluster.seqs:
            self._membership.pop(seq, None)
            try:
                idx = self.buffer.position_of_seq(seq)
            except KeyError:
                continue  # already expired
            member = pts[idx]
            d = self.buffer.distances_from(member.values)
            self.stats["full_scans"] += 1
            poss: List[float] = []
            dlist: List[float] = []
            for j in np.flatnonzero(d <= self.r_max):
                other = pts[int(j)]
                if other.seq == seq:
                    continue
                poss.append(self.position(other))
                dlist.append(float(d[int(j)]))
            order = sorted(range(len(poss)), key=poss.__getitem__)
            self._pd[seq] = _PDState(
                [poss[i] for i in order], [dlist[i] for i in order]
            )

    def _prune_pd(self, window_start: float) -> None:
        for state in self._pd.values():
            state.prune_before(window_start)

    # ------------------------------------------------------------ evaluation

    def _evaluate_due(
        self, due: Sequence[int], t: int
    ) -> Dict[int, FrozenSet[int]]:
        pts = self.buffer.points
        out: Dict[int, FrozenSet[int]] = {}
        if not pts:
            return {qi: frozenset() for qi in due}

        # flatten PD evidence once per boundary
        pd_seqs: List[int] = []
        pd_poss: List[float] = []
        owners: List[int] = []
        e_poss: List[float] = []
        e_dists: List[float] = []
        row = 0
        for p in pts:
            state = self._pd.get(p.seq)
            if state is None:
                continue
            pd_seqs.append(p.seq)
            pd_poss.append(self.position(p))
            owners.extend([row] * len(state))
            e_poss.extend(state.poss)
            e_dists.extend(state.dists)
            row += 1
        seq_arr = np.asarray(pd_seqs, dtype=np.int64)
        ppos_arr = np.asarray(pd_poss, dtype=np.float64)
        own_arr = np.asarray(owners, dtype=np.int64)
        epos_arr = np.asarray(e_poss, dtype=np.float64)
        edist_arr = np.asarray(e_dists, dtype=np.float64)

        for qi in due:
            q = self.group[qi]
            ws = float(max(0, t - q.win))
            outliers: List[int] = []
            if row:
                emask = (edist_arr <= q.r) & (epos_arr >= ws)
                counts = np.bincount(own_arr[emask], minlength=row)
                sel = (ppos_arr >= ws) & (counts < q.k)
                outliers.extend(int(s) for s in seq_arr[sel])
            outliers.extend(self._cluster_outliers(q, ws))
            out[qi] = frozenset(outliers)
        return out

    def _cluster_outliers(self, q, window_start: float) -> List[int]:
        """Cluster members are inliers when enough of the cluster is in
        the query window; otherwise fall back to a per-member range count."""
        result: List[int] = []
        for cluster in self._clusters.values():
            in_window = cluster.members_in_window(window_start)
            if in_window == 0:
                continue
            if in_window >= q.k + 1 and q.r >= self.r_min:
                continue  # pairwise within r_min <= q.r: all inliers
            first = bisect_left(cluster.poss, window_start)
            pop_lo = self._population_start(window_start)
            for i in range(first, len(cluster.seqs)):
                seq = cluster.seqs[i]
                idx = self.buffer.position_of_seq(seq)
                member = self.buffer[idx]
                d = self.buffer.distances_from(member.values, pop_lo)
                neighbors = int((d <= q.r).sum()) - 1  # self-match
                if neighbors < q.k:
                    result.append(seq)
        return result

    def _population_start(self, window_start: float) -> int:
        if self.by_time:
            return self.buffer.first_index_at_or_after_time(window_start)
        return self.buffer.first_index_at_or_after_seq(int(window_start))

    # -------------------------------------------------------------- metrics

    def memory_units(self) -> int:
        """All stored neighbor entries plus cluster memberships."""
        units = sum(len(s) for s in self._pd.values())
        units += sum(len(c) for c in self._clusters.values())
        return units

    def tracked_points(self) -> int:
        return len(self._pd) + len(self._membership)
