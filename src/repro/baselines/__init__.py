"""Baseline detectors: naive oracle, MCOD [13], LEAP [7]."""

from .base import Detector
from .leap import LEAPDetector
from .mcod import MCODDetector
from .naive import NaiveDetector, brute_force_outliers

__all__ = [
    "Detector",
    "LEAPDetector",
    "MCODDetector",
    "NaiveDetector",
    "brute_force_outliers",
]
