"""LEAP baseline [7]: single-query scalable outlier detection, applied
independently per member query (the paper's non-shared comparator).

LEAP (Cao et al., ICDE 2014) processes one query ``q(r, k, win, slide)``
with two principles:

* **Minimal probing** -- a point probes for neighbors only until ``k`` are
  known; probing resumes (never restarts) when evidence expires;
* **Lifespan-aware prioritization** -- new arrivals are probed first, so
  evidence is biased toward *succeeding* neighbors, which never expire
  before the probing point; a point with ``k`` succeeding neighbors is a
  *safe inlier* and is never examined again.

Each point tracks the contiguous probed range ``[floor, ceiling]`` of the
stream: at evaluation, unseen new arrivals (above the ceiling) are counted
first (all succeeding), then -- if support is still short -- the scan
extends downward from the floor, chunked and stopping as soon as support
reaches ``k`` or the window start is passed.

The multi-query wrapper :class:`LEAPDetector` simply runs one
:class:`_LeapInstance` per member query over a shared window buffer,
"applying LEAP independently to process each query in the query group"
(Sec. 6.1).  CPU and evidence memory therefore scale with the number of
queries -- the behaviour Figs. 7-13 report.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence

from ..core.point import Point
from ..core.queries import OutlierQuery, QueryGroup
from ..streams.buffer import WindowBuffer
from .base import Detector

__all__ = ["LEAPDetector"]


class _Evidence:
    """Per-point LEAP evidence for one query instance."""

    __slots__ = ("succ_count", "pred_poss", "floor_seq", "ceiling_seq", "safe")

    def __init__(self, seq: int):
        self.succ_count = 0
        #: positions of known preceding neighbors, ascending
        self.pred_poss: List[float] = []
        # probed contiguous seq range is [floor_seq, ceiling_seq]
        self.floor_seq = seq
        self.ceiling_seq = seq
        self.safe = False

    def units(self, k: int) -> int:
        """Stored evidence entries (succeeding evidence is capped at k)."""
        if self.safe:
            return 0
        return len(self.pred_poss) + min(self.succ_count, k)


class _LeapInstance:
    """LEAP state machine for a single member query."""

    def __init__(self, query: OutlierQuery, buffer: WindowBuffer,
                 by_time: bool, chunk_size: int = 256):
        self.query = query
        self.buffer = buffer
        self.by_time = by_time
        self.chunk_size = chunk_size
        self._evidence: Dict[int, _Evidence] = {}

    # ----------------------------------------------------------- evaluation

    def evaluate(self, t: int) -> FrozenSet[int]:
        """Outliers of this query's window at boundary ``t``."""
        q = self.query
        ws = float(max(0, t - q.win))
        pop_lo = self._index_at(ws)
        pts = self.buffer.points
        outliers: List[int] = []
        for idx in range(len(pts) - 1, pop_lo - 1, -1):
            p = pts[idx]
            ev = self._evidence.get(p.seq)
            if ev is None:
                ev = self._evidence[p.seq] = _Evidence(p.seq)
            if ev.safe:
                continue
            if self._support(p, ev, ws, idx) < q.k:
                outliers.append(p.seq)
        return frozenset(outliers)

    def _support(self, p: Point, ev: _Evidence, ws: float, idx: int) -> int:
        """Current neighbor support of ``p``; probes lazily as needed."""
        k = self.query.k
        # drop expired preceding evidence
        drop = 0
        for pos in ev.pred_poss:
            if pos >= ws:
                break
            drop += 1
        if drop:
            del ev.pred_poss[:drop]
        # probe unseen new arrivals (all succeeding -- lifespan priority)
        pts = self.buffer.points
        newest = pts[-1].seq
        if newest > ev.ceiling_seq:
            lo = self._index_of_seq_ceil(ev.ceiling_seq + 1)
            d = self.buffer.distances_from(p.values, lo, len(pts))
            ev.succ_count += int((d <= self.query.r).sum())
            ev.ceiling_seq = newest
            if ev.succ_count >= k:
                ev.safe = True  # k succeeding neighbors: safe inlier forever
                ev.pred_poss = []
                return k
        support = ev.succ_count + len(ev.pred_poss)
        if support >= k:
            return support
        # minimal probing: extend downward from the floor, stop at k
        floor_idx = self._index_of_seq_ceil(ev.floor_seq)
        stop_idx = self._index_at(ws)
        hi = floor_idx
        while hi > stop_idx and support < k:
            lo = max(stop_idx, hi - self.chunk_size)
            d = self.buffer.distances_from(p.values, lo, hi)
            for j in range(hi - lo - 1, -1, -1):
                ev.floor_seq = pts[lo + j].seq
                if d[j] <= self.query.r:
                    ev.pred_poss.insert(0, self._pos(pts[lo + j]))
                    support += 1
                    if support >= k:
                        break
            hi = lo
        return support

    # ------------------------------------------------------------- plumbing

    def _pos(self, p: Point) -> float:
        return p.time if self.by_time else float(p.seq)

    def _index_at(self, window_start: float) -> int:
        if self.by_time:
            return self.buffer.first_index_at_or_after_time(window_start)
        return self.buffer.first_index_at_or_after_seq(int(window_start))

    def _index_of_seq_ceil(self, seq: int) -> int:
        """Smallest live index with ``seq >=`` the given value (clamped)."""
        return self.buffer.first_index_at_or_after_seq(seq)

    def forget_before(self, window_start: float) -> None:
        """Drop evidence of points that left this query's window."""
        dead = []
        pts = self.buffer.points
        alive = {p.seq for p in pts}
        for seq, ev in self._evidence.items():
            if seq not in alive:
                dead.append(seq)
        for seq in dead:
            del self._evidence[seq]

    def memory_units(self) -> int:
        return sum(ev.units(self.query.k) for ev in self._evidence.values())

    def tracked_points(self) -> int:
        return len(self._evidence)


class LEAPDetector(Detector):
    """Multi-query wrapper: one independent LEAP instance per query."""

    name = "leap"

    def __init__(self, group: QueryGroup, metric="euclidean",
                 chunk_size: int = 256):
        super().__init__(group, metric)
        self.buffer = WindowBuffer(self.metric)
        self.instances = [
            _LeapInstance(q, self.buffer, self.by_time, chunk_size)
            for q in group.queries
        ]

    def run_boundary(self, t: int, batch: Sequence[Point],
                     hooks) -> Dict[int, FrozenSet[int]]:
        """Staged pipeline: ingest -> expire (per-instance forget) ->
        evaluate; LEAP probes lazily at evaluation, so there is no
        refresh stage."""
        self.buffer.extend(batch)
        hooks.on_ingest(t, batch)
        start = float(max(0, t - self.swift.win))
        evicted = self.buffer.evict_before(start, self.by_time)
        if evicted:
            for inst in self.instances:
                inst.forget_before(start)
        hooks.on_expire(t, evicted)
        out: Dict[int, FrozenSet[int]] = {}
        for qi in self.group.due_members(t):
            out[qi] = self.instances[qi].evaluate(t)
        hooks.on_evaluate(t, out)
        return out

    def memory_units(self) -> int:
        return sum(inst.memory_units() for inst in self.instances)

    def tracked_points(self) -> int:
        return sum(inst.tracked_points() for inst in self.instances)
