"""Common detector interface shared by SOP and every baseline.

All detectors are driven on the workload's *swift schedule* (``slide = gcd``
of member slides): at each swift boundary ``t`` the runner delivers the
batch of points with position in ``[t - slide, t)``, the detector processes
it, and returns the outlier sets of exactly the member queries due at ``t``.
Driving every algorithm on the same boundaries keeps outputs key-compatible
so equivalence can be asserted verbatim.

A detector implements one of two granularities:

* :meth:`Detector.run_boundary` -- the staged pipeline form.  The detector
  executes its stages in its own algorithmic order and fires the lifecycle
  hooks (``on_ingest`` / ``on_expire`` / ``on_refresh`` / ``on_evaluate``)
  after each stage.  All built-in detectors implement this.
* :meth:`Detector.step` -- the legacy monolithic form.  Third-party
  detectors that only implement ``step`` still work everywhere: the
  default ``run_boundary`` wraps it, firing ``on_ingest`` at batch
  delivery and ``on_evaluate`` with the outputs (expire/refresh stages are
  not observable through a monolith).

The single drive loop is :class:`~repro.engine.StreamExecutor`;
:meth:`Detector.run` is a thin wrapper over it.
"""

from __future__ import annotations

from abc import ABC
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.point import Point, get_metric
from ..core.queries import QueryGroup
from ..engine.executor import NULL_HOOKS, StreamExecutor
from ..metrics.results import RunResult
from ..streams.windows import TIME

__all__ = ["Detector"]


class Detector(ABC):
    """Base class: one workload, one stream, boundary-driven processing."""

    #: short name used in reports ("sop", "mcod", "leap", "naive")
    name = "detector"

    def __init__(self, group: QueryGroup, metric="euclidean"):
        self.group = group
        self.metric = get_metric(metric)
        self.swift = group.swift
        self.by_time = group.kind == TIME

    # ------------------------------------------------------------ interface

    def step(self, t: int, batch: Sequence[Point]) -> Dict[int, FrozenSet[int]]:
        """Ingest one swift batch, process boundary ``t``.

        Returns ``{query_index: outlier seqs}`` for every member query due
        at ``t`` (possibly empty sets; queries not due are absent).
        """
        return self.run_boundary(t, batch, NULL_HOOKS)

    def run_boundary(self, t: int, batch: Sequence[Point],
                     hooks) -> Dict[int, FrozenSet[int]]:
        """Process boundary ``t`` as a staged pipeline, firing ``hooks``.

        The default wraps a monolithic :meth:`step` override for
        detectors that predate the staged runtime; implement this method
        directly to expose real stage boundaries.
        """
        if type(self).step is Detector.step:
            raise NotImplementedError(
                f"{type(self).__name__} must implement step() or "
                "run_boundary()"
            )
        hooks.on_ingest(t, batch)
        outputs = self.step(t, batch)
        hooks.on_evaluate(t, outputs)
        return outputs

    def memory_units(self) -> int:
        """Current evidence-entry count (see ``repro.metrics.meters``)."""
        return 0

    def tracked_points(self) -> int:
        """Number of points with live per-point bookkeeping."""
        return 0

    def work_stats(self) -> Dict[str, int]:
        """Substrate-independent work counters.

        The universal counter is ``distance_rows``: point-to-point
        distance evaluations performed so far.  Wall-clock comparisons in
        pure Python are dominated by interpreter constants; this counter
        exposes the *algorithmic* gap the paper's complexity arguments are
        about (``benchmarks/bench_opcounts.py`` reports it per figure).
        """
        buffer = getattr(self, "buffer", None)
        rows = buffer.distance_rows if buffer is not None else 0
        return {"distance_rows": rows + self._extra_distance_rows()}

    def _extra_distance_rows(self) -> int:
        """Distance evaluations performed outside the shared buffer."""
        return 0

    # ---------------------------------------------------------------- driver

    def position(self, p: Point) -> float:
        """Stream position of a point under this workload's window kind."""
        return p.time if self.by_time else float(p.seq)

    def warm_start(self, points: Sequence[Point]) -> None:
        """Preload a retained window (checkpoint restore, rebuilds).

        The default loads the buffer and lets the detector rebuild its
        per-point evidence lazily; detectors that build state at insert
        time (MCOD) override this to run their ingestion path.
        """
        buffer = getattr(self, "buffer", None)
        if buffer is None:
            raise TypeError(f"{type(self).__name__} cannot warm start")
        buffer.extend(points)

    def run(self, points: Sequence[Point], until: Optional[int] = None) -> RunResult:
        """Process a finite stream end-to-end with metering.

        Thin wrapper over :class:`~repro.engine.StreamExecutor` (attach
        subscribers by building the executor yourself).  ``until`` bounds
        the last boundary (defaults to just past the final point so every
        point is delivered and evaluated at least once).
        """
        return StreamExecutor(self).run(points, until=until)

    # ------------------------------------------------------- stage helpers

    def _expire_swift(self, t: int) -> List[Point]:
        """Evict points that left the swift window at boundary ``t``.

        Shared expire stage for buffer-backed detectors; returns the
        evicted points so ``on_expire`` can report them.
        """
        start = max(0, t - self.swift.win)
        return self.buffer.evict_before(start, self.by_time)
