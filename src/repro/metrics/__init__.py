"""Evaluation metrics: CPU per window, peak evidence memory, run results."""

from .meters import CpuMeter, MemoryMeter
from .results import RunResult, compare_outputs

__all__ = ["CpuMeter", "MemoryMeter", "RunResult", "compare_outputs"]
