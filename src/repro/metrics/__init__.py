"""Evaluation metrics: CPU per window, peak evidence memory, run results,
and refresh-engine observability counters."""

from .meters import CpuMeter, MemoryMeter
from .profiling import RefreshProfile
from .results import RunResult, compare_outputs

__all__ = ["CpuMeter", "MemoryMeter", "RefreshProfile", "RunResult",
           "compare_outputs"]
