"""Run results: per-query outputs plus the paper's two metrics.

A detector run yields, for every output boundary of every member query, the
set of outlier point sequence numbers.  :class:`RunResult` bundles those
outputs with CPU and memory measurements; :func:`compare_outputs` is the
equivalence check the test suite applies across detectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Tuple

from .meters import CpuMeter, MemoryMeter

__all__ = ["OutputKey", "RunResult", "compare_outputs", "merge_work"]

#: (query index within the group, output boundary t)
OutputKey = Tuple[int, int]


@dataclass
class RunResult:
    """Everything a detector run produced.

    ``failed_shards`` is the loud partial-result marker: a sharded run
    that lost shards under the supervised backend's ``drop-and-flag``
    policy lists them here (and every merge propagates the union), so a
    degraded answer can never be confused with an exact one --
    :attr:`partial` is True and :meth:`summary` leads with the damage.
    """

    detector: str
    #: (query_idx, boundary) -> outlier seqs reported at that boundary
    outputs: Dict[OutputKey, FrozenSet[int]] = field(default_factory=dict)
    cpu: CpuMeter = field(default_factory=CpuMeter)
    memory: MemoryMeter = field(default_factory=MemoryMeter)
    boundaries: int = 0
    #: substrate-independent work counters (e.g. ``distance_rows``)
    work: Dict[str, int] = field(default_factory=dict)
    #: shards dropped by a degraded run; empty for every exact result
    failed_shards: Tuple[int, ...] = ()

    # ------------------------------------------------------------ summaries

    @property
    def partial(self) -> bool:
        """True iff this result is missing failed shards' contributions."""
        return bool(self.failed_shards)

    @property
    def cpu_ms_per_window(self) -> float:
        return self.cpu.mean_ms_per_window

    @property
    def cpu_total_s(self) -> float:
        return self.cpu.total_seconds

    @property
    def peak_memory_units(self) -> int:
        return self.memory.peak_units

    @property
    def peak_memory_kb(self) -> float:
        return self.memory.peak_kb

    def work_stats_snapshot(self) -> Dict[str, int]:
        """Owned plain-dict copy of the merged work counters.

        The public way to read a finished run's counters (the ``/metrics``
        endpoint, benchmark reports, and the CLI summary all use it)
        instead of scraping the :attr:`work` attribute directly: the copy
        is safe to mutate or serialize, and missing counters read as 0
        via ``dict.get`` without aliasing the result's own state.
        """
        return dict(self.work)

    def total_outliers(self) -> int:
        """Total outlier reports across all queries and boundaries."""
        return sum(len(v) for v in self.outputs.values())

    def outliers_for_query(self, query_idx: int) -> Dict[int, FrozenSet[int]]:
        """boundary -> outliers, for one member query."""
        return {
            t: seqs for (qi, t), seqs in sorted(self.outputs.items())
            if qi == query_idx
        }

    def summary(self) -> str:
        flag = ""
        if self.failed_shards:
            lost = ",".join(str(s) for s in self.failed_shards)
            flag = f"PARTIAL (shard(s) {lost} failed) "
        return (
            f"{self.detector}: {flag}{self.boundaries} boundaries, "
            f"cpu={self.cpu_ms_per_window:.3f} ms/window "
            f"(total {self.cpu_total_s:.3f}s), "
            f"mem peak={self.peak_memory_units} units "
            f"({self.peak_memory_kb:.1f} KB), "
            f"outlier reports={self.total_outliers()}"
        )


def merge_work(dicts: "List[Dict[str, int]]") -> Dict[str, int]:
    """Key-wise sum of per-shard work counters.

    Every counter in ``work_stats()`` is additive (distance rows, kernel
    launches, scan/examination counts, refresh nanoseconds), so the
    workload-level total is the plain sum; merging a single dict
    reproduces it exactly.
    """
    out: Dict[str, int] = {}
    for d in dicts:
        for key, value in d.items():
            out[key] = out.get(key, 0) + value
    return out


def compare_outputs(
    a: Mapping[OutputKey, FrozenSet[int]],
    b: Mapping[OutputKey, FrozenSet[int]],
    limit: int = 10,
) -> List[str]:
    """Differences between two detectors' outputs (empty list = identical).

    Reports missing keys and, for shared keys, the symmetric difference of
    the outlier sets -- at most ``limit`` difference lines, so failing tests
    stay readable.
    """
    diffs: List[str] = []
    keys_a, keys_b = set(a), set(b)
    for key in sorted(keys_a - keys_b):
        diffs.append(f"only in first: query={key[0]} t={key[1]}")
        if len(diffs) >= limit:
            return diffs
    for key in sorted(keys_b - keys_a):
        diffs.append(f"only in second: query={key[0]} t={key[1]}")
        if len(diffs) >= limit:
            return diffs
    for key in sorted(keys_a & keys_b):
        if a[key] != b[key]:
            extra = sorted(a[key] - b[key])
            missing = sorted(b[key] - a[key])
            diffs.append(
                f"query={key[0]} t={key[1]}: first-only={extra[:8]} "
                f"second-only={missing[:8]}"
            )
            if len(diffs) >= limit:
                return diffs
    return diffs
