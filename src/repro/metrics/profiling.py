"""Refresh-engine observability: per-boundary timing and work counters.

The batched K-SKY refresh engine (see ``repro.core.sop``) exists to turn
O(live points) numpy kernel launches per boundary into O(1).  To *prove*
that -- and to keep it provable as the code evolves --
:class:`RefreshProfile` records, per processed boundary:

* ``refresh_ns`` -- wall time spent inside ``SOPDetector._refresh``;
* ``kernel_launches`` -- numpy distance-kernel launches during the refresh
  (``WindowBuffer.kernel_calls`` delta: one per ``distances_from`` call or
  pairwise tile);
* ``batch_rows`` -- evaluated points whose scan went through the batched
  pairwise kernel (0 on the per-point path);
* ``python_insert_iters`` -- interpreted skyband-scan iterations.  On the
  object-path engines this is the candidates examined by the scans (the
  paper's ``L``): the per-point path spends one Python loop iteration per
  candidate, the batched path prunes provably-rejected candidates
  vectorized, so there the counter is path-independent while the
  interpreter work it represents is not.  With ``skyband_impl="soa"`` the
  vectorized engine resolves candidates in array passes, and the counter
  reports the interpreted iterations *actually* spent (resolve replays +
  small-chunk fallback visits) -- the before/after interpreter-work
  measurement tracked in BENCH_grid.json;
* ``soa_insert_rows`` -- skyband entries committed through the SoA
  engine's bulk array appends (0 on the object path);
* ``candidates_pruned`` -- candidate columns the grid-pruned refresh
  engine kept out of the pairwise kernels entirely (0 on the unpruned
  paths); ``python_insert_iters`` still counts them -- pruning shrinks
  ``distance_rows``, not the logical scan;
* ``kernel_cells_visited`` -- grid-cell probes served by
  ``GridCandidateIndex.candidates_within`` while assembling those
  candidate sets (the pruning overhead's own cost driver);
* ``prefilter_screened`` / ``prefilter_suspects`` / ``prefilter_pruned``
  -- the tiered pre-filter's per-boundary tallies (see
  ``repro.core.prefilter``): candidate points the first-tier screen
  examined, the suspects it passed to the exact refresh, and the
  certified inliers it pruned scan-free (all 0 with ``prefilter="none"``
  or when the screen sits a boundary out).  The screen's anchor kernels
  are *not* netted out of ``kernel_launches``/``refresh_ns`` -- the
  tier's own cost stays visible in the same sample.

Aggregates are cheap to keep and are surfaced through
``SOPDetector.work_stats()`` into ``RunResult.work``;
``benchmarks/bench_refresh.py`` turns them into the tracked
``BENCH_refresh.json`` baseline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["RefreshProfile"]

#: one per-boundary sample: (refresh_ns, kernel_launches, batch_rows,
#: python_insert_iters, candidates_pruned, kernel_cells_visited,
#: soa_insert_rows, prefilter_screened, prefilter_suspects,
#: prefilter_pruned)
BoundarySample = Tuple[int, int, int, int, int, int, int, int, int, int]


class RefreshProfile:
    """Accumulates per-boundary refresh samples plus running totals."""

    __slots__ = ("boundaries", "refresh_ns", "kernel_launches", "batch_rows",
                 "python_insert_iters", "candidates_pruned",
                 "kernel_cells_visited", "soa_insert_rows",
                 "prefilter_screened", "prefilter_suspects",
                 "prefilter_pruned", "samples", "keep_samples")

    def __init__(self, keep_samples: bool = True):
        self.boundaries: int = 0
        self.refresh_ns: int = 0
        self.kernel_launches: int = 0
        self.batch_rows: int = 0
        self.python_insert_iters: int = 0
        self.candidates_pruned: int = 0
        self.kernel_cells_visited: int = 0
        self.soa_insert_rows: int = 0
        self.prefilter_screened: int = 0
        self.prefilter_suspects: int = 0
        self.prefilter_pruned: int = 0
        self.keep_samples = keep_samples
        #: per-boundary samples (only when ``keep_samples``)
        self.samples: List[BoundarySample] = []

    def record(self, refresh_ns: int, kernel_launches: int, batch_rows: int,
               python_insert_iters: int, candidates_pruned: int = 0,
               kernel_cells_visited: int = 0,
               soa_insert_rows: int = 0,
               prefilter_screened: int = 0,
               prefilter_suspects: int = 0,
               prefilter_pruned: int = 0) -> None:
        """Record one refreshed boundary."""
        self.boundaries += 1
        self.refresh_ns += refresh_ns
        self.kernel_launches += kernel_launches
        self.batch_rows += batch_rows
        self.python_insert_iters += python_insert_iters
        self.candidates_pruned += candidates_pruned
        self.kernel_cells_visited += kernel_cells_visited
        self.soa_insert_rows += soa_insert_rows
        self.prefilter_screened += prefilter_screened
        self.prefilter_suspects += prefilter_suspects
        self.prefilter_pruned += prefilter_pruned
        if self.keep_samples:
            self.samples.append(
                (refresh_ns, kernel_launches, batch_rows,
                 python_insert_iters, candidates_pruned,
                 kernel_cells_visited, soa_insert_rows,
                 prefilter_screened, prefilter_suspects, prefilter_pruned)
            )

    # ------------------------------------------------------------ summaries

    @property
    def mean_refresh_ms(self) -> float:
        """Average refresh wall time per boundary in milliseconds."""
        if not self.boundaries:
            return 0.0
        return self.refresh_ns / self.boundaries / 1e6

    @property
    def mean_kernel_launches(self) -> float:
        """Average distance-kernel launches per boundary."""
        if not self.boundaries:
            return 0.0
        return self.kernel_launches / self.boundaries

    def as_dict(self) -> Dict[str, int]:
        """Aggregate counters, ready to merge into ``work_stats()``."""
        return {
            "refresh_boundaries": self.boundaries,
            "refresh_ns": self.refresh_ns,
            "kernel_launches": self.kernel_launches,
            "batch_rows": self.batch_rows,
            "python_insert_iters": self.python_insert_iters,
            "candidates_pruned": self.candidates_pruned,
            "kernel_cells_visited": self.kernel_cells_visited,
            "soa_insert_rows": self.soa_insert_rows,
            "prefilter_screened": self.prefilter_screened,
            "prefilter_suspects": self.prefilter_suspects,
            "prefilter_pruned": self.prefilter_pruned,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RefreshProfile({self.boundaries} boundaries, "
            f"{self.mean_refresh_ms:.3f} ms/boundary, "
            f"{self.mean_kernel_launches:.1f} kernels/boundary)"
        )
