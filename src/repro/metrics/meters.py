"""CPU and memory meters matching the paper's evaluation metrics (Sec. 6.1).

The paper reports two metrics per experiment:

* **CPU time per window** -- "the total amount of system time resources
  used to process the queries on the data in one window", averaged over
  all windows.  :class:`CpuMeter` accumulates a wall-clock sample per
  processed boundary (pure-Python detectors are single-threaded and
  CPU-bound, so wall time tracks CPU time).
* **Peak memory (MEM)** -- "the memory required to store the information
  for each active object (i.e. the skyband points) and the outliers".
  Measuring Python-object RSS would mostly measure interpreter overhead,
  so detectors report *evidence units*: the number of stored evidence
  entries (skyband entries for SOP, neighbor-list entries for MCOD,
  evidence neighbors for LEAP) plus per-tracked-point overhead.
  :class:`MemoryMeter` keeps the peak and converts units to estimated
  bytes with the cost model below.
"""

from __future__ import annotations

import time
from typing import List, Sequence

__all__ = ["CpuMeter", "MemoryMeter", "EVIDENCE_ENTRY_BYTES", "POINT_STATE_BYTES"]

#: cost model: one evidence entry ~ (neighbor id + position + layer/distance)
EVIDENCE_ENTRY_BYTES = 24
#: cost model: fixed bookkeeping per tracked point per structure
POINT_STATE_BYTES = 48


class CpuMeter:
    """Accumulates per-boundary processing-time samples."""

    def __init__(self) -> None:
        self.samples_ns: List[int] = []
        self._started_at: int = 0

    def start(self) -> None:
        self._started_at = time.perf_counter_ns()

    def stop(self) -> None:
        self.samples_ns.append(time.perf_counter_ns() - self._started_at)

    @property
    def total_seconds(self) -> float:
        return sum(self.samples_ns) / 1e9

    @property
    def mean_ms_per_window(self) -> float:
        """Average processing time per window in milliseconds (paper's CPU)."""
        if not self.samples_ns:
            return 0.0
        return sum(self.samples_ns) / len(self.samples_ns) / 1e6

    @property
    def max_ms(self) -> float:
        if not self.samples_ns:
            return 0.0
        return max(self.samples_ns) / 1e6

    def __len__(self) -> int:
        return len(self.samples_ns)

    @classmethod
    def merge(cls, meters: Sequence["CpuMeter"]) -> "CpuMeter":
        """Combine per-shard meters: boundary-aligned sample sums.

        Shards of one runtime process the same boundary schedule, so
        sample ``i`` of every meter measures the same boundary; the merged
        sample is the total CPU spent on that boundary across shards
        (shards of unequal length -- a shard that joined late -- pad with
        zero).  Merging a single meter reproduces it exactly.
        """
        out = cls()
        if not meters:
            return out
        width = max(len(m.samples_ns) for m in meters)
        for i in range(width):
            out.samples_ns.append(sum(
                m.samples_ns[i] for m in meters if i < len(m.samples_ns)
            ))
        return out


class MemoryMeter:
    """Tracks peak evidence units and converts them to estimated bytes."""

    def __init__(self) -> None:
        self.peak_units: int = 0
        self.peak_points: int = 0
        self.last_units: int = 0

    def sample(self, units: int, tracked_points: int = 0) -> None:
        self.last_units = units
        if units > self.peak_units:
            self.peak_units = units
        if tracked_points > self.peak_points:
            self.peak_points = tracked_points

    @property
    def peak_bytes(self) -> int:
        return (self.peak_units * EVIDENCE_ENTRY_BYTES
                + self.peak_points * POINT_STATE_BYTES)

    @property
    def peak_kb(self) -> float:
        return self.peak_bytes / 1024.0

    @classmethod
    def merge(cls, meters: Sequence["MemoryMeter"]) -> "MemoryMeter":
        """Combine per-shard meters by summing peaks.

        Per-shard peaks need not coincide in time, so the sum is an upper
        bound on the true simultaneous peak -- the honest number for
        capacity planning (every shard must be provisioned for its own
        peak).  Merging a single meter reproduces it exactly.
        """
        out = cls()
        out.peak_units = sum(m.peak_units for m in meters)
        out.peak_points = sum(m.peak_points for m in meters)
        out.last_units = sum(m.last_units for m in meters)
        return out
