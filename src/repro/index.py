"""Uniform grid indexes for spatial candidate restriction over the window.

The stream kNN/outlier systems the paper builds on ([6], [13], [15]) and
the Flink continuous-outlier system (Toliopoulos et al.) all index the
window with a uniform grid so that a range query touches only the cells
intersecting the query ball.  This module provides that substrate, numpy
first:

* :func:`cells_of_block` -- vectorized cell binning of a whole coordinate
  block (``floor(mat / cell_size)`` in one kernel);
* :class:`GridIndex` -- points hashed to cells of side ``cell_size``;
  ``range_query(values, r)`` visits only the cell neighborhood covering
  radius ``r`` and filters exactly with the metric; ``insert_block`` bins
  a whole batch with one vectorized call;
* :class:`GridCandidateIndex` -- the detector-facing pruning structure: a
  grid over a :class:`~repro.streams.buffer.WindowBuffer`'s live region
  keeping one *contiguous, ascending* numpy index array per cell, built
  incrementally under append/evict, whose ``candidates_within`` call
  returns, per evaluated point, the live-buffer indexes of every point in
  cells intersecting its query ball (a conservative superset of the true
  neighbors -- exactly the candidates K-SKY cannot discard a priori);
* :class:`IndexedWindow` -- a window buffer + grid kept in sync through
  appends and evictions, exposing the same ``neighbor_count`` contract as
  :class:`~repro.streams.buffer.WindowBuffer`.

The detectors default to vectorized linear scans for due-query
evaluation, but the K-SKY refresh stage can route its batched scans
through :class:`GridCandidateIndex` (``refresh_strategy="grid"``, see
``repro.engine.refresh``) so the pairwise kernels only see spatially
plausible candidates.  Benchmarks live in ``benchmarks/bench_index.py``
and ``benchmarks/bench_grid_refresh.py``; exactness is property-tested
against brute force and against the unpruned refresh engines.
"""

from __future__ import annotations

import math
from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .core.point import DistanceMetric, Point, get_metric

__all__ = ["GridIndex", "GridCandidateIndex", "IndexedWindow",
           "cells_of_block"]

Cell = Tuple[int, ...]


def cells_of_block(mat: np.ndarray, cell_size: float) -> np.ndarray:
    """Vectorized cell binning: ``floor(mat / cell_size)`` as int64.

    ``mat`` is an ``(n, dim)`` coordinate block; the result is the
    ``(n, dim)`` integer cell-coordinate block.  One numpy kernel replaces
    the per-point, per-axis ``math.floor`` loop.  Computed as
    ``floor(v / cell_size)`` with the same IEEE divide-then-floor sequence
    as the scalar :meth:`GridIndex.cell_of`, so block and scalar binning
    agree bit-for-bit even at cell boundaries.
    """
    return np.floor(
        np.asarray(mat, dtype=np.float64) / cell_size).astype(np.int64)


class GridIndex:
    """Uniform grid over the attribute space.

    ``cell_size`` should match the dominant query radius: a range query
    with ``r <= cell_size`` then touches at most ``3^dim`` cells.  Larger
    radii are still exact -- the visited neighborhood grows as needed.
    """

    def __init__(self, cell_size: float, metric="euclidean"):
        if not cell_size > 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self.metric: DistanceMetric = get_metric(metric)
        self._cells: Dict[Cell, Dict[int, Point]] = {}
        self._where: Dict[int, Cell] = {}

    # ------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, seq: int) -> bool:
        return seq in self._where

    def cell_of(self, values: Sequence[float]) -> Cell:
        """Grid cell coordinates of an attribute vector."""
        return tuple(int(math.floor(v / self.cell_size)) for v in values)

    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    # ----------------------------------------------------------- mutation

    def insert(self, point: Point) -> None:
        if point.seq in self._where:
            raise ValueError(f"seq {point.seq} already indexed")
        cell = self.cell_of(point.values)
        self._cells.setdefault(cell, {})[point.seq] = point
        self._where[point.seq] = cell

    def insert_block(self, points: Sequence[Point]) -> None:
        """Bulk insert: one vectorized binning kernel for the whole block.

        Equivalent to ``for p in points: self.insert(p)`` (same cells, same
        duplicate-seq errors) but the cell math runs once over the block's
        coordinate matrix instead of per point per axis.
        """
        if not points:
            return
        seen = set()
        for p in points:
            if p.seq in self._where or p.seq in seen:
                raise ValueError(f"seq {p.seq} already indexed")
            seen.add(p.seq)
        cells = cells_of_block([p.values for p in points], self.cell_size)
        where = self._where
        buckets = self._cells
        for p, row in zip(points, cells.tolist()):
            cell = tuple(row)
            buckets.setdefault(cell, {})[p.seq] = p
            where[p.seq] = cell

    def remove(self, seq: int) -> Point:
        try:
            cell = self._where.pop(seq)
        except KeyError:
            raise KeyError(f"seq {seq} not indexed") from None
        bucket = self._cells[cell]
        point = bucket.pop(seq)
        if not bucket:
            del self._cells[cell]
        return point

    # ------------------------------------------------------------ queries

    def _neighborhood(self, values: Sequence[float], r: float
                      ) -> Iterator[Dict[int, Point]]:
        """Non-empty cells intersecting the ball of radius ``r``."""
        reach = max(1, int(math.ceil(r / self.cell_size)))
        center = self.cell_of(values)
        dim = len(center)
        # iterate the (2*reach+1)^dim neighborhood; sparse dicts make the
        # lookup cheap for empty regions
        def rec(prefix: List[int], axis: int):
            if axis == dim:
                bucket = self._cells.get(tuple(prefix))
                if bucket:
                    yield bucket
                return
            base = center[axis]
            for off in range(-reach, reach + 1):
                prefix.append(base + off)
                yield from rec(prefix, axis + 1)
                prefix.pop()

        yield from rec([], 0)

    def range_query(self, values: Sequence[float], r: float,
                    exclude_seq: Optional[int] = None) -> List[Point]:
        """All indexed points within ``r`` of ``values`` (exact)."""
        out: List[Point] = []
        for bucket in self._neighborhood(values, r):
            for seq, p in bucket.items():
                if seq == exclude_seq:
                    continue
                if self.metric(values, p.values) <= r:
                    out.append(p)
        return out

    def range_count(self, values: Sequence[float], r: float,
                    exclude_seq: Optional[int] = None,
                    stop_at: Optional[int] = None) -> int:
        """Count points within ``r``; optionally stop early at ``stop_at``
        (the minimal-probing idiom: 'are there at least k neighbors?')."""
        count = 0
        for bucket in self._neighborhood(values, r):
            for seq, p in bucket.items():
                if seq == exclude_seq:
                    continue
                if self.metric(values, p.values) <= r:
                    count += 1
                    if stop_at is not None and count >= stop_at:
                        return count
        return count


class GridCandidateIndex:
    """Grid-cell candidate restriction over a ``WindowBuffer`` live region.

    The pruning substrate of the grid-pruned K-SKY refresh engine
    (``repro.engine.refresh.GridPrunedRefresh``).  Points are binned into
    uniform cells of side ``cell_size``; each non-empty cell keeps one
    contiguous, strictly ascending ``int64`` array of *absolute* arrival
    positions (``WindowBuffer.appended_total`` axis), so the structure
    survives front eviction and storage compaction without re-binning:
    eviction is a per-cell sorted-prefix drop, append is one vectorized
    binning kernel plus one concatenation per touched cell.

    ``candidates_within(rows, r)`` returns, per query row, the ascending
    live-buffer index array of every point whose cell intersects the
    row's radius-``r`` ball -- a conservative superset of the true
    neighbors (cells are included whole), and therefore a superset of
    every candidate K-SKY could insert: any point it omits is farther
    than ``r`` on some axis, hence farther than ``r`` in any of the
    built-in metrics, hence hashed past the last layer and discarded by
    Def. 5 condition 3.  Queries falling in the same cell share one
    candidate array object, which the refresh engine uses to batch them
    under a single pairwise kernel.
    """

    def __init__(self, cell_size: float):
        if not cell_size > 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        #: absolute arrival positions per cell, each strictly ascending
        self._cells: Dict[Cell, np.ndarray] = {}
        #: total points ever appended (absolute position high-water mark)
        self._count = 0
        #: absolute positions below this are evicted (dead prefixes are
        #: trimmed lazily on access and swept in bulk past a threshold)
        self._evicted = 0
        self._swept_at = 0
        #: cell probes served by ``candidates_within`` (the
        #: ``kernel_cells_visited`` observability counter)
        self.cells_visited = 0

    #: sweep dead prefixes from every cell once this many evictions have
    #: accumulated since the last sweep (mirrors WindowBuffer compaction)
    _SWEEP_THRESHOLD = 4096

    def __len__(self) -> int:
        return self._count - self._evicted

    def cell_count(self) -> int:
        """Number of cells with at least one (possibly dead) entry."""
        return len(self._cells)

    # ----------------------------------------------------------- mutation

    def append_block(self, mat: np.ndarray) -> None:
        """Bin and index a block of rows arriving at positions
        ``[count, count + len(mat))``."""
        n = len(mat)
        if n == 0:
            return
        cells = cells_of_block(mat, self.cell_size)
        pos = np.arange(self._count, self._count + n, dtype=np.int64)
        self._count += n
        uniq, inverse = np.unique(cells, axis=0, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        counts = np.bincount(inverse, minlength=len(uniq))
        chunks = np.split(pos[order], np.cumsum(counts)[:-1])
        for cell_row, chunk in zip(uniq.tolist(), chunks):
            key = tuple(cell_row)
            old = self._cells.get(key)
            # stable sort keeps per-cell positions ascending; old entries
            # are all older, so concatenation preserves the invariant
            self._cells[key] = (chunk if old is None or not len(old)
                                else np.concatenate((old, chunk)))

    def evict_to(self, evicted: int) -> None:
        """Mark absolute positions below ``evicted`` as dead.

        Dead prefixes are trimmed lazily when a cell is next read; a full
        sweep (dropping empty cells) runs once enough evictions accumulate.
        """
        if evicted <= self._evicted:
            return
        self._evicted = evicted
        if evicted - self._swept_at < self._SWEEP_THRESHOLD:
            return
        self._swept_at = evicted
        for key in list(self._cells):
            arr = self._cells[key]
            i = int(np.searchsorted(arr, evicted, side="left"))
            if i >= len(arr):
                del self._cells[key]
            elif i:
                self._cells[key] = arr[i:]

    def sync(self, buffer) -> None:
        """Bring the index up to date with a ``WindowBuffer``.

        Appends the buffer rows not yet indexed and evicts everything the
        buffer evicted, using the buffer's monotone ``appended_total`` as
        the shared absolute axis.  A freshly built index attached to a
        warm buffer (checkpoint restore, dynamic rebuild) fast-forwards
        past the already-evicted prefix without materializing it.
        """
        total = buffer.appended_total
        evicted = total - len(buffer)
        if self._count < evicted:
            self._count = evicted  # never-seen points, already dead
        self.evict_to(evicted)
        if self._count < total:
            lo_live = len(buffer) - (total - self._count)
            self.append_block(buffer.matrix()[lo_live:])

    # ------------------------------------------------------------ queries

    def _live_cell(self, key: Cell) -> Optional[np.ndarray]:
        """The cell's live positions (dead prefix trimmed, write-back)."""
        arr = self._cells.get(key)
        if arr is None:
            return None
        if len(arr) and int(arr[0]) < self._evicted:
            i = int(np.searchsorted(arr, self._evicted, side="left"))
            if i >= len(arr):
                del self._cells[key]
                return None
            arr = arr[i:]
            self._cells[key] = arr
        return arr if len(arr) else None

    def _reach(self, r: float) -> int:
        """Per-axis cell reach covering radius ``r`` (conservative)."""
        reach = max(1, int(math.ceil(r / self.cell_size)))
        # guard against a downward-rounded fp quotient: the covered span
        # must be at least r on every axis
        while reach * self.cell_size < r:
            reach += 1
        return reach

    def candidates_within(
        self, rows: np.ndarray, r: float
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        """Live-buffer candidate indexes for each query row.

        Returns ``(arrays, assign)``: ``arrays[assign[i]]`` is the
        ascending live-index array of all points in cells intersecting
        row ``i``'s radius-``r`` ball.  Rows binned to the same cell share
        one array object (and one neighborhood walk), so ``arrays`` holds
        one entry per *unique* query cell.
        """
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2:
            raise ValueError("rows must be a 2-D coordinate block")
        q_cells = cells_of_block(rows, self.cell_size)
        reach = self._reach(r)
        uniq, assign = np.unique(q_cells, axis=0, return_inverse=True)
        offsets = list(product(range(-reach, reach + 1),
                               repeat=rows.shape[1]))
        evicted = self._evicted
        arrays: List[np.ndarray] = []
        for center in uniq.tolist():
            parts = []
            for off in offsets:
                arr = self._live_cell(
                    tuple(c + o for c, o in zip(center, off)))
                if arr is not None:
                    parts.append(arr)
            self.cells_visited += len(offsets)
            if not parts:
                arrays.append(np.empty(0, dtype=np.intp))
                continue
            merged = (parts[0] if len(parts) == 1
                      else np.sort(np.concatenate(parts)))
            # absolute positions -> live-buffer indexes
            arrays.append((merged - evicted).astype(np.intp, copy=False))
        return arrays, np.asarray(assign, dtype=np.intp).reshape(-1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GridCandidateIndex(cell_size={self.cell_size:g}, "
                f"live={len(self)}, cells={len(self._cells)})")


class IndexedWindow:
    """A sliding window kept inside a :class:`GridIndex`.

    Mirrors the eviction contract of ``WindowBuffer`` (positions are
    ``seq`` for count-based windows, ``time`` for time-based ones) while
    serving neighbor counts through the grid.
    """

    def __init__(self, cell_size: float, metric="euclidean",
                 by_time: bool = False):
        self.index = GridIndex(cell_size, metric)
        self.by_time = by_time
        self._points: List[Point] = []
        self._start = 0

    def __len__(self) -> int:
        return len(self._points) - self._start

    @property
    def points(self) -> Sequence[Point]:
        return self._points[self._start:]

    def extend(self, points: Iterable[Point]) -> None:
        """Append a batch; cell binning is vectorized over the block."""
        pts = list(points)
        if not pts:
            return
        last = self._points[-1].seq if self._points else None
        for p in pts:
            if last is not None and p.seq <= last:
                raise ValueError("points must arrive in increasing seq order")
            last = p.seq
        self.index.insert_block(pts)
        self._points.extend(pts)

    def evict_before(self, start_pos: float) -> List[Point]:
        evicted: List[Point] = []
        i = self._start
        pts = self._points
        while i < len(pts):
            pos = pts[i].time if self.by_time else float(pts[i].seq)
            if pos >= start_pos:
                break
            evicted.append(pts[i])
            self.index.remove(pts[i].seq)
            i += 1
        self._start = i
        if self._start > 4096 and self._start >= len(self):
            self._points = self._points[self._start:]
            self._start = 0
        return evicted

    def neighbor_count(self, values: Sequence[float], radius: float,
                       exclude_seq: Optional[int] = None,
                       stop_at: Optional[int] = None) -> int:
        """Exact neighbor count within ``radius`` over the live window."""
        return self.index.range_count(values, radius,
                                      exclude_seq=exclude_seq,
                                      stop_at=stop_at)
