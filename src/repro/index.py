"""Uniform grid index for range queries over the active window.

The stream kNN/outlier systems the paper builds on ([6], [13], [15]) all
index the window with a uniform grid so that a range query touches only
the cells intersecting the query ball.  This module provides that
substrate:

* :class:`GridIndex` -- points hashed to cells of side ``cell_size``;
  ``range_query(values, r)`` visits only the cell neighborhood covering
  radius ``r`` and filters exactly with the metric;
* :class:`IndexedWindow` -- a window buffer + grid kept in sync through
  appends and evictions, exposing the same ``neighbor_count`` contract as
  :class:`~repro.streams.buffer.WindowBuffer`.

The detectors in this package default to vectorized linear scans (numpy
beats a Python-loop grid up to surprisingly large windows), so the grid
is offered as a substrate for large-window deployments and as the
reference implementation of the related-work approach; its benchmarks
live in ``benchmarks/bench_index.py`` and its exactness is
property-tested against brute force.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .core.point import DistanceMetric, Point, get_metric

__all__ = ["GridIndex", "IndexedWindow"]

Cell = Tuple[int, ...]


class GridIndex:
    """Uniform grid over the attribute space.

    ``cell_size`` should match the dominant query radius: a range query
    with ``r <= cell_size`` then touches at most ``3^dim`` cells.  Larger
    radii are still exact -- the visited neighborhood grows as needed.
    """

    def __init__(self, cell_size: float, metric="euclidean"):
        if not cell_size > 0:
            raise ValueError("cell_size must be positive")
        self.cell_size = float(cell_size)
        self.metric: DistanceMetric = get_metric(metric)
        self._cells: Dict[Cell, Dict[int, Point]] = {}
        self._where: Dict[int, Cell] = {}

    # ------------------------------------------------------------- basics

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, seq: int) -> bool:
        return seq in self._where

    def cell_of(self, values: Sequence[float]) -> Cell:
        """Grid cell coordinates of an attribute vector."""
        return tuple(int(math.floor(v / self.cell_size)) for v in values)

    def cell_count(self) -> int:
        """Number of non-empty cells."""
        return len(self._cells)

    # ----------------------------------------------------------- mutation

    def insert(self, point: Point) -> None:
        if point.seq in self._where:
            raise ValueError(f"seq {point.seq} already indexed")
        cell = self.cell_of(point.values)
        self._cells.setdefault(cell, {})[point.seq] = point
        self._where[point.seq] = cell

    def remove(self, seq: int) -> Point:
        try:
            cell = self._where.pop(seq)
        except KeyError:
            raise KeyError(f"seq {seq} not indexed") from None
        bucket = self._cells[cell]
        point = bucket.pop(seq)
        if not bucket:
            del self._cells[cell]
        return point

    # ------------------------------------------------------------ queries

    def _neighborhood(self, values: Sequence[float], r: float
                      ) -> Iterator[Dict[int, Point]]:
        """Non-empty cells intersecting the ball of radius ``r``."""
        reach = max(1, int(math.ceil(r / self.cell_size)))
        center = self.cell_of(values)
        dim = len(center)
        # iterate the (2*reach+1)^dim neighborhood; sparse dicts make the
        # lookup cheap for empty regions
        def rec(prefix: List[int], axis: int):
            if axis == dim:
                bucket = self._cells.get(tuple(prefix))
                if bucket:
                    yield bucket
                return
            base = center[axis]
            for off in range(-reach, reach + 1):
                prefix.append(base + off)
                yield from rec(prefix, axis + 1)
                prefix.pop()

        yield from rec([], 0)

    def range_query(self, values: Sequence[float], r: float,
                    exclude_seq: Optional[int] = None) -> List[Point]:
        """All indexed points within ``r`` of ``values`` (exact)."""
        out: List[Point] = []
        for bucket in self._neighborhood(values, r):
            for seq, p in bucket.items():
                if seq == exclude_seq:
                    continue
                if self.metric(values, p.values) <= r:
                    out.append(p)
        return out

    def range_count(self, values: Sequence[float], r: float,
                    exclude_seq: Optional[int] = None,
                    stop_at: Optional[int] = None) -> int:
        """Count points within ``r``; optionally stop early at ``stop_at``
        (the minimal-probing idiom: 'are there at least k neighbors?')."""
        count = 0
        for bucket in self._neighborhood(values, r):
            for seq, p in bucket.items():
                if seq == exclude_seq:
                    continue
                if self.metric(values, p.values) <= r:
                    count += 1
                    if stop_at is not None and count >= stop_at:
                        return count
        return count


class IndexedWindow:
    """A sliding window kept inside a :class:`GridIndex`.

    Mirrors the eviction contract of ``WindowBuffer`` (positions are
    ``seq`` for count-based windows, ``time`` for time-based ones) while
    serving neighbor counts through the grid.
    """

    def __init__(self, cell_size: float, metric="euclidean",
                 by_time: bool = False):
        self.index = GridIndex(cell_size, metric)
        self.by_time = by_time
        self._points: List[Point] = []
        self._start = 0

    def __len__(self) -> int:
        return len(self._points) - self._start

    @property
    def points(self) -> Sequence[Point]:
        return self._points[self._start:]

    def extend(self, points: Iterable[Point]) -> None:
        for p in points:
            if self._points and p.seq <= self._points[-1].seq:
                raise ValueError("points must arrive in increasing seq order")
            self._points.append(p)
            self.index.insert(p)

    def evict_before(self, start_pos: float) -> List[Point]:
        evicted: List[Point] = []
        i = self._start
        pts = self._points
        while i < len(pts):
            pos = pts[i].time if self.by_time else float(pts[i].seq)
            if pos >= start_pos:
                break
            evicted.append(pts[i])
            self.index.remove(pts[i].seq)
            i += 1
        self._start = i
        if self._start > 4096 and self._start >= len(self):
            self._points = self._points[self._start:]
            self._start = 0
        return evicted

    def neighbor_count(self, values: Sequence[float], radius: float,
                       exclude_seq: Optional[int] = None,
                       stop_at: Optional[int] = None) -> int:
        """Exact neighbor count within ``radius`` over the live window."""
        return self.index.range_count(values, radius,
                                      exclude_seq=exclude_seq,
                                      stop_at=stop_at)
