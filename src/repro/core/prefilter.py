"""Tiered pre-filter: vectorized inlier screening ahead of the exact refresh.

Every PR so far made the *exact* K-SKY path faster; on high-inlier-rate
streams the remaining cost is that nearly every point still enters that
path only to be proven boring.  This module adds the cheap first tier the
paper's framing composes with: per boundary, a vectorized
O(anchors x suffix) screen classifies each recent candidate point
*certainly-inlier* or *suspect*, and only suspects enter the exact
SOP/K-SKY refresh
(:class:`~repro.engine.RefreshEngine` short-circuits on the suspect
mask).

**The certification primitive (both screens share it).**  Pick an anchor
point ``a`` and compute one ``distances_from`` kernel over the live
window.  For thresholds ``t + reach = r_min`` the triangle inequality
gives: every point ``p`` with ``d(p, a) <= reach`` has *all* points ``q``
with ``d(q, a) <= t`` within ``r_min`` -- i.e. at skyband layer 0, at or
below every query's radius.  Counting only the members that *succeed*
``p`` in arrival order (a reversed cumulative sum) yields a provable
lower bound on ``p``'s succeeding layer-0 neighbor count.  If that bound
reaches the workload's ``k_max``, ``p`` satisfies the safe-for-all test
(:class:`~repro.engine.SafetyTracker`) for every registered query, for
the rest of its lifetime -- the same argument family as the safe-inlier
machinery in :mod:`repro.core.evaluator` and DESIGN.md section 13/14.
Pruning such a point is *exact*: the refresh it skips would have marked
it fully safe at this very boundary (DESIGN.md section 14 proves this),
so outputs, surviving evidence, and per-point states are bit-identical
to an unscreened run.

A ladder of ``(t, reach)`` rungs per anchor trades a few extra
cumulative sums for per-point ball sizes: points near the anchor get
certified against nearly the whole ``r_min`` ball instead of the fixed
``r_min / 2`` bisection.

**The screen is suffix-restricted.**  A point's successors all sit at
higher live indexes, so restricting membership and suffix counts to a
buffer *suffix* keeps the succeeding-count bound exact for every row in
that suffix.  Certifiable candidates are always recent: a point still
uncertified after two boundaries is one the baseline safety machinery
would also have retired by then, or a genuine suspect (outliers stay
suspects forever -- they are the interesting points).  Each screen call
therefore only pays anchor kernels over the rows that arrived within
the last two screened boundaries, a small fraction of the window.

When the suffix is small enough (``pairwise_budget``), the screens skip
anchors entirely and compute the *exact* within-suffix succeeding
neighbor count with one vectorized pairwise tile -- the saturated limit
of both anchor schemes (every suffix point an anchor, ball radius
zero), and the information-theoretic best a suffix screen can certify.
The tile reuses the batched refresh kernel
(:meth:`~repro.streams.WindowBuffer.pairwise_block`), so its distances
are bit-identical to the scans it replaces and its volume shows up in
``distance_rows`` like any other kernel.

**The screens** differ only in anchor selection:

* :class:`SensitivityScreen` (``prefilter="sensitivity"``) samples
  anchors uniformly from the screened suffix with a boundary-seeded
  deterministic RNG -- the sensitivity-sampling rationale (Lucic &
  Bachem): a uniform sample lands anchors in dense regions proportional
  to their mass, and dense regions are exactly where certification pays.
* :class:`QnScreen` (``prefilter="qn"``) computes a windowed Qn/MAD-style
  robust location/scale per coordinate over the buffer's SoA matrix view
  (the FQN estimator family, Cafaro et al.), quantizes the screened
  suffix into cells whose width is the robust scale clamped to the
  certification radius, and anchors on the newest member of each of the
  most-populated cells -- deterministic density-seeking without
  sampling, robust to multimodal streams where a global robust z would
  collapse every anchor onto the clusters nearest the grand median.

**Modes.**  ``prefilter_mode="exact"`` prunes *only* certified points
(byte-identical outputs, asserted by tests and benchmarks).
``prefilter_mode="fast"`` additionally prunes on the screen's statistical
evidence -- a certified ``k_max``-neighbor count *now* (succession not
required; neighbors may expire first) for the sensitivity screen, a low
robust z for the qn screen.  Fast mode is approximate by design;
``benchmarks/bench_prefilter.py`` measures its recall against the exact
oracle.

Screens are stateful but deterministic (counters only, no wall clock):
when several consecutive screened boundaries certify almost nothing, the
screen backs off for a stretch of boundaries and re-probes -- the same
measured-adaptivity shape as :class:`~repro.engine.AutoRefresh`, so
streams in the no-pay regime stop paying the anchor kernels.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = [
    "InlierScreen",
    "QnScreen",
    "SensitivityScreen",
    "build_prefilter",
    "windowed_qn_scale",
]

#: metrics the certification argument is valid for: the screens rely on
#: the triangle inequality, which every *metric* satisfies but a custom
#: registered distance need not
TRIANGLE_METRICS = ("euclidean", "manhattan", "chebyshev")

#: relative safety shave on the ladder's ``reach`` thresholds so the
#: float rounding of ``r_min - t`` can never push ``t + reach`` past
#: ``r_min`` (the certified pair distance must stay at layer 0)
_REACH_SHAVE = 1e-9

#: lag-quartile -> sigma consistency constant for :func:`windowed_qn_scale`
#: (median sorted-sample gap at lag n/4 of a normal sample is
#: ~0.637 sigma; dividing normalizes like Qn's 2.2219 factor does)
_QN_CONSISTENCY = 0.6373


def windowed_qn_scale(mat: np.ndarray) -> np.ndarray:
    """Per-column windowed Qn/MAD-style robust scale estimate.

    The FQN family estimates Qn -- the first-quartile pairwise gap -- over
    a sliding window.  The O(n log n) windowed form used here sorts each
    coordinate column and takes the median gap at lag ``n // 4``: the
    sorted-sample twin of the pairwise first quartile, normalized by
    ``_QN_CONSISTENCY`` for the normal distribution.  Zero-spread columns
    return 0.0; callers must floor before dividing.
    """
    n = mat.shape[0]
    if n < 8:
        return np.zeros(mat.shape[1], dtype=np.float64)
    xs = np.sort(mat, axis=0)
    h = max(1, n // 4)
    gaps = xs[h:] - xs[:-h]
    return np.median(gaps, axis=0) / _QN_CONSISTENCY


class InlierScreen:
    """Shared certification + adaptivity machinery of both screens.

    Subclasses supply :meth:`_anchor_rows` (and optionally a statistical
    fast-mode mask).  All knobs are constructor parameters with
    production defaults; tests construct screens directly to exercise
    small windows.
    """

    name = "screen"

    def __init__(
        self,
        plan,
        mode: str = "exact",
        max_anchors: int = 48,
        anchor_stride: int = 32,
        ladder_rungs: int = 8,
        min_candidates: int = 64,
        min_prune_rate: float = 0.2,
        patience: int = 8,
        backoff: int = 32,
        pairwise_budget: int = 1_048_576,
    ):
        if mode not in ("exact", "fast"):
            raise ValueError(f"mode must be 'exact' or 'fast', got {mode!r}")
        self.plan = plan
        self.mode = mode
        #: anchor budget per boundary (each anchor is one distance kernel)
        self.max_anchors = max(1, max_anchors)
        #: ~one anchor per this many live rows, up to ``max_anchors``
        self.anchor_stride = max(1, anchor_stride)
        #: ``(t, reach)`` rungs per anchor; more rungs certify points
        #: farther from the anchor at the cost of one cumsum pass each
        self.ladder_rungs = max(2, ladder_rungs)
        #: never screen windows smaller than this (cannot pay)
        self.min_candidates = max(1, min_candidates)
        #: adaptive backoff: after ``patience`` consecutive screened
        #: boundaries pruning less than ``min_prune_rate`` of their
        #: candidates, sit out ``backoff`` boundaries, then re-probe.
        #: The threshold is the measured pay floor, not a formality:
        #: below roughly a fifth certified, the screen's anchor kernels
        #: cost more than the scans they retire
        self.min_prune_rate = float(min_prune_rate)
        self.patience = max(1, patience)
        self.backoff = max(1, backoff)
        #: largest suffix^2 (pairwise elements) the exact tile may spend;
        #: larger suffixes fall back to the anchor-ladder bounds
        self.pairwise_budget = max(0, pairwise_budget)
        self._r_min = float(plan.grid.values[0])
        self._k_max = int(plan.k_max)
        self._boundary = 0
        self._low_streak = 0
        self._disabled_until = 0
        #: newest live seq at each of the last two non-tiny calls --
        #: defines the screened suffix (arrivals since two calls ago)
        self._seq_horizon: List[int] = []
        #: (boundary, "screened"|"skipped"|"backoff", prune_rate) trace
        self.decisions: List[Tuple[int, str, float]] = []

    # ------------------------------------------------------------- interface

    def prune_mask(self, det) -> Optional[np.ndarray]:
        """Certainly-inlier mask over live buffer rows for this boundary.

        Returns ``None`` when the screen sits this boundary out (window
        too small, or adaptive backoff); otherwise a bool array aligned
        with ``det.buffer`` live indexes.  Rows already fully safe may be
        flagged too -- the refresh partition skips them first, so the
        flag is never acted on.
        """
        boundary = self._boundary
        self._boundary = boundary + 1
        buf = det.buffer
        n = len(buf)
        if n < self.min_candidates:
            return None
        # arrivals since two calls ago; older rows are either already
        # fully safe (the partition skips them before consulting the
        # mask) or persistent suspects certification cannot retire
        horizon = self._seq_horizon
        lo = 0
        if len(horizon) == 2:
            lo = buf.first_index_at_or_after_seq(horizon[0] + 1)
        horizon.append(int(buf.seq_array()[-1]))
        del horizon[:-2]
        if boundary < self._disabled_until:
            return None
        if lo >= n:
            return None
        mat = buf.matrix()
        tail_n = n - lo
        if tail_n * tail_n <= self.pairwise_budget:
            bound, now = self._certify_exact(buf, mat, lo,
                                             self.mode == "fast")
        else:
            anchors = self._anchor_rows(det, mat, lo, boundary)
            bound, now = self._certify(buf, mat, lo, anchors,
                                       self.mode == "fast")
        mask = np.zeros(n, dtype=bool)
        sub = bound >= self._k_max
        if self.mode == "fast":
            sub |= now >= self._k_max
        mask[lo:] = sub
        if self.mode == "fast":
            fast = self._fast_mask(det, mat)
            if fast is not None:
                mask |= fast
        return mask

    def observe(self, screened: int, pruned: int) -> None:
        """Feed back one boundary's actual yield (drives the backoff)."""
        if screened <= 0:
            return
        rate = pruned / screened
        self.decisions.append((self._boundary - 1, "screened", rate))
        if rate < self.min_prune_rate:
            self._low_streak += 1
            if self._low_streak >= self.patience:
                self._low_streak = 0
                self._disabled_until = self._boundary + self.backoff
                self.decisions.append(
                    (self._boundary - 1, "backoff", rate))
        else:
            self._low_streak = 0

    # --------------------------------------------------------- certification

    def _certify(self, buf, mat: np.ndarray, lo: int, anchors: np.ndarray,
                 want_now: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Anchor-ball neighbor-count lower bounds over rows ``[lo, n)``.

        Returns ``(bound, now)`` aligned with the suffix: ``bound[i]``
        lower-bounds row ``lo + i``'s *succeeding* within-``r_min``
        neighbor count (the exact-mode criterion) -- exact despite the
        suffix restriction, because successors of a suffix row are all
        suffix rows themselves; ``now[i]`` its total within-``r_min``
        neighbor count over the suffix (fast mode only; zeros otherwise
        -- a lower bound on the true window-wide count).  Anchor kernels
        go through ``buf.distances_from`` so
        ``distance_rows``/``kernel_calls`` account the screen's own work
        honestly.
        """
        n = mat.shape[0] - lo
        r_min = self._r_min
        k_max = self._k_max
        rungs = self.ladder_rungs
        bound = np.zeros(n, dtype=np.int64)
        now = np.zeros(n, dtype=np.int64)
        for a in anchors:
            d = buf.distances_from(mat[int(a)], lo, lo + n)
            for j in range(1, rungs):
                t = r_min * j / rungs
                reach = (r_min - t) * (1.0 - _REACH_SHAVE)
                member = d <= t
                total = int(np.count_nonzero(member))
                if total + 1 <= k_max:
                    # even a full suffix cannot certify anyone; the
                    # wider rungs above can only grow membership
                    continue
                eligible = d <= reach
                if not eligible.any():
                    break
                # members at live index >= i, then strictly after i
                at_or_after = np.cumsum(member[::-1])[::-1]
                succ = at_or_after - member
                np.maximum(bound, np.where(eligible, succ, 0), out=bound)
                if want_now:
                    np.maximum(now, np.where(eligible, total - member, 0),
                               out=now)
        return bound, now

    def _certify_exact(self, buf, mat: np.ndarray, lo: int,
                       want_now: bool) -> Tuple[np.ndarray, np.ndarray]:
        """Exact within-suffix neighbor counts via one pairwise tile.

        For the euclidean metric the tile uses the BLAS squared-distance
        expansion ``|a|^2 + |b|^2 - 2ab`` -- several times faster than
        the broadcast kernel because the dominant term is one ``dgemm``
        instead of an ``n x n x dim`` temporary.  The expansion's
        cancellation error is bounded by a few ulps of the largest
        centered squared norm, so comparing against a threshold shaved
        by ``1e-12`` of that norm keeps the test *conservative*: it can
        only fail to certify a point the metric kernel would have (never
        the reverse), which preserves exactness.  Other metrics go
        through :meth:`~repro.streams.WindowBuffer.pairwise_block`,
        whose rows are bit-identical to the scans' ``distances_from``.
        """
        tail = mat[lo:]
        if buf.metric.name == "euclidean":
            c = tail - tail.mean(axis=0)
            sq = np.einsum("ij,ij->i", c, c)
            d2 = sq[:, None] + sq[None, :] - 2.0 * (c @ c.T)
            max_sq = float(sq.max()) if sq.size else 0.0
            thresh = (self._r_min * self._r_min * (1.0 - _REACH_SHAVE)
                      - 1e-12 * max_sq)
            close = d2 <= thresh
            buf.distance_rows += tail.shape[0] * tail.shape[0]
            buf.kernel_calls += 1
        else:
            d = buf.pairwise_block(tail, lo, mat.shape[0])
            close = d <= self._r_min
        np.fill_diagonal(close, False)
        bound = np.triu(close, k=1).sum(axis=1, dtype=np.int64)
        if want_now:
            now = close.sum(axis=1, dtype=np.int64)
        else:
            now = np.zeros(tail.shape[0], dtype=np.int64)
        return bound, now

    # ------------------------------------------------------------- subclass

    def _anchor_rows(self, det, mat: np.ndarray, lo: int, boundary: int
                     ) -> np.ndarray:
        """Live row indexes (``>= lo``) to anchor certification balls on."""
        raise NotImplementedError

    def _fast_mask(self, det, mat: np.ndarray) -> Optional[np.ndarray]:
        """Extra statistical certainly-inlier mask (fast mode only)."""
        return None

    def _n_anchors(self, n: int) -> int:
        return min(self.max_anchors, max(1, n // self.anchor_stride))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(mode={self.mode!r}, "
                f"max_anchors={self.max_anchors})")


class SensitivityScreen(InlierScreen):
    """Uniformly sampled anchors (deterministic, boundary-seeded).

    Sampling anchors uniformly from the screened suffix is the
    sensitivity-sampling shortcut: regions holding a ``1/m`` fraction of
    the suffix's mass receive an anchor with high probability, so the
    certified balls cover the dense cores where inliers concentrate.
    Determinism: the RNG is seeded from the screen's own boundary
    counter, never from wall clock, so reruns (and checkpoint restores
    at the same boundary) screen identically.
    """

    name = "sensitivity"

    _SEED = 0x5EED

    def _anchor_rows(self, det, mat: np.ndarray, lo: int, boundary: int
                     ) -> np.ndarray:
        n = mat.shape[0] - lo
        m = min(self._n_anchors(n), n)
        rng = np.random.default_rng((self._SEED, boundary))
        return lo + rng.choice(n, size=m, replace=False)


class QnScreen(InlierScreen):
    """Density-hash anchors scaled by a windowed Qn/MAD estimate.

    Per boundary the screen computes a per-coordinate robust scale
    (:func:`windowed_qn_scale`) over the buffer's SoA coordinate matrix,
    quantizes the screened suffix into grid cells of width
    ``min(scale, r_min / 2)`` per dimension, and anchors on the *newest*
    member of each of the ``m`` most-populated cells.  Dense cells are
    cluster cores -- exactly where certification balls pay -- and the
    scale clamp keeps cells finer than the robust spread on multimodal
    streams (where the global scale reflects inter-cluster gaps, not
    core width) while never exceeding the certification radius.  Wholly
    deterministic: occupancy counts with stable tie-breaks, no sampling.

    Fast mode additionally prunes points whose max per-dimension robust
    z (median-centered, Qn-scaled: the FQN screening rule) is at most
    ``fast_z``.  On multimodal streams the global median/scale blur
    cluster structure, so the default ``fast_z`` is conservative; recall
    is measured, not assumed (``benchmarks/bench_prefilter.py``).
    """

    name = "qn"

    def __init__(self, plan, mode: str = "exact", fast_z: float = 1.0,
                 **kwargs):
        super().__init__(plan, mode, **kwargs)
        #: fast-mode robust-z prune threshold
        self.fast_z = float(fast_z)

    def _robust_z(self, mat: np.ndarray) -> np.ndarray:
        med = np.median(mat, axis=0)
        scale = windowed_qn_scale(mat)
        scale = np.where(scale > 0.0, scale, np.inf)
        return np.max(np.abs(mat - med) / scale, axis=1)

    def _anchor_rows(self, det, mat: np.ndarray, lo: int, boundary: int
                     ) -> np.ndarray:
        tail = mat[lo:]
        m = min(self._n_anchors(tail.shape[0]), tail.shape[0])
        half_r = self._r_min / 2.0
        scale = windowed_qn_scale(mat)
        cell_w = np.where(scale > 0.0, np.minimum(scale, half_r), half_r)
        cells = np.floor(tail / cell_w).astype(np.int64)
        _, inverse, counts = np.unique(
            cells, axis=0, return_inverse=True, return_counts=True)
        newest = np.zeros(counts.shape[0], dtype=np.int64)
        np.maximum.at(newest, inverse, np.arange(tail.shape[0]))
        top = np.argsort(-counts, kind="stable")[:m]
        return lo + newest[top]

    def _fast_mask(self, det, mat: np.ndarray) -> Optional[np.ndarray]:
        return self._robust_z(mat) <= self.fast_z


def build_prefilter(config, plan) -> Optional[InlierScreen]:
    """The screen a :class:`~repro.engine.DetectorConfig` asks for.

    Returns ``None`` for ``prefilter="none"``.  Config validation already
    guarantees a known screen name, a triangle-inequality metric, and
    ``use_safe_inliers=True`` (certified prunes commit through the
    fully-safe machinery).
    """
    if config.prefilter == "none":
        return None
    if config.prefilter == "qn":
        return QnScreen(plan, mode=config.prefilter_mode)
    if config.prefilter == "sensitivity":
        return SensitivityScreen(plan, mode=config.prefilter_mode)
    raise ValueError(f"unknown prefilter {config.prefilter!r}")
