"""Outlier query model: ``q(r, k, win, slide)`` and query groups.

Sec. 2 of the paper: a streaming distance-based outlier query is
parameterized by the *pattern-specific* parameters ``r`` (neighbor range)
and ``k`` (neighbor count threshold) and the *window-specific* parameters
``win`` and ``slide``.  A point ``p`` of the current window ``W`` is an
outlier for ``q`` iff fewer than ``k`` other window points lie within
distance ``r`` of ``p``.

A :class:`QueryGroup` is the workload ``Q`` of member queries processed
concurrently over one stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..streams.windows import SwiftSchedule, WindowSpec

__all__ = ["OutlierQuery", "QueryGroup"]


@dataclass(frozen=True)
class OutlierQuery:
    """One distance-based outlier detection request.

    ``attributes`` optionally restricts the query to a subset of the stream's
    attribute indexes (Fig. 10(b) workloads); ``None`` means all attributes.
    ``name`` labels the query in outputs and reports.
    """

    r: float
    k: int
    window: WindowSpec
    attributes: Optional[Tuple[int, ...]] = None
    name: str = ""

    def __post_init__(self) -> None:
        if not (isinstance(self.k, int) and not isinstance(self.k, bool)):
            raise TypeError(f"k must be an int, got {type(self.k).__name__}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        r = float(self.r)
        if not r > 0:
            raise ValueError(f"r must be positive, got {self.r}")
        object.__setattr__(self, "r", r)
        if not isinstance(self.window, WindowSpec):
            raise TypeError("window must be a WindowSpec")
        if self.attributes is not None:
            attrs = tuple(int(a) for a in self.attributes)
            if len(set(attrs)) != len(attrs):
                raise ValueError(f"duplicate attribute indexes in {attrs}")
            if any(a < 0 for a in attrs):
                raise ValueError(f"attribute indexes must be >= 0, got {attrs}")
            object.__setattr__(self, "attributes", attrs)
        if not self.name:
            object.__setattr__(self, "name", self.default_name())

    def default_name(self) -> str:
        """Canonical label ``q(r,k,win,slide)``."""
        return (
            f"q(r={self.r:g},k={self.k},win={self.window.win},"
            f"slide={self.window.slide})"
        )

    # convenience accessors mirroring the paper's notation
    @property
    def win(self) -> int:
        return self.window.win

    @property
    def slide(self) -> int:
        return self.window.slide

    @property
    def kind(self) -> str:
        return self.window.kind

    def replace(self, **changes) -> "OutlierQuery":
        """Return a copy with the given fields replaced."""
        current = {
            "r": self.r,
            "k": self.k,
            "window": self.window,
            "attributes": self.attributes,
            "name": "",
        }
        win_changes = {k: changes.pop(k) for k in ("win", "slide", "kind")
                       if k in changes}
        if win_changes:
            current["window"] = WindowSpec(
                win=win_changes.get("win", self.window.win),
                slide=win_changes.get("slide", self.window.slide),
                kind=win_changes.get("kind", self.window.kind),
            )
        current.update(changes)
        return OutlierQuery(**current)


class QueryGroup:
    """The workload ``Q``: member queries sharing one input stream.

    All member windows must share a kind (count- or time-based).  The group
    exposes the derived quantities the SOP framework needs: the sorted
    unique ``r`` grid, the ``k`` subgroups, and the swift schedule.
    """

    def __init__(self, queries: Sequence[OutlierQuery]):
        members = tuple(queries)
        if not members:
            raise ValueError("QueryGroup requires at least one query")
        kinds = {q.kind for q in members}
        if len(kinds) != 1:
            raise ValueError(
                f"all queries in a group must share a window kind, got {sorted(kinds)}"
            )
        attr_sets = {q.attributes for q in members}
        if len(attr_sets) != 1:
            raise ValueError(
                "a QueryGroup must be homogeneous in attribute sets; use "
                "repro.core.multi_attr.MultiAttributeSOP for mixed workloads"
            )
        self.queries: Tuple[OutlierQuery, ...] = members
        self.kind: str = members[0].kind
        self.attributes: Optional[Tuple[int, ...]] = members[0].attributes
        self.swift = SwiftSchedule([q.window for q in members])

    # ------------------------------------------------------------ container

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[OutlierQuery]:
        return iter(self.queries)

    def __getitem__(self, i: int) -> OutlierQuery:
        return self.queries[i]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryGroup({len(self.queries)} queries, kind={self.kind!r}, "
            f"k_max={self.k_max}, r_grid={len(self.r_grid)} layers)"
        )

    # --------------------------------------------------------- derived views

    @property
    def r_grid(self) -> Tuple[float, ...]:
        """Sorted unique ``r`` values across the whole group (Def. 4 grid)."""
        return tuple(sorted({q.r for q in self.queries}))

    @property
    def k_values(self) -> Tuple[int, ...]:
        """Sorted unique ``k`` values across the group."""
        return tuple(sorted({q.k for q in self.queries}))

    @property
    def k_max(self) -> int:
        return max(q.k for q in self.queries)

    @property
    def r_min(self) -> float:
        return min(q.r for q in self.queries)

    @property
    def r_max(self) -> float:
        return max(q.r for q in self.queries)

    def subgroups_by_k(self) -> Dict[int, List[int]]:
        """Member indexes grouped by ``k`` (the paper's sub-groups Q_j)."""
        groups: Dict[int, List[int]] = {}
        for i, q in enumerate(self.queries):
            groups.setdefault(q.k, []).append(i)
        return {k: groups[k] for k in sorted(groups)}

    def due_members(self, t: int) -> List[int]:
        """Member indexes whose query produces output at boundary ``t``."""
        return [i for i, q in enumerate(self.queries) if q.window.due_at(t)]
