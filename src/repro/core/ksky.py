"""K-SKY: the customized skyband search algorithm (Alg. 1 + Alg. 2).

K-SKY discovers the (k-1)-skyband points of one evaluated point ``p`` in
the current swift window.  It embodies the paper's two optimization
principles:

* **Time-aware prioritization** -- candidates are examined newest-first, so
  an inserted skyband point can never be dominated by a later-examined one
  (later examined = older = dominated-by, never dominating).  One pass
  suffices, and the scan may stop before seeing all points.
* **Least examination** -- for a point that survived a window slide, only
  the new arrivals and its unexpired previous skyband points are examined
  (Lemma 2's proof shows nothing else can re-enter the skyband).

Termination generalizes Alg. 1 line 12 to multiple sub-groups exactly as
Example 3 does: sub-group ``Q_j`` is *resolved* once ``k_j`` points have
been recorded at layers at or below the sub-group's smallest-``r`` layer
(then every member query classifies ``p`` as inlier in the swift window,
and -- by domination -- no unexamined point can be a skyband point that
sub-group still needs).  When every sub-group is resolved the scan stops.
For a single sub-group this reduces to the paper's ``d <= r_min`` rule.

The per-candidate test (Alg. 2 ``skyEvaluate``) is Def. 6: hash the
candidate to its layer, count dominators via the layer prefix, check the
dominator-dependent reach table ``allowed_layer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..streams.buffer import WindowBuffer
from .lsky import LSky, SkybandEntry
from .parser import SkybandPlan

__all__ = ["KSkyResult", "KSkyRunner", "sky_evaluate"]


def sky_evaluate(plan: SkybandPlan, lsky: LSky, layer: int) -> bool:
    """Alg. 2: is a candidate at ``layer`` a skyband point right now?

    Implements Def. 6: (1) the candidate hashes into a real bucket,
    (2) fewer than ``k_max`` points dominate it, and (3) some sub-group
    with ``k_j`` above the dominator count can still use a point this far
    out.  Does not mutate ``lsky``.
    """
    if layer >= plan.n_layers:
        return False
    c = lsky.dominator_count(layer)
    if c >= plan.k_max:
        return False
    return layer <= plan.allowed_layer[c]


@dataclass
class KSkyResult:
    """Outcome of one K-SKY run for one evaluated point."""

    lsky: LSky
    #: number of candidate points examined (the ``L`` of the paper's
    #: complexity analysis; Lemma 2 says it is minimal)
    examined: int
    #: True iff the scan stopped before exhausting its input because every
    #: sub-group was resolved (p is a swift-window inlier for all queries)
    terminated_early: bool
    #: True iff every sub-group was resolved (same as inlier-for-all in the
    #: swift window); termination implies this but not vice versa (the
    #: input may be exhausted on the same candidate that resolves the last
    #: sub-group)
    resolved_all: bool


class _Resolution:
    """Tracks which sub-groups are still unresolved during a scan.

    Checking every sub-group after every insert is exact but costs
    O(#sub-groups) per insert, which dominates runtime for workloads with
    many distinct ``k`` values.  The check cadence is therefore hybrid:

    * exact (per insert) while few sub-groups are pending -- this keeps the
      paper's termination points literal (Example 3 stops before ``p1``);
    * batched (every ``_CHECK_EVERY`` inserts, plus at chunk boundaries and
      at scan end) for large workloads.  Late termination only *adds*
      genuine skyband entries, which never changes any query verdict.
    """

    __slots__ = ("pending", "_since_check")

    _EXACT_LIMIT = 8
    _CHECK_EVERY = 32

    def __init__(self, plan: SkybandPlan,
                 pending: List[Tuple[int, int]] = None):
        # (min_layer, k) per sub-group; callers running many scans per
        # boundary pass a precomputed template to skip rebuilding it
        self.pending: List[Tuple[int, int]] = (
            list(pending) if pending is not None
            else [(sg.min_layer, sg.k) for sg in plan.subgroups]
        )
        self._since_check = 0

    def check(self, lsky: LSky) -> bool:
        """Exact prune of resolved sub-groups; True when all resolved."""
        self._since_check = 0
        if not self.pending:
            return True
        self.pending = [
            (min_layer, k) for min_layer, k in self.pending
            if lsky.dominator_count(min_layer) < k
        ]
        return not self.pending

    def on_insert(self, lsky: LSky, layer: int) -> bool:
        """Update after an insert at ``layer``; True when all resolved."""
        if not self.pending:
            return True
        if len(self.pending) <= self._EXACT_LIMIT:
            still = []
            for min_layer, k in self.pending:
                if layer <= min_layer and lsky.dominator_count(min_layer) >= k:
                    continue  # resolved now
                still.append((min_layer, k))
            self.pending = still
            return not still
        self._since_check += 1
        if self._since_check >= self._CHECK_EVERY:
            return self.check(lsky)
        return False

    @property
    def done(self) -> bool:
        return not self.pending


class KSkyRunner:
    """Executes K-SKY scans against a shared :class:`WindowBuffer`.

    ``chunk_size`` controls the blockwise distance computation: candidate
    distances are computed ``chunk_size`` points at a time with the
    workload's vectorized metric, then the skyband logic consumes the chunk
    newest-first so early termination still skips most of the window.
    """

    def __init__(self, plan: SkybandPlan, chunk_size: int = 256):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.plan = plan
        self.chunk_size = chunk_size
        self.by_time = plan.kind == "time"
        # resolution template, copied per scan (see _Resolution)
        self._pending = [(sg.min_layer, sg.k) for sg in plan.subgroups]

    # ----------------------------------------------------------------- runs

    def run_new_point(self, p_values: Sequence[float], p_seq: int,
                      buffer: WindowBuffer) -> KSkyResult:
        """Alg. 1, lines 1-2: a new point searches the window from scratch."""
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=0, hi=len(buffer),
        )
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.done or resolution.check(lsky),
        )

    def scan_new_arrivals(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        new_from_index: int,
    ) -> KSkyResult:
        """Scan only the live indexes ``[new_from_index, end)``.

        The array-based detector path uses this to obtain the new-arrival
        skyband entries, then merges them with the cached previous
        evidence itself (see ``repro.core.sop``).
        """
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=new_from_index, hi=len(buffer),
        )
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.done,
        )

    def scan_precomputed(
        self,
        p_seq: int,
        layers: Sequence[int],
        cand_seqs: Sequence[int],
        cand_poss: Sequence[float],
    ) -> KSkyResult:
        """Batched form of :meth:`scan_new_arrivals`: consume one row of a
        precomputed layer matrix instead of launching per-point kernels.

        ``layers`` is the evaluated point's row of
        ``RGrid.layers_of(pairwise_block(...))`` as a plain Python list;
        ``cand_seqs``/``cand_poss`` are the aligned candidate seqs and
        window positions, shared by every row of the batch.  All three are
        oldest-first in live-buffer order over ``[new_from, len(buffer))``.

        The scan order (newest first), the chunk boundaries, and the
        resolution-check cadence replicate :meth:`_scan_buffer` exactly, so
        the produced skyband, the ``examined`` count, and the
        ``terminated_early`` flag are identical to the per-point path --
        the detector's batched/per-point output-equality gate depends on
        this.  The loop body touches only Python ints and lists: the numpy
        work all happened in the one pairwise kernel per boundary.
        """
        plan = self.plan
        lsky = LSky(plan.n_layers)
        resolution = _Resolution(plan, self._pending)
        n_layers = plan.n_layers
        k_max = plan.k_max
        allowed = plan.allowed_layer
        dominator_count = lsky.dominator_count
        insert = lsky.insert
        on_insert = resolution.on_insert
        examined = 0
        chunk = self.chunk_size
        block_hi = len(layers)
        terminated = False
        while block_hi > 0:
            block_lo = block_hi - chunk
            if block_lo < 0:
                block_lo = 0
            for j in range(block_hi - 1, block_lo - 1, -1):
                if cand_seqs[j] == p_seq:
                    continue
                examined += 1
                m = layers[j]
                if m >= n_layers:
                    continue
                c = dominator_count(m)
                if c < k_max and m <= allowed[c]:
                    insert(cand_seqs[j], cand_poss[j], m)
                    if on_insert(lsky, m):
                        terminated = True
                        break
                elif resolution.done:
                    terminated = True
                    break
            if terminated or resolution.check(lsky):
                return KSkyResult(
                    lsky=lsky,
                    examined=examined,
                    terminated_early=True,
                    resolved_all=resolution.done,
                )
            block_hi = block_lo
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=False,
            resolved_all=resolution.done,
        )

    def scan_batched(
        self,
        row_indexes: Sequence[int],
        p_seqs: Sequence[int],
        buffer: WindowBuffer,
        lo: int,
    ) -> List[KSkyResult]:
        """Chunk-synchronous batched scans over live indexes ``[lo, end)``.

        ``row_indexes``/``p_seqs`` give the live-buffer index and seq of
        each evaluated point.  All rows share the same candidate range, so
        each chunk costs one ``pairwise_block`` kernel over the still-active
        rows and one vectorized ``layers_of`` hash -- rows that terminate
        drop out of subsequent chunks, which keeps ``distance_rows``
        identical to running :meth:`scan_new_arrivals` (``lo > 0``) or
        :meth:`run_new_point` (``lo == 0``) per row: the per-point path also
        pays for a whole chunk before scanning it.

        Equivalence with the per-point path is exact -- same chunk
        boundaries (anchored at the buffer top), same insert decisions,
        same termination points, same ``examined`` counts.  The Python loop
        only visits candidates that could change the skyband: a candidate
        at layer ``m`` is inserted only if fewer than ``k_max`` stored
        entries dominate it (Def. 6 condition 2), i.e. only if ``m`` is
        below the ``k_max``-th smallest stored layer, and a rejected
        candidate never mutates scan state (the ``resolution.done``
        rejection branch of ``_sky_insert`` is unreachable: ``done`` only
        becomes true at a terminating insert or chunk-boundary check).  The
        below-threshold positions are found with one vectorized comparison
        per chunk; everything the loop touches is a Python int.  Skipped
        candidates are folded into ``examined`` arithmetically.
        """
        plan = self.plan
        n_layers = plan.n_layers
        k_max = plan.k_max
        allowed = plan.allowed_layer
        chunk = self.chunk_size
        by_time = self.by_time
        pts = buffer.points
        hi = len(buffer)
        n = len(p_seqs)
        mat = buffer.matrix()

        lskys = [LSky(n_layers) for _ in range(n)]
        resolutions = [_Resolution(plan, self._pending) for _ in range(n)]
        examined = [0] * n
        results: List[Optional[KSkyResult]] = [None] * n
        active = list(range(n))
        block_hi = hi
        while block_hi > lo and active:
            block_lo = max(lo, block_hi - chunk)
            width = block_hi - block_lo
            q_idx = np.asarray([row_indexes[r] for r in active],
                               dtype=np.intp)
            dists = buffer.pairwise_block(mat[q_idx], block_lo, block_hi)
            lmat = plan.grid.layers_of(dists)
            blk = pts[block_lo:block_hi]
            seqs_blk = [q.seq for q in blk]
            if by_time:
                poss_blk = [q.time for q in blk]
            else:
                poss_blk = [float(q.seq) for q in blk]
            # per-row insert threshold: the k_max-th smallest stored layer
            # (n_layers while fewer than k_max entries exist -- then every
            # real layer is still insertable)
            thresh = np.empty(len(active), dtype=np.int64)
            for a, row in enumerate(active):
                t = lskys[row].k_distance_layer(k_max)
                thresh[a] = n_layers if t is None else t
            rows_nz, js_nz = np.nonzero(lmat < thresh[:, None])
            seg = np.searchsorted(
                rows_nz, np.arange(len(active) + 1)).tolist()
            js_all = js_nz.tolist()
            ms_all = lmat[rows_nz, js_nz].tolist()

            still = []
            for a, row in enumerate(active):
                lsky = lskys[row]
                resolution = resolutions[row]
                dominator_count = lsky.dominator_count
                insert = lsky.insert
                on_insert = resolution.on_insert
                p_seq = p_seqs[row]
                terminated = False
                jt = 0
                for i in range(seg[a + 1] - 1, seg[a] - 1, -1):
                    j = js_all[i]
                    if seqs_blk[j] == p_seq:
                        continue
                    m = ms_all[i]
                    c = dominator_count(m)
                    if c < k_max and m <= allowed[c]:
                        insert(seqs_blk[j], poss_blk[j], m)
                        if on_insert(lsky, m):
                            terminated = True
                            jt = j
                            break
                self_rel = row_indexes[row] - block_lo
                self_in = 0 <= self_rel < width
                if terminated:
                    examined[row] += (width - jt) - (
                        1 if self_in and self_rel > jt else 0)
                    results[row] = KSkyResult(
                        lsky=lsky,
                        examined=examined[row],
                        terminated_early=True,
                        resolved_all=resolution.done
                        or resolution.check(lsky),
                    )
                    continue
                examined[row] += width - (1 if self_in else 0)
                if resolution.check(lsky):
                    results[row] = KSkyResult(
                        lsky=lsky,
                        examined=examined[row],
                        terminated_early=True,
                        resolved_all=resolution.done,
                    )
                    continue
                still.append(row)
            active = still
            block_hi = block_lo
        for row in active:
            resolution = resolutions[row]
            results[row] = KSkyResult(
                lsky=lskys[row],
                examined=examined[row],
                terminated_early=False,
                resolved_all=resolution.done
                or resolution.check(lskys[row]),
            )
        return results

    def run_existing_point(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        old_entries: Sequence[SkybandEntry],
        new_from_index: int,
    ) -> KSkyResult:
        """Alg. 1, lines 3-5: search new arrivals + unexpired skyband points.

        ``old_entries`` must already be expiry-filtered
        (:meth:`LSky.unexpired_entries`) and descending by arrival;
        ``new_from_index`` is the live-buffer index of the first point the
        previous run did not see.
        """
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=new_from_index, hi=len(buffer),
        )
        if not terminated and old_entries:
            # Bulk re-admit the previous skyband.  Old entries cannot
            # dominate anything stored (they are older); only entries the
            # *new* arrivals alone over-dominate are trimmed, which keeps
            # the structure within a constant of minimal without a
            # per-entry rescan.
            k_max = self.plan.k_max
            keep = [
                e for e in old_entries
                if lsky.dominator_count(e[2]) < k_max
            ]
            examined += len(old_entries)
            lsky.extend_older(keep)
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.check(lsky),
        )

    # ------------------------------------------------------------ internals

    def _scan_buffer(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        lsky: LSky,
        resolution: _Resolution,
        lo: int,
        hi: int,
    ) -> Tuple[int, bool]:
        """Scan live-buffer indexes ``[lo, hi)`` newest-first.

        Returns (examined, terminated_early).  The evaluated point itself
        (matched by ``seq``) is skipped: Def. 5 ranges over ``D_W - p``.
        """
        plan = self.plan
        n_layers = plan.n_layers
        by_time = self.by_time
        pts = buffer.points
        examined = 0
        chunk = self.chunk_size
        block_hi = hi
        while block_hi > lo:
            block_lo = max(lo, block_hi - chunk)
            dists = buffer.distances_from(p_values, block_lo, block_hi)
            layers = plan.grid.layers_of(dists)
            for j in range(block_hi - block_lo - 1, -1, -1):
                idx = block_lo + j
                pt = pts[idx]
                if pt.seq == p_seq:
                    continue
                examined += 1
                layer = int(layers[j])
                if layer >= n_layers:
                    # Def. 5 condition 3: never a neighbor of any query
                    continue
                pos = pt.time if by_time else float(pt.seq)
                if self._sky_insert(lsky, pt.seq, pos, layer, resolution):
                    return examined, True
            # chunk boundary: settle any batched resolution checks
            if resolution.check(lsky):
                return examined, True
            block_hi = block_lo
        return examined, False

    def _sky_insert(
        self,
        lsky: LSky,
        seq: int,
        pos: float,
        layer: int,
        resolution: _Resolution,
    ) -> bool:
        """skyEvaluate + insert; True when the scan may terminate."""
        plan = self.plan
        c = lsky.dominator_count(layer)
        if c < plan.k_max and layer <= plan.allowed_layer[c]:
            lsky.insert(seq, pos, layer)
            return resolution.on_insert(lsky, layer)
        # Not a skyband point.  Alg. 1 line 12's break (d <= r_min and
        # dominated) is subsumed: a rejected layer-0 candidate implies
        # k_max dominators at layer 0, which resolves every sub-group --
        # resolution.done is already True in that case.
        return resolution.done
