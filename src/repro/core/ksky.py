"""K-SKY: the customized skyband search algorithm (Alg. 1 + Alg. 2).

K-SKY discovers the (k-1)-skyband points of one evaluated point ``p`` in
the current swift window.  It embodies the paper's two optimization
principles:

* **Time-aware prioritization** -- candidates are examined newest-first, so
  an inserted skyband point can never be dominated by a later-examined one
  (later examined = older = dominated-by, never dominating).  One pass
  suffices, and the scan may stop before seeing all points.
* **Least examination** -- for a point that survived a window slide, only
  the new arrivals and its unexpired previous skyband points are examined
  (Lemma 2's proof shows nothing else can re-enter the skyband).

Termination generalizes Alg. 1 line 12 to multiple sub-groups exactly as
Example 3 does: sub-group ``Q_j`` is *resolved* once ``k_j`` points have
been recorded at layers at or below the sub-group's smallest-``r`` layer
(then every member query classifies ``p`` as inlier in the swift window,
and -- by domination -- no unexamined point can be a skyband point that
sub-group still needs).  When every sub-group is resolved the scan stops.
For a single sub-group this reduces to the paper's ``d <= r_min`` rule.

The per-candidate test (Alg. 2 ``skyEvaluate``) is Def. 6: hash the
candidate to its layer, count dominators via the layer prefix, check the
dominator-dependent reach table ``allowed_layer``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..streams.buffer import WindowBuffer
from .lsky import LSky, SkybandEntry
from .parser import SkybandPlan

__all__ = ["KSkyResult", "KSkyRunner", "sky_evaluate"]


def sky_evaluate(plan: SkybandPlan, lsky: LSky, layer: int) -> bool:
    """Alg. 2: is a candidate at ``layer`` a skyband point right now?

    Implements Def. 6: (1) the candidate hashes into a real bucket,
    (2) fewer than ``k_max`` points dominate it, and (3) some sub-group
    with ``k_j`` above the dominator count can still use a point this far
    out.  Does not mutate ``lsky``.
    """
    if layer >= plan.n_layers:
        return False
    c = lsky.dominator_count(layer)
    if c >= plan.k_max:
        return False
    return layer <= plan.allowed_layer[c]


@dataclass
class KSkyResult:
    """Outcome of one K-SKY run for one evaluated point."""

    lsky: LSky
    #: number of candidate points examined (the ``L`` of the paper's
    #: complexity analysis; Lemma 2 says it is minimal)
    examined: int
    #: True iff the scan stopped before exhausting its input because every
    #: sub-group was resolved (p is a swift-window inlier for all queries)
    terminated_early: bool
    #: True iff every sub-group was resolved (same as inlier-for-all in the
    #: swift window); termination implies this but not vice versa (the
    #: input may be exhausted on the same candidate that resolves the last
    #: sub-group)
    resolved_all: bool


class _Resolution:
    """Tracks which sub-groups are still unresolved during a scan.

    Checking every sub-group after every insert is exact but costs
    O(#sub-groups) per insert, which dominates runtime for workloads with
    many distinct ``k`` values.  The check cadence is therefore hybrid:

    * exact (per insert) while few sub-groups are pending -- this keeps the
      paper's termination points literal (Example 3 stops before ``p1``);
    * batched (every ``_CHECK_EVERY`` inserts, plus at chunk boundaries and
      at scan end) for large workloads.  Late termination only *adds*
      genuine skyband entries, which never changes any query verdict.
    """

    __slots__ = ("pending", "_since_check")

    _EXACT_LIMIT = 8
    _CHECK_EVERY = 32

    def __init__(self, plan: SkybandPlan,
                 pending: List[Tuple[int, int]] = None):
        # (min_layer, k) per sub-group; callers running many scans per
        # boundary pass a precomputed template to skip rebuilding it
        self.pending: List[Tuple[int, int]] = (
            list(pending) if pending is not None
            else [(sg.min_layer, sg.k) for sg in plan.subgroups]
        )
        self._since_check = 0

    def check(self, lsky: LSky) -> bool:
        """Exact prune of resolved sub-groups; True when all resolved."""
        self._since_check = 0
        if not self.pending:
            return True
        self.pending = [
            (min_layer, k) for min_layer, k in self.pending
            if lsky.dominator_count(min_layer) < k
        ]
        return not self.pending

    def on_insert(self, lsky: LSky, layer: int) -> bool:
        """Update after an insert at ``layer``; True when all resolved."""
        pending = self.pending
        if not pending:
            return True
        if len(pending) <= self._EXACT_LIMIT:
            # Hot path: called once per skyband insert.  The dominator
            # count is reused across adjacent entries sharing a
            # ``min_layer`` (fixed-r workloads put every sub-group on one
            # layer, so the whole list costs one bisect), and ``pending``
            # is only rebuilt when something actually resolved, which is
            # the rare case.
            sl = lsky._sorted_layers
            last_ml = -1
            c = 0
            for min_layer, k in pending:
                if layer <= min_layer:
                    if min_layer != last_ml:
                        last_ml = min_layer
                        c = bisect_right(sl, min_layer)
                    if c >= k:
                        break  # something resolved: rebuild below
            else:
                return False
            still = []
            last_ml = -1
            for min_layer, k in pending:
                if layer <= min_layer:
                    if min_layer != last_ml:
                        last_ml = min_layer
                        c = bisect_right(sl, min_layer)
                    if c >= k:
                        continue  # resolved now
                still.append((min_layer, k))
            self.pending = still
            return not still
        self._since_check += 1
        if self._since_check >= self._CHECK_EVERY:
            return self.check(lsky)
        return False

    @property
    def done(self) -> bool:
        return not self.pending


class KSkyRunner:
    """Executes K-SKY scans against a shared :class:`WindowBuffer`.

    ``chunk_size`` controls the blockwise distance computation: candidate
    distances are computed ``chunk_size`` points at a time with the
    workload's vectorized metric, then the skyband logic consumes the chunk
    newest-first so early termination still skips most of the window.
    """

    def __init__(self, plan: SkybandPlan, chunk_size: int = 256):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.plan = plan
        self.chunk_size = chunk_size
        self.by_time = plan.kind == "time"
        # resolution template, copied per scan (see _Resolution)
        self._pending = [(sg.min_layer, sg.k) for sg in plan.subgroups]

    # ----------------------------------------------------------------- runs

    def run_new_point(self, p_values: Sequence[float], p_seq: int,
                      buffer: WindowBuffer) -> KSkyResult:
        """Alg. 1, lines 1-2: a new point searches the window from scratch."""
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=0, hi=len(buffer),
        )
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.done or resolution.check(lsky),
        )

    def scan_new_arrivals(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        new_from_index: int,
    ) -> KSkyResult:
        """Scan only the live indexes ``[new_from_index, end)``.

        The array-based detector path uses this to obtain the new-arrival
        skyband entries, then merges them with the cached previous
        evidence itself (see ``repro.core.sop``).
        """
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=new_from_index, hi=len(buffer),
        )
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.done,
        )

    def scan_precomputed(
        self,
        p_seq: int,
        layers: Sequence[int],
        cand_seqs: Sequence[int],
        cand_poss: Sequence[float],
    ) -> KSkyResult:
        """Batched form of :meth:`scan_new_arrivals`: consume one row of a
        precomputed layer matrix instead of launching per-point kernels.

        ``layers`` is the evaluated point's row of
        ``RGrid.layers_of(pairwise_block(...))`` as a plain Python list;
        ``cand_seqs``/``cand_poss`` are the aligned candidate seqs and
        window positions, shared by every row of the batch.  All three are
        oldest-first in live-buffer order over ``[new_from, len(buffer))``.

        The scan order (newest first), the chunk boundaries, and the
        resolution-check cadence replicate :meth:`_scan_buffer` exactly, so
        the produced skyband, the ``examined`` count, and the
        ``terminated_early`` flag are identical to the per-point path --
        the detector's batched/per-point output-equality gate depends on
        this.  The loop body touches only Python ints and lists: the numpy
        work all happened in the one pairwise kernel per boundary.
        """
        plan = self.plan
        lsky = LSky(plan.n_layers)
        resolution = _Resolution(plan, self._pending)
        n_layers = plan.n_layers
        k_max = plan.k_max
        allowed = plan.allowed_layer
        dominator_count = lsky.dominator_count
        insert = lsky.insert
        on_insert = resolution.on_insert
        examined = 0
        chunk = self.chunk_size
        block_hi = len(layers)
        terminated = False
        while block_hi > 0:
            block_lo = block_hi - chunk
            if block_lo < 0:
                block_lo = 0
            for j in range(block_hi - 1, block_lo - 1, -1):
                if cand_seqs[j] == p_seq:
                    continue
                examined += 1
                m = layers[j]
                if m >= n_layers:
                    continue
                c = dominator_count(m)
                if c < k_max and m <= allowed[c]:
                    insert(cand_seqs[j], cand_poss[j], m)
                    if on_insert(lsky, m):
                        terminated = True
                        break
                elif resolution.done:
                    terminated = True
                    break
            if terminated or resolution.check(lsky):
                return KSkyResult(
                    lsky=lsky,
                    examined=examined,
                    terminated_early=True,
                    resolved_all=resolution.done,
                )
            block_hi = block_lo
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=False,
            resolved_all=resolution.done,
        )

    def scan_batched(
        self,
        row_indexes: Sequence[int],
        p_seqs: Sequence[int],
        buffer: WindowBuffer,
        lo: int,
        cand_idx: Optional[np.ndarray] = None,
    ) -> List[KSkyResult]:
        """Chunk-synchronous batched scans over live indexes ``[lo, end)``.

        ``row_indexes``/``p_seqs`` give the live-buffer index and seq of
        each evaluated point.  All rows share the same candidate range, so
        each chunk costs one ``pairwise_block`` kernel over the still-active
        rows and one vectorized ``layers_of`` hash -- rows that terminate
        drop out of subsequent chunks, which keeps ``distance_rows``
        identical to running :meth:`scan_new_arrivals` (``lo > 0``) or
        :meth:`run_new_point` (``lo == 0``) per row: the per-point path also
        pays for a whole chunk before scanning it.

        ``cand_idx``, when given, restricts the pairwise kernels to a
        candidate *subset*: an ascending, duplicate-free array of live
        indexes (the grid-pruned refresh engine passes the cell
        neighborhoods from ``GridCandidateIndex.candidates_within``).  The
        scan still walks the full ``[lo, end)`` range chunk by chunk --
        chunk boundaries stay anchored at the buffer top -- but each
        chunk's kernel sees only the subset columns falling inside it
        (views of one per-scan gather, ``pairwise_gathered``), and runs of
        candidate-free chunks are folded into ``examined`` arithmetic in
        one step: a boundary resolution check with no intervening insert
        filters ``pending`` against an unchanged LSky, so skipping it is
        state-identical.  Provided the excluded indexes are all
        farther than the plan's largest radius (so ``layers_of`` would map
        them past ``n_layers`` and the scan would discard them without
        touching any state), insert decisions, termination points, LSky
        contents and ``examined`` counts are bit-identical to the
        full-range scan; only ``distance_rows`` shrinks.  Excluded
        candidates are folded into ``examined`` arithmetically, exactly
        like the vectorized-threshold skips below.

        Equivalence with the per-point path is exact -- same chunk
        boundaries (anchored at the buffer top), same insert decisions,
        same termination points, same ``examined`` counts.  The Python loop
        only visits candidates that could change the skyband: a candidate
        at layer ``m`` is inserted only if fewer than ``k_max`` stored
        entries dominate it (Def. 6 condition 2), i.e. only if ``m`` is
        below the ``k_max``-th smallest stored layer, and a rejected
        candidate never mutates scan state (the ``resolution.done``
        rejection branch of ``_sky_insert`` is unreachable: ``done`` only
        becomes true at a terminating insert or chunk-boundary check).  The
        below-threshold positions are found with one vectorized comparison
        per chunk; everything the loop touches is a Python int.  Skipped
        candidates are folded into ``examined`` arithmetically.
        """
        plan = self.plan
        n_layers = plan.n_layers
        k_max = plan.k_max
        allowed = plan.allowed_layer
        chunk = self.chunk_size
        hi = len(buffer)
        n = len(p_seqs)
        mat = buffer.matrix()
        # cached structure-of-arrays views (built once per buffer epoch,
        # not per chunk): seqs and scan positions for the whole live region
        seqs_all = buffer.seqs()
        poss_all = buffer.positions(self.by_time)

        lskys = [LSky(n_layers) for _ in range(n)]
        resolutions = [_Resolution(plan, self._pending) for _ in range(n)]
        examined = [0] * n
        results: List[Optional[KSkyResult]] = [None] * n
        active = list(range(n))
        # Single-layer fast path (fixed-r workloads).  With one layer and
        # the exact per-insert resolution regime, the scan collapses: every
        # selected candidate is at layer 0, is always insertable
        # (``allowed[c] == 0`` for ``c < k_max``), and the scan terminates
        # exactly at the ``k_max``-th insert (layer 0 is ``<= min_layer``
        # for every sub-group, so all of ``pending`` resolves when the
        # dominator count reaches the largest k).  The per-candidate
        # bisect / insert / ``on_insert`` machinery is therefore replaced
        # by one newest-first bulk take per (row, chunk) -- same inserts,
        # same termination candidate, same ``examined`` arithmetic, same
        # final ``pending`` (boundary ``check`` recomputes it from the
        # LSky, which matches what per-insert filtering would have left).
        single = (n_layers == 1 and bool(self._pending)
                  and len(self._pending) <= _Resolution._EXACT_LIMIT)
        n_chunks = -(-(hi - lo) // chunk) if hi > lo else 0
        if cand_idx is None:
            offs = cand_list = cand_mat = None
        else:
            # per-scan precomputation: one vectorized searchsorted locates
            # every chunk's candidate span, one fancy-index gather
            # materialises the candidate coordinates (per-chunk kernels
            # then see views of it), one tolist serves every chunk
            edges = np.maximum(hi - chunk * np.arange(n_chunks + 1), lo)
            offs = np.searchsorted(cand_idx, edges, side="left").tolist()
            cand_list = cand_idx.tolist()
            cand_mat = mat[cand_idx] if cand_list else None
        q_mat: Optional[np.ndarray] = None  # rebuilt when rows drop out
        i = 0
        while i < n_chunks and active:
            block_hi = hi - i * chunk
            block_lo = max(lo, block_hi - chunk)
            width = block_hi - block_lo
            c_base = 0
            if offs is None:
                n_cols = width
            else:
                c_base = offs[i + 1]
                n_cols = offs[i] - c_base
                if n_cols == 0:
                    # Candidate-free run.  No kernel and -- provably -- no
                    # state change: a boundary resolution check filters
                    # ``pending`` against an LSky no insert has touched
                    # since the previous (already-run) check, so it
                    # removes nothing and returns False for every row
                    # still active.  The one exception, an empty pending
                    # template, makes the *first* boundary check return
                    # True and terminates below exactly where the unfolded
                    # walk would.  Everything else folds the entire run
                    # into ``examined`` arithmetic and jumps straight to
                    # the next chunk holding a candidate.
                    if c_base == 0:
                        nxt_i = n_chunks
                    else:
                        nxt_i = (hi - 1 - cand_list[c_base - 1]) // chunk
                    run_lo = max(lo, hi - nxt_i * chunk)
                    still = []
                    for row in active:
                        self_idx = row_indexes[row]
                        if resolutions[row].pending:
                            examined[row] += (block_hi - run_lo) - (
                                1 if run_lo <= self_idx < block_hi else 0)
                            still.append(row)
                            continue
                        examined[row] += width - (
                            1 if block_lo <= self_idx < block_hi else 0)
                        results[row] = KSkyResult(
                            lsky=lskys[row],
                            examined=examined[row],
                            terminated_early=True,
                            resolved_all=True,
                        )
                    if len(still) != len(active):
                        q_mat = None
                    active = still
                    i = nxt_i
                    continue
            if q_mat is None:
                q_mat = mat[np.asarray(
                    [row_indexes[r] for r in active], dtype=np.intp)]
            if offs is None:
                dists = buffer.pairwise_block(q_mat, block_lo, block_hi)
            else:
                dists = buffer.pairwise_gathered(
                    q_mat, cand_mat[c_base:c_base + n_cols])
            lmat = plan.grid.layers_of(dists)
            # per-row insert threshold: the k_max-th smallest stored
            # layer (n_layers while fewer than k_max entries exist --
            # then every real layer is still insertable)
            thresh = np.empty(len(active), dtype=np.int64)
            km1 = k_max - 1
            for a, row in enumerate(active):
                sl = lskys[row]._sorted_layers
                thresh[a] = sl[km1] if km1 < len(sl) else n_layers
            rows_nz, js_nz = np.nonzero(lmat < thresh[:, None])
            seg = np.searchsorted(
                rows_nz, np.arange(len(active) + 1)).tolist()
            js_all = js_nz.tolist()
            ms_all = None if single else lmat[rows_nz, js_nz].tolist()

            still = []
            for a, row in enumerate(active):
                lsky = lskys[row]
                resolution = resolutions[row]
                terminated = False
                inserted = False
                jt = 0
                if single:
                    # bulk take: newest `k_max - len` selected candidates,
                    # skipping the evaluated point's own column
                    sb_seqs = lsky.seqs
                    need = k_max - len(sb_seqs)
                    lo_s = seg[a]
                    self_idx = row_indexes[row]
                    if offs is None:
                        j_self = self_idx - block_lo
                    elif block_lo <= self_idx < block_hi:
                        p = bisect_left(cand_list, self_idx, c_base,
                                        c_base + n_cols)
                        j_self = (p - c_base if p < c_base + n_cols
                                  and cand_list[p] == self_idx else -1)
                    else:
                        j_self = -1
                    take: List[int] = []
                    ii = seg[a + 1] - 1
                    while ii >= lo_s and len(take) < need:
                        j = js_all[ii]
                        if j != j_self:
                            take.append(block_lo + j if offs is None
                                        else cand_list[c_base + j])
                        ii -= 1
                    if take:
                        inserted = True
                        sb_seqs.extend(seqs_all[x] for x in take)
                        lsky.poss.extend(poss_all[x] for x in take)
                        t = len(take)
                        lsky.layers.extend([0] * t)
                        lsky._sorted_layers.extend([0] * t)
                        if t == need:
                            # the k_max-th insert resolves every sub-group,
                            # exactly as per-insert filtering would have
                            resolution.pending = []
                            terminated = True
                            jt = take[-1] - block_lo
                else:
                    # skyband insert, hand-inlined: LSky.insert validates
                    # its descending-seq invariant per call, which the
                    # newest-first scan order already guarantees; the
                    # per-point path keeps the validating method and the
                    # lockstep equivalence suite compares LSky contents
                    # against it
                    sl = lsky._sorted_layers
                    sb_seqs = lsky.seqs
                    sb_poss = lsky.poss
                    sb_layers = lsky.layers
                    on_insert = resolution.on_insert
                    p_seq = p_seqs[row]
                    for ii in range(seg[a + 1] - 1, seg[a] - 1, -1):
                        j = js_all[ii]
                        idx = (block_lo + j if offs is None
                               else cand_list[c_base + j])
                        if seqs_all[idx] == p_seq:
                            continue
                        m = ms_all[ii]
                        c = bisect_right(sl, m)
                        if c < k_max and m <= allowed[c]:
                            sb_seqs.append(seqs_all[idx])
                            sb_poss.append(poss_all[idx])
                            sb_layers.append(m)
                            insort(sl, m)
                            inserted = True
                            if on_insert(lsky, m):
                                terminated = True
                                jt = idx - block_lo
                                break
                self_rel = row_indexes[row] - block_lo
                self_in = 0 <= self_rel < width
                if terminated:
                    examined[row] += (width - jt) - (
                        1 if self_in and self_rel > jt else 0)
                    results[row] = KSkyResult(
                        lsky=lsky,
                        examined=examined[row],
                        terminated_early=True,
                        resolved_all=resolution.done
                        or resolution.check(lsky),
                    )
                    continue
                examined[row] += width - (1 if self_in else 0)
                # the boundary resolution check is a no-op unless this
                # row inserted during the chunk (it filters ``pending``
                # against an LSky that has not changed since the previous
                # boundary) -- except for an empty pending template,
                # which makes the first boundary check return True
                if inserted:
                    if resolution.check(lsky):
                        results[row] = KSkyResult(
                            lsky=lsky,
                            examined=examined[row],
                            terminated_early=True,
                            resolved_all=resolution.done,
                        )
                        continue
                elif not resolution.pending:
                    results[row] = KSkyResult(
                        lsky=lsky,
                        examined=examined[row],
                        terminated_early=True,
                        resolved_all=True,
                    )
                    continue
                still.append(row)
            if len(still) != len(active):
                q_mat = None
            active = still
            i += 1
        for row in active:
            resolution = resolutions[row]
            results[row] = KSkyResult(
                lsky=lskys[row],
                examined=examined[row],
                terminated_early=False,
                resolved_all=resolution.done
                or resolution.check(lskys[row]),
            )
        return results

    def run_existing_point(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        old_entries: Sequence[SkybandEntry],
        new_from_index: int,
    ) -> KSkyResult:
        """Alg. 1, lines 3-5: search new arrivals + unexpired skyband points.

        ``old_entries`` must already be expiry-filtered
        (:meth:`LSky.unexpired_entries`) and descending by arrival;
        ``new_from_index`` is the live-buffer index of the first point the
        previous run did not see.
        """
        lsky = LSky(self.plan.n_layers)
        resolution = _Resolution(self.plan, self._pending)
        examined, terminated = self._scan_buffer(
            p_values, p_seq, buffer, lsky, resolution,
            lo=new_from_index, hi=len(buffer),
        )
        if not terminated and old_entries:
            # Bulk re-admit the previous skyband.  Old entries cannot
            # dominate anything stored (they are older); only entries the
            # *new* arrivals alone over-dominate are trimmed, which keeps
            # the structure within a constant of minimal without a
            # per-entry rescan.
            k_max = self.plan.k_max
            keep = [
                e for e in old_entries
                if lsky.dominator_count(e[2]) < k_max
            ]
            examined += len(old_entries)
            lsky.extend_older(keep)
        return KSkyResult(
            lsky=lsky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolution.check(lsky),
        )

    # ------------------------------------------------------------ internals

    def _scan_buffer(
        self,
        p_values: Sequence[float],
        p_seq: int,
        buffer: WindowBuffer,
        lsky: LSky,
        resolution: _Resolution,
        lo: int,
        hi: int,
    ) -> Tuple[int, bool]:
        """Scan live-buffer indexes ``[lo, hi)`` newest-first.

        Returns (examined, terminated_early).  The evaluated point itself
        (matched by ``seq``) is skipped: Def. 5 ranges over ``D_W - p``.
        """
        plan = self.plan
        n_layers = plan.n_layers
        by_time = self.by_time
        pts = buffer.points
        examined = 0
        chunk = self.chunk_size
        block_hi = hi
        while block_hi > lo:
            block_lo = max(lo, block_hi - chunk)
            dists = buffer.distances_from(p_values, block_lo, block_hi)
            layers = plan.grid.layers_of(dists)
            for j in range(block_hi - block_lo - 1, -1, -1):
                idx = block_lo + j
                pt = pts[idx]
                if pt.seq == p_seq:
                    continue
                examined += 1
                layer = int(layers[j])
                if layer >= n_layers:
                    # Def. 5 condition 3: never a neighbor of any query
                    continue
                pos = pt.time if by_time else float(pt.seq)
                if self._sky_insert(lsky, pt.seq, pos, layer, resolution):
                    return examined, True
            # chunk boundary: settle any batched resolution checks
            if resolution.check(lsky):
                return examined, True
            block_hi = block_lo
        return examined, False

    def _sky_insert(
        self,
        lsky: LSky,
        seq: int,
        pos: float,
        layer: int,
        resolution: _Resolution,
    ) -> bool:
        """skyEvaluate + insert; True when the scan may terminate."""
        plan = self.plan
        c = lsky.dominator_count(layer)
        if c < plan.k_max and layer <= plan.allowed_layer[c]:
            lsky.insert(seq, pos, layer)
            return resolution.on_insert(lsky, layer)
        # Not a skyband point.  Alg. 1 line 12's break (d <= r_min and
        # dominated) is subsumed: a rejected layer-0 candidate implies
        # k_max dominators at layer 0, which resolves every sub-group --
        # resolution.done is already True in that case.
        return resolution.done
