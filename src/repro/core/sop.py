"""SOP: the sharing-aware multi-query outlier detector (Alg. 3, Fig. 6).

Execution model per swift boundary ``t`` (``slide = gcd`` of member slides,
``win = max`` of member windows -- Sec. 4.3/5):

1. ingest the new batch, expire points older than the swift window;
2. for every live point that is not a *fully safe inlier*, refresh its
   skyband with K-SKY -- new points search from scratch, surviving points
   search only the new arrivals plus their unexpired skyband (Alg. 1);
3. derive safe-inlier state from the refreshed skyband; fully safe points
   drop their evidence and are never evaluated again (safe-for-all,
   Sec. 4.1/4.2);
4. for each member query due at ``t``, classify its window population by
   counting skyband entries (inlier rule + Lemma 3), vectorized across the
   population.

Per-point evidence is held as numpy arrays ``(seqs, poss, layers)`` in
arrival-descending order.  The least-examination step is then three array
operations: mask out expired entries, mask out entries the new arrivals
alone over-dominate (Def. 6 condition 2 -- older entries can never
dominate younger ones, so no per-entry rescan is needed), and concatenate
the new-arrival entries in front.  Safety and due-query evaluation are
likewise vectorized.

**Batched refresh engine.**  The surviving points of a boundary all scan
the *same* new arrivals, so their distance evidence is one
``(survivors x new arrivals)`` matrix.  The batched path computes it with
a single ``WindowBuffer.pairwise_block`` kernel, hashes the whole matrix
to layers with one ``RGrid.layers_of`` call, and feeds each row to
``KSkyRunner.scan_precomputed`` -- a pure-Python int loop that replicates
the per-point scan's candidate order, chunk boundaries, and termination
cadence exactly, so outputs and ``memory_units()`` are identical to the
per-point path (``tests/test_sop_batched.py`` asserts this across the
Table 1 grid).  From-scratch scans (new points, or with least examination
disabled) stay per-point: against a full window, early termination skips
most of the input, which a precomputed full matrix would forfeit.  The
crossover heuristic ``batch_min_rows`` keeps tiny batches on the
per-point path where one kernel launch amortizes nothing.

Ablation switches (used by ``benchmarks/bench_ablations.py`` and
``benchmarks/bench_refresh.py``):

* ``eager=False`` -- refresh skybands only at boundaries where some member
  query is due, instead of at every swift boundary;
* ``use_safe_inliers=False`` -- never prune fully safe points;
* ``use_least_examination=False`` -- surviving points rescan the whole
  window instead of (new arrivals + old skyband);
* ``use_batched_refresh=False`` -- surviving points launch one distance
  kernel each (the pre-batching engine).

All switches preserve output equality; they only trade CPU/memory.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..baselines.base import Detector
from ..metrics.profiling import RefreshProfile
from ..streams.buffer import WindowBuffer
from .ksky import KSkyResult, KSkyRunner
from .lsky import LSky
from .parser import SkybandPlan, parse_workload
from .point import Point
from .queries import QueryGroup

__all__ = ["SOPDetector"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


class _PointState:
    """Per-live-point bookkeeping: evidence arrays + safety + horizon.

    ``seqs``/``poss``/``layers`` hold the skyband in arrival-descending
    order (``None`` once the point is fully safe and evidence is dropped).
    """

    __slots__ = ("seqs", "poss", "layers", "last_seen_seq", "fully_safe")

    def __init__(self, seqs, poss, layers, last_seen_seq: int,
                 fully_safe: bool):
        self.seqs = seqs
        self.poss = poss
        self.layers = layers
        self.last_seen_seq = last_seen_seq
        self.fully_safe = fully_safe

    def entry_count(self) -> int:
        return 0 if self.seqs is None else len(self.seqs)

    @property
    def lsky(self):
        """Rebuild an :class:`LSky` view of the evidence (tests/inspection)."""
        if self.seqs is None:
            return None
        sky = LSky(max(int(self.layers.max()) + 1, 1) if len(self.layers)
                   else 1)
        sky.n_layers = 1 << 30  # permissive: view only
        for seq, pos, layer in zip(self.seqs, self.poss, self.layers):
            sky.insert(int(seq), float(pos), int(layer))
        return sky


def _arrays_from_lsky(sky: LSky):
    """Freeze a scan result into the per-point evidence arrays."""
    if not sky.seqs:
        return _EMPTY_I, _EMPTY_F, _EMPTY_I
    return (
        np.asarray(sky.seqs, dtype=np.int64),
        np.asarray(sky.poss, dtype=np.float64),
        np.asarray(sky.layers, dtype=np.int64),
    )


class SOPDetector(Detector):
    """Sharing-aware outlier processing over a query workload."""

    name = "sop"

    def __init__(
        self,
        group: QueryGroup,
        metric="euclidean",
        chunk_size: int = 256,
        eager: bool = True,
        use_safe_inliers: bool = True,
        use_least_examination: bool = True,
        use_batched_refresh: bool = True,
        batch_min_rows: int = 8,
    ):
        super().__init__(group, metric)
        self.plan: SkybandPlan = parse_workload(group)
        self.runner = KSkyRunner(self.plan, chunk_size=chunk_size)
        self.buffer = WindowBuffer(self.metric)
        self.eager = eager
        self.use_safe_inliers = use_safe_inliers
        self.use_least_examination = use_least_examination
        self.use_batched_refresh = use_batched_refresh
        #: crossover heuristic: batches smaller than this run per-point
        #: (one kernel launch amortizes nothing over so few rows)
        self.batch_min_rows = max(1, batch_min_rows)
        self._states: Dict[int, _PointState] = {}
        #: counters for ablation studies and optimality tests
        self.stats = {
            "ksky_runs": 0,
            "points_examined": 0,
            "early_terminations": 0,
            "fully_safe_marked": 0,
            "batched_scans": 0,
            "eval_flatten_rebuilds": 0,
        }
        #: per-boundary refresh observability (see repro.metrics.profiling)
        self.profile = RefreshProfile()
        # mutation generation: bumped whenever the live population or any
        # evidence array changes; the due-query evaluation cache keys on it
        self._gen = 0
        self._flat_gen = -1
        self._flat_cache: Optional[Tuple] = None

    # ------------------------------------------------------------- pipeline

    def step(self, t: int, batch: Sequence[Point]) -> Dict[int, FrozenSet[int]]:
        self.buffer.extend(batch)
        if batch:
            self._gen += 1
        start = max(0, t - self.swift.win)
        evicted = self.buffer.evict_before(start, self.by_time)
        if evicted:
            self._gen += 1
            for p in evicted:
                self._states.pop(p.seq, None)
        due = self.group.due_members(t)
        if self.eager or due:
            self._refresh(float(start))
        if not due:
            return {}
        return self._evaluate_due(due, t)

    # ------------------------------------------------------------ refreshing

    def _refresh(self, window_start: float) -> None:
        """Run K-SKY for every live, non-fully-safe point (Alg. 3 loop).

        New points (and everything, with least examination disabled) scan
        from scratch per-point; surviving points are grouped by their
        first-unseen index and, past the ``batch_min_rows`` crossover, go
        through the batched pairwise kernel.
        """
        buf = self.buffer
        pts = buf.points
        if not pts:
            return
        t0 = time.perf_counter_ns()
        kernels0 = buf.kernel_calls
        examined0 = self.stats["points_examined"]
        batch_rows = 0

        newest_seq = pts[-1].seq
        base_seq = pts[0].seq
        n_live = len(pts)
        states = self._states
        #: from-scratch scans, as (live index, point, state-or-None)
        scratch: List[Tuple[int, Point, Optional[_PointState]]] = []
        #: new_from index -> [(live index, point, state), ...]
        survivors: Dict[int, List[Tuple[int, Point, _PointState]]] = {}
        for idx, p in enumerate(pts):
            st = states.get(p.seq)
            if st is not None and st.fully_safe:
                continue
            if st is None or not self.use_least_examination:
                scratch.append((idx, p, st))
            else:
                new_from = min(max(st.last_seen_seq + 1 - base_seq, 0),
                               n_live)
                survivors.setdefault(new_from, []).append((idx, p, st))

        if self.use_batched_refresh and len(scratch) >= self.batch_min_rows:
            batch_rows += len(scratch)
            self.stats["batched_scans"] += len(scratch)
            results = self.runner.scan_batched(
                [idx for idx, _, _ in scratch],
                [p.seq for _, p, _ in scratch], buf, 0)
            for (_, p, st), result in zip(scratch, results):
                seqs, poss, layers = _arrays_from_lsky(result.lsky)
                self._store(p, st, seqs, poss, layers, result.examined,
                            result.terminated_early, newest_seq)
        else:
            for _, p, st in scratch:
                result = self.runner.run_new_point(p.values, p.seq, buf)
                seqs, poss, layers = _arrays_from_lsky(result.lsky)
                self._store(p, st, seqs, poss, layers, result.examined,
                            result.terminated_early, newest_seq)

        for new_from, group in survivors.items():
            if (self.use_batched_refresh and n_live > new_from
                    and len(group) >= self.batch_min_rows):
                batch_rows += len(group)
                self.stats["batched_scans"] += len(group)
                results = self.runner.scan_batched(
                    [idx for idx, _, _ in group],
                    [p.seq for _, p, _ in group], buf, new_from)
                for (_, p, st), scan in zip(group, results):
                    seqs, poss, layers, examined = self._merge_survivor(
                        st, scan, window_start)
                    self._store(p, st, seqs, poss, layers, examined,
                                scan.terminated_early, newest_seq)
            else:
                for _, p, st in group:
                    scan = self.runner.scan_new_arrivals(p.values, p.seq,
                                                         buf, new_from)
                    seqs, poss, layers, examined = self._merge_survivor(
                        st, scan, window_start)
                    self._store(p, st, seqs, poss, layers, examined,
                                scan.terminated_early, newest_seq)

        self.profile.record(
            time.perf_counter_ns() - t0,
            buf.kernel_calls - kernels0,
            batch_rows,
            self.stats["points_examined"] - examined0,
        )

    def _merge_survivor(
        self, st: _PointState, scan: KSkyResult, window_start: float
    ):
        """Least examination, vectorized: expire old entries, trim entries
        the new arrivals alone over-dominate, concatenate new in front.

        Returns ``(seqs, poss, layers, examined)``; the returned arrays are
        the previous state's own objects when nothing changed, which the
        evaluation cache uses to skip re-flattening.
        """
        examined = scan.examined
        n_seqs, n_poss, n_layers = _arrays_from_lsky(scan.lsky)
        if scan.terminated_early or st.seqs is None or not len(st.seqs):
            return n_seqs, n_poss, n_layers, examined
        keep = st.poss >= window_start
        examined += int(keep.sum())
        if len(n_layers):
            new_sorted = np.sort(n_layers)
            dominated = np.searchsorted(
                new_sorted, st.layers, side="right") >= self.plan.k_max
            keep &= ~dominated
            seqs = np.concatenate((n_seqs, st.seqs[keep]))
            poss = np.concatenate((n_poss, st.poss[keep]))
            layers = np.concatenate((n_layers, st.layers[keep]))
            return seqs, poss, layers, examined
        if keep.all():
            return st.seqs, st.poss, st.layers, examined
        return st.seqs[keep], st.poss[keep], st.layers[keep], examined

    def _store(
        self,
        p: Point,
        st: Optional[_PointState],
        seqs: np.ndarray,
        poss: np.ndarray,
        layers: np.ndarray,
        examined: int,
        terminated: bool,
        newest_seq: int,
    ) -> None:
        """Account one scan and commit the refreshed evidence."""
        stats = self.stats
        stats["ksky_runs"] += 1
        stats["points_examined"] += examined
        if terminated:
            stats["early_terminations"] += 1
        if self.use_safe_inliers and self._is_fully_safe(p.seq, seqs,
                                                         layers):
            stats["fully_safe_marked"] += 1
            self._states[p.seq] = _PointState(None, None, None, newest_seq,
                                              True)
            self._gen += 1
        elif st is None:
            self._states[p.seq] = _PointState(seqs, poss, layers, newest_seq,
                                              False)
            self._gen += 1
        else:
            if (st.seqs is not seqs or st.poss is not poss
                    or st.layers is not layers):
                st.seqs, st.poss, st.layers = seqs, poss, layers
                self._gen += 1
            st.last_seen_seq = newest_seq

    def _is_fully_safe(self, p_seq: int, seqs: np.ndarray,
                       layers: np.ndarray) -> bool:
        """Safe-for-all test (Sec. 4.1/4.2), vectorized.

        ``p`` is fully safe iff for every sub-group ``k_j`` the ``k_j``-th
        smallest layer among *succeeding* entries is at or below the
        sub-group's smallest member layer.
        """
        plan = self.plan
        if not len(seqs) or len(seqs) < plan.k_list[0]:
            return False
        # entries are seq-descending: successors form the prefix
        n_succ = int(np.searchsorted(-seqs, -p_seq, side="left"))
        if n_succ < plan.k_list[0]:
            return False
        succ_sorted = np.sort(layers[:n_succ])
        ks = plan.subgroup_ks
        if n_succ < ks[-1]:
            return False
        return bool(np.all(succ_sorted[ks - 1] <= plan.subgroup_min_layers))

    # ------------------------------------------------------------ evaluation

    def _evaluate_due(
        self, due: Sequence[int], t: int
    ) -> Dict[int, FrozenSet[int]]:
        """Classify each due query's population from the shared evidence.

        One flattened pass builds ``(owner, layer, pos)`` arrays over all
        non-safe points; each due query is then a masked ``bincount`` --
        the vectorized form of the inlier rule + Lemma 3 counting.  The
        flattened arrays are cached on the mutation generation, so a due
        boundary that changed nothing since the last flatten (e.g. an
        empty batch with stable evidence) reuses them.
        """
        pts = self.buffer.points
        out: Dict[int, FrozenSet[int]] = {}
        if not pts:
            return {qi: frozenset() for qi in due}

        if self._flat_cache is None or self._flat_gen != self._gen:
            p_seqs: List[int] = []
            p_poss: List[float] = []
            lengths: List[int] = []
            layer_chunks: List[np.ndarray] = []
            pos_chunks: List[np.ndarray] = []
            for p in pts:
                st = self._states[p.seq]
                if st.fully_safe:
                    continue  # inlier for every query, forever
                p_seqs.append(p.seq)
                p_poss.append(self.position(p))
                n = st.entry_count()
                lengths.append(n)
                if n:
                    layer_chunks.append(st.layers)
                    pos_chunks.append(st.poss)
            row = len(p_seqs)
            seq_arr = np.asarray(p_seqs, dtype=np.int64)
            ppos_arr = np.asarray(p_poss, dtype=np.float64)
            len_arr = np.asarray(lengths, dtype=np.int64)
            own_arr = (np.repeat(np.arange(row, dtype=np.int64), len_arr)
                       if row else _EMPTY_I)
            lay_arr = (np.concatenate(layer_chunks) if layer_chunks
                       else _EMPTY_I)
            epos_arr = (np.concatenate(pos_chunks) if pos_chunks
                        else _EMPTY_F)
            self._flat_cache = (row, seq_arr, ppos_arr, own_arr, lay_arr,
                                epos_arr)
            self._flat_gen = self._gen
            self.stats["eval_flatten_rebuilds"] += 1
        row, seq_arr, ppos_arr, own_arr, lay_arr, epos_arr = self._flat_cache

        for qi in due:
            q = self.group[qi]
            ws = float(max(0, t - q.win))
            m_q = self.plan.query_layers[qi]
            if row == 0:
                out[qi] = frozenset()
                continue
            emask = (lay_arr <= m_q) & (epos_arr >= ws)
            counts = np.bincount(own_arr[emask], minlength=row)
            sel = (ppos_arr >= ws) & (counts < q.k)
            out[qi] = frozenset(int(s) for s in seq_arr[sel])
        return out

    # -------------------------------------------------------------- metrics

    def memory_units(self) -> int:
        """Skyband entries currently stored (the paper's MEM metric)."""
        return sum(st.entry_count() for st in self._states.values())

    def tracked_points(self) -> int:
        return len(self._states)

    def work_stats(self) -> Dict[str, int]:
        """Distance-row counter plus the refresh profile aggregates."""
        stats = super().work_stats()
        stats.update(self.profile.as_dict())
        return stats

    # ------------------------------------------------------------ inspection

    def state_of(self, seq: int) -> Optional[_PointState]:
        """Expose one point's state (tests and the quickstart example)."""
        return self._states.get(seq)
