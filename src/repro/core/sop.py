"""SOP: the sharing-aware multi-query outlier detector (Alg. 3, Fig. 6).

Execution model per swift boundary ``t`` (``slide = gcd`` of member slides,
``win = max`` of member windows -- Sec. 4.3/5):

1. ingest the new batch, expire points older than the swift window;
2. for every live point that is not a *fully safe inlier*, refresh its
   skyband with K-SKY -- new points search from scratch, surviving points
   search only the new arrivals plus their unexpired skyband (Alg. 1);
3. derive safe-inlier state from the refreshed skyband; fully safe points
   drop their evidence and are never evaluated again (safe-for-all,
   Sec. 4.1/4.2);
4. for each member query due at ``t``, classify its window population by
   counting skyband entries (inlier rule + Lemma 3), vectorized across the
   population.

Since the staged-runtime refactor, that pipeline is explicit: the stages
live in :meth:`SOPDetector.run_boundary` (driven by
:class:`~repro.engine.StreamExecutor`, which fires lifecycle hooks after
each stage), the refresh stage delegates to a pluggable
:class:`~repro.engine.RefreshEngine` strategy (per-point vs. batched --
selected from :class:`~repro.engine.DetectorConfig`), the safe-for-all
test lives in :class:`~repro.engine.SafetyTracker`, and due-query
classification in :class:`~repro.engine.DueQueryEvaluator`.  This module
keeps what is irreducibly SOP's: the evidence arrays, their commitment
rules, and the least-examination merge.

Per-point evidence is held as numpy arrays ``(seqs, poss, layers)`` in
arrival-descending order.  The least-examination step is then three array
operations: mask out expired entries, mask out entries the new arrivals
alone over-dominate (Def. 6 condition 2 -- older entries can never
dominate younger ones, so no per-entry rescan is needed), and concatenate
the new-arrival entries in front.  Safety and due-query evaluation are
likewise vectorized.

**Batched refresh engine.**  The surviving points of a boundary all scan
the *same* new arrivals, so their distance evidence is one
``(survivors x new arrivals)`` matrix.  The batched strategy computes it
with a single ``WindowBuffer.pairwise_block`` kernel, hashes the whole
matrix to layers with one ``RGrid.layers_of`` call, and feeds each row to
``KSkyRunner.scan_precomputed`` -- a pure-Python int loop that replicates
the per-point scan's candidate order, chunk boundaries, and termination
cadence exactly, so outputs and ``memory_units()`` are identical to the
per-point path (``tests/test_sop_batched.py`` asserts this across the
Table 1 grid).  From-scratch scans (new points, or with least examination
disabled) stay per-point below the ``batch_min_rows`` crossover: against
a full window, early termination skips most of the input, which a
precomputed full matrix would forfeit.

Ablation switches (fields of :class:`~repro.engine.DetectorConfig`, used
by ``benchmarks/bench_ablations.py`` and ``benchmarks/bench_refresh.py``):

* ``eager=False`` -- refresh skybands only at boundaries where some member
  query is due, instead of at every swift boundary;
* ``use_safe_inliers=False`` -- never prune fully safe points;
* ``use_least_examination=False`` -- surviving points rescan the whole
  window instead of (new arrivals + old skyband);
* ``use_batched_refresh=False`` -- surviving points launch one distance
  kernel each (the pre-batching engine);
* ``refresh_strategy="grid"`` -- batched refresh with grid-cell candidate
  pruning (``GridPrunedRefresh``); "per-point"/"batched" force the other
  engines; "auto" (default) runs the measured batched-vs-grid crossover
  (``AutoRefresh``), falling back to per-point when the legacy
  ``use_batched_refresh=False`` ablation asks for it;
* ``skyband_impl="soa"`` (default) -- every refresh strategy (per-point,
  batched, grid, auto) runs through the vectorized structure-of-arrays
  skyband tier (``VectorizedSkybandEngine`` over ``LSkySoA``), the
  canonical representation; ``"object"`` selects the Python-list
  ``LSky`` path, kept as the bit-exact oracle the equivalence suites
  compare against.

All switches preserve output equality; they only trade CPU/memory.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from ..baselines.base import Detector
from ..engine.config import DetectorConfig
from ..engine.evaluator import DueQueryEvaluator
from ..engine.refresh import (
    AutoRefresh,
    BatchedRefresh,
    GridPrunedRefresh,
    PerPointRefresh,
    RefreshEngine,
    VectorizedSkybandEngine,
)
from ..engine.safety import SafetyTracker
from ..metrics.profiling import RefreshProfile
from ..streams.buffer import WindowBuffer
from .ksky import KSkyResult, KSkyRunner
from .lsky import LSky
from .parser import SkybandPlan, parse_workload
from .prefilter import InlierScreen, build_prefilter
from .point import Point
from .queries import QueryGroup

__all__ = ["SOPDetector"]

class _PointState:
    """Per-live-point bookkeeping: evidence arrays + safety + horizon.

    ``seqs``/``poss``/``layers`` hold the skyband in arrival-descending
    order (``None`` once the point is fully safe and evidence is dropped).
    """

    __slots__ = ("seqs", "poss", "layers", "last_seen_seq", "fully_safe")

    def __init__(self, seqs, poss, layers, last_seen_seq: int,
                 fully_safe: bool):
        self.seqs = seqs
        self.poss = poss
        self.layers = layers
        self.last_seen_seq = last_seen_seq
        self.fully_safe = fully_safe

    def entry_count(self) -> int:
        return 0 if self.seqs is None else len(self.seqs)

    def as_object_lsky(self):
        """Rebuild an :class:`LSky` view of the evidence.

        The committed state is canonically the three SoA arrays; this
        adapter exists for tests, inspection, and the legacy object impl
        only -- nothing on the hot path calls it.
        """
        if self.seqs is None:
            return None
        sky = LSky(max(int(self.layers.max()) + 1, 1) if len(self.layers)
                   else 1)
        sky.n_layers = 1 << 30  # permissive: view only
        for seq, pos, layer in zip(self.seqs, self.poss, self.layers):
            sky.insert(int(seq), float(pos), int(layer))
        return sky


class SOPDetector(Detector):
    """Sharing-aware outlier processing over a query workload.

    Configuration comes from a :class:`~repro.engine.DetectorConfig`
    (``config=``); the individual keyword arguments are the legacy
    spelling and remain supported -- an explicit ``config`` wins over
    them.  The ablation switches are mirrored as attributes for
    introspection; the refresh strategy is selected once at construction
    (swap :attr:`refresh_engine` directly to change it afterwards).
    """

    name = "sop"

    def __init__(
        self,
        group: QueryGroup,
        metric="euclidean",
        chunk_size: int = 256,
        eager: bool = True,
        use_safe_inliers: bool = True,
        use_least_examination: bool = True,
        use_batched_refresh: bool = True,
        batch_min_rows: int = 8,
        refresh_strategy: str = "auto",
        skyband_impl: str = "soa",
        config: Optional[DetectorConfig] = None,
    ):
        if config is None:
            config = DetectorConfig(
                metric=metric,
                chunk_size=chunk_size,
                eager=eager,
                use_safe_inliers=use_safe_inliers,
                use_least_examination=use_least_examination,
                use_batched_refresh=use_batched_refresh,
                batch_min_rows=batch_min_rows,
                refresh_strategy=refresh_strategy,
                skyband_impl=skyband_impl,
            )
        super().__init__(group, config.metric)
        #: the single source of truth for every switch and knob; persisted
        #: by checkpoints and preserved across dynamic-workload rebuilds
        self.config = config
        self.plan: SkybandPlan = parse_workload(group)
        self.runner = KSkyRunner(self.plan, chunk_size=config.chunk_size)
        self.buffer = WindowBuffer(self.metric)
        self.eager = config.eager
        self.use_safe_inliers = config.use_safe_inliers
        self.use_least_examination = config.use_least_examination
        self.use_batched_refresh = config.use_batched_refresh
        self.batch_min_rows = max(1, config.batch_min_rows)
        #: skyband state backend: a VectorizedSkybandEngine (the default)
        #: routes every refresh strategy through the canonical numpy
        #: structure-of-arrays tier; None selects the legacy object-path
        #: (Python-list LSky) oracle scans -- identical outputs either way
        self.skyband_impl = config.skyband_impl
        self.skyband_engine: Optional[VectorizedSkybandEngine] = (
            VectorizedSkybandEngine(self.plan, config.chunk_size)
            if config.skyband_impl == "soa" else None
        )
        #: pluggable refresh strategy (see repro.engine.refresh)
        strategy = config.resolved_refresh_strategy()
        self.refresh_engine: RefreshEngine = (
            GridPrunedRefresh(self.batch_min_rows) if strategy == "grid"
            else BatchedRefresh(self.batch_min_rows)
            if strategy == "batched"
            else AutoRefresh(self.batch_min_rows)
            if strategy == "auto"
            else PerPointRefresh()
        )
        #: first-tier inlier screen (see repro.core.prefilter); None for
        #: prefilter="none".  The refresh engine consults it per boundary
        #: and routes certified points to :meth:`_mark_prefilter_safe`
        self.prefilter: Optional[InlierScreen] = build_prefilter(
            config, self.plan)
        #: safe-for-all component (see repro.engine.safety)
        self.safety = SafetyTracker(self.plan)
        self._states: Dict[int, _PointState] = {}
        #: counters for ablation studies and optimality tests
        self.stats = {
            "ksky_runs": 0,
            "points_examined": 0,
            "early_terminations": 0,
            "fully_safe_marked": 0,
            "batched_scans": 0,
            "eval_flatten_rebuilds": 0,
        }
        #: per-boundary refresh observability (see repro.metrics.profiling)
        self.profile = RefreshProfile()
        # mutation generation: bumped whenever the live population or any
        # evidence array changes; the due-query evaluation cache keys on it
        self._gen = 0
        #: due-query classification component (see repro.engine.evaluator)
        self.evaluator = DueQueryEvaluator(self)

    # ------------------------------------------------------------- pipeline

    def run_boundary(self, t: int, batch: Sequence[Point], hooks
                     ) -> Dict[int, FrozenSet[int]]:
        """Alg. 3 as an explicit stage pipeline, firing lifecycle hooks."""
        self.ingest(t, batch)
        hooks.on_ingest(t, batch)
        evicted = self.expire(t)
        hooks.on_expire(t, evicted)
        due = self.group.due_members(t)
        if self.eager or due:
            self._refresh(float(max(0, t - self.swift.win)))
            hooks.on_refresh(t)
        out = self._evaluate_due(due, t) if due else {}
        hooks.on_evaluate(t, out)
        return out

    # ----------------------------------------------------------- the stages

    def ingest(self, t: int, batch: Sequence[Point]) -> None:
        """Stage 1a: append the boundary's batch to the live window."""
        self.buffer.extend(batch)
        if batch:
            self._gen += 1

    def expire(self, t: int) -> List[Point]:
        """Stage 1b: evict points that left the swift window at ``t``."""
        start = max(0, t - self.swift.win)
        evicted = self.buffer.evict_before(start, self.by_time)
        if evicted:
            self._gen += 1
            for p in evicted:
                self._states.pop(p.seq, None)
        return evicted

    def _refresh(self, window_start: float) -> None:
        """Stages 2+3: K-SKY refresh + safety, via the refresh strategy."""
        self.refresh_engine.refresh(self, window_start)

    def _evaluate_due(
        self, due: Sequence[int], t: int
    ) -> Dict[int, FrozenSet[int]]:
        """Stage 4: classify each due query from the shared evidence."""
        return self.evaluator.evaluate(due, t)

    # ------------------------------------------------- evidence commitment

    def _commit_scratch(self, p: Point, st: Optional[_PointState],
                        result: KSkyResult, newest_seq: int) -> None:
        """Commit one from-scratch scan result."""
        seqs, poss, layers = result.lsky.as_arrays()
        self._store(p, st, seqs, poss, layers, result.examined,
                    result.terminated_early, newest_seq)

    def _commit_survivor(self, p: Point, st: _PointState, scan: KSkyResult,
                         window_start: float, newest_seq: int) -> None:
        """Merge one survivor's new-arrival scan with its old evidence."""
        seqs, poss, layers, examined = self._merge_survivor(
            st, scan, window_start)
        self._store(p, st, seqs, poss, layers, examined,
                    scan.terminated_early, newest_seq)

    def _merge_survivor(
        self, st: _PointState, scan: KSkyResult, window_start: float
    ):
        """Least examination, vectorized: expire old entries, trim entries
        the new arrivals alone over-dominate, concatenate new in front.

        Returns ``(seqs, poss, layers, examined)``; the returned arrays are
        the previous state's own objects when nothing changed, which the
        evaluation cache uses to skip re-flattening.
        """
        examined = scan.examined
        n_seqs, n_poss, n_layers = scan.lsky.as_arrays()
        if scan.terminated_early or st.seqs is None or not len(st.seqs):
            return n_seqs, n_poss, n_layers, examined
        keep = st.poss >= window_start
        examined += int(keep.sum())
        if len(n_layers):
            new_sorted = np.sort(n_layers)
            dominated = np.searchsorted(
                new_sorted, st.layers, side="right") >= self.plan.k_max
            keep &= ~dominated
            seqs = np.concatenate((n_seqs, st.seqs[keep]))
            poss = np.concatenate((n_poss, st.poss[keep]))
            layers = np.concatenate((n_layers, st.layers[keep]))
            return seqs, poss, layers, examined
        if keep.all():
            return st.seqs, st.poss, st.layers, examined
        return st.seqs[keep], st.poss[keep], st.layers[keep], examined

    def _store(
        self,
        p: Point,
        st: Optional[_PointState],
        seqs: np.ndarray,
        poss: np.ndarray,
        layers: np.ndarray,
        examined: int,
        terminated: bool,
        newest_seq: int,
    ) -> None:
        """Account one scan and commit the refreshed evidence."""
        stats = self.stats
        stats["ksky_runs"] += 1
        stats["points_examined"] += examined
        if terminated:
            stats["early_terminations"] += 1
        if self.use_safe_inliers and self.safety.is_fully_safe(p.seq, seqs,
                                                               layers):
            stats["fully_safe_marked"] += 1
            self._states[p.seq] = _PointState(None, None, None, newest_seq,
                                              True)
            self._gen += 1
        elif st is None:
            self._states[p.seq] = _PointState(seqs, poss, layers, newest_seq,
                                              False)
            self._gen += 1
        else:
            if (st.seqs is not seqs or st.poss is not poss
                    or st.layers is not layers):
                st.seqs, st.poss, st.layers = seqs, poss, layers
                self._gen += 1
            st.last_seen_seq = newest_seq

    def _mark_prefilter_safe(self, p_seq: int, newest_seq: int) -> None:
        """Commit one screen-certified point as fully safe, scan-free.

        Exact-mode certification proves the point satisfies the
        safe-for-all test for every registered query (DESIGN.md section
        14), so this is the fully-safe branch of :meth:`_store` minus the
        scan it renders unnecessary; the refresh this point skips would
        have reached the same state at this very boundary.
        """
        self.stats["fully_safe_marked"] += 1
        self._states[p_seq] = _PointState(None, None, None, newest_seq,
                                          True)
        self._gen += 1

    def _is_fully_safe(self, p_seq: int, seqs: np.ndarray,
                       layers: np.ndarray) -> bool:
        """Safe-for-all test; see :class:`~repro.engine.SafetyTracker`."""
        return self.safety.is_fully_safe(p_seq, seqs, layers)

    # -------------------------------------------------------------- metrics

    def memory_units(self) -> int:
        """Skyband entries currently stored (the paper's MEM metric)."""
        return sum(st.entry_count() for st in self._states.values())

    def tracked_points(self) -> int:
        return len(self._states)

    def work_stats(self) -> Dict[str, int]:
        """Distance-row counter plus the refresh profile aggregates."""
        stats = super().work_stats()
        stats.update(self.profile.as_dict())
        return stats

    # ------------------------------------------------------------ inspection

    def state_of(self, seq: int) -> Optional[_PointState]:
        """Expose one point's state (tests and the quickstart example)."""
        return self._states.get(seq)
