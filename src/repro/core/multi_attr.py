"""Divide-and-conquer SOP for queries over different attribute sets.

Fig. 10(b) of the paper evaluates workloads whose queries are "divided
into 3 groups [where] the queries in the same group utilize the same set
of attributes", and notes SOP "is slightly extended using a simple divide
and conquer approach".

:class:`MultiAttributeSOP` implements that extension: member queries are
partitioned by their ``attributes`` tuple; each partition gets its own
:class:`~repro.core.sop.SOPDetector` over the stream *projected* onto
those attributes.  The wrapper drives every partition on the global swift
schedule and stitches the per-partition outputs back to workload indexes.

Because distance is computed per attribute set, sharing happens *within*
each partition -- exactly the paper's design (no cross-projection sharing
is possible: the metrics differ).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..baselines.base import Detector
from .point import Point
from .queries import OutlierQuery, QueryGroup
from .sop import SOPDetector

__all__ = [
    "MultiAttributeDetector",
    "MultiAttributeSOP",
    "partition_by_attributes",
]


def partition_by_attributes(
    queries: Sequence[OutlierQuery],
) -> Dict[Optional[Tuple[int, ...]], List[int]]:
    """Workload indexes grouped by attribute set (None = all attributes)."""
    parts: Dict[Optional[Tuple[int, ...]], List[int]] = {}
    for i, q in enumerate(queries):
        parts.setdefault(q.attributes, []).append(i)
    return parts


class _HeterogeneousGroup(QueryGroup):
    """A QueryGroup that skips the homogeneous-attribute check.

    Only used internally by :class:`MultiAttributeSOP`, which never feeds
    the mixed group to a single-plan detector.
    """

    def __init__(self, queries: Sequence[OutlierQuery]):
        members = tuple(queries)
        if not members:
            raise ValueError("QueryGroup requires at least one query")
        kinds = {q.kind for q in members}
        if len(kinds) != 1:
            raise ValueError(
                f"all queries must share a window kind, got {sorted(kinds)}"
            )
        self.queries = members
        self.kind = members[0].kind
        self.attributes = None
        from ..streams.windows import SwiftSchedule

        self.swift = SwiftSchedule([q.window for q in members])


class MultiAttributeDetector(Detector):
    """Divide-and-conquer wrapper running any detector per attribute set.

    ``factory(group, metric)`` builds the per-partition detector; the
    default is :class:`~repro.core.sop.SOPDetector` (the paper's extended
    SOP), but the same wrapper lets MCOD/LEAP handle Fig. 10(b) workloads.
    """

    name = "multiattr"

    def __init__(self, queries: Sequence[OutlierQuery], metric="euclidean",
                 factory=None, **factory_kwargs):
        group = _HeterogeneousGroup(queries)
        super().__init__(group, metric)
        if factory is None:
            factory = SOPDetector
        self._partitions: List[Tuple[Optional[Tuple[int, ...]], List[int],
                                     Detector]] = []
        for attrs, indexes in partition_by_attributes(group.queries).items():
            # sub-detector sees projected points, so its queries drop the
            # attribute restriction (the projection already applied it)
            sub_queries = [group.queries[i].replace(attributes=None)
                           for i in indexes]
            sub = factory(QueryGroup(sub_queries), metric=metric,
                          **factory_kwargs)
            self._partitions.append((attrs, indexes, sub))
        self.name = f"{self._partitions[0][2].name}-multiattr"

    def step(self, t: int, batch: Sequence[Point]) -> Dict[int, FrozenSet[int]]:
        out: Dict[int, FrozenSet[int]] = {}
        for attrs, indexes, sub in self._partitions:
            if attrs is None:
                projected = list(batch)
            else:
                projected = [p.project(attrs) for p in batch]
            sub_out = sub.step(t, projected)
            for local_qi, seqs in sub_out.items():
                out[indexes[local_qi]] = seqs
        return out

    def memory_units(self) -> int:
        return sum(sub.memory_units() for _, _, sub in self._partitions)

    def work_stats(self):
        rows = sum(sub.work_stats().get("distance_rows", 0)
                   for _, _, sub in self._partitions)
        return {"distance_rows": rows}

    def tracked_points(self) -> int:
        return sum(sub.tracked_points() for _, _, sub in self._partitions)

    @property
    def partitions(self) -> int:
        """Number of attribute partitions (Fig. 10(b)'s 'groups')."""
        return len(self._partitions)


class MultiAttributeSOP(MultiAttributeDetector):
    """The paper's extended SOP: divide and conquer by attribute set."""

    def __init__(self, queries: Sequence[OutlierQuery], metric="euclidean",
                 **sop_kwargs):
        super().__init__(queries, metric=metric, factory=SOPDetector,
                         **sop_kwargs)
