"""LSky: the layered skyband structure (Sec. 3.1.2, Fig. 2).

LSky stores the skyband points discovered for one evaluated point ``p``.
Entries carry the *normalized distance* layer (Def. 4) instead of the raw
distance, and are appended in K-SKY's processing order -- strictly
descending arrival order ("last come, first served").  That single ordering
gives every operation the paper needs:

* **dominator count** (Def. 5): every stored entry arrived later than the
  entry being evaluated, so the number of points dominating a candidate at
  layer ``m`` is simply the number of stored entries with layer ``<= m``;
* **windowed neighbor counting** (k-distance observation + Lemma 3): the
  entries within a window form a prefix of the list, so counting neighbors
  of a query ``(k, r -> layer m, win)`` walks the prefix and stops at ``k``;
* **safe-inlier detection** (Sec. 3.2.2/4.1): the entries that *succeed*
  ``p`` are likewise a prefix.

The per-layer buckets of the paper's Fig. 2 are recoverable via
:meth:`layer_buckets` (tests assert the paper's examples against them);
the flat representation is what the detector uses.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["LSky", "SkybandEntry"]

#: one skyband point: (seq, pos, layer); ``pos`` is the stream position used
#: by windows (``seq`` for count-based, ``time`` for time-based windows).
SkybandEntry = Tuple[int, float, int]


class LSky:
    """Layered skyband evidence for a single evaluated point."""

    __slots__ = ("n_layers", "seqs", "poss", "layers", "_sorted_layers",
                 "_buckets_cache", "_cards_cache")

    def __init__(self, n_layers: int):
        if n_layers < 1:
            raise ValueError("LSky needs at least one layer")
        self.n_layers = n_layers
        self.seqs: List[int] = []
        self.poss: List[float] = []
        self.layers: List[int] = []
        # multiset of layers, kept sorted for O(log n) dominator counting
        self._sorted_layers: List[int] = []
        # memoized layer_buckets()/layer_cardinalities(), keyed on the
        # entry count: LSky is append-only, so a count match proves the
        # cache is current under *every* mutation path -- insert(),
        # extend_older(), and the batched scan's direct list appends alike
        # (an invalidate-on-insert scheme would go stale on the latter two)
        self._buckets_cache: Optional[Tuple[int, Dict[int, List[int]]]] = None
        self._cards_cache: Optional[Tuple[int, Dict[int, int]]] = None

    # ------------------------------------------------------------- mutation

    def insert(self, seq: int, pos: float, layer: int) -> None:
        """Append a skyband point (must be older than all stored entries)."""
        if not 0 <= layer < self.n_layers:
            raise ValueError(f"layer {layer} out of range [0, {self.n_layers})")
        if self.seqs and seq >= self.seqs[-1]:
            raise ValueError(
                f"entries must be inserted in descending seq order: "
                f"{seq} after {self.seqs[-1]}"
            )
        self.seqs.append(seq)
        self.poss.append(pos)
        self.layers.append(layer)
        insort(self._sorted_layers, layer)

    def extend_older(self, entries: Sequence[SkybandEntry]) -> None:
        """Bulk-append entries that are all older than the stored ones.

        Used by the least-examination path: a surviving point's previous
        skyband entries are appended verbatim after the new arrivals have
        been processed.  No per-entry domination test is needed -- older
        points can never dominate the stored (younger) entries, and every
        appended entry is a genuine neighbor, so windowed counts remain
        exact (capped at ``k_max``; see DESIGN.md).
        """
        if not entries:
            return
        if self.seqs and entries[0][0] >= self.seqs[-1]:
            raise ValueError(
                f"extend_older requires strictly older entries: "
                f"{entries[0][0]} after {self.seqs[-1]}"
            )
        prev = entries[0][0] + 1
        for seq, pos, layer in entries:
            if seq >= prev:
                raise ValueError("extend_older entries must be seq-descending")
            if not 0 <= layer < self.n_layers:
                raise ValueError(f"layer {layer} out of range")
            prev = seq
        self.seqs.extend(e[0] for e in entries)
        self.poss.extend(e[1] for e in entries)
        self.layers.extend(e[2] for e in entries)
        self._sorted_layers.extend(e[2] for e in entries)
        self._sorted_layers.sort()

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.seqs)

    def dominator_count(self, layer: int) -> int:
        """Number of stored entries that dominate a candidate at ``layer``.

        All stored entries are younger than any candidate K-SKY is currently
        evaluating, so domination (Def. 5) reduces to ``entry.layer <= layer``.
        """
        return bisect_right(self._sorted_layers, layer)

    def count_within(self, max_layer: int, min_pos: float, cap: int) -> int:
        """Neighbors with ``layer <= max_layer`` and ``pos >= min_pos``.

        Counting stops at ``cap`` (the query's ``k``): by the k-distance
        observation only "are there at least k?" matters.  Entries are
        position-descending, so the scan ends at the first expired entry.
        """
        count = 0
        for pos, layer in zip(self.poss, self.layers):
            if pos < min_pos:
                break
            if layer <= max_layer:
                count += 1
                if count >= cap:
                    break
        return count

    def succ_layers(self, p_seq: int) -> List[int]:
        """Layers of entries that arrived after point ``p_seq`` (its
        *succeeding* neighbors), in arrival-descending order.

        These entries form a prefix of the list; they never expire before
        ``p`` does, which is what makes safe-inlier claims permanent.
        """
        out: List[int] = []
        for seq, layer in zip(self.seqs, self.layers):
            if seq <= p_seq:
                break
            out.append(layer)
        return out

    def k_distance_layer(self, k: int) -> Optional[int]:
        """Layer of the k-th nearest neighbor by normalized distance.

        This is the *k-distance observation* of Sec. 3.1.1: if the value is
        ``m`` then ``p`` is an outlier for every query with layer < ``m``
        and an inlier for every query with layer >= ``m`` (in the swift
        window).  Returns ``None`` when fewer than ``k`` entries exist.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        if len(self._sorted_layers) < k:
            return None
        return self._sorted_layers[k - 1]

    def unexpired_entries(self, min_pos: float) -> List[SkybandEntry]:
        """Entries with ``pos >= min_pos``, preserving descending order.

        This is the ``expireSkyband`` step of Alg. 1 (line 4): the input of
        the next K-SKY run for an existing point is these entries plus the
        new arrivals.
        """
        keep = 0
        for pos in self.poss:
            if pos < min_pos:
                break
            keep += 1
        return [
            (self.seqs[i], self.poss[i], self.layers[i]) for i in range(keep)
        ]

    def entries(self) -> Iterator[SkybandEntry]:
        """All entries in processing (arrival-descending) order."""
        return iter(zip(self.seqs, self.poss, self.layers))

    def layer_buckets(self) -> Dict[int, List[int]]:
        """Buckets ``B_m -> [seqs...]`` as drawn in the paper's Fig. 2.

        Within each bucket, seqs are listed in arrival order (earliest at
        the head) so that "skyband points can be quickly expired when the
        window slides" -- matching the figure's head-to-tail layout.
        Memoized per entry count (the structure is append-only); callers
        must treat the returned lists as read-only between mutations.
        """
        n = len(self.seqs)
        if self._buckets_cache is None or self._buckets_cache[0] != n:
            buckets: Dict[int, List[int]] = {}
            for seq, layer in zip(self.seqs, self.layers):
                buckets.setdefault(layer, []).append(seq)
            self._buckets_cache = (
                n, {m: list(reversed(s)) for m, s in sorted(buckets.items())})
        return {m: list(s) for m, s in self._buckets_cache[1].items()}

    def layer_cardinalities(self) -> Dict[int, int]:
        """Per-layer entry counts (the explicit cardinalities of Alg. 2);
        memoized per entry count, like :meth:`layer_buckets`."""
        n = len(self.layers)
        if self._cards_cache is None or self._cards_cache[0] != n:
            counts: Dict[int, int] = {}
            for layer in self.layers:
                counts[layer] = counts.get(layer, 0) + 1
            self._cards_cache = (n, dict(sorted(counts.items())))
        return dict(self._cards_cache[1])

    def as_arrays(self) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray"]:
        """Canonical ``(seqs, poss, layers)`` int64/f64/int64 arrays.

        The representation contract shared with
        :meth:`~repro.core.lsky_soa.LSkySoA.as_arrays`: the detector
        stores every point's committed skyband as these three arrays, so
        an object ``LSky`` built by the legacy impl converts here at the
        commit boundary.  Treat the result as read-only.
        """
        n = len(self.seqs)
        if not n:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64),
                    np.empty(0, dtype=np.int64))
        return (np.asarray(self.seqs, dtype=np.int64),
                np.asarray(self.poss, dtype=np.float64),
                np.asarray(self.layers, dtype=np.int64))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LSky({len(self)} entries over {self.n_layers} layers)"
