"""Core SOP machinery: queries, parser, LSky, K-SKY, evaluator, detector."""
