"""LSkySoA: the layered skyband as a flat structure-of-arrays tier.

:class:`~repro.core.lsky.LSky` stores one evaluated point's skyband as
Python lists and is mutated one entry at a time; profiling
(``BENCH_grid.json``) showed that after the kernel-volume optimizations the
refresh stage spends most of its time in exactly those per-entry
interpreted loops.  This module provides the array-backed twin:

* :class:`LSkySoA` -- the same API and the same invariants as ``LSky``
  (entries in arrival-descending order, layer multiset for dominator
  counting), but held as parallel numpy arrays (``seqs``, ``poss``,
  ``layers``) plus a per-layer count vector, so ``dominator_count`` /
  ``count_within`` / ``k_distance_layer`` / ``succ_layers`` become
  cumsum/searchsorted passes and bulk inserts are array concatenation;
* :func:`insert_limits` + :func:`resolve_chunk_inserts` -- the vectorized
  form of the Alg. 2 ``skyEvaluate`` insert loop over a whole candidate
  chunk (see the exactness argument below);
* an optional numba kernel behind the ``REPRO_NUMBA=1`` environment flag
  (:func:`numba_active`), which compiles the *literal* sequential decision
  loop; when numba is absent or the flag is off, the pure-numpy path runs.

Exactness of the vectorized insert resolve (DESIGN.md section 12 carries the
full argument).  The sequential loop inserts a candidate at layer ``m``
iff ``c < k_max and m <= allowed_layer[c]`` where ``c`` is the dominator
count at evaluation time.  Two structural facts make the loop computable
with array passes:

1. ``allowed_layer`` is *nonincreasing* in ``c`` (it is a suffix maximum
   over sub-groups with ``k_j > c``; see ``SkybandPlan``).  Hence the
   insert predicate collapses to ``c < limit(m)`` with
   ``limit(m) = min{c : c >= k_max or allowed_layer[c] < m}``
   (:func:`insert_limits`).
2. For a *fixed* layer ``m``, the dominator count seen by successive
   layer-``m`` candidates is nondecreasing along the scan (inserts only
   ever add dominators).  Therefore the inserted layer-``m`` candidates
   form a *prefix* of the layer-``m`` candidates in scan order, and the
   prefix length is one ``searchsorted`` against ``limit(m)`` once the
   dominator base of each candidate is known.  Processing layers in
   ascending order makes that base available: a layer-``m`` candidate's
   dominators are the stored entries at layers ``<= m`` plus the
   already-resolved chunk inserts at layers ``<= m`` that precede it in
   scan order -- and inserts at layers ``< m`` never depend on decisions
   at layers ``>= m``.

The resolve ignores early termination; the caller replays the (small)
insert sequence through the real ``_Resolution`` tracker to find the exact
cut point, so regime transitions and check cadence stay literal.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .lsky import SkybandEntry

__all__ = ["LSkySoA", "insert_limits", "resolve_chunk_inserts",
           "numba_active"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


class LSkySoA:
    """Array-backed layered skyband; drop-in twin of :class:`LSky`.

    The invariants, validation errors, and query semantics replicate
    ``LSky`` exactly (``tests/test_lsky_soa.py`` drives both through random
    interleavings and compares every observable).  The ``seqs``/``poss``/
    ``layers`` properties return live numpy views -- treat them as
    read-only.
    """

    __slots__ = ("n_layers", "_seqs", "_poss", "_layers", "_n",
                 "_layer_counts", "_csum", "_buckets", "_cards")

    def __init__(self, n_layers: int):
        if n_layers < 1:
            raise ValueError("LSky needs at least one layer")
        self.n_layers = n_layers
        self._seqs = _EMPTY_I
        self._poss = _EMPTY_F
        self._layers = _EMPTY_I
        self._n = 0
        #: per-layer entry counts; None on adopted instances until needed
        self._layer_counts: Optional[np.ndarray] = np.zeros(
            n_layers, dtype=np.int64)
        self._csum: Optional[np.ndarray] = None
        self._buckets: Optional[Dict[int, List[int]]] = None
        self._cards: Optional[Dict[int, int]] = None

    # ----------------------------------------------------------- construction

    @classmethod
    def from_parts(cls, n_layers: int, seqs: np.ndarray, poss: np.ndarray,
                   layers: np.ndarray) -> "LSkySoA":
        """Adopt already-validated arrays (the vectorized engine's path).

        ``seqs`` must be strictly descending and ``layers`` within range;
        the caller guarantees both (the scan order does).
        """
        sky = cls(n_layers)
        sky._seqs = np.ascontiguousarray(seqs, dtype=np.int64)
        sky._poss = np.ascontiguousarray(poss, dtype=np.float64)
        sky._layers = np.ascontiguousarray(layers, dtype=np.int64)
        sky._n = len(sky._seqs)
        if sky._n:
            sky._layer_counts = np.bincount(
                sky._layers, minlength=n_layers).astype(np.int64)
        return sky

    @classmethod
    def adopt(cls, n_layers: int, seqs, poss, layers) -> "LSkySoA":
        """:meth:`from_parts` minus every deferrable cost -- the per-result
        hot path of the vectorized engine (tens of thousands of calls per
        boundary sweep).  Inputs may be arrays or plain lists in scan
        order; the per-layer count vector is built lazily on first use."""
        sky = object.__new__(cls)
        sky.n_layers = n_layers
        sky._seqs = np.asarray(seqs, dtype=np.int64)
        sky._poss = np.asarray(poss, dtype=np.float64)
        sky._layers = np.asarray(layers, dtype=np.int64)
        sky._n = len(sky._seqs)
        sky._layer_counts = None
        sky._csum = None
        sky._buckets = None
        sky._cards = None
        return sky

    @classmethod
    def from_segments(cls, n_layers: int, segs_s: List, segs_p: List,
                      segs_l: List) -> "LSkySoA":
        """Adopt per-chunk scan-order segments (arrays or plain lists).

        Every scan result is consumed exactly once -- frozen into the
        point's canonical arrays by the evidence commit -- so eager
        concatenation here pays the same single ``asarray``/``concatenate``
        a lazy scheme would defer, without the indirection machinery
        (PR 7 removed the ``_LazySegmentsSoA`` shim on those grounds).
        """
        if len(segs_s) == 1:
            return cls.adopt(n_layers, segs_s[0], segs_p[0], segs_l[0])
        return cls.adopt(
            n_layers,
            np.concatenate([np.asarray(s, dtype=np.int64) for s in segs_s]),
            np.concatenate([np.asarray(p, dtype=np.float64) for p in segs_p]),
            np.concatenate([np.asarray(l, dtype=np.int64) for l in segs_l]),
        )

    # ------------------------------------------------------------- mutation

    def _invalidate(self) -> None:
        self._csum = None
        self._buckets = None
        self._cards = None

    def _counts(self) -> np.ndarray:
        """Materialize the lazy per-layer count vector (adopt path)."""
        if self._layer_counts is None:
            if self._n:
                self._layer_counts = np.bincount(
                    self._layers[: self._n],
                    minlength=self.n_layers).astype(np.int64)
            else:
                self._layer_counts = np.zeros(self.n_layers, dtype=np.int64)
        return self._layer_counts

    def _reserve(self, extra: int) -> None:
        need = self._n + extra
        cap = len(self._seqs)
        if need <= cap:
            return
        cap = max(8, cap * 2, need)
        for name, dtype in (("_seqs", np.int64), ("_poss", np.float64),
                            ("_layers", np.int64)):
            grown = np.empty(cap, dtype=dtype)
            old = getattr(self, name)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    def insert(self, seq: int, pos: float, layer: int) -> None:
        """Append a skyband point (must be older than all stored entries)."""
        if not 0 <= layer < self.n_layers:
            raise ValueError(f"layer {layer} out of range [0, {self.n_layers})")
        if self._n and seq >= self._seqs[self._n - 1]:
            raise ValueError(
                f"entries must be inserted in descending seq order: "
                f"{seq} after {int(self._seqs[self._n - 1])}"
            )
        counts = self._counts()
        self._reserve(1)
        self._seqs[self._n] = seq
        self._poss[self._n] = pos
        self._layers[self._n] = layer
        self._n += 1
        counts[layer] += 1
        self._invalidate()

    def extend_older(self, entries: Sequence[SkybandEntry]) -> None:
        """Bulk-append entries that are all older than the stored ones."""
        if not len(entries):
            return
        if self._n and entries[0][0] >= self._seqs[self._n - 1]:
            raise ValueError(
                f"extend_older requires strictly older entries: "
                f"{entries[0][0]} after {int(self._seqs[self._n - 1])}"
            )
        prev = entries[0][0] + 1
        for seq, pos, layer in entries:
            if seq >= prev:
                raise ValueError("extend_older entries must be seq-descending")
            if not 0 <= layer < self.n_layers:
                raise ValueError(f"layer {layer} out of range")
            prev = seq
        k = len(entries)
        counts = self._counts()
        self._reserve(k)
        n = self._n
        self._seqs[n: n + k] = [e[0] for e in entries]
        self._poss[n: n + k] = [e[1] for e in entries]
        new_layers = np.fromiter((e[2] for e in entries), dtype=np.int64,
                                 count=k)
        self._layers[n: n + k] = new_layers
        self._n = n + k
        counts += np.bincount(new_layers, minlength=self.n_layers)
        self._invalidate()

    def extend_arrays(self, seqs: np.ndarray, poss: np.ndarray,
                      layers: np.ndarray) -> None:
        """Trusted bulk append (scan-order guaranteed by the caller)."""
        k = len(seqs)
        if not k:
            return
        counts = self._counts()
        self._reserve(k)
        n = self._n
        self._seqs[n: n + k] = seqs
        self._poss[n: n + k] = poss
        self._layers[n: n + k] = layers
        self._n = n + k
        counts += np.bincount(layers, minlength=self.n_layers)
        self._invalidate()

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return self._n

    @property
    def seqs(self) -> np.ndarray:
        return self._seqs[: self._n]

    @property
    def poss(self) -> np.ndarray:
        return self._poss[: self._n]

    @property
    def layers(self) -> np.ndarray:
        return self._layers[: self._n]

    def _cumulative(self) -> np.ndarray:
        if self._csum is None:
            self._csum = np.cumsum(self._counts())
        return self._csum

    def dominator_count(self, layer: int) -> int:
        """Stored entries with layer <= ``layer`` (Def. 5 prefix count)."""
        if layer < 0:
            return 0
        if layer >= self.n_layers:
            return self._n
        return int(self._cumulative()[layer])

    def _live_prefix(self, min_pos: float) -> int:
        """Length of the unexpired prefix: ``LSky`` stops at the *first*
        entry with ``pos < min_pos`` (positions descend in detector use,
        so that is the whole live set) -- replicated literally so the twin
        agrees even on adversarial non-monotone positions."""
        n = self._n
        if not n:
            return 0
        expired = self._poss[:n] < min_pos
        return int(np.argmax(expired)) if expired.any() else n

    def count_within(self, max_layer: int, min_pos: float, cap: int) -> int:
        """Neighbors with ``layer <= max_layer`` and ``pos >= min_pos``,
        capped at ``cap`` -- one mask plus one vectorized count."""
        keep = self._live_prefix(min_pos)
        if not keep:
            return 0
        count = int(np.count_nonzero(self._layers[:keep] <= max_layer))
        return count if count < cap else cap

    def succ_layers(self, p_seq: int) -> List[int]:
        """Layers of entries younger than ``p_seq`` (a prefix)."""
        n = self._n
        if not n:
            return []
        keep = int(np.searchsorted(-self._seqs[:n], -p_seq, side="left"))
        return self._layers[:keep].tolist()

    def k_distance_layer(self, k: int) -> Optional[int]:
        """Layer of the k-th nearest neighbor by normalized distance."""
        if k < 1:
            raise ValueError("k must be >= 1")
        if self._n < k:
            return None
        # smallest layer m whose cumulative count reaches k
        return int(np.searchsorted(self._cumulative(), k, side="left"))

    def unexpired_entries(self, min_pos: float) -> List[SkybandEntry]:
        """Entries with ``pos >= min_pos``, preserving descending order."""
        keep = self._live_prefix(min_pos)
        if not keep:
            return []
        return list(zip(self._seqs[:keep].tolist(),
                        self._poss[:keep].tolist(),
                        self._layers[:keep].tolist()))

    def entries(self) -> Iterator[SkybandEntry]:
        """All entries in processing (arrival-descending) order."""
        n = self._n
        return iter(zip(self._seqs[:n].tolist(), self._poss[:n].tolist(),
                        self._layers[:n].tolist()))

    def layer_buckets(self) -> Dict[int, List[int]]:
        """Buckets ``B_m -> [seqs...]`` (Fig. 2 layout), cached."""
        if self._buckets is None:
            n = self._n
            layers = self._layers[:n]
            seqs = self._seqs[:n]
            buckets: Dict[int, List[int]] = {}
            for m in np.unique(layers).tolist():
                buckets[m] = seqs[layers == m][::-1].tolist()
            self._buckets = buckets
        return {m: list(s) for m, s in self._buckets.items()}

    def layer_cardinalities(self) -> Dict[int, int]:
        """Per-layer entry counts, cached."""
        if self._cards is None:
            uniq, counts = np.unique(self._layers[: self._n],
                                     return_counts=True)
            self._cards = dict(zip(uniq.tolist(), counts.tolist()))
        return dict(self._cards)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Canonical ``(seqs, poss, layers)`` int64/f64/int64 arrays.

        The shared representation contract with :meth:`LSky.as_arrays`:
        the detector's committed point state is exactly these three
        arrays.  Returns the backing arrays directly when no spare
        capacity exists (the adopt path), a trimmed copy otherwise;
        treat the result as read-only.
        """
        n = self._n
        if len(self._seqs) == n:
            return self._seqs, self._poss, self._layers
        return (self._seqs[:n].copy(), self._poss[:n].copy(),
                self._layers[:n].copy())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LSkySoA({self._n} entries over {self.n_layers} layers)"


# --------------------------------------------------------- vectorized resolve


def insert_limits(allowed_layer: Sequence[int], k_max: int,
                  n_layers: int) -> np.ndarray:
    """``limit[m]``: smallest dominator count that rejects a layer-``m``
    candidate.

    Because ``allowed_layer`` is nonincreasing, the Def. 6 predicate
    ``c < k_max and m <= allowed_layer[c]`` is exactly ``c < limit[m]``.
    Built once per plan; O(n_layers * k_max).
    """
    limits = np.empty(n_layers, dtype=np.int64)
    for m in range(n_layers):
        lim = k_max
        for c in range(k_max):
            if allowed_layer[c] < m:
                lim = c
                break
        limits[m] = lim
    return limits


def resolve_chunk_inserts(
    m_scan: np.ndarray, layer_counts: np.ndarray, limits: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Positions (in scan order) the sequential insert loop would insert.

    ``m_scan`` holds candidate layers in scan (newest-first) order, all
    ``< n_layers``; ``layer_counts`` the stored per-layer entry counts
    (not mutated); ``limits`` comes from :func:`insert_limits`.  Early
    termination is ignored -- the caller replays the returned sequence
    through ``_Resolution`` and truncates at the exact stop point.

    Returns ``(positions, layers)`` with positions strictly ascending.
    """
    n = m_scan.shape[0]
    if not n:
        return _EMPTY_I, _EMPTY_I
    order = np.argsort(m_scan, kind="stable")
    m_sorted = m_scan[order]
    csum = np.cumsum(layer_counts)
    uniq, starts = np.unique(m_sorted, return_index=True)
    bounds = np.append(starts, n)
    ins_pos: Optional[np.ndarray] = None
    out_pos: List[np.ndarray] = []
    out_m: List[np.ndarray] = []
    for ui in range(uniq.shape[0]):
        m = int(uniq[ui])
        # scan positions of the layer-m candidates, ascending (stable sort)
        pos_m = order[starts[ui]: bounds[ui + 1]]
        base = int(csum[m])
        if ins_pos is not None:
            # + already-resolved lower-layer inserts preceding each one
            vals = (base + np.searchsorted(ins_pos, pos_m)
                    + np.arange(pos_m.shape[0]))
        else:
            vals = base + np.arange(pos_m.shape[0])
        # dominator counts along the would-be insert prefix are strictly
        # increasing, so the prefix ends at one searchsorted
        t = int(np.searchsorted(vals, int(limits[m]), side="left"))
        if t:
            take = pos_m[:t]
            out_pos.append(take)
            out_m.append(np.full(t, m, dtype=np.int64))
            ins_pos = (take if ins_pos is None
                       else np.sort(np.concatenate((ins_pos, take))))
    if not out_pos:
        return _EMPTY_I, _EMPTY_I
    pos_all = np.concatenate(out_pos)
    m_all = np.concatenate(out_m)
    o = np.argsort(pos_all)
    return pos_all[o], m_all[o]


# ------------------------------------------------------------- numba (gated)

#: feature flag: compile the sequential resolve with numba when available
_NUMBA_FLAG = os.environ.get("REPRO_NUMBA", "") == "1"
_NUMBA_KERNEL = None
_NUMBA_TRIED = False


def _load_numba_kernel():
    """Compile the literal sequential insert loop; None when unavailable."""
    global _NUMBA_KERNEL, _NUMBA_TRIED
    if _NUMBA_TRIED:
        return _NUMBA_KERNEL
    _NUMBA_TRIED = True
    try:  # pragma: no cover - exercised only on numba-equipped CI
        import numba

        @numba.njit(cache=False)
        def _resolve(m_scan, layer_counts, allowed, k_max):
            counts = layer_counts.copy()
            n = m_scan.shape[0]
            out = np.empty(n, np.int64)
            w = 0
            for s in range(n):
                m = m_scan[s]
                dc = 0
                for layer in range(m + 1):
                    dc += counts[layer]
                if dc < k_max and m <= allowed[dc]:
                    counts[m] += 1
                    out[w] = s
                    w += 1
            return out[:w]

        # warm the compile outside the hot path
        _resolve(np.zeros(1, np.int64), np.zeros(1, np.int64),
                 np.zeros(1, np.int64), 1)
        _NUMBA_KERNEL = _resolve
    except Exception:
        _NUMBA_KERNEL = None
    return _NUMBA_KERNEL


def numba_active() -> bool:
    """True iff ``REPRO_NUMBA=1`` and numba imported and compiled."""
    return _NUMBA_FLAG and _load_numba_kernel() is not None


def resolve_chunk_inserts_numba(
    m_scan: np.ndarray, layer_counts: np.ndarray, allowed: np.ndarray,
    k_max: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Numba-compiled sequential resolve; same contract as
    :func:`resolve_chunk_inserts` (positions ascending, layers aligned)."""
    kernel = _load_numba_kernel()
    pos = kernel(m_scan, layer_counts, allowed, k_max)
    return pos, m_scan[pos]
