"""Dynamic workloads: register and remove outlier queries at runtime.

The paper motivates workloads that *change*: analysts join, tune their
parameters, and withdraw requests while the stream keeps flowing (Sec. 1).
Two pieces implement that:

* :class:`QueryRegistry` -- the thread-safe registration boundary.  It
  owns the handle space (stable integer handles, never renumbered), the
  window-kind compatibility check, and the staleness flag that tells the
  executing layer a rebuild is due.  Both :class:`DynamicSOPDetector`
  (single detector) and the ingestion service (:mod:`repro.serve`, one
  registry shared by every connected tenant over a sharded runtime) are
  built on it.
* :class:`DynamicSOPDetector` -- SOP over a mutable workload:

  - :meth:`add_query` / :meth:`remove_query` may be called between steps
    (from any thread; the registry lock serializes them against
    :meth:`step`); the change takes effect at the next processed boundary;
  - outputs are keyed by the registry's stable handles, not positional
    indexes, so removing one query never renumbers the others;
  - on a workload change the shared plan (layer grid, sub-groups, swift
    schedule) is rebuilt and the live window is carried over; per-point
    evidence is rebuilt lazily by K-SKY at the next boundary (the old
    evidence is unusable anyway -- its normalized-distance layers refer to
    the old grid).

History limits: a newly added query can only see the points the detector
retained, i.e. the previous swift window.  If its window is larger than
any previously registered window, its first windows are evaluated over
the retained suffix (exactly what a real system, unable to resurrect
dropped tuples, would do).
"""

from __future__ import annotations

import threading
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.point import Point
from ..core.queries import OutlierQuery, QueryGroup
from ..core.sop import SOPDetector
from ..engine.config import DetectorConfig
from ..streams.windows import SwiftSchedule

__all__ = ["DynamicSOPDetector", "QueryRegistry"]


class QueryRegistry:
    """Handle-keyed query set with a thread-safe mutation boundary.

    Mutations (:meth:`add`, :meth:`remove`) and reads take an internal
    re-entrant lock, so a registration arriving from another thread (or
    from a server task while a worker thread steps the detector) can
    never interleave with a rebuild.  For compound operations the lock is
    exposed as :attr:`lock`::

        with registry.lock:
            if registry.stale:
                group = registry.group()
                registry.mark_fresh()

    ``stale`` flips on every successful mutation and stays set until the
    consumer acknowledges the new membership with :meth:`mark_fresh` --
    the same "rebuild at the next boundary" contract
    :class:`DynamicSOPDetector` always had, now reusable.
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._queries: Dict[int, OutlierQuery] = {}
        self._order: List[int] = []
        self._next_handle = 0
        self._stale = False

    # ------------------------------------------------------------ mutation

    def add(self, query: OutlierQuery) -> int:
        """Register a query; returns its stable handle."""
        if not isinstance(query, OutlierQuery):
            raise TypeError("add expects an OutlierQuery")
        with self.lock:
            if self._queries:
                kinds = {q.kind for q in self._queries.values()}
                if query.kind not in kinds:
                    raise ValueError(
                        f"window kind {query.kind!r} does not match the "
                        f"registered workload ({sorted(kinds)})"
                    )
            handle = self._next_handle
            self._next_handle += 1
            self._queries[handle] = query
            self._order.append(handle)
            self._stale = True
            return handle

    def remove(self, handle: int) -> OutlierQuery:
        """Withdraw a query by handle; returns the removed query."""
        with self.lock:
            try:
                query = self._queries.pop(handle)
            except KeyError:
                raise KeyError(
                    f"no registered query with handle {handle}") from None
            self._order.remove(handle)
            self._stale = True
            return query

    def seed(self, queries: Sequence[OutlierQuery]) -> List[int]:
        """Register several queries (restore path); returns their handles."""
        return [self.add(q) for q in queries]

    # -------------------------------------------------------------- reads

    def get(self, handle: int) -> OutlierQuery:
        with self.lock:
            try:
                return self._queries[handle]
            except KeyError:
                raise KeyError(
                    f"no registered query with handle {handle}") from None

    def __contains__(self, handle: int) -> bool:
        with self.lock:
            return handle in self._queries

    def __len__(self) -> int:
        with self.lock:
            return len(self._queries)

    @property
    def stale(self) -> bool:
        return self._stale

    @property
    def total_registered(self) -> int:
        """How many handles were ever issued (monotone; metrics)."""
        with self.lock:
            return self._next_handle

    def mark_fresh(self) -> None:
        """Acknowledge the current membership (consumer rebuilt)."""
        with self.lock:
            self._stale = False

    def handles(self) -> List[int]:
        """Live handles in registration order (the group's query order)."""
        with self.lock:
            return list(self._order)

    def queries(self) -> Dict[int, OutlierQuery]:
        """Handle -> query snapshot of the current workload."""
        with self.lock:
            return dict(self._queries)

    def group(self) -> Optional[QueryGroup]:
        """The current workload as a QueryGroup (None while empty).

        Query order is registration order, so output index ``i`` of a
        detector built from this group maps to ``handles()[i]``.
        """
        with self.lock:
            if not self._queries:
                return None
            return QueryGroup([self._queries[h] for h in self._order])


class DynamicSOPDetector:
    """SOP over a workload that may change between boundaries.

    Configuration is normalized into one
    :class:`~repro.engine.DetectorConfig` at construction (either pass
    ``config=`` directly or the legacy keyword switches) and is carried
    through every workload rebuild, so registering or withdrawing a query
    never resets ablation flags to defaults.
    """

    name = "sop-dynamic"

    def __init__(self, queries: Sequence[OutlierQuery] = (),
                 metric="euclidean", config: Optional[DetectorConfig] = None,
                 **sop_kwargs):
        if config is None:
            config = DetectorConfig(metric=metric, **sop_kwargs)
        elif sop_kwargs:
            raise TypeError(
                "pass either config= or individual switches, not both: "
                f"{sorted(sop_kwargs)}"
            )
        #: the config every rebuilt inner detector inherits
        self.config = config
        #: the thread-safe registration boundary (handles, kind checks)
        self.registry = QueryRegistry()
        self._inner: Optional[SOPDetector] = None
        for q in queries:
            self.add_query(q)

    # ------------------------------------------------------------ workload

    def add_query(self, query: OutlierQuery) -> int:
        """Register a query; returns its stable handle."""
        if not isinstance(query, OutlierQuery):
            raise TypeError("add_query expects an OutlierQuery")
        return self.registry.add(query)

    def remove_query(self, handle: int) -> OutlierQuery:
        """Withdraw a query by handle; returns the removed query."""
        return self.registry.remove(handle)

    @property
    def queries(self) -> Dict[int, OutlierQuery]:
        """Handle -> query view of the current workload."""
        return self.registry.queries()

    def __len__(self) -> int:
        return len(self.registry)

    # ------------------------------------------------------------ schedule

    @property
    def swift(self) -> Optional[SwiftSchedule]:
        """The current swift schedule (None while no queries registered).

        Re-read this after workload mutations: the gcd slide and the
        maximum window both change with the membership.
        """
        with self.registry.lock:
            if not len(self.registry):
                return None
            if self.registry.stale or self._inner is None:
                return SwiftSchedule(
                    [q.window for q in self.registry.group().queries])
            return self._inner.swift

    # ------------------------------------------------------------ execution

    def step(self, t: int, batch: Sequence[Point]) -> Dict[int, FrozenSet[int]]:
        """Process one boundary; returns ``{handle: outlier seqs}``.

        ``t`` must be a multiple of the *current* swift slide (callers
        should re-read :attr:`swift` after mutations).  The registry lock
        is held for the whole boundary, so a concurrent registration
        lands either entirely before or entirely after it.
        """
        with self.registry.lock:
            if self.registry.stale:
                self._rebuild()
            if self._inner is None:
                return {}
            handles = self.registry.handles()
            raw = self._inner.step(t, batch)
            return {handles[qi]: seqs for qi, seqs in raw.items()}

    def _rebuild(self) -> None:
        """Swap in a fresh detector, carrying the retained window over."""
        retained: List[Point] = []
        if self._inner is not None:
            retained = list(self._inner.buffer.points)
        group = self.registry.group()
        if group is None:
            self._inner = None
            self.registry.mark_fresh()
            return
        inner = SOPDetector(group, config=self.config)
        if retained:
            inner.buffer.extend(retained)
        self._inner = inner
        self.registry.mark_fresh()

    # -------------------------------------------------------------- metrics

    def memory_units(self) -> int:
        return self._inner.memory_units() if self._inner else 0

    def tracked_points(self) -> int:
        return self._inner.tracked_points() if self._inner else 0

    @property
    def plan(self):
        """The current shared skyband plan (None while empty/stale)."""
        if self._inner is None or self.registry.stale:
            return None
        return self._inner.plan
