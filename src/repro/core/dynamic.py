"""Dynamic workloads: register and remove outlier queries at runtime.

The paper motivates workloads that *change*: analysts join, tune their
parameters, and withdraw requests while the stream keeps flowing (Sec. 1).
:class:`DynamicSOPDetector` supports that directly:

* :meth:`add_query` / :meth:`remove_query` may be called between steps;
  the change takes effect at the next processed boundary;
* outputs are keyed by stable integer *handles* (returned by
  :meth:`add_query`), not positional indexes, so removing one query never
  renumbers the others;
* on a workload change the shared plan (layer grid, sub-groups, swift
  schedule) is rebuilt and the live window is carried over; per-point
  evidence is rebuilt lazily by K-SKY at the next boundary (the old
  evidence is unusable anyway -- its normalized-distance layers refer to
  the old grid).

History limits: a newly added query can only see the points the detector
retained, i.e. the previous swift window.  If its window is larger than
any previously registered window, its first windows are evaluated over
the retained suffix (exactly what a real system, unable to resurrect
dropped tuples, would do).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.point import Point
from ..core.queries import OutlierQuery, QueryGroup
from ..core.sop import SOPDetector
from ..engine.config import DetectorConfig
from ..streams.windows import SwiftSchedule

__all__ = ["DynamicSOPDetector"]


class DynamicSOPDetector:
    """SOP over a workload that may change between boundaries.

    Configuration is normalized into one
    :class:`~repro.engine.DetectorConfig` at construction (either pass
    ``config=`` directly or the legacy keyword switches) and is carried
    through every workload rebuild, so registering or withdrawing a query
    never resets ablation flags to defaults.
    """

    name = "sop-dynamic"

    def __init__(self, queries: Sequence[OutlierQuery] = (),
                 metric="euclidean", config: Optional[DetectorConfig] = None,
                 **sop_kwargs):
        if config is None:
            config = DetectorConfig(metric=metric, **sop_kwargs)
        elif sop_kwargs:
            raise TypeError(
                "pass either config= or individual switches, not both: "
                f"{sorted(sop_kwargs)}"
            )
        #: the config every rebuilt inner detector inherits
        self.config = config
        self._queries: Dict[int, OutlierQuery] = {}
        self._order: List[int] = []
        self._next_handle = 0
        self._inner: Optional[SOPDetector] = None
        self._stale = False
        for q in queries:
            self.add_query(q)

    # ------------------------------------------------------------ workload

    def add_query(self, query: OutlierQuery) -> int:
        """Register a query; returns its stable handle."""
        if not isinstance(query, OutlierQuery):
            raise TypeError("add_query expects an OutlierQuery")
        if self._queries:
            kinds = {q.kind for q in self._queries.values()}
            if query.kind not in kinds:
                raise ValueError(
                    f"window kind {query.kind!r} does not match the "
                    f"registered workload ({sorted(kinds)})"
                )
        handle = self._next_handle
        self._next_handle += 1
        self._queries[handle] = query
        self._order.append(handle)
        self._stale = True
        return handle

    def remove_query(self, handle: int) -> OutlierQuery:
        """Withdraw a query by handle; returns the removed query."""
        try:
            query = self._queries.pop(handle)
        except KeyError:
            raise KeyError(f"no registered query with handle {handle}") from None
        self._order.remove(handle)
        self._stale = True
        return query

    @property
    def queries(self) -> Dict[int, OutlierQuery]:
        """Handle -> query view of the current workload."""
        return dict(self._queries)

    def __len__(self) -> int:
        return len(self._queries)

    # ------------------------------------------------------------ schedule

    @property
    def swift(self) -> Optional[SwiftSchedule]:
        """The current swift schedule (None while no queries registered).

        Re-read this after workload mutations: the gcd slide and the
        maximum window both change with the membership.
        """
        if not self._queries:
            return None
        if self._stale or self._inner is None:
            return SwiftSchedule(
                [self._queries[h].window for h in self._order])
        return self._inner.swift

    # ------------------------------------------------------------ execution

    def step(self, t: int, batch: Sequence[Point]) -> Dict[int, FrozenSet[int]]:
        """Process one boundary; returns ``{handle: outlier seqs}``.

        ``t`` must be a multiple of the *current* swift slide (callers
        should re-read :attr:`swift` after mutations).
        """
        if self._stale:
            self._rebuild()
        if self._inner is None:
            return {}
        raw = self._inner.step(t, batch)
        return {self._order[qi]: seqs for qi, seqs in raw.items()}

    def _rebuild(self) -> None:
        """Swap in a fresh detector, carrying the retained window over."""
        retained: List[Point] = []
        if self._inner is not None:
            retained = list(self._inner.buffer.points)
        if not self._queries:
            self._inner = None
            self._stale = False
            return
        group = QueryGroup([self._queries[h] for h in self._order])
        inner = SOPDetector(group, config=self.config)
        if retained:
            inner.buffer.extend(retained)
        self._inner = inner
        self._stale = False

    # -------------------------------------------------------------- metrics

    def memory_units(self) -> int:
        return self._inner.memory_units() if self._inner else 0

    def tracked_points(self) -> int:
        return self._inner.tracked_points() if self._inner else 0

    @property
    def plan(self):
        """The current shared skyband plan (None while empty/stale)."""
        if self._inner is None or self._stale:
            return None
        return self._inner.plan
