"""Outlier-status evaluation from LSky evidence (Secs. 3.2.2, 4.1, 5).

Once K-SKY has refreshed the skyband of a point ``p``, every member query's
verdict is a pure function of the skyband:

* **k-distance observation / inlier rule.**  Query ``q`` in sub-group
  ``k_j`` with layer ``m_q``: ``p`` is an inlier iff at least ``k_j``
  skyband entries have ``layer <= m_q`` *and* lie inside ``q``'s window.
  The window filter is exactly the generalization of **Lemma 3**: the
  entries within a window prefix are the youngest neighbors of ``p`` at
  each layer, so if fewer than ``k_j`` of them fall inside ``q``'s window,
  no excluded neighbor can make up the deficit (any excluded neighbor in
  the window implies >= k_max younger, at-least-as-close skyband entries in
  the window).
* **Safe inliers / safe-for-all.**  ``p`` is safe for ``(k_j, m)`` iff
  ``k_j`` *succeeding* entries (arrived after ``p``) have ``layer <= m`` --
  their neighbor relationships persist for ``p``'s whole remaining life,
  for every window size and slide (Sec. 4.1/4.2).  ``p`` is *fully safe*
  when this holds at each sub-group's smallest layer; fully safe points
  are excluded from all future evaluation and their skyband is dropped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .lsky import LSky
from .parser import SkybandPlan

__all__ = [
    "safe_min_layers",
    "is_fully_safe",
    "is_outlier_for_query",
    "outlier_query_indexes",
    "statuses_by_k_distance",
]


def safe_min_layers(
    plan: SkybandPlan, lsky: LSky, p_seq: int
) -> Dict[int, Optional[int]]:
    """Per sub-group ``k``: the smallest layer at which ``p`` is safe.

    Returns ``{k_j: m}`` where ``m`` is the minimal layer such that ``p``
    has ``k_j`` succeeding skyband neighbors with layer <= ``m`` (``None``
    if fewer than ``k_j`` succeeding neighbors exist at all).  ``p`` is then
    a safe inlier for every query ``(k_j, layer >= m)`` regardless of its
    window parameters.
    """
    succ = sorted(lsky.succ_layers(p_seq))
    return {
        k: (succ[k - 1] if len(succ) >= k else None) for k in plan.k_list
    }


def is_fully_safe(plan: SkybandPlan, safe_layers: Dict[int, Optional[int]]) -> bool:
    """True iff ``p`` is a safe inlier for *every* query in the workload.

    Sub-group ``Q_j`` is fully covered when the safe layer for ``k_j`` is at
    or below the sub-group's smallest member layer (its hardest query).
    """
    for sg in plan.subgroups:
        m = safe_layers.get(sg.k)
        if m is None or m > sg.min_layer:
            return False
    return True


def is_outlier_for_query(
    plan: SkybandPlan, lsky: LSky, query_idx: int, t: int
) -> bool:
    """Scalar verdict of one member query at boundary ``t``.

    The caller guarantees the evaluated point is inside the query's window.
    """
    q = plan.group[query_idx]
    m_q = plan.query_layers[query_idx]
    window_start, _ = q.window.interval_at(t)
    count = lsky.count_within(m_q, float(window_start), q.k)
    return count < q.k


def outlier_query_indexes(
    plan: SkybandPlan,
    lsky: LSky,
    p_pos: float,
    due: Sequence[int],
    t: int,
) -> List[int]:
    """Indexes of due queries that classify ``p`` as an outlier at ``t``.

    Skips queries whose window does not contain ``p`` (not in population).
    This is the scalar reference path; the SOP detector vectorizes the same
    computation across the population.
    """
    out: List[int] = []
    for qi in due:
        q = plan.group[qi]
        if not q.window.contains(p_pos, t):
            continue
        if is_outlier_for_query(plan, lsky, qi, t):
            out.append(qi)
    return out


def statuses_by_k_distance(
    plan: SkybandPlan, lsky: LSky, k: int
) -> List[bool]:
    """The raw *k-distance observation* of Sec. 3.1.1, for tests and docs.

    For sub-group ``k`` in the swift window (no window filtering): returns
    ``is_outlier`` per layer -- ``True`` for layers strictly below the
    k-distance layer, ``False`` at or above it.  With fewer than ``k``
    skyband points, ``p`` is an outlier everywhere.
    """
    kd = lsky.k_distance_layer(k)
    if kd is None:
        return [True] * plan.n_layers
    return [m < kd for m in range(plan.n_layers)]
