"""SOP query parser: from an outlier workload to one skyband plan.

This module implements the "query parser" box of the SOP framework
(Fig. 6, Sec. 5) plus the *normalized distance* of Def. 4:

* the workload's unique ``r`` values form the global layer grid
  (:class:`RGrid`); the normalized distance of a point is the index of the
  layer (bucket) it falls into;
* queries are partitioned into sub-groups by ``k`` (Sec. 3.2.1); each
  sub-group records its member queries and its smallest layer (used for the
  per-sub-group termination of Example 3 and the safe-for-all test);
* Def. 6 condition (3) is precomputed as ``allowed_layer[c]``: a point
  dominated by ``c`` points is a skyband point only if its layer does not
  exceed the largest layer of any sub-group with ``k_j > c``;
* the swift schedule (``win = max win``, ``slide = gcd of slides``,
  Sec. 4.3) is taken from the :class:`~repro.core.queries.QueryGroup`.

The resulting :class:`SkybandPlan` is immutable and shared by K-SKY, the
status evaluator, and the SOP detector.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence, Tuple

import numpy as np

from ..streams.windows import SwiftSchedule
from .queries import OutlierQuery, QueryGroup

__all__ = ["RGrid", "Subgroup", "SkybandPlan", "parse_workload"]


class RGrid:
    """The sorted unique ``r`` values of the workload, as distance layers.

    Layer ``m`` (0-based) holds points whose original distance ``d``
    satisfies ``grid[m-1] < d <= grid[m]`` -- exactly Def. 4 with the
    paper's 1-based ``m+1`` shifted to 0-based indexes.  ``layer_of``
    returns ``len(grid)`` (the :attr:`beyond` sentinel) for points farther
    than the largest ``r``; such points are neighbors of no query and are
    dropped by Def. 5 condition (3).
    """

    def __init__(self, r_values: Sequence[float]):
        grid = tuple(sorted({float(r) for r in r_values}))
        if not grid:
            raise ValueError("RGrid requires at least one r value")
        if grid[0] <= 0:
            raise ValueError("r values must be positive")
        self.values: Tuple[float, ...] = grid
        self._array = np.asarray(grid, dtype=np.float64)

    def __len__(self) -> int:
        return len(self.values)

    @property
    def beyond(self) -> int:
        """Sentinel layer index for distances beyond the largest ``r``."""
        return len(self.values)

    def layer_of(self, distance: float) -> int:
        """Normalized distance (0-based layer) of one original distance."""
        return bisect_left(self.values, distance)

    def layers_of(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized ``layer_of`` over an array of distances.

        Accepts arrays of any shape and preserves it -- in particular the
        2-D ``(evaluated points x candidates)`` distance matrices of the
        batched refresh engine are hashed to layers in this single call.
        Returns ``int64`` layer indexes (``beyond`` for distances past the
        largest ``r``).
        """
        return np.searchsorted(
            self._array, distances, side="left").astype(np.int64, copy=False)

    def layer_of_r(self, r: float) -> int:
        """Layer index of an exact workload ``r`` value."""
        m = bisect_left(self.values, r)
        if m >= len(self.values) or self.values[m] != r:
            raise ValueError(f"r={r!r} is not a workload r value")
        return m

    def radius_of_layer(self, m: int) -> float:
        """The ``r`` threshold bounding layer ``m`` from above."""
        return self.values[m]


class Subgroup:
    """One sub-group ``Q_j``: all member queries sharing ``k = k_j``."""

    def __init__(self, k: int, member_indexes: Sequence[int],
                 member_layers: Sequence[int]):
        if len(member_indexes) != len(member_layers):
            raise ValueError("member indexes and layers must align")
        self.k = k
        self.members: Tuple[int, ...] = tuple(member_indexes)
        #: layer of each member query's r, aligned with :attr:`members`
        self.member_layers: Tuple[int, ...] = tuple(member_layers)
        #: the smallest layer among member queries -- resolving this layer
        #: resolves the entire sub-group (Example 3's termination)
        self.min_layer: int = min(member_layers)
        #: the largest layer among member queries (Def. 6 condition 3)
        self.max_layer: int = max(member_layers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Subgroup(k={self.k}, members={len(self.members)}, "
            f"layers=[{self.min_layer}..{self.max_layer}])"
        )


class SkybandPlan:
    """Everything K-SKY and the evaluator need, derived once per workload."""

    def __init__(self, group: QueryGroup):
        self.group = group
        self.grid = RGrid(group.r_grid)
        self.n_layers = len(self.grid)
        self.swift: SwiftSchedule = group.swift
        self.kind = group.kind

        by_k = group.subgroups_by_k()
        self.subgroups: Tuple[Subgroup, ...] = tuple(
            Subgroup(
                k=k,
                member_indexes=members,
                member_layers=[self.grid.layer_of_r(group[i].r) for i in members],
            )
            for k, members in by_k.items()
        )
        self.k_list: Tuple[int, ...] = tuple(sg.k for sg in self.subgroups)
        self.k_max: int = self.k_list[-1]

        #: per-query layer of its ``r``, aligned with ``group.queries``
        self.query_layers: Tuple[int, ...] = tuple(
            self.grid.layer_of_r(q.r) for q in group.queries
        )
        #: per-query sub-group position (index into :attr:`subgroups`)
        k_pos = {sg.k: j for j, sg in enumerate(self.subgroups)}
        self.query_subgroup: Tuple[int, ...] = tuple(
            k_pos[q.k] for q in group.queries
        )

        self.allowed_layer: Tuple[int, ...] = self._build_allowed_layers()

        # vectorized views used by the detector's hot paths
        self.subgroup_ks = np.asarray([sg.k for sg in self.subgroups],
                                      dtype=np.int64)
        self.subgroup_min_layers = np.asarray(
            [sg.min_layer for sg in self.subgroups], dtype=np.int64)

    def _build_allowed_layers(self) -> Tuple[int, ...]:
        """Def. 6 condition (3) as a lookup by dominator count.

        ``allowed_layer[c]`` is the largest layer a point dominated by ``c``
        points may occupy while still being a skyband point: the maximum
        ``max_layer`` over sub-groups with ``k_j > c``.  For ``c >= k_max``
        the point is dominated for every query, which condition (2) already
        rejects, so the table only spans ``c in [0, k_max)``.
        """
        allowed = [0] * self.k_max
        # suffix maximum over subgroups ordered by ascending k
        suffix = -1
        j = len(self.subgroups) - 1
        for c in range(self.k_max - 1, -1, -1):
            while j >= 0 and self.subgroups[j].k > c:
                suffix = max(suffix, self.subgroups[j].max_layer)
                j -= 1
            allowed[c] = suffix
        return tuple(allowed)

    # ------------------------------------------------------------- utilities

    def layer_radius(self, m: int) -> float:
        """Upper ``r`` bound of layer ``m``."""
        return self.grid.radius_of_layer(m)

    def query(self, i: int) -> OutlierQuery:
        return self.group[i]

    def describe(self) -> str:
        """Human-readable plan summary (used by examples and reports)."""
        lines = [
            f"workload: {len(self.group)} queries, window kind={self.kind}",
            f"layers (unique r values): {self.n_layers}",
            f"k sub-groups: {list(self.k_list)} (k_max={self.k_max})",
            f"swift query: win={self.swift.win}, slide={self.swift.slide}",
        ]
        return "\n".join(lines)


def parse_workload(group: QueryGroup) -> SkybandPlan:
    """Parse a workload into its shared skyband plan (Fig. 6 query parser)."""
    return SkybandPlan(group)
