"""Stream point model and distance metrics.

A *data point* (Sec. 2 of the paper) is a multi-dimensional tuple drawn from
a data stream.  Every point carries:

* ``seq`` -- its arrival sequence number (0-based).  Count-based windows are
  expressed directly in ``seq`` units.
* ``time`` -- its arrival timestamp.  Time-based windows are expressed in
  ``time`` units.  For count-based streams ``time`` defaults to ``seq``.
* ``values`` -- the numeric attribute vector used by the distance function.

Arrival order is total: ``p_i.seq < p_j.seq`` iff ``p_i`` arrived strictly
before ``p_j``.  The paper's domination relationship (Def. 5) compares
arrival *time*; we compare ``seq`` so that simultaneous timestamps still
yield the strict order the proofs rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Sequence, Tuple

import numpy as np

__all__ = [
    "Point",
    "DistanceMetric",
    "euclidean",
    "manhattan",
    "chebyshev",
    "get_metric",
    "register_metric",
    "available_metrics",
]


@dataclass(frozen=True)
class Point:
    """A single stream tuple.

    Instances are immutable and hashable so they can be used as members of
    outlier result sets and as keys in per-point evidence maps.
    Identity for result comparison purposes is the arrival ``seq``.
    """

    seq: int
    values: Tuple[float, ...]
    time: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.time is None:
            object.__setattr__(self, "time", float(self.seq))
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(float(v) for v in self.values))
        if not self.values:
            raise ValueError("a point needs at least one attribute")
        for v in self.values:
            if not math.isfinite(v):
                raise ValueError(
                    f"point seq={self.seq} has non-finite attribute {v!r}; "
                    "distances would be undefined"
                )

    @property
    def dim(self) -> int:
        """Number of attributes of this point."""
        return len(self.values)

    def project(self, attributes: Sequence[int]) -> "Point":
        """Return a copy restricted to the given attribute indexes.

        Used by the multi-attribute divide-and-conquer extension
        (Fig. 10(b)): queries over different attribute sets are answered by
        projecting the stream onto each set.
        """
        return Point(
            seq=self.seq,
            values=tuple(self.values[a] for a in attributes),
            time=self.time,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{v:g}" for v in self.values)
        return f"Point(seq={self.seq}, t={self.time:g}, ({vals}))"


class DistanceMetric:
    """A named distance function with scalar and vectorized forms.

    ``scalar(a, b)`` computes the distance between two value tuples.
    ``to_block(q, block)`` computes distances from ``q`` (1-D array) to every
    row of ``block`` (2-D array) -- the kernel all detectors use so CPU
    comparisons are not skewed by uneven numpy usage.
    ``pairwise(queries, block)`` computes the full (queries x block) distance
    matrix in one call -- the batched-refresh kernel.  Its rows must be
    bit-identical to per-row ``to_block`` results (the batched and per-point
    detector paths are asserted output-equal), so the built-in kernels use
    the same elementwise arithmetic, not the dot-product expansion.
    """

    def __init__(
        self,
        name: str,
        scalar: Callable[[Sequence[float], Sequence[float]], float],
        to_block: Callable[[np.ndarray, np.ndarray], np.ndarray],
        pairwise: Callable[[np.ndarray, np.ndarray], np.ndarray] = None,
    ) -> None:
        self.name = name
        self._scalar = scalar
        self._to_block = to_block
        self._pairwise = pairwise

    def __call__(self, a: Sequence[float], b: Sequence[float]) -> float:
        return self._scalar(a, b)

    def between_points(self, a: Point, b: Point) -> float:
        """Distance between two :class:`Point` objects."""
        return self._scalar(a.values, b.values)

    def to_block(self, query: np.ndarray, block: np.ndarray) -> np.ndarray:
        """Vectorized distances from one query vector to a matrix of rows."""
        return self._to_block(query, block)

    def pairwise(self, queries: np.ndarray, block: np.ndarray) -> np.ndarray:
        """Distance matrix from every row of ``queries`` to every row of
        ``block`` -- shape ``(len(queries), len(block))``.

        Metrics registered without a dedicated pairwise kernel fall back to
        one ``to_block`` call per query row, which preserves bit-identical
        results at the cost of per-row kernel launches.
        """
        if self._pairwise is not None:
            return self._pairwise(queries, block)
        out = np.empty((queries.shape[0], block.shape[0]), dtype=np.float64)
        for i in range(queries.shape[0]):
            out[i] = self._to_block(queries[i], block)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceMetric({self.name!r})"


def _euclidean_scalar(a: Sequence[float], b: Sequence[float]) -> float:
    return math.sqrt(sum((x - y) * (x - y) for x, y in zip(a, b)))


def _euclidean_block(q: np.ndarray, block: np.ndarray) -> np.ndarray:
    diff = block - q
    return np.sqrt(np.einsum("ij,ij->i", diff, diff))


def _euclidean_pairwise(queries: np.ndarray, block: np.ndarray) -> np.ndarray:
    # broadcasting keeps the per-element arithmetic identical to
    # _euclidean_block (no |a|^2 + |b|^2 - 2ab expansion, which would
    # introduce cancellation and break batched-vs-per-point bit equality)
    diff = block[None, :, :] - queries[:, None, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def _manhattan_scalar(a: Sequence[float], b: Sequence[float]) -> float:
    return sum(abs(x - y) for x, y in zip(a, b))


def _manhattan_block(q: np.ndarray, block: np.ndarray) -> np.ndarray:
    return np.abs(block - q).sum(axis=1)


def _manhattan_pairwise(queries: np.ndarray, block: np.ndarray) -> np.ndarray:
    return np.abs(block[None, :, :] - queries[:, None, :]).sum(axis=2)


def _chebyshev_scalar(a: Sequence[float], b: Sequence[float]) -> float:
    return max((abs(x - y) for x, y in zip(a, b)), default=0.0)


def _chebyshev_block(q: np.ndarray, block: np.ndarray) -> np.ndarray:
    return np.abs(block - q).max(axis=1)


def _chebyshev_pairwise(queries: np.ndarray, block: np.ndarray) -> np.ndarray:
    return np.abs(block[None, :, :] - queries[:, None, :]).max(axis=2)


euclidean = DistanceMetric("euclidean", _euclidean_scalar, _euclidean_block,
                           _euclidean_pairwise)
manhattan = DistanceMetric("manhattan", _manhattan_scalar, _manhattan_block,
                           _manhattan_pairwise)
chebyshev = DistanceMetric("chebyshev", _chebyshev_scalar, _chebyshev_block,
                           _chebyshev_pairwise)

_METRICS: Dict[str, DistanceMetric] = {
    "euclidean": euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
}


def register_metric(metric: DistanceMetric) -> None:
    """Register a custom metric so queries can reference it by name."""
    if not isinstance(metric, DistanceMetric):
        raise TypeError("register_metric expects a DistanceMetric")
    _METRICS[metric.name] = metric


def get_metric(name_or_metric) -> DistanceMetric:
    """Resolve a metric by name (or pass a :class:`DistanceMetric` through)."""
    if isinstance(name_or_metric, DistanceMetric):
        return name_or_metric
    try:
        return _METRICS[name_or_metric]
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise KeyError(
            f"unknown distance metric {name_or_metric!r}; known metrics: {known}"
        ) from None


def available_metrics() -> Tuple[str, ...]:
    """Names of all registered metrics."""
    return tuple(sorted(_METRICS))


def points_from_array(
    array: Iterable[Sequence[float]],
    times: Iterable[float] = None,
    start_seq: int = 0,
) -> Tuple[Point, ...]:
    """Build a tuple of points from an iterable of value rows.

    ``times`` optionally assigns arrival timestamps; it must be
    non-decreasing.  This is the main adapter for feeding numpy arrays or
    plain lists into the detectors.
    """
    rows = [tuple(float(v) for v in row) for row in array]
    if times is None:
        return tuple(
            Point(seq=start_seq + i, values=row) for i, row in enumerate(rows)
        )
    tlist = [float(t) for t in times]
    if len(tlist) != len(rows):
        raise ValueError(
            f"times has {len(tlist)} entries but array has {len(rows)} rows"
        )
    for earlier, later in zip(tlist, tlist[1:]):
        if later < earlier:
            raise ValueError("times must be non-decreasing")
    return tuple(
        Point(seq=start_seq + i, values=row, time=t)
        for i, (row, t) in enumerate(zip(rows, tlist))
    )
