"""repro.engine: the staged detector runtime.

The paper's SOP execution model is a *pipeline* per swift boundary --
ingest -> expire -> K-SKY refresh -> safe-inlier pruning -> due-query
evaluation (Alg. 3, Sec. 4.3/5).  This package makes that pipeline an
explicit architecture instead of an implementation detail of one class:

* :class:`DetectorConfig` -- one immutable record of every ablation switch
  and tuning knob, flowing uniformly through the API, the CLI, dynamic
  workload rebuilds, and checkpoint save/restore;
* :class:`StreamExecutor` -- the single drive loop.  It pushes
  boundary-aligned batches through any detector and fires lifecycle hooks
  (``on_ingest`` / ``on_expire`` / ``on_refresh`` / ``on_evaluate`` /
  ``on_boundary_end``) that metering, checkpointing, and alert routing
  subscribe to instead of re-implementing their own loops;
* :class:`RefreshEngine` -- the strategy interface for the K-SKY refresh
  stage, with :class:`PerPointRefresh` (one distance kernel per evaluated
  point, the paper's literal Alg. 3 loop), :class:`BatchedRefresh` (one
  pairwise kernel per boundary chunk), :class:`GridPrunedRefresh`
  (batched kernels restricted to grid-cell candidate neighborhoods), and
  :class:`AutoRefresh` (measured batched-vs-grid crossover)
  implementations; batched scans route through
  :class:`VectorizedSkybandEngine` when ``skyband_impl="soa"``;
* :class:`SafetyTracker` -- the safe-for-all test (Sec. 4.1/4.2) as a
  separable component;
* :class:`DueQueryEvaluator` -- the vectorized due-query classification
  (inlier rule + Lemma 3) with its generation-keyed flatten cache.

Every strategy and subscriber combination preserves output equality; the
layers only organize *where* work happens (``docs/architecture.md`` maps
each layer back to the paper).
"""

from .config import DetectorConfig
from .evaluator import DueQueryEvaluator
from .executor import ExecutorSubscriber, NULL_HOOKS, StreamExecutor
from .refresh import (
    AutoRefresh,
    BatchedRefresh,
    GridPrunedRefresh,
    PerPointRefresh,
    RefreshEngine,
    VectorizedSkybandEngine,
)
from .safety import SafetyTracker

__all__ = [
    "AutoRefresh",
    "BatchedRefresh",
    "DetectorConfig",
    "DueQueryEvaluator",
    "ExecutorSubscriber",
    "GridPrunedRefresh",
    "NULL_HOOKS",
    "PerPointRefresh",
    "RefreshEngine",
    "SafetyTracker",
    "StreamExecutor",
    "VectorizedSkybandEngine",
]
