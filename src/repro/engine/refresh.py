"""Refresh strategies: how the K-SKY refresh stage launches its scans.

Every swift boundary, each live non-fully-safe point refreshes its skyband
(Alg. 3 loop): new points scan the window from scratch, surviving points
scan only the new arrivals plus their unexpired previous skyband (least
examination, Alg. 1 / Lemma 2).  *What* is scanned is fixed by the paper;
*how* the scans are launched is a strategy:

* :class:`PerPointRefresh` -- one vectorized distance kernel per evaluated
  point (the paper's literal per-point loop; also the fallback for tiny
  batches);
* :class:`BatchedRefresh` -- the surviving points of one boundary all scan
  the same candidate range, so their evidence is one ``(rows x candidates)``
  matrix computed with a single pairwise kernel per chunk
  (``KSkyRunner.scan_batched``); scan order, chunk boundaries, and
  termination cadence replicate the per-point path exactly, so outputs and
  work accounting are identical (``tests/test_sop_batched.py`` is the
  gate).

The strategy owns the shared partition step (scratch vs. survivors, from
``_PointState.last_seen_seq``) and the per-boundary profile sample; the
detector keeps evidence commitment (:meth:`SOPDetector._commit_scratch` /
``_commit_survivor``) because committing touches safety state and the
mutation generation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

__all__ = ["RefreshEngine", "PerPointRefresh", "BatchedRefresh"]


class RefreshEngine:
    """Strategy interface for the refresh stage of one boundary.

    :meth:`refresh` partitions the live population and dispatches the two
    scan families to the subclass; subclass scan methods return how many
    rows went through a batched kernel (for the refresh profile).
    """

    #: short strategy name, surfaced in reprs and reports
    name = "refresh"

    def refresh(self, det, window_start: float) -> None:
        """Run K-SKY for every live, non-fully-safe point of ``det``."""
        buf = det.buffer
        pts = buf.points
        if not pts:
            return
        t0 = time.perf_counter_ns()
        kernels0 = buf.kernel_calls
        examined0 = det.stats["points_examined"]

        newest_seq = pts[-1].seq
        n_live = len(pts)
        states = det._states
        #: from-scratch scans, as (live index, point, state-or-None)
        scratch: List[Tuple[int, object, object]] = []
        #: new_from index -> [(live index, point, state), ...]
        survivors: Dict[int, List[Tuple[int, object, object]]] = {}
        for idx, p in enumerate(pts):
            st = states.get(p.seq)
            if st is not None and st.fully_safe:
                continue
            if st is None or not det.use_least_examination:
                scratch.append((idx, p, st))
            else:
                # live index of the first arrival this survivor has not
                # scanned yet; searchsorted, not base-offset arithmetic,
                # because shard streams skip sequence numbers
                new_from = buf.first_index_at_or_after_seq(
                    st.last_seen_seq + 1)
                survivors.setdefault(new_from, []).append((idx, p, st))

        batch_rows = self._scan_scratch(det, scratch, newest_seq)
        for new_from, group in survivors.items():
            batch_rows += self._scan_survivors(
                det, new_from, group, window_start, n_live, newest_seq)

        det.profile.record(
            time.perf_counter_ns() - t0,
            buf.kernel_calls - kernels0,
            batch_rows,
            det.stats["points_examined"] - examined0,
        )

    # ------------------------------------------------------------ interface

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        """Scan the from-scratch rows; returns rows batched."""
        raise NotImplementedError

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        """Scan one survivor group (shared first-unseen index)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PerPointRefresh(RefreshEngine):
    """One distance kernel per evaluated point (the pre-batching engine)."""

    name = "per-point"

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        for _, p, st in scratch:
            result = det.runner.run_new_point(p.values, p.seq, det.buffer)
            det._commit_scratch(p, st, result, newest_seq)
        return 0

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        for _, p, st in group:
            scan = det.runner.scan_new_arrivals(p.values, p.seq, det.buffer,
                                                new_from)
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return 0


class BatchedRefresh(PerPointRefresh):
    """Shared pairwise kernels past a crossover; per-point below it.

    ``batch_min_rows`` is the crossover heuristic: groups smaller than it
    run through the inherited per-point path, where one kernel launch
    amortizes nothing over so few rows.
    """

    name = "batched"

    def __init__(self, batch_min_rows: int = 8):
        self.batch_min_rows = max(1, batch_min_rows)

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        if len(scratch) < self.batch_min_rows:
            return super()._scan_scratch(det, scratch, newest_seq)
        det.stats["batched_scans"] += len(scratch)
        results = det.runner.scan_batched(
            [idx for idx, _, _ in scratch],
            [p.seq for _, p, _ in scratch], det.buffer, 0)
        for (_, p, st), result in zip(scratch, results):
            det._commit_scratch(p, st, result, newest_seq)
        return len(scratch)

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        if n_live <= new_from or len(group) < self.batch_min_rows:
            return super()._scan_survivors(det, new_from, group,
                                           window_start, n_live, newest_seq)
        det.stats["batched_scans"] += len(group)
        results = det.runner.scan_batched(
            [idx for idx, _, _ in group],
            [p.seq for _, p, _ in group], det.buffer, new_from)
        for (_, p, st), scan in zip(group, results):
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedRefresh(batch_min_rows={self.batch_min_rows})"
