"""Refresh strategies: how the K-SKY refresh stage launches its scans.

Every swift boundary, each live non-fully-safe point refreshes its skyband
(Alg. 3 loop): new points scan the window from scratch, surviving points
scan only the new arrivals plus their unexpired previous skyband (least
examination, Alg. 1 / Lemma 2).  *What* is scanned is fixed by the paper;
*how* the scans are launched is a strategy:

* :class:`PerPointRefresh` -- one vectorized distance kernel per evaluated
  point (the paper's literal per-point loop; also the fallback for tiny
  batches);
* :class:`BatchedRefresh` -- the surviving points of one boundary all scan
  the same candidate range, so their evidence is one ``(rows x candidates)``
  matrix computed with a single pairwise kernel per chunk
  (``KSkyRunner.scan_batched``); scan order, chunk boundaries, and
  termination cadence replicate the per-point path exactly, so outputs and
  work accounting are identical (``tests/test_sop_batched.py`` is the
  gate);
* :class:`GridPrunedRefresh` -- batched scans, but each evaluated point's
  pairwise kernels see only the candidates in grid cells intersecting its
  ``r_max`` ball (:class:`~repro.index.GridCandidateIndex`).  Every pruned
  candidate is farther than ``r_max``, i.e. exactly a candidate
  ``layers_of`` would map past ``n_layers`` and the scan would discard
  without touching any state (Def. 5 condition 3), so outputs, LSky
  contents and termination points stay bit-identical while the kernel
  shrinks from O(rows x window) to O(rows x neighborhood)
  (``tests/test_sop_grid.py`` is the gate).

The strategy owns the shared partition step (scratch vs. survivors, from
``_PointState.last_seen_seq``) and the per-boundary profile sample; the
detector keeps evidence commitment (:meth:`SOPDetector._commit_scratch` /
``_commit_survivor``) because committing touches safety state and the
mutation generation.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ksky import KSkyResult, _Resolution
from ..core.lsky_soa import (
    LSkySoA,
    insert_limits,
    numba_active,
    resolve_chunk_inserts,
    resolve_chunk_inserts_numba,
)
from ..index import GridCandidateIndex

__all__ = ["RefreshEngine", "PerPointRefresh", "BatchedRefresh",
           "GridPrunedRefresh", "AutoRefresh", "VectorizedSkybandEngine"]


def _scan_rows(det, row_indexes, p_seqs, lo, cand_idx=None):
    """Dispatch one batched scan group to the detector's skyband backend.

    ``skyband_impl=soa`` detectors carry a :class:`VectorizedSkybandEngine`
    (``det.skyband_engine``); everything else runs the object-path
    ``KSkyRunner.scan_batched``.  Both are bit-exact for outputs, LSky
    contents and ``examined`` -- the equivalence suite drives them in
    lockstep -- so refresh strategies can route here without caring.
    """
    eng = getattr(det, "skyband_engine", None)
    if eng is not None:
        return eng.scan_batched(row_indexes, p_seqs, det.buffer, lo,
                                cand_idx=cand_idx)
    return det.runner.scan_batched(row_indexes, p_seqs, det.buffer, lo,
                                   cand_idx=cand_idx)


class RefreshEngine:
    """Strategy interface for the refresh stage of one boundary.

    :meth:`refresh` partitions the live population and dispatches the two
    scan families to the subclass; subclass scan methods return how many
    rows went through a batched kernel (for the refresh profile).
    """

    #: short strategy name, surfaced in reprs and reports
    name = "refresh"

    def refresh(self, det, window_start: float) -> None:
        """Run K-SKY for every live, non-fully-safe point of ``det``."""
        buf = det.buffer
        pts = buf.points
        if not pts:
            return
        t0 = time.perf_counter_ns()
        kernels0 = buf.kernel_calls
        examined0 = det.stats["points_examined"]
        soa_eng = getattr(det, "skyband_engine", None)
        if soa_eng is not None:
            py0, soa0 = soa_eng.py_iters, soa_eng.soa_rows

        newest_seq = pts[-1].seq
        n_live = len(pts)
        states = det._states
        # first tier: the prefilter's certainly-inlier mask (None when
        # there is no screen or it sits this boundary out).  Its anchor
        # kernels run inside the timed region with kernels0 already
        # snapshotted, so the screen's own cost lands in this boundary's
        # refresh_ns / kernel_launches sample -- honest accounting.
        screen = getattr(det, "prefilter", None)
        prune = None
        if screen is not None:
            prune = screen.prune_mask(det)
            if prune is not None:
                prune = prune.tolist()
        pf_screened = pf_pruned = 0
        #: from-scratch scans, as (live index, point, state-or-None)
        scratch: List[Tuple[int, object, object]] = []
        #: new_from index -> [(live index, point, state), ...]
        survivors: Dict[int, List[Tuple[int, object, object]]] = {}
        for idx, p in enumerate(pts):
            st = states.get(p.seq)
            if st is not None and st.fully_safe:
                continue
            if prune is not None:
                pf_screened += 1
                if prune[idx]:
                    # suspect-mask short-circuit: certified points commit
                    # straight to the fully-safe state the skipped scan
                    # would have produced (exact mode; fast mode accepts
                    # the screen's statistical evidence here)
                    pf_pruned += 1
                    det._mark_prefilter_safe(p.seq, newest_seq)
                    continue
            if st is None or not det.use_least_examination:
                scratch.append((idx, p, st))
            else:
                # live index of the first arrival this survivor has not
                # scanned yet; searchsorted, not base-offset arithmetic,
                # because shard streams skip sequence numbers
                new_from = buf.first_index_at_or_after_seq(
                    st.last_seen_seq + 1)
                survivors.setdefault(new_from, []).append((idx, p, st))
        if screen is not None:
            screen.observe(pf_screened, pf_pruned)

        batch_rows = self._scan_scratch(det, scratch, newest_seq)
        for new_from, group in survivors.items():
            batch_rows += self._scan_survivors(
                det, new_from, group, window_start, n_live, newest_seq)

        pruned, cells_visited = self._take_prune_stats()
        # ``python_insert_iters``: on the object path this is the logical
        # candidate count (== examined delta; one interpreted iteration per
        # candidate).  The SoA engine resolves candidates with array passes,
        # so there it reports the *actual* interpreted iterations (resolve
        # replays + fallback visits) -- the measured interpreter-work drop.
        if soa_eng is not None:
            py_iters = soa_eng.py_iters - py0
            soa_rows = soa_eng.soa_rows - soa0
        else:
            py_iters = det.stats["points_examined"] - examined0
            soa_rows = 0
        det.profile.record(
            time.perf_counter_ns() - t0,
            buf.kernel_calls - kernels0,
            batch_rows,
            py_iters,
            pruned,
            cells_visited,
            soa_insert_rows=soa_rows,
            prefilter_screened=pf_screened,
            prefilter_suspects=pf_screened - pf_pruned,
            prefilter_pruned=pf_pruned,
        )

    # ------------------------------------------------------------ interface

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        """Scan the from-scratch rows; returns rows batched."""
        raise NotImplementedError

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        """Scan one survivor group (shared first-unseen index)."""
        raise NotImplementedError

    def _take_prune_stats(self) -> Tuple[int, int]:
        """(candidates_pruned, cells_visited) since last taken; resets."""
        return 0, 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PerPointRefresh(RefreshEngine):
    """One distance kernel per evaluated point (the paper's literal loop).

    Like the batched strategies, the scans route through the detector's
    skyband backend: SoA detectors run ``VectorizedSkybandEngine``'s
    per-point family natively on canonical SoA state (so
    ``python_insert_iters``/``soa_insert_rows`` are counted by the engine
    itself, consistently with the batched paths), object detectors run the
    ``KSkyRunner`` oracle.
    """

    name = "per-point"

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        eng = getattr(det, "skyband_engine", None)
        runner = det.runner if eng is None else eng
        for _, p, st in scratch:
            result = runner.run_new_point(p.values, p.seq, det.buffer)
            det._commit_scratch(p, st, result, newest_seq)
        return 0

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        eng = getattr(det, "skyband_engine", None)
        runner = det.runner if eng is None else eng
        for _, p, st in group:
            scan = runner.scan_new_arrivals(p.values, p.seq, det.buffer,
                                            new_from)
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return 0


class BatchedRefresh(PerPointRefresh):
    """Shared pairwise kernels past a crossover; per-point below it.

    ``batch_min_rows`` is the crossover heuristic: groups smaller than it
    run through the inherited per-point path, where one kernel launch
    amortizes nothing over so few rows.
    """

    name = "batched"

    def __init__(self, batch_min_rows: int = 8):
        self.batch_min_rows = max(1, batch_min_rows)

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        if len(scratch) < self.batch_min_rows:
            return super()._scan_scratch(det, scratch, newest_seq)
        det.stats["batched_scans"] += len(scratch)
        results = _scan_rows(
            det, [idx for idx, _, _ in scratch],
            [p.seq for _, p, _ in scratch], 0)
        for (_, p, st), result in zip(scratch, results):
            det._commit_scratch(p, st, result, newest_seq)
        return len(scratch)

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        if n_live <= new_from or len(group) < self.batch_min_rows:
            return super()._scan_survivors(det, new_from, group,
                                           window_start, n_live, newest_seq)
        det.stats["batched_scans"] += len(group)
        results = _scan_rows(
            det, [idx for idx, _, _ in group],
            [p.seq for _, p, _ in group], new_from)
        for (_, p, st), scan in zip(group, results):
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedRefresh(batch_min_rows={self.batch_min_rows})"


class GridPrunedRefresh(BatchedRefresh):
    """Batched refresh with grid-cell candidate pruning.

    Maintains a :class:`~repro.index.GridCandidateIndex` over the
    detector's window buffer (cell size = the plan's largest radius
    ``r_max``, synced incrementally each use) and, past the batching
    crossover, feeds ``KSkyRunner.scan_batched`` the per-point candidate
    subset instead of the whole scan range.  Evaluated points binned to
    the same grid cell share one candidate array and one kernel group;
    tiny neighbouring groups are merged up to ``_MERGE_MIN_ROWS`` rows
    (their candidate union stays exact, see ``_merge_small_groups``).

    Exactness: a candidate outside the neighborhood is farther than
    ``r_max`` on some axis, hence farther than ``r_max`` under any
    registered metric, hence ``layers_of`` maps it past ``n_layers`` and
    the unpruned scan discards it without mutating scan state.  The
    subset scan keeps chunk boundaries and resolution cadence anchored in
    buffer-index space, so insert decisions, termination points, LSky
    contents, outputs and ``points_examined`` are bit-identical to
    :class:`BatchedRefresh`; only ``distance_rows``/``kernel_calls``
    shrink (that is the measured win, see
    ``benchmarks/bench_grid_refresh.py``).

    Below the crossover the inherited per-point fallback runs unpruned --
    tiny batches cannot amortize the neighborhood assembly.
    """

    name = "grid"

    #: merge tiny per-cell groups (in sorted-cell order, so spatially
    #: adjacent cells merge first) until each scan carries at least this
    #: many rows.  The per-scan and per-chunk fixed costs then amortize;
    #: the price is a slightly larger candidate union, and the extra
    #: columns are beyond ``r_max`` for the rows of the *other* cells, so
    #: the scan discards them without state change -- the same exactness
    #: argument as the pruning itself.
    _MERGE_MIN_ROWS = 24

    def __init__(self, batch_min_rows: int = 8):
        super().__init__(batch_min_rows)
        self._grid: Optional[GridCandidateIndex] = None
        self._r_max = 0.0
        self._pruned = 0
        self._cells_seen = 0

    def _ensure_grid(self, det) -> GridCandidateIndex:
        """The detector's candidate grid, synced to its buffer."""
        grid = self._grid
        if grid is None:
            # one cell per r_max: the neighborhood is then the 3^dim
            # Moore neighborhood, the standard grid-pruning cell choice
            self._r_max = float(det.plan.grid.values[-1])
            grid = self._grid = GridCandidateIndex(self._r_max)
            self._cells_seen = 0
        grid.sync(det.buffer)
        return grid

    def _take_prune_stats(self) -> Tuple[int, int]:
        pruned, self._pruned = self._pruned, 0
        cells = 0
        if self._grid is not None:
            cells = self._grid.cells_visited - self._cells_seen
            self._cells_seen = self._grid.cells_visited
        return pruned, cells

    def _cell_groups(self, det, rows: List[int]
                     ) -> List[Tuple[np.ndarray, List[int]]]:
        """(candidate array, member positions) per unique query cell."""
        grid = self._ensure_grid(det)
        mat = det.buffer.matrix()
        q_rows = np.asarray(rows, dtype=np.intp)
        arrays, assign = grid.candidates_within(mat[q_rows], self._r_max)
        members: Dict[int, List[int]] = {}
        for i, g in enumerate(assign.tolist()):
            members.setdefault(g, []).append(i)
        groups = [(arrays[g], members[g]) for g in sorted(members)]
        return self._merge_small_groups(groups)

    @classmethod
    def _merge_small_groups(cls, groups):
        """Coalesce consecutive sub-``_MERGE_MIN_ROWS`` cell groups."""
        if len(groups) <= 1:
            return groups
        merged = []
        acc_arrays: List[np.ndarray] = []
        acc_idxs: List[int] = []
        for cand, idxs in groups:
            acc_arrays.append(cand)
            acc_idxs.extend(idxs)
            if len(acc_idxs) >= cls._MERGE_MIN_ROWS:
                merged.append((cls._union(acc_arrays), acc_idxs))
                acc_arrays, acc_idxs = [], []
        if acc_idxs:
            merged.append((cls._union(acc_arrays), acc_idxs))
        return merged

    @staticmethod
    def _union(arrays: List[np.ndarray]) -> np.ndarray:
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        if len(scratch) < self.batch_min_rows:
            return super()._scan_scratch(det, scratch, newest_seq)
        det.stats["batched_scans"] += len(scratch)
        hi = len(det.buffer)
        groups = self._cell_groups(det, [idx for idx, _, _ in scratch])
        for cand, idxs in groups:
            self._pruned += (hi - len(cand)) * len(idxs)
            results = _scan_rows(
                det, [scratch[i][0] for i in idxs],
                [scratch[i][1].seq for i in idxs], 0, cand_idx=cand)
            for i, result in zip(idxs, results):
                _, p, st = scratch[i]
                det._commit_scratch(p, st, result, newest_seq)
        return len(scratch)

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        if n_live <= new_from or len(group) < self.batch_min_rows:
            return super()._scan_survivors(det, new_from, group,
                                           window_start, n_live, newest_seq)
        det.stats["batched_scans"] += len(group)
        span = n_live - new_from
        groups = self._cell_groups(det, [idx for idx, _, _ in group])
        for cand, idxs in groups:
            # least examination: only the arrivals this survivor group has
            # not scanned yet are candidates
            c_lo = int(np.searchsorted(cand, new_from, side="left"))
            cand = cand[c_lo:]
            self._pruned += (span - len(cand)) * len(idxs)
            results = _scan_rows(
                det, [group[i][0] for i in idxs],
                [group[i][1].seq for i in idxs], new_from, cand_idx=cand)
            for i, scan in zip(idxs, results):
                _, p, st = group[i]
                det._commit_survivor(p, st, scan, window_start, newest_seq)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridPrunedRefresh(batch_min_rows={self.batch_min_rows})"


class AutoRefresh(RefreshEngine):
    """Measured engine crossover (``refresh_strategy="auto"``).

    ``BENCH_grid.json`` showed the grid engine *regressing* at r=200 on
    small/mid windows (0.75-0.90x): the neighborhood assembly there costs
    more than the pruned kernel volume saves.  Static heuristics over
    (window, r) proved brittle, so auto measures instead: it starts on the
    batched engine, probes the regime's alternative for a few boundaries,
    and settles on whichever engine's measured ns-per-scanned-row is
    lower, re-probing periodically in case the regime drifts.  All
    engines are bit-exact for outputs (the lockstep suites gate that), so
    the choice only moves wall time -- never results.

    Two regimes, split at ``_MIN_WINDOW`` live points:

    * **large** -- batched vs. grid, as before.  Grid eligibility
      additionally requires the probe to show real pruning work
      (``candidates_pruned / batch_rows`` from the existing
      :class:`~repro.metrics.profiling.RefreshProfile` counters): a probe
      that pruned next to nothing can still come out ahead on noise, and
      the recorded r=200 regressions are exactly the regime where pruning
      volume per row is low relative to window size.
    * **small** -- batched vs. per-point.  Grid is never probed there (no
      recorded win under ~8k windows); instead small windows probe
      :class:`PerPointRefresh`.  Unlike the large regime, the small-regime
      *choice* is counter-only: per-point is eligible exactly when the
      batched probe shows the batch tier achieving no amortization --
      fewer than ``_PP_MAX_ROWS_PER_LAUNCH`` evaluated rows per kernel
      launch (``batch_rows / kernel_launches`` deltas on a batched
      boundary).  Below one row per launch every launch is a fallback
      scan per-point would have issued anyway, plus partition
      bookkeeping, so per-point is chosen deterministically; otherwise
      batched stays.  Measured ns-per-row is still recorded in the
      decision evidence, but it never drives the small-regime choice:
      the default config routes small windows through auto, and the
      equivalence suites compare deterministic work counters across
      independent runs -- a wall-clock-driven choice between
      counter-different engines would make those counters flap with
      ambient load.

    Costs are tracked per regime (a ns-per-row measured at 2k live points
    says nothing about 100k), and a regime shift sanitizes stale state:
    queued probes for the other regime are dropped and a choice that is
    not eligible in the new regime falls back to batched until the new
    regime's probe decides otherwise.  Every decision appends its
    evidence to :attr:`decisions`.
    """

    name = "auto"

    #: boundaries on the batched engine before any probe (cold caches)
    _WARMUP = 2
    #: boundaries per probe of a non-chosen engine
    _PROBE = 2
    #: settled boundaries between re-probes of the other engine
    _REPROBE = 64
    #: regime split: below this live-window size the alternative engine
    #: is per-point, at or above it the alternative is grid
    _MIN_WINDOW = 4096
    #: minimum pruned candidates per scanned row for grid to be eligible
    _MIN_PRUNE_PER_ROW = 64.0
    #: batched rows per kernel launch below which per-point is eligible
    #: (the batch tier is pure overhead: no launch amortizes anything)
    _PP_MAX_ROWS_PER_LAUNCH = 1.0
    #: EMA weight of the newest cost sample
    _ALPHA = 0.5

    def __init__(self, batch_min_rows: int = 8):
        self.batch_min_rows = max(1, batch_min_rows)
        self._engines: Dict[str, RefreshEngine] = {
            "batched": BatchedRefresh(self.batch_min_rows),
            "grid": GridPrunedRefresh(self.batch_min_rows),
            "per-point": PerPointRefresh(),
        }
        self._chosen = "batched"
        self._boundary = 0
        self._settled = 0
        self._small = False
        self._probe_queue: List[str] = []
        #: EMA ns-per-row, keyed "small:<engine>" / "large:<engine>"
        self._cost: Dict[str, float] = {}
        self._grid_eligible = False
        self._pp_eligible = False
        #: (boundary, chosen, evidence) per decision -- observability
        self.decisions: List[Tuple[int, str, Dict[str, object]]] = []

    def refresh(self, det, window_start: float) -> None:
        name = self._pick(det)
        engine = self._engines[name]
        runs0 = det.stats["ksky_runs"]
        pruned0 = det.profile.candidates_pruned
        rows0 = det.profile.batch_rows
        launches0 = det.profile.kernel_launches
        t0 = time.perf_counter_ns()
        engine.refresh(det, window_start)
        self._observe(
            name,
            time.perf_counter_ns() - t0,
            det.stats["ksky_runs"] - runs0,
            det.profile.candidates_pruned - pruned0,
            det.profile.batch_rows - rows0,
            det.profile.kernel_launches - launches0,
        )
        self._boundary += 1

    # ------------------------------------------------------------- decisions

    def _key(self, name: str) -> str:
        return f"{'small' if self._small else 'large'}:{name}"

    def _pick(self, det) -> str:
        small = len(det.buffer) < self._MIN_WINDOW
        if small != self._small:
            # regime shift: probes queued for the other regime are stale,
            # and the settled choice may not even be eligible here
            self._small = small
            self._probe_queue = []
            if self._chosen == ("grid" if small else "per-point"):
                self._chosen = "batched"
            self._settled = 0
        if self._boundary < self._WARMUP:
            return "batched"
        if self._probe_queue:
            return self._probe_queue[0]
        other = "per-point" if small else "grid"
        if self._key(other) not in self._cost:
            self._probe_queue = [other] * self._PROBE
            return other
        self._settled += 1
        if self._settled >= self._REPROBE:
            self._settled = 0
            alt = "batched" if self._chosen != "batched" else other
            eligible = (alt == "batched"
                        or (alt == "grid" and self._grid_eligible)
                        or (alt == "per-point" and self._pp_eligible))
            if eligible:
                self._probe_queue = [alt] * self._PROBE
                return alt
        return self._chosen

    def _observe(self, name: str, ns: int, rows: int, pruned: int,
                 batch_rows: int = 0, launches: int = 0) -> None:
        if rows > 0:
            cost = ns / rows
            key = self._key(name)
            prev = self._cost.get(key)
            self._cost[key] = (cost if prev is None
                               else (1 - self._ALPHA) * prev
                               + self._ALPHA * cost)
            if name == "grid":
                self._grid_eligible = (
                    pruned / rows >= self._MIN_PRUNE_PER_ROW)
            elif name == "batched" and self._small:
                self._pp_eligible = (
                    batch_rows / max(1, launches)
                    < self._PP_MAX_ROWS_PER_LAUNCH)
        if self._probe_queue and self._probe_queue[0] == name:
            self._probe_queue.pop(0)
            if not self._probe_queue:
                self._decide()

    def _decide(self) -> None:
        b = self._cost.get(self._key("batched"))
        other = "per-point" if self._small else "grid"
        o = self._cost.get(self._key(other))
        if self._small:
            # counter-only: the measured costs below are evidence, not
            # input -- see the class docstring on determinism
            choice = "per-point" if self._pp_eligible else "batched"
        else:
            choice = (other if o is not None and b is not None
                      and self._grid_eligible and o < b else "batched")
        self._chosen = choice
        self._settled = 0
        evidence: Dict[str, object] = {
            "regime": "small" if self._small else "large",
            f"{other.replace('-', '_')}_ns_per_row": o,
            "batched_ns_per_row": b,
        }
        if self._small:
            evidence["per_point_eligible"] = self._pp_eligible
        else:
            evidence["grid_eligible"] = self._grid_eligible
        self.decisions.append((self._boundary, choice, evidence))

    def _take_prune_stats(self) -> Tuple[int, int]:  # pragma: no cover
        # never called: refresh() delegates wholesale to the sub-engines,
        # which record their own profile samples (prune stats included)
        return 0, 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AutoRefresh(chosen={self._chosen!r}, "
                f"batch_min_rows={self.batch_min_rows})")


# ----------------------------------------------------- vectorized SoA backend


class _SoaRow:
    """Per-evaluated-point scan state for :class:`VectorizedSkybandEngine`.

    Entries accumulate as bulk array segments (one per contributing
    chunk); the sorted layer multiset and per-layer counts are maintained
    incrementally so ``_Resolution`` sees exactly the state the object
    path would give it (its ``on_insert``/``check`` duck-type against
    ``_sorted_layers``/``dominator_count``).
    """

    __slots__ = ("resolution", "_sorted_layers", "counts",
                 "segs_s", "segs_p", "segs_l", "n", "thresh")

    def __init__(self, resolution: _Resolution, n_layers: int):
        self.resolution = resolution
        self._sorted_layers: List[int] = []
        self.counts = [0] * n_layers
        self.segs_s: List = []
        self.segs_p: List = []
        self.segs_l: List = []
        self.n = 0
        #: cached per-chunk insert threshold (k_max-th smallest layer)
        self.thresh = n_layers

    def dominator_count(self, layer: int) -> int:
        return bisect_right(self._sorted_layers, layer)

    def finalize(self, n_layers: int) -> LSkySoA:
        # segments may be numpy arrays (vectorized chunks) or plain lists
        # (the int fast paths); eager adoption is the right trade because
        # every result is consumed exactly once by the evidence commit
        if not self.segs_s:
            return LSkySoA(n_layers)
        return LSkySoA.from_segments(n_layers, self.segs_s, self.segs_p,
                                     self.segs_l)


class VectorizedSkybandEngine:
    """``KSkyRunner.scan_batched``, rebuilt over the SoA skyband tier.

    The contract is bit-exactness with the object path: same chunk
    boundaries (anchored at the buffer top), same insert decisions, same
    termination candidates, same ``examined`` arithmetic, same
    ``distance_rows`` -- ``tests/test_lsky_soa.py`` drives both engines in
    lockstep over the Table 1 grid and asserts entry-for-entry equality.
    What changes is *how* the per-candidate resolve loop runs:

    * per-chunk candidate selection, the zero-candidate fold, and the
      per-row threshold gather are whole-array passes;
    * multi-layer insert sets come from
      :func:`~repro.core.lsky_soa.resolve_chunk_inserts` (the per-layer
      prefix argument; see that module's docstring) -- or, behind
      ``REPRO_NUMBA=1``, from a compiled sequential kernel -- and only the
      (small, bounded by ``k_max * n_layers``) insert sequence is replayed
      through the real ``_Resolution`` to find the exact termination cut;
    * inserted entries land in the skyband as bulk array segments
      (``soa_rows`` counts them), not per-entry appends.

    ``py_iters`` counts the interpreted iterations actually spent
    (replays, small-chunk fallback visits, per-row-chunk visits); the
    profile reports it as ``python_insert_iters`` for SoA detectors, which
    is the before/after interpreter-work measurement in BENCH_grid.json.
    """

    #: below this many selected candidates, a sequential replay of the
    #: object inner loop beats the argsort/searchsorted passes
    _SEQ_LIMIT = 16

    def __init__(self, plan, chunk_size: int = 256):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.plan = plan
        self.chunk_size = chunk_size
        self.by_time = plan.kind == "time"
        self._pending = [(sg.min_layer, sg.k) for sg in plan.subgroups]
        self._limits = insert_limits(plan.allowed_layer, plan.k_max,
                                     plan.n_layers)
        self._allowed_arr = np.asarray(plan.allowed_layer, dtype=np.int64)
        self._numba = numba_active()
        #: interpreted resolve iterations (the SoA python_insert_iters)
        self.py_iters = 0
        #: skyband entries committed through bulk array appends
        self.soa_rows = 0

    def _result(self, state: _SoaRow, examined: int, terminated: bool,
                resolved: bool) -> KSkyResult:
        return KSkyResult(
            lsky=state.finalize(self.plan.n_layers),
            examined=examined,
            terminated_early=terminated,
            resolved_all=resolved,
        )

    def _resolve_row_chunk(
        self,
        state: _SoaRow,
        j_self: int,
        block_lo: int,
        lo_s: int,
        hi_s: int,
        js_nz,
        js_all: List[int],
        ms_all: Optional[List[int]],
        lmat_row,
        cand_list: Optional[List[int]],
        cand_arr: Optional[np.ndarray],
        c_base: int,
        seq_arr: np.ndarray,
        pos_arr: np.ndarray,
        seqs_list: List[int],
        poss_list: List[float],
        single: bool,
    ) -> Tuple[bool, bool, int, int, int]:
        """Resolve one evaluated point's selected candidates of one chunk.

        The shared core of every SoA scan: the batched sweep
        (:meth:`scan_batched`) and the per-point family
        (:meth:`run_new_point` / :meth:`scan_new_arrivals` /
        :meth:`run_existing_point` via :meth:`_scan_span`) both land here,
        so insert decisions, regime selection (single-layer bulk take /
        small-chunk sequential / vectorized resolve + bounded replay) and
        termination candidates are one implementation.

        ``js_all``/``ms_all`` are flat python lists of selected column
        indexes/layers with this row's span at ``[lo_s, hi_s)``; ``js_nz``
        and ``lmat_row`` are their array twins for the vectorized branch.
        ``cand_list``/``cand_arr`` map columns to live buffer indexes when
        the kernel saw a candidate subset (``None`` -> ``block_lo + j``).
        ``j_self`` is the evaluated point's own column in this chunk (-1
        when absent).  Returns ``(inserted, terminated, jt, py_iters,
        soa_rows)`` with ``jt`` the terminating candidate's chunk-relative
        index; the row's cached insert threshold is refreshed before
        returning.
        """
        plan = self.plan
        n_layers = plan.n_layers
        k_max = plan.k_max
        allowed = plan.allowed_layer
        resolution = state.resolution
        terminated = False
        inserted = False
        jt = 0
        py_iters = 1
        soa_rows = 0
        if single:
            # fixed-r bulk take: the newest `k_max - n` selected
            # candidates, terminating at the k_max-th insert (same
            # collapse, and the same int walk, as the object
            # engine's single-layer path -- only the commit is a
            # bulk segment append instead of four list.extends)
            need = k_max - state.n
            take: List[int] = []
            ii = hi_s - 1
            while ii >= lo_s and len(take) < need:
                j = js_all[ii]
                if j != j_self:
                    take.append(block_lo + j if cand_list is None
                                else cand_list[c_base + j])
                ii -= 1
            if take:
                t = len(take)
                segs_s = state.segs_s
                if t > 32:
                    live = np.asarray(take, dtype=np.int64)
                    segs_s.append(seq_arr[live])
                    state.segs_p.append(pos_arr[live])
                    state.segs_l.append(
                        np.zeros(t, dtype=np.int64))
                elif segs_s and type(segs_s[-1]) is list:
                    # coalesce into the trailing list segment:
                    # rows that collect entries a few per chunk
                    # (small-r regimes) stay single-segment, so
                    # adoption is one asarray, not a concat chain
                    segs_s[-1].extend(
                        [seqs_list[x] for x in take])
                    state.segs_p[-1].extend(
                        [poss_list[x] for x in take])
                    state.segs_l[-1].extend([0] * t)
                else:
                    segs_s.append(
                        [seqs_list[x] for x in take])
                    state.segs_p.append(
                        [poss_list[x] for x in take])
                    state.segs_l.append([0] * t)
                state.n += t
                state._sorted_layers.extend([0] * t)
                state.counts[0] += t
                inserted = True
                soa_rows += t
                if t == need:
                    resolution.pending = []
                    terminated = True
                    jt = take[-1] - block_lo
        elif hi_s - lo_s <= self._SEQ_LIMIT:
            # small chunk: the sequential inner loop is cheaper
            # than the array passes; it is the object loop verbatim
            sl = state._sorted_layers
            counts = state.counts
            on_insert = resolution.on_insert
            app_idx: List[int] = []
            app_m: List[int] = []
            for ii in range(hi_s - 1, lo_s - 1, -1):
                j = js_all[ii]
                if j == j_self:
                    continue
                idx = (block_lo + j if cand_list is None
                       else cand_list[c_base + j])
                py_iters += 1
                m = ms_all[ii]
                c = bisect_right(sl, m)
                if c < k_max and m <= allowed[c]:
                    app_idx.append(idx)
                    app_m.append(m)
                    insort(sl, m)
                    counts[m] += 1
                    inserted = True
                    if on_insert(state, m):
                        terminated = True
                        jt = idx - block_lo
                        break
            if app_idx:
                segs_s = state.segs_s
                if segs_s and type(segs_s[-1]) is list:
                    segs_s[-1].extend(
                        [seqs_list[x] for x in app_idx])
                    state.segs_p[-1].extend(
                        [poss_list[x] for x in app_idx])
                    state.segs_l[-1].extend(app_m)
                else:
                    segs_s.append(
                        [seqs_list[x] for x in app_idx])
                    state.segs_p.append(
                        [poss_list[x] for x in app_idx])
                    state.segs_l.append(app_m)
                state.n += len(app_idx)
                soa_rows += len(app_idx)
        else:
            # vectorized resolve: compute the untruncated insert
            # set with array passes, then replay it through the
            # real _Resolution to find the exact termination cut
            js = js_nz[lo_s:hi_s]
            if j_self >= 0:
                js = js[js != j_self]
            js_desc = js[::-1]
            m_scan = lmat_row[js_desc]
            counts_arr = np.asarray(state.counts, dtype=np.int64)
            if self._numba:
                pos, ins_m = resolve_chunk_inserts_numba(
                    m_scan, counts_arr, self._allowed_arr, k_max)
            else:
                pos, ins_m = resolve_chunk_inserts(
                    m_scan, counts_arr, self._limits)
            if len(pos):
                cols = js_desc[pos]
                live = (block_lo + cols if cand_arr is None
                        else cand_arr[c_base + cols])
                sl = state._sorted_layers
                counts = state.counts
                on_insert = resolution.on_insert
                cut = len(pos)
                for t_i in range(cut):
                    m = int(ins_m[t_i])
                    insort(sl, m)
                    counts[m] += 1
                    inserted = True
                    py_iters += 1
                    if on_insert(state, m):
                        terminated = True
                        cut = t_i + 1
                        jt = int(live[t_i]) - block_lo
                        break
                live = live[:cut]
                state.segs_s.append(seq_arr[live])
                state.segs_p.append(pos_arr[live])
                state.segs_l.append(
                    np.ascontiguousarray(ins_m[:cut]))
                state.n += cut
                soa_rows += cut
        sl = state._sorted_layers
        state.thresh = (sl[k_max - 1] if k_max <= len(sl)
                        else n_layers)
        return inserted, terminated, jt, py_iters, soa_rows

    def scan_batched(
        self,
        row_indexes: Sequence[int],
        p_seqs: Sequence[int],
        buffer,
        lo: int,
        cand_idx: Optional[np.ndarray] = None,
    ) -> List[KSkyResult]:
        plan = self.plan
        n_layers = plan.n_layers
        chunk = self.chunk_size
        hi = len(buffer)
        n = len(p_seqs)
        mat = buffer.matrix()
        seq_arr = buffer.seq_array()
        pos_arr = buffer.pos_array(self.by_time)
        # python-list twins for the int fast paths (cached on the buffer,
        # same objects the object engine indexes)
        seqs_list = buffer.seqs()
        poss_list = buffer.positions(self.by_time)
        row_idx = np.asarray(row_indexes, dtype=np.int64)

        rows = [_SoaRow(_Resolution(plan, self._pending), n_layers)
                for _ in range(n)]
        examined = [0] * n
        results: List[Optional[KSkyResult]] = [None] * n
        active = list(range(n))
        single = (n_layers == 1 and bool(self._pending)
                  and len(self._pending) <= _Resolution._EXACT_LIMIT)
        n_chunks = -(-(hi - lo) // chunk) if hi > lo else 0
        if cand_idx is None:
            offs = cand_arr = cand_mat = cand_list = None
        else:
            edges = np.maximum(hi - chunk * np.arange(n_chunks + 1), lo)
            offs = np.searchsorted(cand_idx, edges, side="left").tolist()
            cand_arr = cand_idx
            cand_list = cand_idx.tolist()
            cand_mat = mat[cand_idx] if cand_list else None
        q_mat: Optional[np.ndarray] = None
        i = 0
        while i < n_chunks and active:
            block_hi = hi - i * chunk
            block_lo = max(lo, block_hi - chunk)
            width = block_hi - block_lo
            c_base = 0
            if offs is None:
                n_cols = width
            else:
                c_base = offs[i + 1]
                n_cols = offs[i] - c_base
                if n_cols == 0:
                    # candidate-free run: fold into examined arithmetic,
                    # exactly like the object engine (see its docstring)
                    if c_base == 0:
                        nxt_i = n_chunks
                    else:
                        nxt_i = (hi - 1 - int(cand_arr[c_base - 1])) // chunk
                    run_lo = max(lo, hi - nxt_i * chunk)
                    still = []
                    for row in active:
                        self_idx = row_indexes[row]
                        if rows[row].resolution.pending:
                            examined[row] += (block_hi - run_lo) - (
                                1 if run_lo <= self_idx < block_hi else 0)
                            still.append(row)
                            continue
                        examined[row] += width - (
                            1 if block_lo <= self_idx < block_hi else 0)
                        results[row] = self._result(
                            rows[row], examined[row], True, True)
                    if len(still) != len(active):
                        q_mat = None
                    active = still
                    i = nxt_i
                    continue
            if q_mat is None:
                q_mat = mat[row_idx[active]]
            if offs is None:
                dists = buffer.pairwise_block(q_mat, block_lo, block_hi)
            else:
                dists = buffer.pairwise_gathered(
                    q_mat, cand_mat[c_base:c_base + n_cols])
            lmat = plan.grid.layers_of(dists)
            n_act = len(active)
            thresh = np.fromiter((rows[r].thresh for r in active),
                                 dtype=np.int64, count=n_act)
            rows_nz, js_nz = np.nonzero(lmat < thresh[:, None])
            seg_list = np.searchsorted(
                rows_nz, np.arange(n_act + 1)).tolist()
            js_all = js_nz.tolist()
            ms_all = None if single else lmat[rows_nz, js_nz].tolist()
            # degenerate empty sub-group template: the object path
            # terminates such rows at the first boundary check, which the
            # zero-selection skip below would elide -- disable the skip
            skip_empty = bool(self._pending)
            py_iters = 0
            soa_rows = 0
            still = []
            for a, row in enumerate(active):
                lo_s = seg_list[a]
                hi_s = seg_list[a + 1]
                self_idx = row_indexes[row]
                if lo_s == hi_s and skip_empty:
                    # no below-threshold candidate: rejections never
                    # mutate scan state, and without an insert the
                    # boundary resolution check is elided -- the whole
                    # chunk folds into examined arithmetic
                    examined[row] += width - (
                        1 if block_lo <= self_idx < block_hi else 0)
                    still.append(row)
                    continue
                state = rows[row]
                resolution = state.resolution
                if offs is None:
                    j_self = self_idx - block_lo
                    if not 0 <= j_self < width:
                        j_self = -1
                elif block_lo <= self_idx < block_hi:
                    p = bisect_left(cand_list, self_idx, c_base,
                                    c_base + n_cols)
                    j_self = (p - c_base if p < c_base + n_cols
                              and cand_list[p] == self_idx else -1)
                else:
                    j_self = -1
                inserted, terminated, jt, d_py, d_soa = (
                    self._resolve_row_chunk(
                        state, j_self, block_lo, lo_s, hi_s, js_nz,
                        js_all, ms_all, lmat[a], cand_list, cand_arr,
                        c_base, seq_arr, pos_arr, seqs_list, poss_list,
                        single))
                py_iters += d_py
                soa_rows += d_soa
                self_rel = self_idx - block_lo
                self_in = 0 <= self_rel < width
                if terminated:
                    examined[row] += (width - jt) - (
                        1 if self_in and self_rel > jt else 0)
                    results[row] = self._result(
                        state, examined[row], True,
                        resolution.done or resolution.check(state))
                    continue
                examined[row] += width - (1 if self_in else 0)
                if inserted:
                    if resolution.check(state):
                        results[row] = self._result(
                            state, examined[row], True,
                            resolution.done)
                        continue
                elif not resolution.pending:
                    results[row] = self._result(
                        state, examined[row], True, True)
                    continue
                still.append(row)
            self.py_iters += py_iters
            self.soa_rows += soa_rows
            if len(still) != len(active):
                q_mat = None
            active = still
            i += 1
        for row in active:
            state = rows[row]
            resolution = state.resolution
            results[row] = self._result(
                state, examined[row], False,
                resolution.done or resolution.check(state))
        return results

    # ------------------------------------------------------ per-point family

    def _scan_span(self, p_values, p_seq: int, buffer, lo: int, hi: int
                   ) -> Tuple[_SoaRow, int, bool]:
        """Port of ``KSkyRunner._scan_buffer`` onto canonical SoA state.

        One ``distances_from`` kernel per chunk (the object per-point
        path's exact kernel shape and count), candidate selection and the
        per-chunk resolve through :meth:`_resolve_row_chunk`.  Chunk
        boundaries anchor at ``hi`` -- identical to the object walk for
        every per-point entry point (``hi`` is always ``len(buffer)``
        there).  The evaluated point's own column is located once by seq
        (seqs are unique and ascending; -1 when ``p`` is not in the
        buffer), matching the object path's per-candidate seq-equality
        skip.  Boundary resolution checks run only after chunks that
        inserted -- a check with no intervening insert filters ``pending``
        against unchanged state, removes nothing, and returns False
        whenever ``pending`` is non-empty, so eliding it is
        state-identical (DESIGN.md section 13); the degenerate empty
        template instead disables the zero-selection skip and terminates
        at the first visited chunk exactly like the batched sweep.

        Returns ``(state, examined, terminated_early)``.
        """
        plan = self.plan
        n_layers = plan.n_layers
        chunk = self.chunk_size
        state = _SoaRow(_Resolution(plan, self._pending), n_layers)
        resolution = state.resolution
        seq_arr = buffer.seq_array()
        pos_arr = buffer.pos_array(self.by_time)
        seqs_list = buffer.seqs()
        poss_list = buffer.positions(self.by_time)
        si = buffer.first_index_at_or_after_seq(p_seq)
        self_idx = (si if si < len(seqs_list) and seqs_list[si] == p_seq
                    else -1)
        single = (n_layers == 1 and bool(self._pending)
                  and len(self._pending) <= _Resolution._EXACT_LIMIT)
        skip_empty = bool(self._pending)
        examined = 0
        block_hi = hi
        while block_hi > lo:
            block_lo = max(lo, block_hi - chunk)
            width = block_hi - block_lo
            dists = buffer.distances_from(p_values, block_lo, block_hi)
            lvec = plan.grid.layers_of(dists)
            js = np.nonzero(lvec < state.thresh)[0]
            j_self = self_idx - block_lo
            if not 0 <= j_self < width:
                j_self = -1
            self_in = j_self >= 0
            if not len(js) and skip_empty:
                # no below-threshold candidate: the whole chunk folds
                # into examined arithmetic, as in the batched sweep
                examined += width - (1 if self_in else 0)
                block_hi = block_lo
                continue
            js_all = js.tolist()
            ms_all = None if single else lvec[js].tolist()
            inserted, terminated, jt, d_py, d_soa = (
                self._resolve_row_chunk(
                    state, j_self, block_lo, 0, len(js_all), js, js_all,
                    ms_all, lvec, None, None, 0, seq_arr, pos_arr,
                    seqs_list, poss_list, single))
            self.py_iters += d_py
            self.soa_rows += d_soa
            if terminated:
                examined += (width - jt) - (
                    1 if self_in and j_self > jt else 0)
                return state, examined, True
            examined += width - (1 if self_in else 0)
            if inserted:
                if resolution.check(state):
                    return state, examined, True
            elif not resolution.pending:
                return state, examined, True
            block_hi = block_lo
        return state, examined, False

    def run_new_point(self, p_values, p_seq: int, buffer) -> KSkyResult:
        """SoA twin of ``KSkyRunner.run_new_point`` (Alg. 1, lines 1-2)."""
        state, examined, terminated = self._scan_span(
            p_values, p_seq, buffer, 0, len(buffer))
        resolution = state.resolution
        return self._result(
            state, examined, terminated,
            resolution.done or resolution.check(state))

    def scan_new_arrivals(self, p_values, p_seq: int, buffer,
                          new_from_index: int) -> KSkyResult:
        """SoA twin of ``KSkyRunner.scan_new_arrivals``."""
        state, examined, terminated = self._scan_span(
            p_values, p_seq, buffer, new_from_index, len(buffer))
        return self._result(state, examined, terminated,
                            state.resolution.done)

    def run_existing_point(self, p_values, p_seq: int, buffer,
                           old_entries, new_from_index: int) -> KSkyResult:
        """SoA twin of ``KSkyRunner.run_existing_point`` (Alg. 1, 3-5).

        The detector's survivor path merges old evidence itself
        (``SOPDetector._merge_survivor``); this entry point exists for the
        oracle-lockstep suites and API parity with the runner.
        """
        state, examined, terminated = self._scan_span(
            p_values, p_seq, buffer, new_from_index, len(buffer))
        sky = state.finalize(self.plan.n_layers)
        if not terminated and old_entries:
            k_max = self.plan.k_max
            keep = [e for e in old_entries
                    if sky.dominator_count(e[2]) < k_max]
            examined += len(old_entries)
            sky.extend_older(keep)
        return KSkyResult(
            lsky=sky,
            examined=examined,
            terminated_early=terminated,
            resolved_all=state.resolution.check(sky),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"VectorizedSkybandEngine(chunk_size={self.chunk_size}, "
                f"numba={self._numba})")
