"""Refresh strategies: how the K-SKY refresh stage launches its scans.

Every swift boundary, each live non-fully-safe point refreshes its skyband
(Alg. 3 loop): new points scan the window from scratch, surviving points
scan only the new arrivals plus their unexpired previous skyband (least
examination, Alg. 1 / Lemma 2).  *What* is scanned is fixed by the paper;
*how* the scans are launched is a strategy:

* :class:`PerPointRefresh` -- one vectorized distance kernel per evaluated
  point (the paper's literal per-point loop; also the fallback for tiny
  batches);
* :class:`BatchedRefresh` -- the surviving points of one boundary all scan
  the same candidate range, so their evidence is one ``(rows x candidates)``
  matrix computed with a single pairwise kernel per chunk
  (``KSkyRunner.scan_batched``); scan order, chunk boundaries, and
  termination cadence replicate the per-point path exactly, so outputs and
  work accounting are identical (``tests/test_sop_batched.py`` is the
  gate);
* :class:`GridPrunedRefresh` -- batched scans, but each evaluated point's
  pairwise kernels see only the candidates in grid cells intersecting its
  ``r_max`` ball (:class:`~repro.index.GridCandidateIndex`).  Every pruned
  candidate is farther than ``r_max``, i.e. exactly a candidate
  ``layers_of`` would map past ``n_layers`` and the scan would discard
  without touching any state (Def. 5 condition 3), so outputs, LSky
  contents and termination points stay bit-identical while the kernel
  shrinks from O(rows x window) to O(rows x neighborhood)
  (``tests/test_sop_grid.py`` is the gate).

The strategy owns the shared partition step (scratch vs. survivors, from
``_PointState.last_seen_seq``) and the per-boundary profile sample; the
detector keeps evidence commitment (:meth:`SOPDetector._commit_scratch` /
``_commit_survivor``) because committing touches safety state and the
mutation generation.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..index import GridCandidateIndex

__all__ = ["RefreshEngine", "PerPointRefresh", "BatchedRefresh",
           "GridPrunedRefresh"]


class RefreshEngine:
    """Strategy interface for the refresh stage of one boundary.

    :meth:`refresh` partitions the live population and dispatches the two
    scan families to the subclass; subclass scan methods return how many
    rows went through a batched kernel (for the refresh profile).
    """

    #: short strategy name, surfaced in reprs and reports
    name = "refresh"

    def refresh(self, det, window_start: float) -> None:
        """Run K-SKY for every live, non-fully-safe point of ``det``."""
        buf = det.buffer
        pts = buf.points
        if not pts:
            return
        t0 = time.perf_counter_ns()
        kernels0 = buf.kernel_calls
        examined0 = det.stats["points_examined"]

        newest_seq = pts[-1].seq
        n_live = len(pts)
        states = det._states
        #: from-scratch scans, as (live index, point, state-or-None)
        scratch: List[Tuple[int, object, object]] = []
        #: new_from index -> [(live index, point, state), ...]
        survivors: Dict[int, List[Tuple[int, object, object]]] = {}
        for idx, p in enumerate(pts):
            st = states.get(p.seq)
            if st is not None and st.fully_safe:
                continue
            if st is None or not det.use_least_examination:
                scratch.append((idx, p, st))
            else:
                # live index of the first arrival this survivor has not
                # scanned yet; searchsorted, not base-offset arithmetic,
                # because shard streams skip sequence numbers
                new_from = buf.first_index_at_or_after_seq(
                    st.last_seen_seq + 1)
                survivors.setdefault(new_from, []).append((idx, p, st))

        batch_rows = self._scan_scratch(det, scratch, newest_seq)
        for new_from, group in survivors.items():
            batch_rows += self._scan_survivors(
                det, new_from, group, window_start, n_live, newest_seq)

        pruned, cells_visited = self._take_prune_stats()
        det.profile.record(
            time.perf_counter_ns() - t0,
            buf.kernel_calls - kernels0,
            batch_rows,
            det.stats["points_examined"] - examined0,
            pruned,
            cells_visited,
        )

    # ------------------------------------------------------------ interface

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        """Scan the from-scratch rows; returns rows batched."""
        raise NotImplementedError

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        """Scan one survivor group (shared first-unseen index)."""
        raise NotImplementedError

    def _take_prune_stats(self) -> Tuple[int, int]:
        """(candidates_pruned, cells_visited) since last taken; resets."""
        return 0, 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PerPointRefresh(RefreshEngine):
    """One distance kernel per evaluated point (the pre-batching engine)."""

    name = "per-point"

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        for _, p, st in scratch:
            result = det.runner.run_new_point(p.values, p.seq, det.buffer)
            det._commit_scratch(p, st, result, newest_seq)
        return 0

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        for _, p, st in group:
            scan = det.runner.scan_new_arrivals(p.values, p.seq, det.buffer,
                                                new_from)
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return 0


class BatchedRefresh(PerPointRefresh):
    """Shared pairwise kernels past a crossover; per-point below it.

    ``batch_min_rows`` is the crossover heuristic: groups smaller than it
    run through the inherited per-point path, where one kernel launch
    amortizes nothing over so few rows.
    """

    name = "batched"

    def __init__(self, batch_min_rows: int = 8):
        self.batch_min_rows = max(1, batch_min_rows)

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        if len(scratch) < self.batch_min_rows:
            return super()._scan_scratch(det, scratch, newest_seq)
        det.stats["batched_scans"] += len(scratch)
        results = det.runner.scan_batched(
            [idx for idx, _, _ in scratch],
            [p.seq for _, p, _ in scratch], det.buffer, 0)
        for (_, p, st), result in zip(scratch, results):
            det._commit_scratch(p, st, result, newest_seq)
        return len(scratch)

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        if n_live <= new_from or len(group) < self.batch_min_rows:
            return super()._scan_survivors(det, new_from, group,
                                           window_start, n_live, newest_seq)
        det.stats["batched_scans"] += len(group)
        results = det.runner.scan_batched(
            [idx for idx, _, _ in group],
            [p.seq for _, p, _ in group], det.buffer, new_from)
        for (_, p, st), scan in zip(group, results):
            det._commit_survivor(p, st, scan, window_start, newest_seq)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchedRefresh(batch_min_rows={self.batch_min_rows})"


class GridPrunedRefresh(BatchedRefresh):
    """Batched refresh with grid-cell candidate pruning.

    Maintains a :class:`~repro.index.GridCandidateIndex` over the
    detector's window buffer (cell size = the plan's largest radius
    ``r_max``, synced incrementally each use) and, past the batching
    crossover, feeds ``KSkyRunner.scan_batched`` the per-point candidate
    subset instead of the whole scan range.  Evaluated points binned to
    the same grid cell share one candidate array and one kernel group;
    tiny neighbouring groups are merged up to ``_MERGE_MIN_ROWS`` rows
    (their candidate union stays exact, see ``_merge_small_groups``).

    Exactness: a candidate outside the neighborhood is farther than
    ``r_max`` on some axis, hence farther than ``r_max`` under any
    registered metric, hence ``layers_of`` maps it past ``n_layers`` and
    the unpruned scan discards it without mutating scan state.  The
    subset scan keeps chunk boundaries and resolution cadence anchored in
    buffer-index space, so insert decisions, termination points, LSky
    contents, outputs and ``points_examined`` are bit-identical to
    :class:`BatchedRefresh`; only ``distance_rows``/``kernel_calls``
    shrink (that is the measured win, see
    ``benchmarks/bench_grid_refresh.py``).

    Below the crossover the inherited per-point fallback runs unpruned --
    tiny batches cannot amortize the neighborhood assembly.
    """

    name = "grid"

    #: merge tiny per-cell groups (in sorted-cell order, so spatially
    #: adjacent cells merge first) until each scan carries at least this
    #: many rows.  The per-scan and per-chunk fixed costs then amortize;
    #: the price is a slightly larger candidate union, and the extra
    #: columns are beyond ``r_max`` for the rows of the *other* cells, so
    #: the scan discards them without state change -- the same exactness
    #: argument as the pruning itself.
    _MERGE_MIN_ROWS = 24

    def __init__(self, batch_min_rows: int = 8):
        super().__init__(batch_min_rows)
        self._grid: Optional[GridCandidateIndex] = None
        self._r_max = 0.0
        self._pruned = 0
        self._cells_seen = 0

    def _ensure_grid(self, det) -> GridCandidateIndex:
        """The detector's candidate grid, synced to its buffer."""
        grid = self._grid
        if grid is None:
            # one cell per r_max: the neighborhood is then the 3^dim
            # Moore neighborhood, the standard grid-pruning cell choice
            self._r_max = float(det.plan.grid.values[-1])
            grid = self._grid = GridCandidateIndex(self._r_max)
            self._cells_seen = 0
        grid.sync(det.buffer)
        return grid

    def _take_prune_stats(self) -> Tuple[int, int]:
        pruned, self._pruned = self._pruned, 0
        cells = 0
        if self._grid is not None:
            cells = self._grid.cells_visited - self._cells_seen
            self._cells_seen = self._grid.cells_visited
        return pruned, cells

    def _cell_groups(self, det, rows: List[int]
                     ) -> List[Tuple[np.ndarray, List[int]]]:
        """(candidate array, member positions) per unique query cell."""
        grid = self._ensure_grid(det)
        mat = det.buffer.matrix()
        q_rows = np.asarray(rows, dtype=np.intp)
        arrays, assign = grid.candidates_within(mat[q_rows], self._r_max)
        members: Dict[int, List[int]] = {}
        for i, g in enumerate(assign.tolist()):
            members.setdefault(g, []).append(i)
        groups = [(arrays[g], members[g]) for g in sorted(members)]
        return self._merge_small_groups(groups)

    @classmethod
    def _merge_small_groups(cls, groups):
        """Coalesce consecutive sub-``_MERGE_MIN_ROWS`` cell groups."""
        if len(groups) <= 1:
            return groups
        merged = []
        acc_arrays: List[np.ndarray] = []
        acc_idxs: List[int] = []
        for cand, idxs in groups:
            acc_arrays.append(cand)
            acc_idxs.extend(idxs)
            if len(acc_idxs) >= cls._MERGE_MIN_ROWS:
                merged.append((cls._union(acc_arrays), acc_idxs))
                acc_arrays, acc_idxs = [], []
        if acc_idxs:
            merged.append((cls._union(acc_arrays), acc_idxs))
        return merged

    @staticmethod
    def _union(arrays: List[np.ndarray]) -> np.ndarray:
        if len(arrays) == 1:
            return arrays[0]
        return np.unique(np.concatenate(arrays))

    def _scan_scratch(self, det, scratch, newest_seq) -> int:
        if len(scratch) < self.batch_min_rows:
            return super()._scan_scratch(det, scratch, newest_seq)
        det.stats["batched_scans"] += len(scratch)
        hi = len(det.buffer)
        groups = self._cell_groups(det, [idx for idx, _, _ in scratch])
        for cand, idxs in groups:
            self._pruned += (hi - len(cand)) * len(idxs)
            results = det.runner.scan_batched(
                [scratch[i][0] for i in idxs],
                [scratch[i][1].seq for i in idxs],
                det.buffer, 0, cand_idx=cand)
            for i, result in zip(idxs, results):
                _, p, st = scratch[i]
                det._commit_scratch(p, st, result, newest_seq)
        return len(scratch)

    def _scan_survivors(self, det, new_from, group, window_start, n_live,
                        newest_seq) -> int:
        if n_live <= new_from or len(group) < self.batch_min_rows:
            return super()._scan_survivors(det, new_from, group,
                                           window_start, n_live, newest_seq)
        det.stats["batched_scans"] += len(group)
        span = n_live - new_from
        groups = self._cell_groups(det, [idx for idx, _, _ in group])
        for cand, idxs in groups:
            # least examination: only the arrivals this survivor group has
            # not scanned yet are candidates
            c_lo = int(np.searchsorted(cand, new_from, side="left"))
            cand = cand[c_lo:]
            self._pruned += (span - len(cand)) * len(idxs)
            results = det.runner.scan_batched(
                [group[i][0] for i in idxs],
                [group[i][1].seq for i in idxs],
                det.buffer, new_from, cand_idx=cand)
            for i, scan in zip(idxs, results):
                _, p, st = group[i]
                det._commit_survivor(p, st, scan, window_start, newest_seq)
        return len(group)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridPrunedRefresh(batch_min_rows={self.batch_min_rows})"
