"""SafetyTracker: the safe-for-all test (Sec. 4.1/4.2) as a component.

A point is a *safe inlier* for query ``q`` once enough of its succeeding
neighbors guarantee inlier status for the rest of its lifetime; it is
*fully safe* (safe for all) when that holds for every member query, at
which point the detector drops its evidence and never evaluates it again.
This module isolates the vectorized test from the detector so the refresh
strategies and the evaluation layer share one implementation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SafetyTracker"]


class SafetyTracker:
    """Vectorized safe-for-all decisions against one skyband plan."""

    def __init__(self, plan):
        self.plan = plan

    def is_fully_safe(self, p_seq: int, seqs: np.ndarray,
                      layers: np.ndarray) -> bool:
        """Safe-for-all test for one refreshed evidence array.

        ``p`` is fully safe iff for every sub-group ``k_j`` the ``k_j``-th
        smallest layer among *succeeding* entries is at or below the
        sub-group's smallest member layer.  Entries are seq-descending, so
        successors form the prefix.
        """
        plan = self.plan
        if not len(seqs) or len(seqs) < plan.k_list[0]:
            return False
        n_succ = int(np.searchsorted(-seqs, -p_seq, side="left"))
        if n_succ < plan.k_list[0]:
            return False
        succ_sorted = np.sort(layers[:n_succ])
        ks = plan.subgroup_ks
        if n_succ < ks[-1]:
            return False
        return bool(np.all(succ_sorted[ks - 1] <= plan.subgroup_min_layers))
