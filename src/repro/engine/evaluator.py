"""DueQueryEvaluator: vectorized due-query classification with caching.

The evaluation stage of the pipeline (Alg. 3 step 4): for each member
query due at boundary ``t``, classify its window population by counting
skyband entries (inlier rule + Lemma 3).  One flattened pass builds
``(owner, layer, pos)`` arrays over all non-safe points; each due query is
then a masked ``bincount``.  The flattened arrays are cached on the
detector's mutation generation, so a due boundary that changed nothing
since the last flatten (e.g. an empty batch with stable evidence) reuses
them.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["DueQueryEvaluator"]

_EMPTY_I = np.empty(0, dtype=np.int64)
_EMPTY_F = np.empty(0, dtype=np.float64)


class DueQueryEvaluator:
    """Classifies due queries from one detector's shared evidence.

    Holds the generation-keyed flatten cache; the detector bumps its
    ``_gen`` counter on every population or evidence mutation, which is
    the only invalidation signal this cache needs.
    """

    def __init__(self, det):
        self._det = det
        self._flat_gen = -1
        self._flat_cache: Optional[Tuple] = None

    def evaluate(self, due: Sequence[int], t: int) -> Dict[int, FrozenSet[int]]:
        """``{query_index: outlier seqs}`` for the queries due at ``t``."""
        det = self._det
        pts = det.buffer.points
        out: Dict[int, FrozenSet[int]] = {}
        if not pts:
            return {qi: frozenset() for qi in due}

        if self._flat_cache is None or self._flat_gen != det._gen:
            p_seqs: List[int] = []
            p_poss: List[float] = []
            lengths: List[int] = []
            layer_chunks: List[np.ndarray] = []
            pos_chunks: List[np.ndarray] = []
            for p in pts:
                st = det._states[p.seq]
                if st.fully_safe:
                    continue  # inlier for every query, forever
                p_seqs.append(p.seq)
                p_poss.append(det.position(p))
                n = st.entry_count()
                lengths.append(n)
                if n:
                    layer_chunks.append(st.layers)
                    pos_chunks.append(st.poss)
            row = len(p_seqs)
            seq_arr = np.asarray(p_seqs, dtype=np.int64)
            ppos_arr = np.asarray(p_poss, dtype=np.float64)
            len_arr = np.asarray(lengths, dtype=np.int64)
            own_arr = (np.repeat(np.arange(row, dtype=np.int64), len_arr)
                       if row else _EMPTY_I)
            lay_arr = (np.concatenate(layer_chunks) if layer_chunks
                       else _EMPTY_I)
            epos_arr = (np.concatenate(pos_chunks) if pos_chunks
                        else _EMPTY_F)
            self._flat_cache = (row, seq_arr, ppos_arr, own_arr, lay_arr,
                                epos_arr)
            self._flat_gen = det._gen
            det.stats["eval_flatten_rebuilds"] += 1
        row, seq_arr, ppos_arr, own_arr, lay_arr, epos_arr = self._flat_cache

        for qi in due:
            q = det.group[qi]
            ws = float(max(0, t - q.win))
            m_q = det.plan.query_layers[qi]
            if row == 0:
                out[qi] = frozenset()
                continue
            emask = (lay_arr <= m_q) & (epos_arr >= ws)
            counts = np.bincount(own_arr[emask], minlength=row)
            sel = (ppos_arr >= ws) & (counts < q.k)
            out[qi] = frozenset(int(s) for s in seq_arr[sel])
        return out
