"""DetectorConfig: one record for every ablation switch and tuning knob.

Before this existed, the ablation flags (``eager``, ``use_safe_inliers``,
``use_least_examination``, ``use_batched_refresh``, ``batch_min_rows``)
and the metric/chunking knobs were loose keyword arguments that each layer
of the system re-spelled: the API hard-coded defaults, the CLI exposed
none of them, dynamic rebuilds forwarded an opaque kwargs dict, and
checkpoints dropped them entirely -- a restored detector silently ran with
default switches.  :class:`DetectorConfig` is the single source of truth
those layers now share; it is JSON-serializable so checkpoints can persist
it and fail loudly on mismatch at restore.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

from ..core.point import DistanceMetric, available_metrics

__all__ = ["DetectorConfig"]


@dataclass(frozen=True)
class DetectorConfig:
    """Immutable configuration of a (SOP-family) detector.

    ``metric`` accepts a registered metric name or a
    :class:`~repro.core.point.DistanceMetric` instance; instances are
    normalized to their registered name so configs compare and serialize
    by value.
    """

    metric: str = "euclidean"
    chunk_size: int = 256
    #: refresh skybands at every swift boundary (False: only at boundaries
    #: where some member query is due)
    eager: bool = True
    use_safe_inliers: bool = True
    use_least_examination: bool = True
    use_batched_refresh: bool = True
    #: crossover heuristic: batches smaller than this run per-point
    batch_min_rows: int = 8
    #: which K-SKY refresh engine drives the boundary scans: "per-point",
    #: "batched", "grid" (batched + grid-cell candidate pruning), or
    #: "auto" -- the measured batched-vs-grid crossover
    #: (:class:`~repro.engine.AutoRefresh`), which never picks grid in
    #: regimes where probing shows it losing; with the legacy
    #: ``use_batched_refresh=False`` ablation, "auto" still resolves to
    #: the per-point engine
    refresh_strategy: str = "auto"
    #: skyband state backend: "soa" (the default -- flat numpy
    #: structure-of-arrays tier, canonical representation for every
    #: refresh strategy, per-point included) or "object" (Python-list
    #: ``LSky``, kept selectable as the bit-exact oracle the equivalence
    #: suites and the CI legacy leg compare against; identical outputs,
    #: more interpreter work)
    skyband_impl: str = "soa"
    #: number of value-partitioned shards the runtime drives (1 = the
    #: classic single-executor path, byte-identical to pre-shard runs)
    shards: int = 1
    #: shard execution backend: "serial" steps every shard in-process and
    #: boundary-synchronously; "process" runs one worker process per shard
    #: (fail-fast); "supervised" adds per-shard crash detection, deadlines,
    #: bounded retry, and the configurable degraded mode below
    backend: str = "serial"
    #: border-replication radius of the value partitioner; 0.0 means
    #: "auto": use the workload's r_max, the smallest exact choice
    replication_radius: float = 0.0
    #: supervised backend policy when a shard exhausts its attempts:
    #: "fail" (no retries, first loss raises), "retry" (bounded retries,
    #: then raise), or "drop-and-flag" (degrade: the merged result is
    #: loudly marked partial via ``RunResult.failed_shards``)
    on_shard_failure: str = "retry"
    #: relaunch budget per shard after the initial attempt (supervised)
    max_shard_retries: int = 2
    #: per-attempt wall-clock deadline in seconds; 0.0 = no deadline
    shard_deadline: float = 0.0
    #: base of the exponential retry backoff (seconds): attempt ``a``
    #: waits ``retry_backoff * 2**a`` before relaunching
    retry_backoff: float = 0.05
    #: route ingest through :class:`~repro.streams.source.IngestGuard`:
    #: poison records (NaN/inf coordinates, seq/time regressions, arity
    #: mismatches) are quarantined to a counted side channel instead of
    #: corrupting window state
    validate_ingest: bool = False
    #: deterministic chaos schedule (inline JSON or a path to a JSON
    #: file, resolved by :meth:`repro.testing.faults.FaultPlan.resolve`);
    #: None disables fault injection -- production default
    fault_plan: Optional[str] = None
    #: first-tier inlier screen ahead of the exact K-SKY refresh
    #: (see :mod:`repro.core.prefilter`): "none" disables screening;
    #: "qn" anchors on a windowed Qn/MAD robust-scale estimate; and
    #: "sensitivity" samples anchors uniformly (deterministically) from
    #: the live window.  Each shard of a sharded runtime screens its own
    #: window; the ``prefilter_*`` counters merge additively.
    prefilter: str = "none"
    #: "exact" prunes only points *provably* k-satisfied for every
    #: registered query (outputs byte-identical to ``prefilter="none"``);
    #: "fast" additionally prunes on the screen's statistical evidence
    #: (approximate -- ``benchmarks/bench_prefilter.py`` measures recall)
    prefilter_mode: str = "exact"

    _BACKENDS = ("serial", "process", "supervised")
    _REFRESH_STRATEGIES = ("auto", "per-point", "batched", "grid")
    _SKYBAND_IMPLS = ("object", "soa")
    _FAILURE_POLICIES = ("fail", "retry", "drop-and-flag")
    _PREFILTERS = ("none", "qn", "sensitivity")
    _PREFILTER_MODES = ("exact", "fast")
    #: metrics the prefilter's ball certification is sound for (the
    #: screens rely on the triangle inequality; a custom registered
    #: distance need not satisfy it)
    _PREFILTER_METRICS = ("euclidean", "manhattan", "chebyshev")

    def __post_init__(self):
        if (isinstance(self.metric, DistanceMetric)
                and self.metric.name in available_metrics()):
            object.__setattr__(self, "metric", self.metric.name)
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.batch_min_rows < 1:
            raise ValueError("batch_min_rows must be >= 1")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.backend not in self._BACKENDS:
            raise ValueError(
                f"backend must be one of {self._BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.replication_radius < 0:
            raise ValueError("replication_radius must be >= 0")
        if self.refresh_strategy not in self._REFRESH_STRATEGIES:
            raise ValueError(
                f"refresh_strategy must be one of "
                f"{self._REFRESH_STRATEGIES}, "
                f"got {self.refresh_strategy!r}"
            )
        if self.skyband_impl not in self._SKYBAND_IMPLS:
            raise ValueError(
                f"skyband_impl must be one of {self._SKYBAND_IMPLS}, "
                f"got {self.skyband_impl!r}"
            )
        if self.on_shard_failure not in self._FAILURE_POLICIES:
            raise ValueError(
                f"on_shard_failure must be one of {self._FAILURE_POLICIES}, "
                f"got {self.on_shard_failure!r}"
            )
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if self.shard_deadline < 0:
            raise ValueError("shard_deadline must be >= 0 (0 = no deadline)")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        if self.prefilter not in self._PREFILTERS:
            raise ValueError(
                f"prefilter must be one of {self._PREFILTERS}, "
                f"got {self.prefilter!r}"
            )
        if self.prefilter_mode not in self._PREFILTER_MODES:
            raise ValueError(
                f"prefilter_mode must be one of {self._PREFILTER_MODES}, "
                f"got {self.prefilter_mode!r}"
            )
        if self.prefilter != "none":
            if not self.use_safe_inliers:
                raise ValueError(
                    "prefilter requires use_safe_inliers=True: certified "
                    "prunes commit through the fully-safe machinery"
                )
            if self.metric not in self._PREFILTER_METRICS:
                raise ValueError(
                    f"prefilter requires a triangle-inequality metric "
                    f"{self._PREFILTER_METRICS}, got {self.metric!r}; "
                    f"use prefilter='none' with custom metrics"
                )

    def resolved_refresh_strategy(self) -> str:
        """The effective refresh strategy.

        An explicit ``refresh_strategy`` wins.  ``"auto"`` now names a
        real engine -- the measured batched-vs-grid crossover
        (:class:`~repro.engine.AutoRefresh`) -- unless the legacy
        ``use_batched_refresh=False`` ablation asks for the per-point
        engine.  Both resolutions preserve outputs: every engine is
        output-exact, so old configs (and old checkpoints, which restore
        with ``refresh_strategy="auto"``) only change wall time.
        """
        if self.refresh_strategy != "auto":
            return self.refresh_strategy
        return "auto" if self.use_batched_refresh else "per-point"

    # -------------------------------------------------------- serialization

    def as_dict(self) -> Dict[str, Any]:
        """Plain-JSON form (checkpoint headers, reports)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectorConfig":
        """Inverse of :meth:`as_dict`; unknown keys fail loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown DetectorConfig field(s): {sorted(unknown)}"
            )
        return cls(**dict(data))

    def replace(self, **changes) -> "DetectorConfig":
        """A copy with the given fields changed."""
        return replace(self, **changes)

    def diff(self, other: "DetectorConfig") -> Dict[str, Any]:
        """Field-by-field differences as ``{field: (self, other)}``."""
        out: Dict[str, Any] = {}
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if a != b:
                out[f.name] = (a, b)
        return out
