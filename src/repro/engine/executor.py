"""StreamExecutor: the single drive loop for every detector.

One pattern used to be copy-pasted across the codebase -- iterate
boundary-aligned batches, time the step, sample memory, collect outputs --
with each consumer bolting its own concern onto its private copy
(``Detector.run`` metered, ``CheckpointedRun`` wrote checkpoints,
``run_with_alerts`` routed alerts, ``bench.runner`` swept grids).
:class:`StreamExecutor` is that loop, written once; the concerns become
:class:`ExecutorSubscriber` implementations listening to lifecycle hooks.

Hook model
----------

Detectors process a boundary as a staged pipeline (Alg. 3: ingest ->
expire -> refresh -> evaluate).  ``Detector.run_boundary`` fires a hook
*after* each stage completes, in the detector's own stage order (MCOD,
for instance, expires before it ingests -- that is its algorithm, and the
hooks report what actually happened):

* ``on_ingest(t, batch)`` -- the batch entered the detector;
* ``on_expire(t, evicted)`` -- points left the swift window;
* ``on_refresh(t)`` -- evidence was refreshed (detectors without a
  refresh stage never fire it);
* ``on_evaluate(t, outputs)`` -- due queries were classified;
* ``on_boundary_end(t, outputs)`` -- the executor finished metering the
  boundary (fired by the executor, always last);
* ``on_stream_end(result)`` -- the finite stream is exhausted
  (:meth:`StreamExecutor.finish`).

Subscriber exceptions propagate: a failing subscriber fails the run
loudly rather than silently dropping checkpoints or alerts.  Detector
state is whatever the completed stages committed -- hooks fire after
their stage, so the detector itself is never left mid-stage.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from ..core.point import Point
from ..metrics.results import RunResult
from ..streams.source import batches_by_boundary

__all__ = ["ExecutorSubscriber", "NULL_HOOKS", "StreamExecutor"]

Outputs = Dict[int, FrozenSet[int]]


class ExecutorSubscriber:
    """Base class for lifecycle-hook listeners; every hook is a no-op.

    Subclasses override the hooks they care about.  ``executor`` is set on
    attachment, giving access to ``executor.detector`` and the accumulating
    ``executor.result``.
    """

    executor: Optional["StreamExecutor"] = None

    def on_attach(self, executor: "StreamExecutor") -> None:
        self.executor = executor

    def on_ingest(self, t: int, batch: Sequence[Point]) -> None:
        """The detector ingested this boundary's batch."""

    def on_expire(self, t: int, evicted: Sequence[Point]) -> None:
        """The detector evicted these points from the swift window."""

    def on_refresh(self, t: int) -> None:
        """The detector refreshed its per-point evidence."""

    def on_evaluate(self, t: int, outputs: Outputs) -> None:
        """The detector classified the queries due at ``t``."""

    def on_boundary_end(self, t: int, outputs: Outputs) -> None:
        """The executor finished recording boundary ``t``."""

    def on_stream_end(self, result: RunResult) -> None:
        """The finite stream ended; ``result`` is complete."""


class _HookFan(ExecutorSubscriber):
    """Fans each hook out to an ordered subscriber list.

    Shares the executor's live list, so subscriptions added mid-stream
    take effect at the next hook.
    """

    def __init__(self, subscribers: List[ExecutorSubscriber]):
        self._subs = subscribers

    def on_ingest(self, t, batch):
        for s in self._subs:
            s.on_ingest(t, batch)

    def on_expire(self, t, evicted):
        for s in self._subs:
            s.on_expire(t, evicted)

    def on_refresh(self, t):
        for s in self._subs:
            s.on_refresh(t)

    def on_evaluate(self, t, outputs):
        for s in self._subs:
            s.on_evaluate(t, outputs)

    def on_boundary_end(self, t, outputs):
        for s in self._subs:
            s.on_boundary_end(t, outputs)

    def on_stream_end(self, result):
        for s in self._subs:
            s.on_stream_end(result)


#: the hook sink used when a detector is stepped outside an executor
#: (``Detector.step``): every hook is a no-op over an empty fan
NULL_HOOKS = _HookFan([])


class StreamExecutor:
    """Drive one detector through boundary-aligned batches with metering.

    The executor owns the :class:`~repro.metrics.results.RunResult`: CPU
    is metered around each boundary, memory is sampled after it, and due
    outputs are archived under ``(query_index, boundary)`` keys -- exactly
    the accounting the legacy per-consumer loops performed, so results are
    byte-identical to pre-executor runs.

    Use :meth:`run` for a finite stream, or :meth:`step` to push
    boundaries one at a time (long-running deployments); call
    :meth:`finish` after the last step to finalize work counters and fire
    ``on_stream_end``.
    """

    def __init__(self, detector,
                 subscribers: Iterable[ExecutorSubscriber] = ()):
        self.detector = detector
        self.subscribers: List[ExecutorSubscriber] = []
        self.hooks = _HookFan(self.subscribers)
        self.result = RunResult(detector=detector.name)
        for sub in subscribers:
            self.subscribe(sub)

    def subscribe(self, subscriber: ExecutorSubscriber) -> ExecutorSubscriber:
        """Attach a lifecycle subscriber; returns it for chaining."""
        subscriber.on_attach(self)
        self.subscribers.append(subscriber)
        return subscriber

    # ------------------------------------------------------------- stepping

    def step(self, t: int, batch: Sequence[Point]) -> Outputs:
        """Process one boundary: pipeline stages, metering, hooks."""
        detector = self.detector
        result = self.result
        result.cpu.start()
        try:
            outputs = detector.run_boundary(t, batch, self.hooks)
        finally:
            result.cpu.stop()
        result.boundaries += 1
        result.memory.sample(detector.memory_units(),
                             detector.tracked_points())
        for qi, seqs in outputs.items():
            result.outputs[(qi, t)] = frozenset(seqs)
        self.hooks.on_boundary_end(t, outputs)
        return outputs

    def run(self, points: Sequence[Point],
            until: Optional[int] = None) -> RunResult:
        """Process a finite stream end-to-end; returns the run result.

        ``until`` bounds the last boundary (defaults to just past the
        final point so every point is delivered and evaluated at least
        once).
        """
        detector = self.detector
        for t, batch in batches_by_boundary(
            points, detector.swift.slide, detector.group.kind, until
        ):
            self.step(t, batch)
        return self.finish()

    def finish(self) -> RunResult:
        """Finalize the result (work counters) and fire ``on_stream_end``."""
        self.result.work = self.detector.work_stats()
        self.hooks.on_stream_end(self.result)
        return self.result
