"""Correctness tooling: deterministic fault injection for chaos tests.

``repro.testing`` is shipped with the package (not hidden in the test
tree) so the exact same chaos scenarios run in unit tests, benchmarks,
and CI: a :class:`~repro.testing.faults.FaultPlan` is a seeded, JSON-
serializable schedule of worker crashes, shard delays, and torn
checkpoint files that the supervised backend and the test harness both
consume.
"""

from .faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    tear_file,
)

__all__ = [
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "tear_file",
]
