"""Deterministic fault injection: the chaos-test harness.

A fault-tolerant runtime is only trustworthy if every failure mode it
claims to survive can be *produced on demand*, identically, on every
machine and every run.  This module is that switchboard:

* :class:`Fault` -- one scheduled failure: crash shard ``N`` at boundary
  ``B`` (by exception or by hard ``os._exit``), delay a shard past its
  deadline, or truncate a checkpoint file to a byte count (a torn write).
* :class:`FaultPlan` -- an ordered, JSON-serializable collection of
  faults.  Plans round-trip through ``to_json``/``from_json`` and resolve
  from inline JSON strings or file paths, so the same scenario runs in a
  unit test, a benchmark, the CLI (``detect --fault-plan``), and CI.
* :class:`FaultInjector` -- an
  :class:`~repro.engine.executor.ExecutorSubscriber` that fires the plan's
  crash/delay faults at boundary ends.  The supervised backend installs
  one inside each worker; serial tests attach one to a shard's executor.
* :func:`tear_file` -- truncate a file in place (the torn-checkpoint
  primitive the atomicity regression tests use).

Determinism contract
--------------------

A fault fires iff its ``(shard, boundary)`` matches and the current
*attempt* number is below ``times``.  Workers receive their attempt
number from the supervisor, so "crash once, then succeed on retry" is
expressed as ``times=1`` -- no randomness, no clocks, no cross-process
state.  ``seed`` is carried for plans that want to derive randomized
scenarios up front (generation-time randomness, never fire-time).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, fields
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..engine.executor import ExecutorSubscriber

__all__ = ["Fault", "FaultPlan", "FaultInjector", "InjectedCrash", "tear_file"]

#: fault kinds understood by the harness
_KINDS = ("crash", "delay", "truncate")
#: how a crash manifests: "raise" (exception captured and reported by the
#: worker) or "exit" (hard ``os._exit`` -- only the exitcode survives)
_CRASH_MODES = ("raise", "exit")


class InjectedCrash(RuntimeError):
    """The exception an injected ``crash`` fault raises (``mode="raise"``)."""

    def __init__(self, shard: int, boundary: int, attempt: int):
        self.shard = shard
        self.boundary = boundary
        self.attempt = attempt
        super().__init__(
            f"injected crash: shard {shard} at boundary {boundary} "
            f"(attempt {attempt})"
        )


@dataclass(frozen=True)
class Fault:
    """One scheduled failure.

    ``times`` bounds how many *attempts* the fault fires on: a worker
    retried after a ``times=1`` crash runs clean.  ``mode`` selects the
    crash mechanism; ``seconds`` is the ``delay`` duration; ``path`` /
    ``keep_bytes`` target a ``truncate`` fault.
    """

    kind: str
    shard: int = -1
    boundary: int = 0
    times: int = 1
    mode: str = "raise"
    seconds: float = 0.0
    path: str = ""
    keep_bytes: int = 0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.mode not in _CRASH_MODES:
            raise ValueError(f"crash mode must be one of {_CRASH_MODES}, "
                             f"got {self.mode!r}")
        if self.times < 1:
            raise ValueError("times must be >= 1")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")
        if self.kind == "truncate" and not self.path:
            raise ValueError("a truncate fault needs a target path")

    def fires(self, shard: int, boundary: int, attempt: int) -> bool:
        """True iff this fault hits ``shard`` at ``boundary`` on ``attempt``."""
        return (self.kind in ("crash", "delay")
                and self.shard == shard
                and self.boundary == boundary
                and attempt < self.times)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serializable schedule of faults (the chaos scenario).

    Plans are inert data: nothing fires until a :class:`FaultInjector`
    (crash/delay) or :meth:`apply_truncations` (truncate) executes them.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self):
        if not isinstance(self.faults, tuple):
            object.__setattr__(self, "faults", tuple(self.faults))

    # ------------------------------------------------------------- queries

    def for_shard(self, shard: int) -> Tuple[Fault, ...]:
        """The crash/delay faults targeting one shard (any attempt)."""
        return tuple(f for f in self.faults
                     if f.kind in ("crash", "delay") and f.shard == shard)

    def due(self, shard: int, boundary: int, attempt: int) -> Tuple[Fault, ...]:
        """The faults that fire for this (shard, boundary, attempt)."""
        return tuple(f for f in self.faults
                     if f.fires(shard, boundary, attempt))

    def truncations(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == "truncate")

    def apply_truncations(self, root: Optional[Union[str, Path]] = None
                          ) -> List[Path]:
        """Execute the plan's torn-write faults; returns the torn paths.

        ``root`` resolves relative fault paths (defaults to the CWD).
        """
        torn: List[Path] = []
        base = Path(root) if root is not None else Path(".")
        for f in self.truncations():
            target = Path(f.path)
            if not target.is_absolute():
                target = base / target
            tear_file(target, f.keep_bytes)
            torn.append(target)
        return torn

    # ------------------------------------------------------- serialization

    def as_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "faults": [f.as_dict() for f in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.as_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        known = {f.name for f in fields(Fault)}
        faults = []
        for entry in data.get("faults", ()):
            unknown = set(entry) - known
            if unknown:
                raise ValueError(
                    f"unknown fault field(s): {sorted(unknown)}")
            faults.append(Fault(**entry))
        return cls(faults=tuple(faults), seed=int(data.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def resolve(cls, spec) -> Optional["FaultPlan"]:
        """Coerce a config-level spec into a plan.

        ``None`` stays ``None``; a plan passes through; a dict is parsed;
        a string is inline JSON when it starts with ``{``, else a path to
        a JSON file.  This is the hook ``DetectorConfig.fault_plan`` and
        the CLI's ``--fault-plan`` share.
        """
        if spec is None or isinstance(spec, cls):
            return spec
        if isinstance(spec, dict):
            return cls.from_dict(spec)
        if isinstance(spec, str):
            text = spec.strip()
            if text.startswith("{"):
                return cls.from_json(text)
            path = Path(spec)
            if not path.exists():
                raise ValueError(
                    f"fault plan {spec!r} is neither inline JSON nor an "
                    "existing file")
            return cls.from_json(path.read_text())
        raise TypeError(f"cannot resolve a fault plan from {type(spec)!r}")


class FaultInjector(ExecutorSubscriber):
    """Executor subscriber that fires a plan's crash/delay faults.

    Fires on ``on_boundary_end`` -- the boundary's stages committed, the
    crash hits before the *next* boundary (exactly where a real worker
    loss lands).  ``mode="exit"`` calls ``os._exit`` and must only run
    inside a sacrificial worker process; serial in-process tests use the
    default ``mode="raise"`` (:class:`InjectedCrash` propagates).

    ``delays_applied`` / ``crashes_fired`` are observability counters the
    chaos tests assert against.
    """

    def __init__(self, plan: FaultPlan, shard_id: int, attempt: int = 0):
        self.plan = plan
        self.shard_id = shard_id
        self.attempt = attempt
        self.delays_applied = 0
        self.crashes_fired = 0

    def on_boundary_end(self, t, outputs) -> None:
        for fault in self.plan.due(self.shard_id, t, self.attempt):
            if fault.kind == "delay":
                self.delays_applied += 1
                time.sleep(fault.seconds)
            elif fault.kind == "crash":
                self.crashes_fired += 1
                if fault.mode == "exit":
                    os._exit(66)
                raise InjectedCrash(self.shard_id, t, self.attempt)


def tear_file(path: Union[str, Path], keep_bytes: int) -> Path:
    """Truncate ``path`` to its first ``keep_bytes`` bytes (a torn write).

    The deterministic primitive behind ``truncate`` faults and the
    checkpoint-atomicity regression tests: what a crash mid-``write``
    leaves behind when the writer is *not* using temp-file + rename.
    """
    path = Path(path)
    if keep_bytes < 0:
        raise ValueError("keep_bytes must be >= 0")
    size = path.stat().st_size
    with open(path, "r+b") as fh:
        fh.truncate(min(keep_bytes, size))
    return path
