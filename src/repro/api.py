"""High-level convenience API for one-shot detection.

For users who have "an array and a question" rather than a streaming
deployment: :func:`detect_outliers` wraps stream construction, workload
assembly, and the SOP run into one call, and :func:`outlier_flags` returns
a numpy boolean mask aligned with the input rows.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from .core.point import Point, points_from_array
from .core.queries import OutlierQuery, QueryGroup
from .engine.config import DetectorConfig
from .metrics.results import RunResult
from .runtime import Runtime
from .serve import build_service
from .streams.windows import COUNT, WindowSpec

__all__ = ["build_service", "detect_outliers", "outlier_flags"]

QuerySpec = Union[OutlierQuery, Tuple[float, int, int, int]]


def _as_queries(queries: Iterable[QuerySpec], kind: str) -> list:
    out = []
    for spec in queries:
        if isinstance(spec, OutlierQuery):
            out.append(spec)
            continue
        try:
            r, k, win, slide = spec
        except (TypeError, ValueError):
            raise TypeError(
                "each query must be an OutlierQuery or an "
                "(r, k, win, slide) tuple"
            ) from None
        out.append(OutlierQuery(
            r=float(r), k=int(k),
            window=WindowSpec(win=int(win), slide=int(slide), kind=kind),
        ))
    if not out:
        raise ValueError("at least one query is required")
    return out


def detect_outliers(
    data,
    queries: Iterable[QuerySpec],
    times: Optional[Sequence[float]] = None,
    kind: str = COUNT,
    metric="euclidean",
    until: Optional[int] = None,
    config: Optional[DetectorConfig] = None,
    shards: Optional[int] = None,
    backend: Optional[str] = None,
) -> RunResult:
    """Run a workload over array-like data in one call.

    ``data`` is an iterable of attribute rows (list of lists, numpy array,
    or pre-built :class:`Point` sequence); ``queries`` mixes
    :class:`OutlierQuery` objects and ``(r, k, win, slide)`` tuples.

    Pass ``config`` (a :class:`~repro.engine.DetectorConfig`) to control
    the detector's ablation switches and tuning knobs; when given it wins
    over the ``metric`` argument, which is kept for backward compatibility.
    ``shards``/``backend`` (overriding the config's fields) partition the
    stream across several detector instances -- exact, and worthwhile for
    large windows; the default is the classic single-detector run.

    >>> result = detect_outliers(rows, [(0.5, 3, 100, 20)])
    >>> result.outliers_for_query(0)
    """
    first = next(iter(data), None)
    if isinstance(first, Point):
        points = tuple(data)
    else:
        points = points_from_array(data, times=times)
    group = QueryGroup(_as_queries(queries, kind))
    if config is None:
        config = DetectorConfig(metric=metric)
    runtime = Runtime(group, config=config, shards=shards, backend=backend)
    return runtime.run(points, until=until)


def outlier_flags(
    data,
    r: float,
    k: int,
    win: int,
    slide: int,
    times: Optional[Sequence[float]] = None,
    kind: str = COUNT,
    metric="euclidean",
    config: Optional[DetectorConfig] = None,
) -> np.ndarray:
    """Boolean mask: was each input row *ever* reported as an outlier?

    Single-query convenience over :func:`detect_outliers`; the mask is
    aligned with the input rows (``mask[i]`` covers the row with seq
    ``i``).
    """
    result = detect_outliers(
        data, [(r, k, win, slide)], times=times, kind=kind, metric=metric,
        config=config,
    )
    n = len(data)
    mask = np.zeros(n, dtype=bool)
    for seqs in result.outputs.values():
        for seq in seqs:
            mask[seq] = True
    return mask
