"""Window buffer: the live point population plus a vectorized view.

All detectors keep the active window in a :class:`WindowBuffer`.  It stores
the points in arrival order together with a numpy matrix of their attribute
vectors, so distance scans can be computed blockwise (``metric.to_block``)
instead of point-by-point.  Eviction from the front (window expiry) is O(1)
amortized via an offset that is compacted once the dead prefix outgrows the
live suffix.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.point import DistanceMetric, Point

__all__ = ["WindowBuffer"]


class WindowBuffer:
    """Arrival-ordered point store with a numpy coordinate matrix.

    Invariants:

    * points are appended in strictly increasing ``seq`` order;
    * ``times`` are non-decreasing;
    * the live region is ``self._pts[self._start:]`` and its coordinates are
      ``self._mat[self._start:self._len]``.
    """

    #: compact when the evicted prefix exceeds this many entries *and* the
    #: live suffix (keeps eviction O(1) amortized without frequent copies).
    _COMPACT_THRESHOLD = 4096

    def __init__(self, metric: DistanceMetric, dim: Optional[int] = None):
        self.metric = metric
        self.dim = dim
        self._pts: List[Point] = []
        self._mat: Optional[np.ndarray] = None
        self._len = 0  # rows of _mat in use (== len(_pts) before offsetting)
        self._start = 0
        # cached live-region list; rebuilt lazily after mutations so hot
        # paths (K-SKY scans every point every boundary) avoid re-slicing
        self._view: Optional[List[Point]] = None
        #: total point-to-point distance evaluations served by this buffer
        #: (the substrate-independent work metric; see repro.bench)
        self.distance_rows: int = 0

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return len(self._pts) - self._start

    @property
    def points(self) -> Sequence[Point]:
        """Live points in arrival order (oldest first).

        Returns a cached snapshot list; treat it as read-only.
        """
        if self._view is None:
            self._view = (self._pts[self._start:] if self._start
                          else self._pts)
        return self._view

    def __getitem__(self, i: int) -> Point:
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self._pts[self._start + i]

    # --------------------------------------------------------------- mutation

    def append(self, point: Point) -> None:
        """Append one point (must arrive after every stored point)."""
        self.extend((point,))

    def extend(self, points: Iterable[Point]) -> None:
        """Append a batch of points in arrival order."""
        new = list(points)
        if not new:
            return
        if self._pts and new[0].seq <= self._pts[-1].seq:
            raise ValueError(
                f"points must arrive in increasing seq order: got seq "
                f"{new[0].seq} after {self._pts[-1].seq}"
            )
        if self.dim is None:
            self.dim = new[0].dim
        for p in new:
            if p.dim != self.dim:
                raise ValueError(
                    f"point seq={p.seq} has dim {p.dim}, buffer expects {self.dim}"
                )
        rows = np.asarray([p.values for p in new], dtype=np.float64)
        self._ensure_capacity(self._len + len(new))
        self._mat[self._len : self._len + len(new)] = rows
        self._len += len(new)
        self._pts.extend(new)
        self._view = None

    def _ensure_capacity(self, needed: int) -> None:
        if self._mat is None:
            cap = max(1024, needed)
            self._mat = np.empty((cap, self.dim), dtype=np.float64)
            return
        if needed <= self._mat.shape[0]:
            return
        cap = self._mat.shape[0]
        while cap < needed:
            cap *= 2
        grown = np.empty((cap, self.dim), dtype=np.float64)
        grown[: self._len] = self._mat[: self._len]
        self._mat = grown

    def evict_before(self, start_pos: float, by_time: bool) -> List[Point]:
        """Evict and return points with position < ``start_pos``.

        ``by_time`` selects whether positions are ``time`` (time-based
        windows) or ``seq`` (count-based windows).  Eviction only moves the
        live-region offset; storage is compacted lazily.
        """
        i = self._start
        n = len(self._pts)
        if by_time:
            while i < n and self._pts[i].time < start_pos:
                i += 1
        else:
            while i < n and self._pts[i].seq < start_pos:
                i += 1
        evicted = self._pts[self._start : i]
        self._start = i
        self._view = None
        self._maybe_compact()
        return evicted

    def _maybe_compact(self) -> None:
        if self._start < self._COMPACT_THRESHOLD or self._start < len(self):
            return
        live = len(self._pts) - self._start
        if self._mat is not None:
            self._mat[:live] = self._mat[self._start : self._len]
        self._pts = self._pts[self._start :]
        self._len = live
        self._start = 0
        self._view = None

    def clear(self) -> None:
        """Drop everything (used when a detector is reset)."""
        self._pts = []
        self._len = 0
        self._start = 0
        self._view = None

    # ---------------------------------------------------------------- lookup

    def position_of_seq(self, seq: int) -> int:
        """Index within the live region of the point with the given ``seq``.

        Sequences are contiguous (streams never skip arrival numbers), so
        this is O(1) arithmetic validated against the stored point.
        """
        if not len(self):
            raise KeyError(seq)
        base = self._pts[self._start].seq
        i = seq - base
        if not 0 <= i < len(self) or self._pts[self._start + i].seq != seq:
            raise KeyError(seq)
        return i

    def first_index_at_or_after_time(self, t: float) -> int:
        """Smallest live index whose point has ``time >= t`` (len if none)."""
        times = [p.time for p in self.points]
        return bisect_left(times, t)

    # ------------------------------------------------------------- vectorized

    def matrix(self) -> np.ndarray:
        """Coordinate matrix of the live region (shared storage; do not write)."""
        if self._mat is None:
            return np.empty((0, self.dim or 0), dtype=np.float64)
        return self._mat[self._start : self._len]

    def distances_from(
        self, values: Sequence[float], lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Distances from ``values`` to live points ``[lo, hi)`` (live indexes)."""
        block = self.matrix()
        if hi is None:
            hi = block.shape[0]
        self.distance_rows += max(hi - lo, 0)
        q = np.asarray(values, dtype=np.float64)
        return self.metric.to_block(q, block[lo:hi])

    def neighbor_count(
        self, values: Sequence[float], radius: float, lo: int = 0,
        hi: Optional[int] = None,
    ) -> int:
        """Number of live points in ``[lo, hi)`` within ``radius`` of ``values``.

        Note: if the query vector itself is stored inside the range, it is
        counted too (distance 0); callers subtract the self-match.
        """
        d = self.distances_from(values, lo, hi)
        return int((d <= radius).sum())
