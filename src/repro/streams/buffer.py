"""Window buffer: the live point population plus a vectorized view.

All detectors keep the active window in a :class:`WindowBuffer`.  It stores
the points in arrival order together with a numpy matrix of their attribute
vectors, so distance scans can be computed blockwise (``metric.to_block``)
or as one batched pairwise matrix (``metric.pairwise``) instead of
point-by-point.  Arrival sequence numbers and timestamps are mirrored into
cached numpy arrays so window expiry and time lookups are ``searchsorted``
calls rather than Python loops.  Eviction from the front (window expiry)
only moves an offset; storage is compacted once the dead prefix outgrows
the live suffix.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..core.point import DistanceMetric, Point

__all__ = ["WindowBuffer"]


class WindowBuffer:
    """Arrival-ordered point store with a numpy coordinate matrix.

    Invariants:

    * points are appended in strictly increasing ``seq`` order;
    * ``times`` are non-decreasing;
    * the live region is ``self._pts[self._start:]``; its coordinates are
      ``self._mat[self._start:self._len]`` and its seqs/times are the same
      slice of ``self._seqs``/``self._times``.
    """

    #: compact when the evicted prefix exceeds this many entries *and* the
    #: live suffix (keeps eviction O(1) amortized without frequent copies).
    _COMPACT_THRESHOLD = 4096

    #: tile cap for batched pairwise kernels: at most this many float64
    #: elements per distance-matrix tile (bounds transient memory to ~32 MB
    #: of distances plus the broadcast diff workspace)
    _PAIRWISE_TILE_ELEMS = 1 << 22

    def __init__(self, metric: DistanceMetric, dim: Optional[int] = None):
        self.metric = metric
        self.dim = dim
        self._pts: List[Point] = []
        self._mat: Optional[np.ndarray] = None
        self._seqs: Optional[np.ndarray] = None
        self._times: Optional[np.ndarray] = None
        self._len = 0  # rows of _mat in use (== len(_pts) before offsetting)
        self._start = 0
        # cached live-region list; rebuilt lazily after mutations so hot
        # paths (K-SKY scans every point every boundary) avoid re-slicing
        self._view: Optional[List[Point]] = None
        # cached structure-of-arrays views of the live region (Python
        # lists, so the K-SKY scan loops touch ints/floats without per-
        # candidate attribute access); invalidated with _view
        self._seq_list: Optional[List[int]] = None
        self._pos_seq_list: Optional[List[float]] = None
        self._pos_time_list: Optional[List[float]] = None
        # cached float64 positions of the live region (count-based
        # windows); the vectorized skyband engine gathers from it
        self._pos_seq_arr: Optional[np.ndarray] = None
        #: total points ever appended (monotone; never reset) -- attached
        #: grid indexes use it as an absolute position axis that survives
        #: eviction and compaction
        self._appended = 0
        #: total point-to-point distance evaluations served by this buffer
        #: (the substrate-independent work metric; see repro.bench)
        self.distance_rows: int = 0
        #: number of numpy distance-kernel launches (one per ``to_block``
        #: call or pairwise tile); the batched refresh engine exists to
        #: shrink this number, see ``repro.metrics.profiling``
        self.kernel_calls: int = 0

    # ------------------------------------------------------------------ size

    def __len__(self) -> int:
        return len(self._pts) - self._start

    @property
    def points(self) -> Sequence[Point]:
        """Live points in arrival order (oldest first).

        Returns a cached snapshot list; treat it as read-only.
        """
        if self._view is None:
            self._view = (self._pts[self._start:] if self._start
                          else self._pts)
        return self._view

    def __getitem__(self, i: int) -> Point:
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(i)
        return self._pts[self._start + i]

    @property
    def appended_total(self) -> int:
        """Total points ever appended (monotone across eviction/compaction).

        ``appended_total - len(self)`` is the number of evicted points;
        live index ``i`` corresponds to absolute position
        ``appended_total - len(self) + i``.
        """
        return self._appended

    def seqs(self) -> List[int]:
        """Live-region sequence numbers as a cached list of Python ints.

        The K-SKY scan loops index this instead of touching ``Point``
        attributes per candidate; treat it as read-only.
        """
        if self._seq_list is None:
            if self._seqs is None or self._start >= self._len:
                self._seq_list = []
            else:
                self._seq_list = self._seqs[self._start:self._len].tolist()
        return self._seq_list

    def positions(self, by_time: bool) -> List[float]:
        """Live-region window positions (cached list of Python floats).

        Positions are ``time`` for time-based windows, ``float(seq)`` for
        count-based ones -- the same convention as ``evict_before``.
        Treat the returned list as read-only.
        """
        if by_time:
            if self._pos_time_list is None:
                if self._times is None or self._start >= self._len:
                    self._pos_time_list = []
                else:
                    self._pos_time_list = (
                        self._times[self._start:self._len].tolist())
            return self._pos_time_list
        if self._pos_seq_list is None:
            if self._seqs is None or self._start >= self._len:
                self._pos_seq_list = []
            else:
                self._pos_seq_list = (
                    self._seqs[self._start:self._len]
                    .astype(np.float64).tolist())
        return self._pos_seq_list

    def seq_array(self) -> np.ndarray:
        """Live-region sequence numbers as an int64 array (a view into the
        backing storage -- read-only, valid until the next mutation)."""
        if self._seqs is None or self._start >= self._len:
            return np.empty(0, dtype=np.int64)
        return self._seqs[self._start: self._len]

    def pos_array(self, by_time: bool) -> np.ndarray:
        """Live-region window positions as a float64 array.

        Same values as :meth:`positions` (``time`` for time-based windows,
        ``float(seq)`` for count-based ones); the count-based conversion
        is cached per buffer epoch.  Read-only, valid until the next
        mutation.
        """
        if self._start >= self._len or self._seqs is None:
            return np.empty(0, dtype=np.float64)
        if by_time:
            return self._times[self._start: self._len]
        if self._pos_seq_arr is None:
            self._pos_seq_arr = (
                self._seqs[self._start: self._len].astype(np.float64))
        return self._pos_seq_arr

    # --------------------------------------------------------------- mutation

    def append(self, point: Point) -> None:
        """Append one point (must arrive after every stored point)."""
        self.extend((point,))

    def extend(self, points: Iterable[Point]) -> None:
        """Append a batch of points in arrival order."""
        new = list(points)
        if not new:
            return
        if self._pts and new[0].seq <= self._pts[-1].seq:
            raise ValueError(
                f"points must arrive in increasing seq order: got seq "
                f"{new[0].seq} after {self._pts[-1].seq}"
            )
        if self.dim is None:
            self.dim = new[0].dim
        for p in new:
            if p.dim != self.dim:
                raise ValueError(
                    f"point seq={p.seq} has dim {p.dim}, buffer expects {self.dim}"
                )
        rows = np.asarray([p.values for p in new], dtype=np.float64)
        self._ensure_capacity(self._len + len(new))
        end = self._len + len(new)
        self._mat[self._len : end] = rows
        self._seqs[self._len : end] = [p.seq for p in new]
        self._times[self._len : end] = [p.time for p in new]
        self._len = end
        self._pts.extend(new)
        self._appended += len(new)
        self._invalidate_views()

    def _ensure_capacity(self, needed: int) -> None:
        if self._mat is None:
            cap = max(1024, needed)
            self._mat = np.empty((cap, self.dim), dtype=np.float64)
            self._seqs = np.empty(cap, dtype=np.int64)
            self._times = np.empty(cap, dtype=np.float64)
            return
        if needed <= self._mat.shape[0]:
            return
        cap = self._mat.shape[0]
        while cap < needed:
            cap *= 2
        grown = np.empty((cap, self.dim), dtype=np.float64)
        grown[: self._len] = self._mat[: self._len]
        self._mat = grown
        grown_seqs = np.empty(cap, dtype=np.int64)
        grown_seqs[: self._len] = self._seqs[: self._len]
        self._seqs = grown_seqs
        grown_times = np.empty(cap, dtype=np.float64)
        grown_times[: self._len] = self._times[: self._len]
        self._times = grown_times

    def evict_before(self, start_pos: float, by_time: bool) -> List[Point]:
        """Evict and return points with position < ``start_pos``.

        ``by_time`` selects whether positions are ``time`` (time-based
        windows) or ``seq`` (count-based windows).  The dead-prefix length
        is found by ``searchsorted`` over the cached position array (both
        are sorted by the buffer invariants), so a boundary costs O(log W)
        instead of one Python iteration per expired point.  Eviction only
        moves the live-region offset; storage is compacted lazily.
        """
        arr = self._times if by_time else self._seqs
        if arr is None or self._start >= self._len:
            return []
        i = self._start + int(
            np.searchsorted(arr[self._start : self._len], start_pos,
                            side="left")
        )
        if i == self._start:
            return []
        evicted = self._pts[self._start : i]
        self._start = i
        self._invalidate_views()
        self._maybe_compact()
        return evicted

    def _maybe_compact(self) -> None:
        if self._start < self._COMPACT_THRESHOLD or self._start < len(self):
            return
        live = len(self._pts) - self._start
        if self._mat is not None:
            self._mat[:live] = self._mat[self._start : self._len]
            self._seqs[:live] = self._seqs[self._start : self._len]
            self._times[:live] = self._times[self._start : self._len]
        self._pts = self._pts[self._start :]
        self._len = live
        self._start = 0
        self._invalidate_views()

    def clear(self) -> None:
        """Drop everything (used when a detector is reset).

        ``appended_total`` is *not* reset: it is an absolute position axis
        and attached grid indexes rely on its monotonicity.
        """
        self._pts = []
        self._len = 0
        self._start = 0
        self._invalidate_views()

    def _invalidate_views(self) -> None:
        self._view = None
        self._seq_list = None
        self._pos_seq_list = None
        self._pos_time_list = None
        self._pos_seq_arr = None

    # ---------------------------------------------------------------- lookup

    def position_of_seq(self, seq: int) -> int:
        """Index within the live region of the point with the given ``seq``.

        Unsharded streams have contiguous sequences, making this O(1)
        arithmetic; a shard of a value-partitioned stream holds a
        subsequence with gaps, so on an arithmetic miss the lookup falls
        back to a ``searchsorted`` over the cached seq array.
        """
        if not len(self):
            raise KeyError(seq)
        base = self._pts[self._start].seq
        i = seq - base
        if 0 <= i < len(self) and self._pts[self._start + i].seq == seq:
            return i
        i = self.first_index_at_or_after_seq(seq)
        if i < len(self) and self._pts[self._start + i].seq == seq:
            return i
        raise KeyError(seq)

    def first_index_at_or_after_seq(self, seq: int) -> int:
        """Smallest live index whose point has ``seq >=`` the given value
        (len if none).

        A ``searchsorted`` over the cached seq array -- correct for shard
        streams whose sequence numbers skip, unlike base-offset arithmetic.
        """
        if self._seqs is None or self._start >= self._len:
            return 0
        return int(
            np.searchsorted(self._seqs[self._start : self._len], seq,
                            side="left")
        )

    def first_index_at_or_after_time(self, t: float) -> int:
        """Smallest live index whose point has ``time >= t`` (len if none).

        A ``searchsorted`` over the cached timestamp array -- O(log W), no
        per-call list rebuild.
        """
        if self._times is None or self._start >= self._len:
            return 0
        return int(
            np.searchsorted(self._times[self._start : self._len], t,
                            side="left")
        )

    # ------------------------------------------------------------- vectorized

    def matrix(self) -> np.ndarray:
        """Coordinate matrix of the live region (shared storage; do not write)."""
        if self._mat is None:
            return np.empty((0, self.dim or 0), dtype=np.float64)
        return self._mat[self._start : self._len]

    def distances_from(
        self, values: Sequence[float], lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Distances from ``values`` to live points ``[lo, hi)`` (live indexes)."""
        block = self.matrix()
        if hi is None:
            hi = block.shape[0]
        self.distance_rows += max(hi - lo, 0)
        self.kernel_calls += 1
        q = np.asarray(values, dtype=np.float64)
        return self.metric.to_block(q, block[lo:hi])

    def pairwise_block(
        self, queries: np.ndarray, lo: int = 0, hi: Optional[int] = None
    ) -> np.ndarray:
        """Distance matrix from ``queries`` rows to live points ``[lo, hi)``.

        This is the batched-refresh kernel: one (or a few tiled) numpy
        calls replace one ``distances_from`` launch per evaluated point.
        ``distance_rows`` accounting is preserved -- every row of the
        returned matrix counts exactly as it would have through
        ``distances_from``.  Row ``i`` is bit-identical to
        ``distances_from(queries[i], lo, hi)`` (see
        :meth:`DistanceMetric.pairwise`).
        """
        block = self.matrix()
        if hi is None:
            hi = block.shape[0]
        n_cols = max(hi - lo, 0)
        queries = np.asarray(queries, dtype=np.float64)
        n_rows = queries.shape[0]
        self.distance_rows += n_rows * n_cols
        if n_rows == 0 or n_cols == 0:
            return np.empty((n_rows, n_cols), dtype=np.float64)
        return self._pairwise_tiled(queries, block[lo:hi])

    def pairwise_rows(
        self, queries: np.ndarray, col_idx: np.ndarray
    ) -> np.ndarray:
        """Distance matrix from ``queries`` rows to the live points at the
        given live indexes (``col_idx``, any order, duplicates allowed).

        This is the grid-pruned refresh kernel: instead of a contiguous
        ``[lo, hi)`` slice it gathers only the spatially plausible
        candidate columns, so the kernel shrinks from O(rows x window) to
        O(rows x neighborhood).  Each element is bit-identical to the
        corresponding column of :meth:`pairwise_block` (same elementwise
        arithmetic on the same float64 values), which the pruned/unpruned
        output-equality gates depend on.  ``distance_rows`` counts only
        the distances actually computed -- the pruning saving is visible
        in the counter, unlike the batched engine's folding.
        """
        return self.pairwise_gathered(queries, self.matrix()[col_idx])

    def pairwise_gathered(
        self, queries: np.ndarray, sub: np.ndarray
    ) -> np.ndarray:
        """Distance matrix from ``queries`` rows to a pre-gathered
        candidate sub-matrix (rows of :meth:`matrix`, gathered by the
        caller).

        Splitting the gather from the kernel lets a chunked scan gather
        its whole candidate span once and pass per-chunk *views* here,
        instead of paying one fancy-index copy per chunk
        (:meth:`pairwise_rows` is the gather-included convenience form).
        Arithmetic and ``distance_rows`` accounting are identical.
        """
        queries = np.asarray(queries, dtype=np.float64)
        n_rows, n_cols = queries.shape[0], sub.shape[0]
        self.distance_rows += n_rows * n_cols
        if n_rows == 0 or n_cols == 0:
            return np.empty((n_rows, n_cols), dtype=np.float64)
        return self._pairwise_tiled(queries, sub)

    def _pairwise_tiled(self, queries: np.ndarray,
                        sub: np.ndarray) -> np.ndarray:
        """Shared tiling for the batched pairwise kernels (bounds transient
        memory; one ``kernel_calls`` increment per tile)."""
        n_rows, n_cols = queries.shape[0], sub.shape[0]
        per_tile = max(
            1, self._PAIRWISE_TILE_ELEMS // max(n_cols * sub.shape[1], 1)
        )
        if per_tile >= n_rows:
            self.kernel_calls += 1
            return self.metric.pairwise(queries, sub)
        out = np.empty((n_rows, n_cols), dtype=np.float64)
        for r0 in range(0, n_rows, per_tile):
            r1 = min(n_rows, r0 + per_tile)
            out[r0:r1] = self.metric.pairwise(queries[r0:r1], sub)
            self.kernel_calls += 1
        return out

    def neighbor_count(
        self, values: Sequence[float], radius: float, lo: int = 0,
        hi: Optional[int] = None,
    ) -> int:
        """Number of live points in ``[lo, hi)`` within ``radius`` of ``values``.

        Note: if the query vector itself is stored inside the range, it is
        counted too (distance 0); callers subtract the self-match.
        """
        d = self.distances_from(values, lo, hi)
        return int((d <= radius).sum())
