"""Synthetic stream generator matching the paper's evaluation data.

Sec. 6.1: *"We also implement a data generator to create a dataset
containing 100M points.  This dataset is composed of Gaussian distributed
data points as inlier candidates and uniform distributed ones as outliers.
The outliers are randomly distributed in each time segment of the data
stream."*

:class:`SyntheticStream` reproduces that recipe:

* inlier candidates are drawn from a mixture of Gaussian clusters whose
  centers drift slowly (mild concept drift, so window experiments exercise
  expiry paths);
* outlier candidates are uniform over an enlarged bounding box;
* the stream is divided into fixed-length *segments*; within each segment
  the outlier positions are chosen uniformly at random, so the outlier rate
  per segment is exactly ``outlier_rate`` (paper keeps it < 5%).
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from ..core.point import Point
from .source import StreamSource

__all__ = ["SyntheticStream", "SyntheticConfig", "make_synthetic_points"]


class SyntheticConfig:
    """Parameters of the synthetic generator (defaults follow Sec. 6.1)."""

    def __init__(
        self,
        dim: int = 2,
        n_clusters: int = 4,
        cluster_spread: float = 120.0,
        value_range: Tuple[float, float] = (0.0, 10_000.0),
        outlier_rate: float = 0.03,
        segment_len: int = 1000,
        drift: float = 4.0,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= outlier_rate < 1.0:
            raise ValueError(f"outlier_rate must be in [0, 1), got {outlier_rate}")
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if segment_len < 1:
            raise ValueError("segment_len must be >= 1")
        lo, hi = value_range
        if hi <= lo:
            raise ValueError("value_range must be (lo, hi) with hi > lo")
        self.dim = dim
        self.n_clusters = n_clusters
        self.cluster_spread = cluster_spread
        self.value_range = (float(lo), float(hi))
        self.outlier_rate = outlier_rate
        self.segment_len = segment_len
        self.drift = drift
        self.seed = seed


class SyntheticStream(StreamSource):
    """Gaussian-inlier / uniform-outlier stream (Sec. 6.1 generator)."""

    def __init__(self, config: SyntheticConfig = None, **overrides) -> None:
        if config is None:
            config = SyntheticConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config object or keyword overrides")
        self.config = config

    def __iter__(self) -> Iterator[Point]:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        lo, hi = cfg.value_range
        span = hi - lo
        # Cluster centers away from the box edges so uniform draws are
        # genuinely sparse relative to the Gaussian mass.
        centers = rng.uniform(lo + 0.2 * span, hi - 0.2 * span,
                              size=(cfg.n_clusters, cfg.dim))
        seq = 0
        while True:
            n = cfg.segment_len
            n_out = int(round(n * cfg.outlier_rate))
            out_slots = set(rng.choice(n, size=n_out, replace=False)) if n_out else set()
            which = rng.integers(0, cfg.n_clusters, size=n)
            gauss = rng.normal(0.0, cfg.cluster_spread, size=(n, cfg.dim))
            unif = rng.uniform(lo, hi, size=(n, cfg.dim))
            for i in range(n):
                if i in out_slots:
                    row = unif[i]
                else:
                    row = centers[which[i]] + gauss[i]
                yield Point(seq=seq, values=tuple(float(v) for v in row))
                seq += 1
            centers = centers + rng.normal(0.0, cfg.drift, size=centers.shape)
            centers = np.clip(centers, lo, hi)

    def segment_outlier_count(self) -> int:
        """Number of uniform-outlier slots injected per segment."""
        return int(round(self.config.segment_len * self.config.outlier_rate))


def make_synthetic_points(
    n: int,
    dim: int = 2,
    outlier_rate: float = 0.03,
    seed: int = 7,
    **config_overrides,
) -> Tuple[Point, ...]:
    """Convenience: materialize ``n`` synthetic points."""
    stream = SyntheticStream(
        SyntheticConfig(dim=dim, outlier_rate=outlier_rate, seed=seed,
                        **config_overrides)
    )
    return stream.take(n)
