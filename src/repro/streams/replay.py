"""Stream and result persistence: CSV / JSON-lines round-trips.

Real deployments rarely hold streams in memory: they replay recorded
traces and archive detection results.  This module provides the IO layer:

* :func:`save_points_csv` / :func:`load_points_csv` -- point streams with
  ``seq,time,v0..vN`` columns;
* :func:`save_trades_csv` / :func:`load_trades_csv` -- the STT schema
  (``name,transId,time,volume,price,type``) used by the stock simulator;
* :func:`save_results_jsonl` / :func:`load_results_jsonl` -- one JSON
  object per (query, boundary) output, preserving the exact outlier sets
  so archived runs can be diffed with
  :func:`repro.metrics.results.compare_outputs`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple, Union

from ..core.point import Point
from ..metrics.results import OutputKey
from .stock import TradeRecord

__all__ = [
    "load_points_csv",
    "save_points_csv",
    "load_trades_csv",
    "save_trades_csv",
    "load_results_jsonl",
    "save_results_jsonl",
]

PathLike = Union[str, Path]


# ------------------------------------------------------------------ points

def save_points_csv(points: Sequence[Point], path: PathLike) -> int:
    """Write a point stream; returns the number of rows written."""
    points = list(points)
    if not points:
        raise ValueError("cannot save an empty stream")
    dim = points[0].dim
    header = ["seq", "time"] + [f"v{i}" for i in range(dim)]
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        for p in points:
            if p.dim != dim:
                raise ValueError(
                    f"point seq={p.seq} has dim {p.dim}, stream has {dim}"
                )
            writer.writerow([p.seq, repr(p.time)] + [repr(v) for v in p.values])
    return len(points)


def load_points_csv(path: PathLike) -> Tuple[Point, ...]:
    """Read a point stream written by :func:`save_points_csv`.

    Also accepts externally-produced files: any CSV whose header starts
    with ``seq,time`` followed by one column per attribute.
    """
    out: List[Point] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or header[:2] != ["seq", "time"]:
            raise ValueError(
                f"{path}: expected header starting with 'seq,time', got {header}"
            )
        n_attrs = len(header) - 2
        if n_attrs < 1:
            raise ValueError(f"{path}: no attribute columns")
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2 + n_attrs:
                raise ValueError(
                    f"{path}:{lineno}: expected {2 + n_attrs} columns, "
                    f"got {len(row)}"
                )
            out.append(Point(
                seq=int(row[0]),
                time=float(row[1]),
                values=tuple(float(v) for v in row[2:]),
            ))
    for earlier, later in zip(out, out[1:]):
        if later.seq <= earlier.seq:
            raise ValueError(f"{path}: seq values must strictly increase")
    return tuple(out)


# ------------------------------------------------------------------ trades

_TRADE_HEADER = ["name", "transId", "time", "volume", "price", "type",
                 "isAnomaly"]


def save_trades_csv(records: Iterable[TradeRecord], path: PathLike) -> int:
    """Write trade records in the paper's STT schema."""
    n = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_TRADE_HEADER)
        for rec in records:
            writer.writerow([
                rec.name, rec.trans_id, repr(rec.time), repr(rec.volume),
                repr(rec.price), rec.type, int(rec.is_anomaly),
            ])
            n += 1
    if n == 0:
        raise ValueError("cannot save an empty trade trace")
    return n


def load_trades_csv(path: PathLike) -> Tuple[TradeRecord, ...]:
    """Read trade records written by :func:`save_trades_csv`."""
    out: List[TradeRecord] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _TRADE_HEADER:
            raise ValueError(f"{path}: unexpected header {header}")
        for row in reader:
            if not row:
                continue
            out.append(TradeRecord(
                name=row[0],
                trans_id=int(row[1]),
                time=float(row[2]),
                volume=float(row[3]),
                price=float(row[4]),
                type=row[5],
                is_anomaly=bool(int(row[6])),
            ))
    return tuple(out)


# ------------------------------------------------------------------ results

def save_results_jsonl(
    outputs: Dict[OutputKey, FrozenSet[int]], path: PathLike
) -> int:
    """Archive detector outputs, one JSON object per (query, boundary)."""
    with open(path, "w") as fh:
        for (qi, t) in sorted(outputs):
            fh.write(json.dumps({
                "query": qi,
                "boundary": t,
                "outliers": sorted(outputs[(qi, t)]),
            }))
            fh.write("\n")
    return len(outputs)


def load_results_jsonl(path: PathLike) -> Dict[OutputKey, FrozenSet[int]]:
    """Load outputs archived by :func:`save_results_jsonl`."""
    out: Dict[OutputKey, FrozenSet[int]] = {}
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                key = (int(obj["query"]), int(obj["boundary"]))
                out[key] = frozenset(int(s) for s in obj["outliers"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed record") from exc
    return out
