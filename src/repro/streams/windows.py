"""Periodic sliding-window semantics (CQL-style) and schedule arithmetic.

The paper (Sec. 2) adopts the periodic sliding windows of CQL [3]: each
query ``q`` has a window size ``q.win`` and a slide ``q.slide``, both either
in *counts* (number of tuples) or in *time* units.  We use the convention:

* query ``q`` produces output at every stream position ``t = i * q.slide``
  for ``i >= 1`` -- ``t`` measured in arrival counts (count-based) or time
  units (time-based);
* the window evaluated at boundary ``t`` covers ``[max(0, t - q.win), t)``,
  i.e. a point ``p`` is in the population iff ``t - q.win <= pos(p) < t``
  where ``pos`` is ``seq`` (count-based) or ``time`` (time-based).

Windows during stream warm-up (before ``q.win`` positions have passed) are
*partial*; all detectors in this package evaluate them identically, so
cross-detector equivalence holds from the first boundary.

The swift-query construction of Sec. 4.2/4.3 lives here too:
``SwiftSchedule`` derives the single schedule (``slide = gcd`` of all
slides, ``win = max`` of all window sizes) that subsumes every member
query, and answers "which queries are due at boundary ``t``?".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

__all__ = ["COUNT", "TIME", "WindowSpec", "SwiftSchedule", "gcd_all"]

COUNT = "count"
TIME = "time"
_KINDS = (COUNT, TIME)


def gcd_all(values: Iterable[int]) -> int:
    """Greatest common divisor of a non-empty iterable of positive ints."""
    result = 0
    seen = False
    for v in values:
        seen = True
        result = math.gcd(result, int(v))
    if not seen:
        raise ValueError("gcd_all requires at least one value")
    return result


@dataclass(frozen=True)
class WindowSpec:
    """Window-specific parameters ``(win, slide)`` of one query.

    ``win`` and ``slide`` are positive integers in the unit selected by
    ``kind`` (tuple counts or integral time units).  Integral units keep the
    boundary arithmetic (multiples, gcd) exact, matching the paper's
    greatest-common-divisor swift-query construction.
    """

    win: int
    slide: int
    kind: str = COUNT

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"window kind must be one of {_KINDS}, got {self.kind!r}")
        if not isinstance(self.win, int) or isinstance(self.win, bool):
            raise TypeError(f"win must be an int, got {type(self.win).__name__}")
        if not isinstance(self.slide, int) or isinstance(self.slide, bool):
            raise TypeError(f"slide must be an int, got {type(self.slide).__name__}")
        if self.win <= 0:
            raise ValueError(f"win must be positive, got {self.win}")
        if self.slide <= 0:
            raise ValueError(f"slide must be positive, got {self.slide}")
        if self.slide > self.win:
            raise ValueError(
                f"slide ({self.slide}) larger than win ({self.win}) would skip "
                "tuples between consecutive windows; the paper's workloads keep "
                "slide <= win"
            )

    def due_at(self, t: int) -> bool:
        """True iff this query produces output at boundary ``t``."""
        return t >= self.slide and t % self.slide == 0

    def interval_at(self, t: int) -> Tuple[int, int]:
        """Half-open population interval ``[start, end)`` at boundary ``t``."""
        return (max(0, t - self.win), t)

    def boundaries(self, until: int) -> Iterator[int]:
        """All output boundaries ``t <= until`` in increasing order."""
        t = self.slide
        while t <= until:
            yield t
            t += self.slide

    def contains(self, pos: float, t: int) -> bool:
        """True iff a point at stream position ``pos`` is in the window at ``t``."""
        start, end = self.interval_at(t)
        return start <= pos < end


class SwiftSchedule:
    """The single swift schedule subsuming a set of window specifications.

    Per Sec. 4.3 / Sec. 5 of the paper, a group of queries with arbitrary
    ``win`` and ``slide`` is supported by one *swift query* whose window is
    the largest member window and whose slide is the greatest common divisor
    of the member slides.  Every member boundary is then a swift boundary,
    and every member window is a suffix of the swift window.
    """

    def __init__(self, specs: Sequence[WindowSpec]):
        if not specs:
            raise ValueError("SwiftSchedule requires at least one WindowSpec")
        kinds = {s.kind for s in specs}
        if len(kinds) != 1:
            raise ValueError(
                f"all windows in one group must share a kind, got {sorted(kinds)}"
            )
        self.kind: str = specs[0].kind
        self.specs: Tuple[WindowSpec, ...] = tuple(specs)
        self.win: int = max(s.win for s in specs)
        self.slide: int = gcd_all(s.slide for s in specs)
        self.spec = WindowSpec(win=self.win, slide=self.slide, kind=self.kind)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SwiftSchedule(kind={self.kind!r}, win={self.win}, "
            f"slide={self.slide}, members={len(self.specs)})"
        )

    def due_at(self, t: int) -> bool:
        """True iff the swift query itself fires at ``t``."""
        return self.spec.due_at(t)

    def due_members(self, t: int) -> List[int]:
        """Indexes (into the constructor sequence) of member specs due at ``t``."""
        return [i for i, s in enumerate(self.specs) if s.due_at(t)]

    def boundaries(self, until: int) -> Iterator[int]:
        """All swift boundaries up to and including ``until``."""
        return self.spec.boundaries(until)

    def member_boundaries(self, until: int) -> Iterator[Tuple[int, List[int]]]:
        """Swift boundaries paired with the member queries due at each.

        Boundaries where no member is due are still yielded (with an empty
        list): the swift query keeps sliding to refresh evidence and discover
        safe inliers early (Sec. 4.2, "q_sft is potentially scheduled more
        frequently than any query in Q").
        """
        for t in self.boundaries(until):
            yield t, self.due_members(t)
