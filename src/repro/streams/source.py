"""Stream source abstractions and boundary-aligned batching.

Detectors consume a stream as a sequence of *(boundary, batch)* pairs: all
points whose stream position falls in ``[t - slide, t)`` are delivered
together, then the detector processes boundary ``t``.  This mirrors the
paper's execution model ("the K-SKY algorithm is called after we receive a
batch of new points based on the slide size", Sec. 3.1.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..core.point import Point
from .windows import COUNT, TIME

__all__ = [
    "StreamSource",
    "ListSource",
    "batches_by_boundary",
    "positions",
    "stream_end_boundary",
]


def positions(points: Iterable[Point], kind: str) -> List[float]:
    """Stream positions of points for the given window kind."""
    if kind == COUNT:
        return [float(p.seq) for p in points]
    if kind == TIME:
        return [p.time for p in points]
    raise ValueError(f"unknown window kind {kind!r}")


class StreamSource:
    """Base class for finite or infinite point sources.

    Subclasses implement ``__iter__``; the base class provides ``take`` and
    list materialization helpers used by benchmarks and examples.
    """

    def __iter__(self) -> Iterator[Point]:  # pragma: no cover - interface
        raise NotImplementedError

    def take(self, n: int) -> Tuple[Point, ...]:
        """Materialize the first ``n`` points."""
        out: List[Point] = []
        for p in self:
            out.append(p)
            if len(out) >= n:
                break
        return tuple(out)


class ListSource(StreamSource):
    """A source wrapping a pre-materialized point sequence."""

    def __init__(self, points: Sequence[Point]):
        self._points = tuple(points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)


def stream_end_boundary(points: Sequence[Point], slide: int,
                        kind: str) -> int:
    """Default ``until``: the first boundary strictly past the last point.

    This is the single definition of "the end of a finite stream"; the
    executor and the sharded runtime both use it, so a shard driven with
    an explicit ``until`` stops at exactly the boundary the whole stream
    would have (0 for an empty stream -- no boundaries).
    """
    if slide <= 0:
        raise ValueError("slide must be positive")
    if not points:
        return 0
    last = positions(points, kind)[-1]
    return (int(last) // slide + 1) * slide


def batches_by_boundary(
    points: Sequence[Point], slide: int, kind: str, until: int = None
) -> Iterator[Tuple[int, List[Point]]]:
    """Group a finite stream into per-boundary batches.

    Yields ``(t, batch)`` for each boundary ``t = slide, 2*slide, ...`` where
    ``batch`` holds the points with position in ``[t - slide, t)``.  The
    iteration stops at ``until`` if given, else at the last boundary that is
    <= the final point's position + slide (so every point is delivered).

    Points must be position-sorted (guaranteed for ``seq``; validated for
    ``time``).
    """
    if slide <= 0:
        raise ValueError("slide must be positive")
    pos = positions(points, kind)
    for earlier, later in zip(pos, pos[1:]):
        if later < earlier:
            raise ValueError("stream positions must be non-decreasing")
    if until is None:
        if not points:
            return
        until = stream_end_boundary(points, slide, kind)
    i = 0
    t = slide
    n = len(points)
    while t <= until:
        batch: List[Point] = []
        while i < n and pos[i] < t:
            batch.append(points[i])
            i += 1
        yield t, batch
        t += slide
