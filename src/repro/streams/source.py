"""Stream source abstractions and boundary-aligned batching.

Detectors consume a stream as a sequence of *(boundary, batch)* pairs: all
points whose stream position falls in ``[t - slide, t)`` are delivered
together, then the detector processes boundary ``t``.  This mirrors the
paper's execution model ("the K-SKY algorithm is called after we receive a
batch of new points based on the slide size", Sec. 3.1.2).

:class:`IngestGuard` sits in front of that batching for untrusted
streams: real feeds carry poison records (NaN/inf coordinates, sequence
or timestamp regressions, wrong arity, plain garbage) and a single one
reaching the window buffer corrupts every later verdict -- or, worse,
raises deep inside a worker and takes the shard down.  The guard
validates records *before* they become :class:`~repro.core.point.Point`
instances, quarantines offenders to a counted side channel, and admits
only the clean monotone subsequence, so detector state is exactly what a
clean stream would have produced.
"""

from __future__ import annotations

import math
from typing import (Dict, Iterable, Iterator, List, Mapping, Optional,
                    Sequence, Tuple)

from ..core.point import Point
from .windows import COUNT, TIME

__all__ = [
    "StreamSource",
    "ListSource",
    "IngestGuard",
    "batches_by_boundary",
    "positions",
    "stream_end_boundary",
]


def positions(points: Iterable[Point], kind: str) -> List[float]:
    """Stream positions of points for the given window kind."""
    if kind == COUNT:
        return [float(p.seq) for p in points]
    if kind == TIME:
        return [p.time for p in points]
    raise ValueError(f"unknown window kind {kind!r}")


class StreamSource:
    """Base class for finite or infinite point sources.

    Subclasses implement ``__iter__``; the base class provides ``take`` and
    list materialization helpers used by benchmarks and examples.
    """

    def __iter__(self) -> Iterator[Point]:  # pragma: no cover - interface
        raise NotImplementedError

    def take(self, n: int) -> Tuple[Point, ...]:
        """Materialize the first ``n`` points."""
        out: List[Point] = []
        for p in self:
            out.append(p)
            if len(out) >= n:
                break
        return tuple(out)


class ListSource(StreamSource):
    """A source wrapping a pre-materialized point sequence."""

    def __init__(self, points: Sequence[Point]):
        self._points = tuple(points)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)


class IngestGuard:
    """Record validation with a counted quarantine side channel.

    ``admit`` accepts a record in any of the shapes streams arrive in --
    a :class:`~repro.core.point.Point`, a ``(seq, values)`` /
    ``(seq, values, time)`` tuple, or a mapping with ``seq`` / ``values``
    / optional ``time`` keys -- and returns the validated ``Point`` or
    ``None`` after quarantining it.  Rejection reasons:

    * ``non-finite`` -- any NaN/inf coordinate (distances undefined);
    * ``seq-regression`` -- ``seq`` not strictly greater than the last
      admitted record's (count windows index by ``seq``; a regression
      silently corrupts expiry);
    * ``time-regression`` -- ``time`` earlier than the last admitted
      record's (time windows require non-decreasing stamps;
      ``batches_by_boundary`` would refuse the whole stream);
    * ``dim-mismatch`` -- arity differs from the stream's (first admitted
      record, or an explicit ``expect_dim``);
    * ``malformed`` -- missing fields / unconvertible garbage.

    Validation state (last seq/time, learned dimensionality) persists
    across ``filter`` calls, so the guard works record-at-a-time on
    infinite streams.  Quarantined records are *counted and kept*
    (``quarantined``, ``counts``), never silently dropped: the runtime
    surfaces the totals in its merged work counters.
    """

    def __init__(self, expect_dim: Optional[int] = None):
        if expect_dim is not None and expect_dim < 1:
            raise ValueError("expect_dim must be >= 1")
        self.expect_dim = expect_dim
        #: (original record, reason) for every rejected record, in order
        self.quarantined: List[Tuple[object, str]] = []
        #: rejection reason -> count
        self.counts: Dict[str, int] = {}
        self._last_seq: Optional[int] = None
        self._last_time: Optional[float] = None

    @property
    def total_quarantined(self) -> int:
        return len(self.quarantined)

    # ------------------------------------------------------------ plumbing

    def _reject(self, record, reason: str) -> None:
        self.quarantined.append((record, reason))
        self.counts[reason] = self.counts.get(reason, 0) + 1
        return None

    @staticmethod
    def _fields_of(record):
        """``(seq, time_or_None, values_tuple)`` or None if unparseable."""
        try:
            if isinstance(record, Point):
                return int(record.seq), float(record.time), record.values
            if isinstance(record, Mapping):
                seq = int(record["seq"])
                time = (float(record["time"])
                        if record.get("time") is not None else None)
                values = tuple(float(v) for v in record["values"])
                return seq, time, values
            if isinstance(record, (tuple, list)) and len(record) in (2, 3):
                seq = int(record[0])
                values = tuple(float(v) for v in record[1])
                time = float(record[2]) if len(record) == 3 else None
                return seq, time, values
        except (KeyError, TypeError, ValueError):
            return None
        return None

    # ------------------------------------------------------------- guard

    def admit(self, record) -> Optional[Point]:
        """Validate one record; the Point, or None (quarantined)."""
        parsed = self._fields_of(record)
        if parsed is None:
            return self._reject(record, "malformed")
        seq, time, values = parsed
        if not values:
            return self._reject(record, "malformed")
        if any(not math.isfinite(v) for v in values):
            return self._reject(record, "non-finite")
        if time is not None and not math.isfinite(time):
            return self._reject(record, "non-finite")
        if self.expect_dim is not None and len(values) != self.expect_dim:
            return self._reject(record, "dim-mismatch")
        if self._last_seq is not None and seq <= self._last_seq:
            return self._reject(record, "seq-regression")
        effective_time = time if time is not None else float(seq)
        if self._last_time is not None and effective_time < self._last_time:
            return self._reject(record, "time-regression")
        point = record if isinstance(record, Point) else Point(
            seq=seq, time=time, values=values)
        if self.expect_dim is None:
            self.expect_dim = len(values)
        self._last_seq = seq
        self._last_time = effective_time
        return point

    def filter(self, records: Iterable) -> List[Point]:
        """Admit a record sequence; the clean, in-order Point list."""
        out: List[Point] = []
        for record in records:
            point = self.admit(record)
            if point is not None:
                out.append(point)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IngestGuard(quarantined={self.total_quarantined}, "
                f"counts={self.counts})")


def stream_end_boundary(points: Sequence[Point], slide: int,
                        kind: str) -> int:
    """Default ``until``: the first boundary strictly past the last point.

    This is the single definition of "the end of a finite stream"; the
    executor and the sharded runtime both use it, so a shard driven with
    an explicit ``until`` stops at exactly the boundary the whole stream
    would have (0 for an empty stream -- no boundaries).
    """
    if slide <= 0:
        raise ValueError("slide must be positive")
    if not points:
        return 0
    last = positions(points, kind)[-1]
    return (int(last) // slide + 1) * slide


def batches_by_boundary(
    points: Sequence[Point], slide: int, kind: str, until: int = None,
    start: int = 0,
) -> Iterator[Tuple[int, List[Point]]]:
    """Group a finite stream into per-boundary batches.

    Yields ``(t, batch)`` for each boundary ``t = start + slide,
    start + 2*slide, ...`` where ``batch`` holds the points with position
    in ``[t - slide, t)``.  The iteration stops at ``until`` if given,
    else at the last boundary that is <= the final point's position +
    slide (so every point is delivered).

    ``start`` (default 0, must be a boundary, i.e. a multiple of
    ``slide``) resumes batching mid-stream: points positioned before
    ``start`` are skipped -- a checkpoint-restored runtime already holds
    them in its window -- and the first batch delivered is
    ``[start, start + slide)``.

    Points must be position-sorted (guaranteed for ``seq``; validated for
    ``time``).
    """
    if slide <= 0:
        raise ValueError("slide must be positive")
    if start < 0 or start % slide != 0:
        raise ValueError(
            f"start must be a non-negative multiple of slide, got "
            f"start={start} slide={slide}")
    pos = positions(points, kind)
    for earlier, later in zip(pos, pos[1:]):
        if later < earlier:
            raise ValueError("stream positions must be non-decreasing")
    if until is None:
        if not points:
            return
        until = stream_end_boundary(points, slide, kind)
    i = 0
    n = len(points)
    while i < n and pos[i] < start:
        i += 1
    t = start + slide
    while t <= until:
        batch: List[Point] = []
        while i < n and pos[i] < t:
            batch.append(points[i])
            i += 1
        yield t, batch
        t += slide
