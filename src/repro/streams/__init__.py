"""Stream substrates: windows, buffers, sources, and data generators."""

from .buffer import WindowBuffer
from .source import (IngestGuard, ListSource, StreamSource,
                     batches_by_boundary)
from .stock import StockTradeSimulator, TradeRecord, make_stock_points
from .synthetic import SyntheticConfig, SyntheticStream, make_synthetic_points
from .windows import COUNT, TIME, SwiftSchedule, WindowSpec, gcd_all

__all__ = [
    "COUNT",
    "TIME",
    "IngestGuard",
    "ListSource",
    "StockTradeSimulator",
    "StreamSource",
    "SwiftSchedule",
    "SyntheticConfig",
    "SyntheticStream",
    "TradeRecord",
    "WindowBuffer",
    "WindowSpec",
    "batches_by_boundary",
    "gcd_all",
    "make_stock_points",
    "make_synthetic_points",
]
