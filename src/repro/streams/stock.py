"""Simulated Stock Trading Traces (STT) stream.

The paper evaluates the window-parameter experiments (Figs. 11, 12) on the
INETATS Stock Trade Traces [11]: one million transaction records over one
trading day, each with the schema ``name, transId, time, volume, price,
type``.  That dataset is proprietary and the distribution site is defunct,
so per the reproduction rules we *simulate* it.

:class:`StockTradeSimulator` generates a trading day that preserves the
properties the experiments depend on:

* a fixed universe of tickers, each following a regime-switching geometric
  random walk (calm / volatile regimes), so the stream is non-stationary
  and window size genuinely changes which behaviour counts as "recent";
* heavy-tailed (lognormal) trade volumes;
* U-shaped intraday intensity (busy open/close) so count- and time-based
  windows cover different wall-clock spans;
* injected anomalies -- fat-finger prints (price far off the walk) and
  block trades (extreme volume) -- the "unusual transactions" the paper's
  fraud-monitoring motivation describes.

``points()`` projects each trade to the numeric attribute vector used by
the outlier queries (default: price and log-volume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import math

import numpy as np

from ..core.point import Point
from .source import StreamSource

__all__ = ["TradeRecord", "StockTradeSimulator", "make_stock_points"]

_TICKERS = (
    "AAPL", "MSFT", "IBM", "ORCL", "INTC", "CSCO", "HPQ", "DELL", "EMC",
    "TXN", "QCOM", "ADBE", "EBAY", "AMZN", "YHOO", "GOOG",
)

_TRADE_TYPES = ("BUY", "SELL")

#: one trading day, 09:30-16:00, in seconds
_DAY_SECONDS = 6.5 * 3600


@dataclass(frozen=True)
class TradeRecord:
    """One simulated transaction in the STT schema."""

    name: str
    trans_id: int
    time: float
    volume: float
    price: float
    type: str
    is_anomaly: bool = False


class StockTradeSimulator(StreamSource):
    """Synthetic one-day stock trading trace with injected anomalies."""

    def __init__(
        self,
        n_trades: int = 100_000,
        n_tickers: int = 8,
        anomaly_rate: float = 0.01,
        base_price_range: Tuple[float, float] = (20.0, 400.0),
        seed: int = 11,
    ) -> None:
        if n_tickers < 1 or n_tickers > len(_TICKERS):
            raise ValueError(f"n_tickers must be in [1, {len(_TICKERS)}]")
        if not 0.0 <= anomaly_rate < 0.5:
            raise ValueError("anomaly_rate must be in [0, 0.5)")
        if n_trades < 1:
            raise ValueError("n_trades must be >= 1")
        self.n_trades = n_trades
        self.n_tickers = n_tickers
        self.anomaly_rate = anomaly_rate
        self.base_price_range = base_price_range
        self.seed = seed

    # ------------------------------------------------------------ generation

    def records(self) -> Iterator[TradeRecord]:
        """Yield the full trading day as :class:`TradeRecord` objects."""
        rng = np.random.default_rng(self.seed)
        tickers = _TICKERS[: self.n_tickers]
        lo, hi = self.base_price_range
        prices = rng.uniform(lo, hi, size=self.n_tickers)
        # regime 0 = calm, regime 1 = volatile; per-ticker state
        vol_by_regime = (0.0004, 0.0025)
        regimes = rng.integers(0, 2, size=self.n_tickers)

        times = self._arrival_times(rng)
        anomalies = set(
            rng.choice(self.n_trades,
                       size=int(round(self.n_trades * self.anomaly_rate)),
                       replace=False)
        ) if self.anomaly_rate else set()

        for i in range(self.n_trades):
            tix = int(rng.integers(0, self.n_tickers))
            # regime switching: rare flips keep volatility bursty
            if rng.random() < 0.002:
                regimes[tix] = 1 - regimes[tix]
            sigma = vol_by_regime[regimes[tix]]
            prices[tix] *= math.exp(rng.normal(0.0, sigma))
            price = float(prices[tix])
            volume = float(np.round(np.exp(rng.normal(5.5, 1.0))))

            is_anomaly = i in anomalies
            if is_anomaly:
                if rng.random() < 0.5:
                    # fat-finger print: price 5-25% off the walk
                    price *= float(1.0 + rng.choice((-1, 1)) * rng.uniform(0.05, 0.25))
                else:
                    # block trade: volume 30-300x typical
                    volume *= float(rng.uniform(30.0, 300.0))

            yield TradeRecord(
                name=tickers[tix],
                trans_id=i,
                time=float(times[i]),
                volume=max(1.0, volume),
                price=max(0.01, price),
                type=_TRADE_TYPES[int(rng.integers(0, 2))],
                is_anomaly=is_anomaly,
            )

    def _arrival_times(self, rng: np.random.Generator) -> np.ndarray:
        """U-shaped intraday arrival times over one trading day, sorted."""
        n = self.n_trades
        # mixture: 35% open hour, 35% close hour, 30% uniform midday
        u = rng.random(n)
        t = np.empty(n)
        open_mask = u < 0.35
        close_mask = u >= 0.65
        mid_mask = ~(open_mask | close_mask)
        t[open_mask] = rng.uniform(0, 0.15 * _DAY_SECONDS, size=open_mask.sum())
        t[close_mask] = rng.uniform(0.85 * _DAY_SECONDS, _DAY_SECONDS,
                                    size=close_mask.sum())
        t[mid_mask] = rng.uniform(0.15 * _DAY_SECONDS, 0.85 * _DAY_SECONDS,
                                  size=mid_mask.sum())
        t.sort()
        return t

    # ------------------------------------------------------------ projection

    def __iter__(self) -> Iterator[Point]:
        return iter(self.points())

    def points(
        self, attributes: Sequence[str] = ("price", "log_volume")
    ) -> Tuple[Point, ...]:
        """Project trades onto numeric attribute vectors as stream points.

        Supported attributes: ``price``, ``volume``, ``log_volume``,
        ``time_of_day`` (seconds since the open).  ``seq`` is the transaction
        id and ``time`` the trade timestamp, so both count- and time-based
        windows apply.
        """
        supported = {"price", "volume", "log_volume", "time_of_day"}
        unknown = set(attributes) - supported
        if unknown:
            raise ValueError(
                f"unknown attributes {sorted(unknown)}; supported: {sorted(supported)}"
            )
        pts: List[Point] = []
        for rec in self.records():
            row = []
            for a in attributes:
                if a == "price":
                    row.append(rec.price)
                elif a == "volume":
                    row.append(rec.volume)
                elif a == "log_volume":
                    row.append(math.log1p(rec.volume))
                else:
                    row.append(rec.time)
            pts.append(Point(seq=rec.trans_id, values=tuple(row), time=rec.time))
        return tuple(pts)


def make_stock_points(
    n: int, n_tickers: int = 8, anomaly_rate: float = 0.01, seed: int = 11,
    attributes: Sequence[str] = ("price", "log_volume"),
) -> Tuple[Point, ...]:
    """Convenience: ``n`` simulated STT trades projected to points."""
    sim = StockTradeSimulator(
        n_trades=n, n_tickers=n_tickers, anomaly_rate=anomaly_rate, seed=seed
    )
    return sim.points(attributes)
