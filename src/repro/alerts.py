"""Alert routing: turn raw per-boundary outlier sets into actionable alerts.

Detectors report, at every output boundary of every query, the *complete*
outlier set of that window (Def. 3).  Monitoring applications usually want
the derivative of that signal: "transaction X just became abnormal for
analyst Y".  This module provides that layer:

* :class:`Alert` -- one (point, query, boundary) event, flagged
  ``first_seen`` when the point was not an outlier for that query at its
  previous boundary;
* :class:`AlertRouter` -- converts ``detector.step`` outputs into alerts,
  with optional de-duplication (``dedupe="first"`` emits each
  (query, point) pair once) and fan-out to any number of sinks;
* sinks: :class:`CollectingSink`, :class:`CallbackSink`,
  :class:`CountingSink`;
* :func:`run_with_alerts` -- drive a detector over a finite stream and
  route everything, returning both the RunResult and the sinks' contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

from .baselines.base import Detector
from .core.point import Point
from .engine.executor import ExecutorSubscriber, StreamExecutor
from .metrics.results import RunResult

__all__ = [
    "Alert",
    "AlertRouter",
    "AlertSink",
    "AlertSubscriber",
    "CallbackSink",
    "CollectingSink",
    "CountingSink",
    "run_with_alerts",
]


@dataclass(frozen=True)
class Alert:
    """One outlier report for one query at one boundary."""

    seq: int
    query_index: int
    query_name: str
    boundary: int
    #: True when this point was not reported by this query at its previous
    #: output boundary (i.e. a *new* alert, not a persisting one)
    first_seen: bool


class AlertSink:
    """Interface for alert consumers."""

    def handle(self, alert: Alert) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Called once the stream ends; default is a no-op."""


class CollectingSink(AlertSink):
    """Stores every alert in arrival order."""

    def __init__(self) -> None:
        self.alerts: List[Alert] = []

    def handle(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def by_query(self) -> Dict[int, List[Alert]]:
        out: Dict[int, List[Alert]] = {}
        for a in self.alerts:
            out.setdefault(a.query_index, []).append(a)
        return out


class CallbackSink(AlertSink):
    """Invokes a callable per alert (e.g. print, enqueue, page someone)."""

    def __init__(self, fn: Callable[[Alert], None]):
        if not callable(fn):
            raise TypeError("CallbackSink needs a callable")
        self._fn = fn

    def handle(self, alert: Alert) -> None:
        self._fn(alert)


class CountingSink(AlertSink):
    """Counts alerts per query; cheap health metric for dashboards."""

    def __init__(self) -> None:
        self.total = 0
        self.per_query: Dict[int, int] = {}
        self.first_seen = 0

    def handle(self, alert: Alert) -> None:
        self.total += 1
        self.first_seen += alert.first_seen
        self.per_query[alert.query_index] = \
            self.per_query.get(alert.query_index, 0) + 1


class AlertRouter:
    """Fan detector outputs out to sinks, tracking alert novelty.

    ``dedupe`` controls what reaches the sinks:

    * ``"all"`` -- every (query, point) report at every boundary;
    * ``"first"`` -- only the first time a (query, point) pair is reported
      (a point flapping outlier -> inlier -> outlier re-alerts only if
      ``reset_on_recovery`` is True);
    * ``"transitions"`` -- reports whenever a point is an outlier now but
      was not at the query's previous boundary.
    """

    _MODES = ("all", "first", "transitions")

    def __init__(self, group, sinks: Sequence[AlertSink],
                 dedupe: str = "transitions",
                 reset_on_recovery: bool = True):
        if dedupe not in self._MODES:
            raise ValueError(f"dedupe must be one of {self._MODES}")
        self.group = group
        self.sinks = list(sinks)
        self.dedupe = dedupe
        self.reset_on_recovery = reset_on_recovery
        # per query: outliers at the previous boundary / ever alerted
        self._previous: Dict[int, FrozenSet[int]] = {}
        self._ever: Dict[int, Set[int]] = {}

    def dispatch(self, t: int, outputs: Dict[int, FrozenSet[int]]) -> int:
        """Route one boundary's outputs; returns alerts emitted."""
        emitted = 0
        for qi, seqs in outputs.items():
            prev = self._previous.get(qi, frozenset())
            ever = self._ever.setdefault(qi, set())
            if self.reset_on_recovery:
                # a point that recovered (outlier before, inlier now) may
                # alert again on a later relapse
                ever -= prev - seqs
            for seq in sorted(seqs):
                fresh = seq not in prev
                if self.dedupe == "first" and seq in ever:
                    continue
                if self.dedupe == "transitions" and not fresh:
                    continue
                ever.add(seq)
                alert = Alert(
                    seq=seq,
                    query_index=qi,
                    query_name=self.group[qi].name,
                    boundary=t,
                    first_seen=fresh,
                )
                for sink in self.sinks:
                    sink.handle(alert)
                emitted += 1
            self._previous[qi] = frozenset(seqs)
        return emitted

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class AlertSubscriber(ExecutorSubscriber):
    """Subscriber that routes boundary outputs to an AlertRouter.

    Dispatch happens at ``on_boundary_end`` (after the driver archived
    the boundary's outputs); the router's sinks are closed when the
    stream ends.  Attaches to a :class:`~repro.engine.StreamExecutor` or
    a :class:`~repro.runtime.Runtime` alike -- on a sharded runtime the
    outputs it sees are the merged (exact, ownership-deduped) ones.
    """

    def __init__(self, router: AlertRouter):
        self.router = router

    def on_boundary_end(self, t, outputs) -> None:
        self.router.dispatch(t, outputs)

    def on_stream_end(self, result) -> None:
        self.router.close()


def run_with_alerts(
    detector: Detector,
    points: Sequence[Point],
    sinks: Sequence[AlertSink],
    dedupe: str = "transitions",
    until: Optional[int] = None,
) -> RunResult:
    """Run a detector (or sharded runtime) over a finite stream, routing
    outputs to sinks.

    Facade: the driver -- a :class:`~repro.engine.StreamExecutor`, or the
    :class:`~repro.runtime.Runtime` itself when one is passed -- with an
    :class:`AlertSubscriber` attached.  A process-backend runtime replays
    boundary outputs to the router after the workers return; alert
    content is identical, only the delivery is deferred.
    """
    from .runtime import Runtime

    router = AlertRouter(detector.group, sinks, dedupe=dedupe)
    if isinstance(detector, Runtime):
        detector.subscribe(AlertSubscriber(router))
        return detector.run(points, until=until)
    executor = StreamExecutor(detector, [AlertSubscriber(router)])
    return executor.run(points, until=until)
