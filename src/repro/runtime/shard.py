"""ShardExecutor: one detector + one StreamExecutor over one shard.

A shard is a full, independent detection pipeline over its slice of the
stream: its own detector instance (window buffer, evidence, stats) driven
by its own :class:`~repro.engine.StreamExecutor` on the *global* swift
schedule.  The runtime steps every shard at every boundary -- including
boundaries where the shard received no points -- so shard windows stay
aligned and every due query reports from every shard.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Sequence

from ..core.point import Point
from ..engine.executor import StreamExecutor
from ..metrics.results import RunResult

__all__ = ["ShardExecutor"]


class ShardExecutor:
    """One shard's executor: detector, drive loop, and accumulated result.

    A thin composition, deliberately: everything below the shard boundary
    is the classic single-executor stack, which is what makes the 1-shard
    runtime byte-identical to the pre-shard runtime.
    """

    def __init__(self, shard_id: int, detector):
        self.shard_id = shard_id
        self.detector = detector
        self.executor = StreamExecutor(detector)

    @property
    def result(self) -> RunResult:
        return self.executor.result

    def step(self, t: int, batch: Sequence[Point]
             ) -> Dict[int, FrozenSet[int]]:
        """Process one boundary on this shard (batch may be empty)."""
        return self.executor.step(t, batch)

    def finish(self) -> RunResult:
        """Finalize this shard's result (work counters)."""
        return self.executor.finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShardExecutor(shard_id={self.shard_id}, "
                f"detector={self.detector.name!r})")
