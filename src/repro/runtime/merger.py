"""Merger: exact cross-shard combination of outputs and meters.

Border replication means a point can be evaluated by several shards, but
only its *owner* shard holds the point's complete neighborhood (see
``repro.runtime.partitioner``); verdicts from replica shards may
over-report outliers and must be discarded.  The merger applies that
ownership filter and unions what remains -- the exact workload answer --
and combines the per-shard meters with the additive merges the metrics
layer provides (:meth:`CpuMeter.merge`, :meth:`MemoryMeter.merge`,
:func:`~repro.metrics.results.merge_work`).

With one shard the ownership filter keeps everything and every merge is
a sum over one element, so the merged result equals the shard's own --
the identity the 1-shard oracle tests pin down.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Sequence

from ..metrics.meters import CpuMeter, MemoryMeter
from ..metrics.results import OutputKey, RunResult, merge_work

__all__ = ["Merger"]

Outputs = Dict[int, FrozenSet[int]]


class Merger:
    """Combines per-shard outputs/results under an ownership map.

    ``owners`` maps point ``seq`` to its owner shard; the runtime keeps
    it current as the partitioner routes batches.  Seqs without an entry
    (never routed by this runtime, e.g. points preloaded by a legacy
    restore) are kept by whichever shard reports them.
    """

    def __init__(self, owners: Mapping[int, int]):
        self.owners = owners

    # ------------------------------------------------------------- outputs

    def merge_boundary(self, per_shard: Sequence[Outputs]) -> Outputs:
        """One boundary's merged outputs: ownership filter, then union.

        The key set is the union across shards, so a shard that received
        no points still contributes its (empty) due-query verdicts and
        the merged boundary reports every due query exactly once.
        """
        owners = self.owners
        merged: Dict[int, set] = {}
        for shard_id, outputs in enumerate(per_shard):
            for qi, seqs in outputs.items():
                acc = merged.setdefault(qi, set())
                for seq in seqs:
                    if owners.get(seq, shard_id) == shard_id:
                        acc.add(seq)
        return {qi: frozenset(seqs) for qi, seqs in merged.items()}

    # ------------------------------------------------------------- results

    def merge_results(self, results: Sequence[RunResult]) -> RunResult:
        """Combine finished per-shard results into the workload answer.

        Failed-shard flags propagate as a union: if any input is a
        degraded placeholder (``failed_shards`` non-empty, see
        ``repro.runtime.backends.failed_shard_result``), the merged
        result is loudly partial too -- the flag can only spread, never
        silently disappear, across merges.
        """
        if not results:
            raise ValueError("merge_results needs at least one shard result")
        owners = self.owners
        outputs: Dict[OutputKey, FrozenSet[int]] = {}
        acc: Dict[OutputKey, set] = {}
        for shard_id, result in enumerate(results):
            for key, seqs in result.outputs.items():
                bucket = acc.setdefault(key, set())
                for seq in seqs:
                    if owners.get(seq, shard_id) == shard_id:
                        bucket.add(seq)
        for key, seqs in acc.items():
            outputs[key] = frozenset(seqs)
        failed = sorted({s for r in results for s in r.failed_shards})
        # a failed placeholder has no detector name; take the first real one
        detector = next((r.detector for r in results if r.detector),
                        results[0].detector)
        merged = RunResult(
            detector=detector,
            outputs=outputs,
            cpu=CpuMeter.merge([r.cpu for r in results]),
            memory=MemoryMeter.merge([r.memory for r in results]),
            boundaries=max(r.boundaries for r in results),
            work=merge_work([r.work for r in results]),
            failed_shards=tuple(failed),
        )
        return merged
