"""Execution backends: where shard pipelines actually run.

The runtime is backend-agnostic: a :class:`Backend` decides whether the
per-shard executors run interleaved in this process
(:class:`SerialBackend`) or as one OS process per shard
(:class:`ProcessPoolBackend`).  Both produce identical merged answers --
the backend only moves work, never changes it.

* ``SerialBackend`` supports *stepping*: the runtime drives all shards
  boundary-synchronously, which enables live concerns (alert routing,
  periodic sharded checkpoints) and infinite streams via
  ``Runtime.step``.
* ``ProcessPoolBackend`` runs each shard's finite stream end-to-end in a
  worker process (one IPC round-trip per shard, not per boundary) and is
  therefore ``run``-only.  Every shard is driven to the same explicit
  ``until`` boundary, so shard schedules agree even when a shard's slice
  ends early or is empty.  Workers rebuild the detector from the picklable
  ``(factory, group)`` pair; results (outputs + meters) come back whole.

Even on a single core the sharded run can beat the 1-shard run: the
skyband scans are superlinear in window population, so four half-empty
windows cost less CPU than one full one -- ``benchmarks/bench_shards.py``
records exactly this.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.point import Point
from ..core.queries import QueryGroup
from ..engine.executor import StreamExecutor
from ..metrics.results import RunResult

__all__ = [
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
]

#: payload of one shard task: (detector factory, workload, shard points,
#: final boundary)
ShardTask = Tuple[Callable[[QueryGroup], object], QueryGroup,
                  Sequence[Point], int]


def run_shard_task(task: ShardTask) -> RunResult:
    """Run one shard's finite stream end-to-end (worker entrypoint).

    Module-level so ``multiprocessing`` can pickle it by reference; also
    the serial fallback, so both backends execute the same code path per
    shard.
    """
    factory, group, points, until = task
    detector = factory(group)
    return StreamExecutor(detector).run(points, until=until)


class Backend:
    """Strategy interface: execute a list of shard tasks to completion."""

    #: short name, matching ``DetectorConfig.backend``
    name = "backend"
    #: True if the runtime may drive this backend one boundary at a time
    #: (``Runtime.step``); False restricts it to finite ``Runtime.run``
    supports_stepping = False

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(Backend):
    """All shards in this process.

    For ``Runtime.run`` the runtime prefers its boundary-synchronous
    stepping loop (live subscribers, checkpoints); ``run_tasks`` exists
    so the whole-stream path is also available serially (used as the
    process backend's oracle in tests).
    """

    name = "serial"
    supports_stepping = True

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        return [run_shard_task(task) for task in tasks]


class ProcessPoolBackend(Backend):
    """One worker process per shard via ``multiprocessing``.

    ``processes`` caps the pool size (default: one worker per shard, at
    most the machine's core count -- more would only thrash).  The fork
    start method is preferred where available: workers inherit the
    imported package without re-importing through ``sys.path``.
    """

    name = "process"
    supports_stepping = False

    def __init__(self, processes: Optional[int] = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        self.processes = processes

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        if not tasks:
            return []
        if len(tasks) == 1:
            # one shard: a pool buys nothing, skip the fork entirely
            return [run_shard_task(tasks[0])]
        import multiprocessing as mp

        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = mp.get_context("spawn")
        n = self.processes or min(len(tasks), max(1, os.cpu_count() or 1))
        with ctx.Pool(processes=n) as pool:
            return pool.map(run_shard_task, tasks)


def make_backend(spec) -> Backend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(spec, Backend):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend()
    raise ValueError(f"unknown backend {spec!r} (expected serial|process)")
