"""Execution backends: where shard pipelines actually run.

The runtime is backend-agnostic: a :class:`Backend` decides whether the
per-shard executors run interleaved in this process
(:class:`SerialBackend`) or as one OS process per shard
(:class:`ProcessPoolBackend` / :class:`SupervisedProcessBackend`).  All
of them produce identical merged answers -- the backend only moves work,
never changes it -- except where a *supervised* backend is explicitly
configured to degrade (``on_shard_failure="drop-and-flag"``), in which
case the partial result is loudly marked (``RunResult.failed_shards``),
never passed off as exact.

* ``SerialBackend`` supports *stepping*: the runtime drives all shards
  boundary-synchronously, which enables live concerns (alert routing,
  periodic sharded checkpoints) and infinite streams via
  ``Runtime.step``.
* ``SupervisedProcessBackend`` runs each shard's finite stream end-to-end
  in a dedicated worker process under per-shard supervision: crash
  detection (worker exitcode *and* in-worker exception capture),
  per-shard deadline timeouts, bounded retry with exponential backoff,
  and a configurable failure policy.  Every shard is driven to the same
  explicit ``until`` boundary, so shard schedules agree even when a
  shard's slice ends early or is empty.  Workers rebuild the detector
  from the picklable ``(factory, group)`` pair; results (outputs +
  meters) come back over a per-worker pipe.
* ``ProcessPoolBackend`` is the supervised runner with the strictest
  policy (no retries, fail fast on the first worker loss) -- the
  historical "process" backend, now with real crash detection instead of
  a wholesale pool failure.  Its former single-task fast path is gone on
  purpose: one shard and N shards go through the identical supervised
  runner, so failure behavior never depends on the shard count.

Supervision state machine (per shard task)::

    PENDING --launch--> RUNNING --result--> OK
       ^                  |  |
       |       deadline / crash / exception
       |                  v
       +--backoff-- RETRYING --attempts exhausted--> FAILED
                                                        |
                              policy "fail"/"retry" -> raise ShardFailure
                              policy "drop-and-flag" -> placeholder result
                                                        (failed_shards)

Even on a single core the sharded run can beat the 1-shard run: the
skyband scans are superlinear in window population, so four half-empty
windows cost less CPU than one full one -- ``benchmarks/bench_shards.py``
records exactly this.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.point import Point
from ..core.queries import QueryGroup
from ..engine.executor import StreamExecutor
from ..metrics.results import RunResult
from ..testing.faults import FaultInjector, FaultPlan

__all__ = [
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SupervisedProcessBackend",
    "ShardFailure",
    "make_backend",
]

#: payload of one shard task: (detector factory, workload, shard points,
#: final boundary)
ShardTask = Tuple[Callable[[QueryGroup], object], QueryGroup,
                  Sequence[Point], int]

#: failure policies of the supervised runner
FAILURE_POLICIES = ("fail", "retry", "drop-and-flag")


class ShardFailure(RuntimeError):
    """A shard exhausted its attempts; the run cannot produce an exact
    answer and the policy forbids degrading.

    Carries the failed ``shard_id`` so operators (and the chaos suite)
    can see exactly which partition died, plus the last failure cause.
    """

    def __init__(self, shard_id: int, attempts: int, cause: str):
        self.shard_id = shard_id
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"shard {shard_id} failed permanently after {attempts} "
            f"attempt(s): {cause}"
        )


def run_shard_task(task: ShardTask) -> RunResult:
    """Run one shard's finite stream end-to-end (in-process entrypoint).

    Module-level so ``multiprocessing`` can pickle it by reference; also
    the serial path, so every backend executes the same code per shard.
    """
    factory, group, points, until = task
    detector = factory(group)
    return StreamExecutor(detector).run(points, until=until)


def _supervised_shard_main(conn, task: ShardTask, shard_id: int,
                           attempt: int, plan: Optional[FaultPlan]) -> None:
    """Worker entrypoint of the supervised backend.

    Sends ``("ok", result)`` or ``("error", summary, traceback)`` back on
    ``conn``; a hard crash (injected ``os._exit``, OOM kill, signal)
    sends nothing and is detected by the supervisor via the process
    sentinel + exitcode.  ``plan``/``attempt`` wire the deterministic
    chaos harness into the worker: the same fault schedule that a test
    asserts against is what actually fires in the child process.
    """
    try:
        factory, group, points, until = task
        detector = factory(group)
        executor = StreamExecutor(detector)
        if plan is not None and plan.for_shard(shard_id):
            executor.subscribe(FaultInjector(plan, shard_id, attempt=attempt))
        result = executor.run(points, until=until)
        conn.send(("ok", result))
    except BaseException as exc:  # noqa: BLE001 - the whole point is capture
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}",
                       traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - already closed
            pass


def failed_shard_result(shard_id: int) -> RunResult:
    """The loud placeholder a dropped shard contributes to the merge.

    Empty outputs, zero meters, and the shard listed in
    ``failed_shards`` -- :meth:`RunResult.partial` is True for it and for
    anything it is merged into, so a degraded answer can never be
    mistaken for an exact one.
    """
    return RunResult(detector="", failed_shards=(shard_id,),
                     work={"shard_failures": 1})


class Backend:
    """Strategy interface: execute a list of shard tasks to completion."""

    #: short name, matching ``DetectorConfig.backend``
    name = "backend"
    #: True if the runtime may drive this backend one boundary at a time
    #: (``Runtime.step``); False restricts it to finite ``Runtime.run``
    supports_stepping = False

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(Backend):
    """All shards in this process.

    For ``Runtime.run`` the runtime prefers its boundary-synchronous
    stepping loop (live subscribers, checkpoints); ``run_tasks`` exists
    so the whole-stream path is also available serially (used as the
    process backend's oracle in tests).
    """

    name = "serial"
    supports_stepping = True

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        return [run_shard_task(task) for task in tasks]


class _Attempt:
    """One live worker attempt under supervision."""

    __slots__ = ("index", "attempt", "proc", "conn", "deadline_at",
                 "started")

    def __init__(self, index: int, attempt: int, proc, conn,
                 deadline: Optional[float]):
        self.index = index
        self.attempt = attempt
        self.proc = proc
        self.conn = conn
        self.started = time.monotonic()
        self.deadline_at = (self.started + deadline
                            if deadline is not None else None)


class SupervisedProcessBackend(Backend):
    """Per-shard task supervision over dedicated worker processes.

    Replaces the bare ``pool.map`` (which dies wholesale on a single
    worker failure) with a supervisor that watches every shard attempt
    individually:

    * **crash detection** -- a worker that exits without reporting a
      result (hard crash, signal, ``os._exit``) is detected via its
      process sentinel and exitcode; a worker that raises reports the
      exception and traceback back through its pipe;
    * **deadlines** -- ``deadline`` seconds per attempt; a stuck shard is
      terminated and treated as a failure;
    * **bounded retry** -- up to ``max_retries`` relaunches per shard
      with exponential backoff (``backoff * 2**attempt`` seconds);
    * **failure policy** -- ``on_failure``:

      - ``"fail"``: no retries; the first loss raises
        :class:`ShardFailure` naming the shard;
      - ``"retry"`` (default): retry, then raise :class:`ShardFailure`
        when attempts are exhausted;
      - ``"drop-and-flag"``: retry, then degrade -- the dead shard
        contributes :func:`failed_shard_result` and the merged
        :class:`~repro.metrics.results.RunResult` is loudly partial.

    ``fault_plan`` threads the deterministic chaos harness
    (:mod:`repro.testing.faults`) into the workers; ``report`` records
    every attempt's outcome for the CI chaos artifact.  ``processes``
    caps concurrent workers (default: one per shard, at most the core
    count).
    """

    name = "supervised"
    supports_stepping = False

    def __init__(self, processes: Optional[int] = None, *,
                 on_failure: str = "retry", max_retries: int = 2,
                 deadline: Optional[float] = None, backoff: float = 0.05,
                 fault_plan: Optional[FaultPlan] = None):
        if processes is not None and processes < 1:
            raise ValueError("processes must be >= 1")
        if on_failure not in FAILURE_POLICIES:
            raise ValueError(
                f"on_failure must be one of {FAILURE_POLICIES}, "
                f"got {on_failure!r}")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (None = no deadline)")
        if backoff < 0:
            raise ValueError("backoff must be >= 0")
        self.processes = processes
        self.on_failure = on_failure
        self.max_retries = max_retries
        self.deadline = deadline
        self.backoff = backoff
        self.fault_plan = FaultPlan.resolve(fault_plan)
        #: per-attempt outcome log of the last ``run_tasks`` call:
        #: dicts of (shard, attempt, outcome, detail, elapsed)
        self.report: List[Dict[str, object]] = []

    # ----------------------------------------------------------- internals

    def _context(self):
        import multiprocessing as mp

        try:
            return mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            return mp.get_context("spawn")

    def _launch(self, ctx, tasks, index: int, attempt: int) -> _Attempt:
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_supervised_shard_main,
            args=(child_conn, tasks[index], index, attempt, self.fault_plan),
        )
        proc.start()
        child_conn.close()
        return _Attempt(index, attempt, proc, parent_conn, self.deadline)

    def _record(self, run: _Attempt, outcome: str, detail: str) -> None:
        self.report.append({
            "shard": run.index,
            "attempt": run.attempt,
            "outcome": outcome,
            "detail": detail,
            "elapsed_s": round(time.monotonic() - run.started, 6),
        })

    def _collect(self, run: _Attempt, expired: bool):
        """Outcome of a finished/expired attempt: ("ok", result) or
        ("crash"|"error"|"timeout", detail)."""
        message = None
        if run.conn.poll():
            try:
                message = run.conn.recv()
            except EOFError:
                message = None
        if message is not None:
            run.proc.join()
            run.conn.close()
            if message[0] == "ok":
                return "ok", message[1]
            return "error", f"{message[1]}\n{message[2]}"
        # no message: a stuck worker past its deadline, or a dead one
        # (a hard crash closes the pipe before the sentinel fires, so
        # "alive but EOF" still means dying -- join, don't kill)
        if expired and run.proc.is_alive():
            run.proc.terminate()
            run.proc.join()
            run.conn.close()
            return "timeout", (
                f"deadline of {self.deadline:g}s exceeded; worker killed")
        run.proc.join(timeout=5.0)
        if run.proc.is_alive():  # pragma: no cover - defensive
            run.proc.terminate()
            run.proc.join()
        run.conn.close()
        return "crash", (
            f"worker exited with code {run.proc.exitcode} without "
            "reporting a result")

    # ------------------------------------------------------------- running

    def run_tasks(self, tasks: Sequence[ShardTask]) -> List[RunResult]:
        from multiprocessing.connection import wait as _wait

        self.report = []
        if not tasks:
            return []
        ctx = self._context()
        n = len(tasks)
        cap = self.processes or min(n, max(1, os.cpu_count() or 1))
        retries_allowed = 0 if self.on_failure == "fail" else self.max_retries
        results: List[Optional[RunResult]] = [None] * n
        #: (index, attempt, earliest launch time)
        queue: List[Tuple[int, int, float]] = [(i, 0, 0.0) for i in range(n)]
        running: List[_Attempt] = []
        try:
            while queue or running:
                now = time.monotonic()
                # launch every due queued attempt while slots are free
                still_queued: List[Tuple[int, int, float]] = []
                for entry in queue:
                    if len(running) < cap and entry[2] <= now:
                        running.append(
                            self._launch(ctx, tasks, entry[0], entry[1]))
                    else:
                        still_queued.append(entry)
                queue = still_queued
                if not running:
                    # everything queued is backing off; sleep to the
                    # earliest launch time
                    time.sleep(max(0.0, min(e[2] for e in queue) -
                                   time.monotonic()) or 0.001)
                    continue
                # wait for a result, a death, or the nearest deadline
                timeout = 0.5
                for run in running:
                    if run.deadline_at is not None:
                        timeout = min(timeout, max(0.0, run.deadline_at - now))
                handles = []
                for run in running:
                    handles.append(run.conn)
                    handles.append(run.proc.sentinel)
                ready = set(_wait(handles, timeout))
                now = time.monotonic()
                finished: List[Tuple[_Attempt, bool]] = []
                for run in running:
                    expired = (run.deadline_at is not None
                               and now >= run.deadline_at)
                    if (run.conn in ready or run.proc.sentinel in ready
                            or expired):
                        finished.append((run, expired))
                for run, expired in finished:
                    running.remove(run)
                    outcome, payload = self._collect(run, expired)
                    if outcome == "ok":
                        self._record(run, "ok", "")
                        results[run.index] = payload
                        continue
                    self._record(run, outcome, str(payload))
                    if run.attempt < retries_allowed:
                        delay = self.backoff * (2 ** run.attempt)
                        queue.append(
                            (run.index, run.attempt + 1, now + delay))
                    elif self.on_failure == "drop-and-flag":
                        results[run.index] = failed_shard_result(run.index)
                    else:
                        raise ShardFailure(run.index, run.attempt + 1,
                                           str(payload))
        finally:
            for run in running:
                if run.proc.is_alive():
                    run.proc.terminate()
                run.proc.join()
                run.conn.close()
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(on_failure={self.on_failure!r}, "
                f"max_retries={self.max_retries}, "
                f"deadline={self.deadline})")


class ProcessPoolBackend(SupervisedProcessBackend):
    """One worker process per shard, failing fast on the first loss.

    The historical "process" backend, now routed through the supervised
    runner: identical results on the happy path, but a worker crash is
    detected per shard (and named) instead of wedging or killing the
    whole pool, and the 1-shard case runs under the exact same
    supervision as the N-shard case.
    """

    name = "process"

    def __init__(self, processes: Optional[int] = None):
        super().__init__(processes=processes, on_failure="fail",
                         max_retries=0, deadline=None, backoff=0.0)


def make_backend(spec, config=None) -> Backend:
    """Resolve a backend name (or pass an instance through).

    ``config`` (a :class:`~repro.engine.DetectorConfig`) supplies the
    supervised backend's policy knobs -- failure policy, retry budget,
    deadline, backoff, and the fault plan -- so the CLI and tests
    configure chaos scenarios through the one config record.
    """
    if isinstance(spec, Backend):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend()
    if spec == "supervised":
        if config is None:
            return SupervisedProcessBackend()
        return SupervisedProcessBackend(
            on_failure=config.on_shard_failure,
            max_retries=config.max_shard_retries,
            deadline=config.shard_deadline or None,
            backoff=config.retry_backoff,
            fault_plan=FaultPlan.resolve(config.fault_plan),
        )
    raise ValueError(
        f"unknown backend {spec!r} (expected serial|process|supervised)")
