"""Sharded detection runtime (value partitioning + exact merge).

Public surface:

* :class:`~repro.runtime.runtime.Runtime` -- the single entrypoint the
  API, CLI, alerting, checkpointing, and bench layers drive.
* :class:`~repro.runtime.partitioner.StreamPartitioner` -- value-based
  grid partitioning with border replication (exactness argument in its
  module docstring and DESIGN.md §9).
* :class:`~repro.runtime.shard.ShardExecutor` -- one detector pipeline
  per shard.
* :class:`~repro.runtime.merger.Merger` -- ownership-filtered exact
  union of outputs plus additive meter/counter merges.
* Backends -- :class:`~repro.runtime.backends.SerialBackend` (default,
  steppable), :class:`~repro.runtime.backends.ProcessPoolBackend` (one
  worker process per shard, fail-fast), and
  :class:`~repro.runtime.backends.SupervisedProcessBackend` (per-shard
  crash detection, deadlines, bounded retry, configurable degraded
  mode), resolved by :func:`~repro.runtime.backends.make_backend`.
  :class:`~repro.runtime.backends.ShardFailure` is the loud permanent-
  failure exception, naming the dead shard.
"""

from .backends import (
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    ShardFailure,
    SupervisedProcessBackend,
    failed_shard_result,
    make_backend,
    run_shard_task,
)
from .merger import Merger
from .partitioner import StreamPartitioner
from .runtime import Runtime
from .shard import ShardExecutor

__all__ = [
    "Runtime",
    "StreamPartitioner",
    "ShardExecutor",
    "Merger",
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "SupervisedProcessBackend",
    "ShardFailure",
    "failed_shard_result",
    "make_backend",
    "run_shard_task",
]
