"""Runtime: the single entrypoint driving N value-partitioned shards.

The PR-2 :class:`~repro.engine.StreamExecutor` drives *one* detector.
:class:`Runtime` generalizes it to a sharded architecture::

    points ──► StreamPartitioner ──► ShardExecutor 0..N-1 ──► Merger
               (owner + border        (detector + executor     (dedup +
                replication)           per shard, global        exact union,
                                       swift schedule)          counter sums)

With ``shards=1`` (the default) the partitioner routes everything to one
shard, the merger is the identity, and the run is byte-identical to the
classic executor path -- outputs, work counters, memory accounting, and
checkpoint roundtrips.  That identity is the refactor's oracle
(``tests/test_runtime.py``); N-shard runs must then produce identical
outlier sets, which ``tests/test_runtime_equivalence.py`` pins across
the Table 1 grid.

Two drive modes:

* :meth:`run` -- a finite stream end-to-end.  Serial backends step all
  shards boundary-synchronously (live subscribers fire per boundary);
  the process backend ships each shard's slice to a worker and replays
  subscriber notifications from the merged result afterwards.
* :meth:`step` / :meth:`finish` -- push boundaries one at a time
  (long-running deployments; serial backend only).  Every shard is
  stepped at every boundary, batch or no batch, so shard windows advance
  in lockstep and due queries are answered from every shard.

Runtime-level subscribers receive the *merged* boundary outputs --
:class:`~repro.alerts.AlertSubscriber` plugs in unchanged, and
:class:`~repro.checkpoint.ShardedCheckpointSubscriber` persists per-shard
segments under one manifest.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, FrozenSet, List, Optional, Sequence

from ..core.point import Point
from ..core.queries import QueryGroup
from ..core.sop import SOPDetector
from ..engine.config import DetectorConfig
from ..metrics.results import RunResult, merge_work
from ..streams.source import (IngestGuard, batches_by_boundary,
                              stream_end_boundary)
from .backends import Backend, make_backend
from .merger import Merger
from .partitioner import StreamPartitioner
from .shard import ShardExecutor

__all__ = ["Runtime"]

Outputs = Dict[int, FrozenSet[int]]


class Runtime:
    """Sharded detection runtime over one workload.

    ``group`` is the workload (a :class:`~repro.core.queries.QueryGroup`
    or a sequence of queries); ``factory(group)`` builds one detector per
    shard (default: :class:`~repro.core.sop.SOPDetector` with this
    runtime's config; must be picklable for the process backend).
    ``shards`` / ``backend`` / ``replication_radius`` override the
    corresponding :class:`~repro.engine.DetectorConfig` fields.

    The replication radius must cover the workload's largest query radius
    (``r_max``) or the sharded answer could miss cross-border neighbors;
    the auto value (0.0) resolves to exactly ``r_max`` and anything
    smaller fails loudly at construction.
    """

    def __init__(
        self,
        group,
        factory=None,
        config: Optional[DetectorConfig] = None,
        shards: Optional[int] = None,
        backend=None,
        replication_radius: Optional[float] = None,
        partitioner: Optional[StreamPartitioner] = None,
        subscribers: Sequence = (),
    ):
        if not isinstance(group, QueryGroup):
            group = QueryGroup([q for q in group])
        self.group = group
        config = config if config is not None else DetectorConfig()
        overrides = {}
        if shards is not None:
            overrides["shards"] = int(shards)
        if replication_radius is not None:
            overrides["replication_radius"] = float(replication_radius)
        if backend is not None and not isinstance(backend, Backend):
            overrides["backend"] = backend
        if overrides:
            config = config.replace(**overrides)
        self.config = config
        self.n_shards = config.shards
        self.backend: Backend = (backend if isinstance(backend, Backend)
                                 else make_backend(config.backend,
                                                   config=config))
        self.guard = IngestGuard() if config.validate_ingest else None
        self.factory = (factory if factory is not None
                        else partial(SOPDetector, config=config))
        radius = config.replication_radius or group.r_max
        if radius < group.r_max:
            raise ValueError(
                f"replication_radius {radius:g} is smaller than the "
                f"workload's r_max {group.r_max:g}; sharded neighbor "
                "counts would miss cross-border neighbors"
            )
        if partitioner is not None:
            if partitioner.n_shards != self.n_shards:
                raise ValueError(
                    f"partitioner has {partitioner.n_shards} shards, "
                    f"config wants {self.n_shards}"
                )
            self.partitioner = partitioner
        else:
            self.partitioner = StreamPartitioner(self.n_shards, radius)
        self.subscribers: List = []
        self._owners: Dict[int, int] = {}
        self._merger = Merger(self._owners)
        self._shards: Optional[List[ShardExecutor]] = None
        self.last_boundary = 0
        self.result: Optional[RunResult] = None
        for sub in subscribers:
            self.subscribe(sub)

    # -------------------------------------------------------------- wiring

    @property
    def swift(self):
        return self.group.swift

    @property
    def shards(self) -> List[ShardExecutor]:
        """The live shard executors (built on first use; serial only)."""
        if not self.backend.supports_stepping:
            raise RuntimeError(
                f"the {self.backend.name!r} backend runs shards inside "
                "worker processes; there are no live shard executors to "
                "inspect or checkpoint"
            )
        if self._shards is None:
            self._shards = [
                ShardExecutor(i, self.factory(self.group))
                for i in range(self.n_shards)
            ]
        return self._shards

    def subscribe(self, subscriber):
        """Attach a runtime subscriber (merged-output lifecycle hooks)."""
        subscriber.on_attach(self)
        self.subscribers.append(subscriber)
        return subscriber

    def owner_of(self, seq: int) -> Optional[int]:
        """Owner shard of a routed point (None if never routed)."""
        return self._owners.get(seq)

    # ------------------------------------------------------------ stepping

    def step(self, t: int, batch: Sequence[Point]) -> Outputs:
        """Process one boundary across every shard; merged due outputs.

        All shards advance even when their sub-batch is empty -- windows
        expire, evidence refreshes, and due queries answer on every
        shard, exactly like the single-executor path on a quiet slide.
        """
        if not self.backend.supports_stepping:
            raise RuntimeError(
                f"the {self.backend.name!r} backend cannot be stepped; "
                "use run() on a finite stream or the serial backend"
            )
        if self.guard is not None:
            batch = self.guard.filter(batch)
        return self._step_clean(t, batch)

    def _step_clean(self, t: int, batch: Sequence[Point]) -> Outputs:
        """The :meth:`step` body after ingest validation.

        ``run``/``resume`` filter the whole stream up front (the guard is
        stateful -- re-filtering admitted points would quarantine them as
        regressions), so their loops enter here directly.
        """
        self.partitioner.ensure_bounds(batch)
        shard_batches, owners = self.partitioner.split(batch)
        self._owners.update(owners)
        per_shard = [
            shard.step(t, shard_batches[shard.shard_id])
            for shard in self.shards
        ]
        merged = self._merger.merge_boundary(per_shard)
        self.last_boundary = t
        for sub in self.subscribers:
            sub.on_boundary_end(t, merged)
        return merged

    def finish(self) -> RunResult:
        """Finalize every shard, merge, and fire ``on_stream_end``."""
        results = [shard.finish() for shard in self.shards]
        return self._finalize(results)

    def _finalize(self, results: Sequence[RunResult]) -> RunResult:
        self.result = self._merger.merge_results(results)
        self._note_quarantine(self.result)
        for sub in self.subscribers:
            sub.on_stream_end(self.result)
        return self.result

    def _note_quarantine(self, result: RunResult) -> None:
        """Surface the ingest guard's quarantine counts in the merged
        work counters (additive keys, like every other counter)."""
        if self.guard is None:
            return
        work = result.work
        work["records_quarantined"] = (
            work.get("records_quarantined", 0)
            + self.guard.total_quarantined)
        for reason, n in self.guard.counts.items():
            key = "quarantined_" + reason.replace("-", "_")
            work[key] = work.get(key, 0) + n

    # ------------------------------------------------------------- running

    def run(self, points: Sequence[Point],
            until: Optional[int] = None) -> RunResult:
        """Process a finite stream end-to-end; returns the merged result.

        ``until`` bounds the last boundary; the default is the same
        "first boundary past the last point" the single executor uses,
        applied to the *whole* stream so every shard -- even one whose
        slice ends early -- is driven to the same final boundary.
        """
        points = points if isinstance(points, (list, tuple)) \
            else list(points)
        if self.guard is not None:
            points = self.guard.filter(points)
        slide, kind = self.swift.slide, self.group.kind
        if until is None:
            until = stream_end_boundary(points, slide, kind)
        self.partitioner.ensure_bounds(points)
        if self.backend.supports_stepping:
            for t, batch in batches_by_boundary(points, slide, kind, until):
                self._step_clean(t, batch)
            return self.finish()
        # whole-stream backend: one task per shard, notifications replayed
        shard_points, owners = self.partitioner.split(points)
        self._owners.update(owners)
        tasks = [
            (self.factory, self.group, tuple(shard_points[i]), until)
            for i in range(self.n_shards)
        ]
        results = self.backend.run_tasks(tasks)
        merged = self._replay_and_finalize(results, slide, until)
        return merged

    def _replay_and_finalize(self, results: Sequence[RunResult],
                             slide: int, until: int) -> RunResult:
        """Merge worker results, then replay per-boundary notifications.

        Whole-stream backends cannot fire live hooks; subscribers instead
        see every boundary's merged outputs after the fact, in boundary
        order, followed by ``on_stream_end`` -- same call sequence, later.
        """
        merged_outputs: Dict[int, Outputs] = {}
        self.result = self._merger.merge_results(results)
        self._note_quarantine(self.result)
        for (qi, t), seqs in self.result.outputs.items():
            merged_outputs.setdefault(t, {})[qi] = seqs
        t = slide
        while t <= until:
            self.last_boundary = t
            for sub in self.subscribers:
                sub.on_boundary_end(t, merged_outputs.get(t, {}))
            t += slide
        for sub in self.subscribers:
            sub.on_stream_end(self.result)
        return self.result

    # ------------------------------------------------------------- restore

    def adopt_shards(self, detectors: Sequence) -> None:
        """Wrap restored (warm-started) detectors as this runtime's shards.

        Used by sharded checkpoint restore: ownership of every live
        buffered point is recomputed from the partitioner, so merging
        resumes exactly where the checkpointed runtime left off.
        """
        if len(detectors) != self.n_shards:
            raise ValueError(
                f"got {len(detectors)} detectors for {self.n_shards} shards"
            )
        if self._shards is not None:
            raise RuntimeError("runtime already has live shards")
        self._shards = [
            ShardExecutor(i, det) for i, det in enumerate(detectors)
        ]
        for shard in self._shards:
            buffer = getattr(shard.detector, "buffer", None)
            if buffer is None:
                continue
            for p in buffer.points:
                self._owners[p.seq] = (
                    self.partitioner.shard_of(p.values)
                    if self.partitioner.initialized else 0
                )

    def resume(self, points: Sequence[Point],
               until: Optional[int] = None) -> RunResult:
        """Continue a checkpoint-restored runtime over the rest of a
        finite stream.

        ``points`` may be the *full* original stream: everything
        positioned before ``last_boundary`` is already either inside the
        restored shard windows or legitimately expired, so batching
        skips it and the first boundary processed is
        ``last_boundary + slide``.  The returned result covers exactly
        the resumed boundaries; unioned with the pre-crash outputs it is
        bit-identical to an uninterrupted run (DESIGN.md §11).
        """
        if not self.backend.supports_stepping:
            raise RuntimeError(
                f"the {self.backend.name!r} backend cannot resume; "
                "restored shards are live executors and must be stepped "
                "(serial backend)"
            )
        points = points if isinstance(points, (list, tuple)) \
            else list(points)
        if self.guard is not None:
            points = self.guard.filter(points)
        slide, kind = self.swift.slide, self.group.kind
        start = int(self.last_boundary)
        if until is None:
            until = max(stream_end_boundary(points, slide, kind), start)
        self.partitioner.ensure_bounds(points)
        for t, batch in batches_by_boundary(points, slide, kind, until,
                                            start=start):
            self._step_clean(t, batch)
        return self.finish()

    @classmethod
    def resume_from_checkpoint(
        cls, path, points: Sequence[Point], *,
        factory=None, until: Optional[int] = None,
        subscribers: Sequence = (), allow_config_mismatch: bool = False,
    ):
        """Restore a sharded checkpoint and drive the stream to its end.

        The crash-recovery entrypoint: every shard restarts from its last
        persisted segment (only the window points -- evidence rebuilds on
        the first boundary, identically, see DESIGN.md §11) and the
        stream resumes at the manifest's boundary.  Returns
        ``(runtime, result)`` where ``result`` holds the merged outputs
        of the resumed boundaries only.
        """
        from ..checkpoint import load_sharded_checkpoint

        runtime, _ = load_sharded_checkpoint(
            path, factory=factory, backend="serial",
            allow_config_mismatch=allow_config_mismatch,
        )
        for sub in subscribers:
            runtime.subscribe(sub)
        result = runtime.resume(points, until=until)
        return runtime, result

    # ----------------------------------------------------- steppable ingest

    def preload(self, points: Sequence[Point]) -> None:
        """Load already-windowed points into the live shards without
        stepping a boundary.

        The service layer's workload-rebuild hook: when the registered
        query set changes mid-stream, a fresh runtime is built for the
        new shared plan and the old runtime's retained window is carried
        over here -- partitioned, ownership-recorded, and appended to
        each shard's buffer.  Evidence is rebuilt lazily by K-SKY at the
        next boundary, exactly like
        :meth:`~repro.core.dynamic.DynamicSOPDetector` rebuilds.  Serial
        backends only (live shard executors required).
        """
        points = [p for p in points]
        if not points:
            return
        self.partitioner.ensure_bounds(points)
        shard_batches, owners = self.partitioner.split(points)
        self._owners.update(owners)
        for shard in self.shards:
            batch = shard_batches[shard.shard_id]
            if batch:
                shard.detector.buffer.extend(batch)

    def retained_points(self) -> List[Point]:
        """The live window, deduplicated across shards, in seq order.

        Border replication stores a point in several shard buffers; this
        is the one-copy-per-seq view a workload rebuild hands to
        :meth:`preload` on the successor runtime.
        """
        seen: Dict[int, Point] = {}
        for shard in self.shards:
            buffer = getattr(shard.detector, "buffer", None)
            if buffer is None:
                continue
            for p in buffer.points:
                seen.setdefault(p.seq, p)
        return [seen[s] for s in sorted(seen)]

    # -------------------------------------------------------------- stats

    def work_stats(self) -> Dict[str, int]:
        """Merged work counters of the live shards (serial backends)."""
        return merge_work([
            shard.detector.work_stats() for shard in self.shards
        ])

    def work_stats_snapshot(self) -> Dict[str, int]:
        """Plain-dict snapshot of the live merged work counters.

        The public live-metrics API (the ``/metrics`` endpoint of
        :mod:`repro.serve` is built on it): the merged per-shard
        counters plus the ingest guard's quarantine totals, as an
        ordinary owned dict safe to serialize or mutate.  Additive
        across shards and monotone over a run, like every ``work_stats``
        counter.
        """
        snapshot = dict(self.work_stats())
        if self.guard is not None and self.guard.total_quarantined:
            snapshot["records_quarantined"] = (
                snapshot.get("records_quarantined", 0)
                + self.guard.total_quarantined)
            for reason, n in self.guard.counts.items():
                key = "quarantined_" + reason.replace("-", "_")
                snapshot[key] = snapshot.get(key, 0) + n
        return snapshot

    def memory_units(self) -> int:
        """Total evidence entries across live shards (replicas included)."""
        return sum(shard.detector.memory_units() for shard in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Runtime(shards={self.n_shards}, "
            f"backend={self.backend.name!r}, "
            f"queries={len(self.group)})"
        )
