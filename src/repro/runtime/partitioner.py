"""Value-based stream partitioning with border replication.

The related Flink system (Toliopoulos et al., "Continuous Outlier Mining
of Streaming Data in Flink") makes windowed distance-based outlier
detection data-parallel while staying *exact* with a value-based
partitioning of the attribute space: each shard owns a contiguous range
of one attribute axis, and every point within the maximum query radius
of a shard border is *replicated* into the neighboring shard.  Each
shard then holds every stream point within ``r_max`` of every point it
owns, so local neighbor counts -- and therefore local outlier verdicts
for owned points -- equal the global ones.

:class:`StreamPartitioner` implements that recipe.  Cell hashing is the
uniform-grid math of :class:`~repro.index.GridIndex` (one cell per
shard: ``cell_size`` = range width), reused rather than re-derived:
``shard_of`` is a clamped ``GridIndex.cell_of`` call and the replica
span is the pair of cells covering ``[v - radius, v + radius]``.

Exactness argument (see DESIGN.md §9)
-------------------------------------

Let ``axis`` be the partition axis and ``radius >= r_max``.  For every
built-in metric (euclidean, manhattan, chebyshev) the distance between
two points bounds their per-coordinate difference from above:
``dist(p, q) >= |p[axis] - q[axis]|``.  Hence any ``q`` with
``dist(p, q) <= r_max`` has ``q[axis]`` within ``radius`` of
``p[axis]``; since cell hashing and clamping are monotone in the axis
value, the replica span of ``q`` covers the owner cell of ``p``.  Every
shard therefore sees all window points within ``r_max`` of the points it
owns, which is exactly the locality the detectors' neighbor counts need.
A custom registered metric must satisfy the same per-coordinate bound on
the chosen axis for sharded runs to stay exact (all norm-induced metrics
do).

Bounds only steer load balance, never correctness: points outside
``[lo, hi]`` clamp into the edge shards, and the monotonicity argument
above is clamp-invariant.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.point import Point
from ..index import GridIndex

__all__ = ["StreamPartitioner"]


class StreamPartitioner:
    """Grid partitioner over one attribute axis with border replication.

    ``bounds`` (the ``[lo, hi]`` value range split into ``n_shards``
    equal cells) may be given up front or learned from the first data the
    partitioner sees (:meth:`ensure_bounds`); a checkpoint manifest
    persists them so a restored runtime keeps the identical partitioning.
    """

    def __init__(self, n_shards: int, replication_radius: float,
                 bounds: Optional[Tuple[float, float]] = None,
                 axis: int = 0):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if replication_radius < 0:
            raise ValueError("replication_radius must be >= 0")
        if axis < 0:
            raise ValueError("axis must be >= 0")
        self.n_shards = int(n_shards)
        self.radius = float(replication_radius)
        self.axis = int(axis)
        self._lo: Optional[float] = None
        self._grid: Optional[GridIndex] = None
        if bounds is not None:
            self._set_bounds(*bounds)

    # ------------------------------------------------------------- bounds

    @property
    def initialized(self) -> bool:
        return self._lo is not None

    @property
    def bounds(self) -> Optional[Tuple[float, float]]:
        """The learned/configured value range, or None before first data."""
        if self._lo is None:
            return None
        width = self._grid.cell_size if self._grid is not None else 0.0
        return (self._lo, self._lo + width * self.n_shards)

    def _set_bounds(self, lo: float, hi: float) -> None:
        lo, hi = float(lo), float(hi)
        if hi < lo:
            raise ValueError(f"bounds must satisfy lo <= hi, got ({lo}, {hi})")
        self._lo = lo
        width = (hi - lo) / self.n_shards
        # degenerate range (all values equal): everything owns to shard 0,
        # represented by a missing grid
        self._grid = GridIndex(cell_size=width) if width > 0 else None

    #: bounds learning clips this tail fraction off each side so a few
    #: extreme values (e.g. the stream's uniform outliers) cannot stretch
    #: the range and starve the interior shards of width.  Clipped values
    #: clamp into the edge shards -- a balance choice only, never a
    #: correctness one (see the module docstring).
    TAIL_CLIP = 0.025

    def ensure_bounds(self, points: Iterable[Point]) -> None:
        """Learn bounds from the first non-empty data seen (idempotent).

        Uses the ``TAIL_CLIP``/``1 - TAIL_CLIP`` quantiles of the axis
        values rather than min/max: equal-width cells over the central
        mass balance clustered data far better, and the tails merely
        clamp into the edge shards.
        """
        if self._lo is not None:
            return
        values = sorted(p.values[self.axis] for p in points)
        if not values:
            return
        n = len(values)
        lo = values[min(int(self.TAIL_CLIP * n), n - 1)]
        hi = values[max(n - 1 - int(self.TAIL_CLIP * n), 0)]
        self._set_bounds(lo, hi)

    # ---------------------------------------------------------- assignment

    def _cell(self, v: float) -> int:
        """Clamped grid cell of an axis value (== its shard id)."""
        if self._grid is None:
            return 0
        cell = self._grid.cell_of((v - self._lo,))[0]
        return min(max(cell, 0), self.n_shards - 1)

    def shard_of(self, values: Sequence[float]) -> int:
        """The shard that *owns* a point with these attribute values."""
        if self._lo is None:
            raise RuntimeError(
                "partitioner has no bounds yet; call ensure_bounds first"
            )
        return self._cell(values[self.axis])

    def replica_span(self, values: Sequence[float]) -> Tuple[int, int]:
        """Inclusive shard range ``[lo, hi]`` this point is delivered to.

        Covers every shard whose owned range intersects
        ``[v - radius, v + radius]`` -- the owner plus its border
        replicas.
        """
        if self._lo is None:
            raise RuntimeError(
                "partitioner has no bounds yet; call ensure_bounds first"
            )
        v = values[self.axis]
        return (self._cell(v - self.radius), self._cell(v + self.radius))

    def split(self, batch: Sequence[Point]
              ) -> Tuple[List[List[Point]], Dict[int, int]]:
        """Route one batch: per-shard sub-batches plus the ownership map.

        Each point lands in every shard of its replica span (arrival
        order is preserved within each shard, so shard buffers keep their
        increasing-seq invariant); the returned dict maps each point's
        ``seq`` to its owner shard -- the merger's dedup key.  An empty
        batch yields ``n_shards`` empty sub-batches.
        """
        shard_batches: List[List[Point]] = [[] for _ in range(self.n_shards)]
        owners: Dict[int, int] = {}
        if not batch:
            return shard_batches, owners
        if self._lo is None:
            raise RuntimeError(
                "partitioner has no bounds yet; call ensure_bounds first"
            )
        for p in batch:
            if self.axis >= p.dim:
                raise ValueError(
                    f"partition axis {self.axis} out of range for "
                    f"{p.dim}-dimensional point seq={p.seq}"
                )
            v = p.values[self.axis]
            owners[p.seq] = self._cell(v)
            lo = self._cell(v - self.radius)
            hi = self._cell(v + self.radius)
            for s in range(lo, hi + 1):
                shard_batches[s].append(p)
        return shard_batches, owners

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamPartitioner(n_shards={self.n_shards}, "
            f"radius={self.radius:g}, axis={self.axis}, "
            f"bounds={self.bounds})"
        )
