"""Workload specification files (JSON) for the CLI and deployments.

Format::

    {
      "kind": "count",              // or "time" -- shared by all queries
      "queries": [
        {"r": 300.0, "k": 4, "win": 500, "slide": 100,
         "name": "tight", "attributes": [0, 1]},   // name/attributes optional
        ...
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from .core.queries import OutlierQuery
from .streams.windows import COUNT, TIME, WindowSpec

__all__ = ["load_workload", "save_workload"]

PathLike = Union[str, Path]


def save_workload(queries: Sequence[OutlierQuery], path: PathLike) -> int:
    """Write a workload spec; returns the number of queries written."""
    queries = list(queries)
    if not queries:
        raise ValueError("cannot save an empty workload")
    kinds = {q.kind for q in queries}
    if len(kinds) != 1:
        raise ValueError(f"queries must share a window kind, got {sorted(kinds)}")
    doc = {
        "kind": queries[0].kind,
        "queries": [
            {
                "r": q.r,
                "k": q.k,
                "win": q.win,
                "slide": q.slide,
                "name": q.name,
                **({"attributes": list(q.attributes)}
                   if q.attributes is not None else {}),
            }
            for q in queries
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return len(queries)


def load_workload(path: PathLike) -> List[OutlierQuery]:
    """Read a workload spec written by :func:`save_workload` (or by hand)."""
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or "queries" not in doc:
        raise ValueError(f"{path}: expected an object with a 'queries' list")
    kind = doc.get("kind", COUNT)
    if kind not in (COUNT, TIME):
        raise ValueError(f"{path}: kind must be 'count' or 'time', got {kind!r}")
    entries = doc["queries"]
    if not isinstance(entries, list) or not entries:
        raise ValueError(f"{path}: 'queries' must be a non-empty list")
    queries: List[OutlierQuery] = []
    for i, entry in enumerate(entries):
        try:
            queries.append(OutlierQuery(
                r=float(entry["r"]),
                k=int(entry["k"]),
                window=WindowSpec(win=int(entry["win"]),
                                  slide=int(entry["slide"]), kind=kind),
                name=str(entry.get("name", "")),
                attributes=(tuple(entry["attributes"])
                            if "attributes" in entry else None),
            ))
        except KeyError as exc:
            raise ValueError(
                f"{path}: query #{i} is missing field {exc}") from exc
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: query #{i} invalid: {exc}") from exc
    return queries
