"""Paper-style text reports for experiment series.

Each figure of the paper plots CPU per window and peak memory against
workload cardinality; :func:`format_series` renders the same series as an
aligned text table (the terminal is our plotting device), with the per-size
speedup factors the paper quotes ("three orders of magnitude").
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .runner import SeriesResult

__all__ = ["format_table", "format_series", "format_ranges"]

_SKIP = "(skipped)"


def _fmt(value: Optional[float], digits: int = 2) -> str:
    if value is None:
        return _SKIP
    if isinstance(value, int):
        return str(value)
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.{digits}f}"


def format_table(
    title: str,
    x_label: str,
    xs: Sequence[int],
    columns: Sequence[str],
    rows_by_column: Sequence[Sequence[Optional[float]]],
) -> str:
    """Render one metric table: x values down, one column per algorithm."""
    header = [x_label] + list(columns)
    body: List[List[str]] = []
    for i, x in enumerate(xs):
        body.append([str(x)] + [_fmt(col[i]) for col in rows_by_column])
    widths = [
        max(len(header[c]), *(len(r[c]) for r in body))
        for c in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(series: SeriesResult, reference: str = "sop") -> str:
    """Both metric tables plus speedups, for one figure."""
    algos = list(series.runs)
    cpu_cols = [series.cpu_ms(a) for a in algos]
    mem_cols = [series.memory_units(a) for a in algos]
    parts = [
        format_table(
            f"{series.title} -- CPU time per window (ms)",
            series.x_label, series.sizes, algos, cpu_cols,
        ),
        "",
        format_table(
            f"{series.title} -- peak memory (evidence units)",
            series.x_label, series.sizes, algos, mem_cols,
        ),
    ]
    others = [a for a in algos if a != reference and a in series.runs]
    if reference in series.runs and others:
        speed_cols = [series.speedup_over(reference, a) for a in others]
        parts += [
            "",
            format_table(
                f"{series.title} -- CPU speedup of {reference} (x)",
                series.x_label, series.sizes,
                [f"vs {a}" for a in others], speed_cols,
            ),
        ]
    return "\n".join(parts)


def format_ranges(ranges) -> str:
    """Describe a ScaledRanges the way Table 2 lists parameters."""
    return (
        f"K in [{ranges.k[0]}, {ranges.k[1]})  "
        f"R in [{ranges.r[0]:g}, {ranges.r[1]:g})  "
        f"W in [{ranges.win[0]}, {ranges.win[1]})  "
        f"S in [{ranges.slide[0]}, {ranges.slide[1]}) "
        f"(quantum {ranges.slide_quantum}); fixed: "
        f"r={ranges.fixed_r:g}, k={ranges.fixed_k}, "
        f"win={ranges.fixed_win}, slide={ranges.fixed_slide}"
    )
