"""Benchmark harness: Table 1/2 workload builders, runners, reporting."""

from .report import format_ranges, format_series, format_table
from .runner import DEFAULT_ALGOS, AlgoSpec, SeriesResult, run_series
from .workloads import (
    PAPER_RANGES,
    WORKLOAD_SPECS,
    ScaledRanges,
    build_workload,
    default_ranges,
)

__all__ = [
    "DEFAULT_ALGOS",
    "AlgoSpec",
    "PAPER_RANGES",
    "ScaledRanges",
    "SeriesResult",
    "WORKLOAD_SPECS",
    "build_workload",
    "default_ranges",
    "format_ranges",
    "format_series",
    "format_table",
    "run_series",
]
