"""Experiment runner: execute detector series over workload sizes.

The paper's figures sweep the workload cardinality {10, 100, 500, 1000,
...} and report CPU per window and peak memory per algorithm.
:func:`run_series` reproduces one such sweep; algorithms can be *capped*
(skipped beyond a size) because the unshared baselines genuinely cannot
finish the largest workloads -- the same reason the paper calls SOP "the
only known method that scales to huge workloads".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.point import Point
from ..core.queries import QueryGroup
from ..metrics.results import RunResult
from ..runtime import Runtime

__all__ = ["AlgoSpec", "SeriesResult", "run_series", "DEFAULT_ALGOS"]

#: factory signature: group -> detector
DetectorFactory = Callable[[QueryGroup], "object"]


@dataclass(frozen=True)
class AlgoSpec:
    """One algorithm column of a figure."""

    name: str
    factory: DetectorFactory
    #: skip workload sizes strictly larger than this (None = no cap)
    max_queries: Optional[int] = None


def _default_algos() -> List[AlgoSpec]:
    from ..baselines.leap import LEAPDetector
    from ..baselines.mcod import MCODDetector
    from ..core.sop import SOPDetector

    return [
        AlgoSpec("sop", SOPDetector),
        AlgoSpec("mcod", MCODDetector),
        AlgoSpec("leap", LEAPDetector),
    ]


def DEFAULT_ALGOS(
    mcod_cap: Optional[int] = None, leap_cap: Optional[int] = None
) -> List[AlgoSpec]:
    """The paper's three contenders, with optional baseline size caps."""
    algos = _default_algos()
    return [
        AlgoSpec("sop", algos[0].factory),
        AlgoSpec("mcod", algos[1].factory, max_queries=mcod_cap),
        AlgoSpec("leap", algos[2].factory, max_queries=leap_cap),
    ]


@dataclass
class SeriesResult:
    """One figure's worth of measurements."""

    title: str
    x_label: str
    sizes: List[int] = field(default_factory=list)
    #: algo name -> per-size RunResult (None where capped/skipped)
    runs: Dict[str, List[Optional[RunResult]]] = field(default_factory=dict)

    def cpu_ms(self, algo: str) -> List[Optional[float]]:
        return [
            (r.cpu_ms_per_window if r is not None else None)
            for r in self.runs[algo]
        ]

    def memory_units(self, algo: str) -> List[Optional[int]]:
        return [
            (r.peak_memory_units if r is not None else None)
            for r in self.runs[algo]
        ]

    def memory_kb(self, algo: str) -> List[Optional[float]]:
        return [
            (r.peak_memory_kb if r is not None else None)
            for r in self.runs[algo]
        ]

    def speedup_over(self, fast: str, slow: str) -> List[Optional[float]]:
        """Per-size CPU ratio slow/fast (the paper's 'orders of magnitude')."""
        out: List[Optional[float]] = []
        for rf, rs in zip(self.runs[fast], self.runs[slow]):
            if rf is None or rs is None or rf.cpu_ms_per_window == 0:
                out.append(None)
            else:
                out.append(rs.cpu_ms_per_window / rf.cpu_ms_per_window)
        return out


def run_series(
    title: str,
    points: Sequence[Point],
    sizes: Sequence[int],
    group_builder: Callable[[int], QueryGroup],
    algos: Sequence[AlgoSpec],
    x_label: str = "queries",
    until: Optional[int] = None,
    shards: int = 1,
    backend: str = "serial",
) -> SeriesResult:
    """Run every (size, algorithm) cell of one figure.

    ``group_builder(size)`` must return the workload for that size (same
    random seed per size across algorithms so all contenders answer the
    same queries).  ``shards``/``backend`` run every cell on a sharded
    :class:`~repro.runtime.Runtime` (exact; the default is the classic
    single-detector measurement).
    """
    series = SeriesResult(title=title, x_label=x_label, sizes=list(sizes))
    series.runs = {a.name: [] for a in algos}
    for size in sizes:
        group = group_builder(size)
        for algo in algos:
            if algo.max_queries is not None and size > algo.max_queries:
                series.runs[algo.name].append(None)
                continue
            runtime = Runtime(group, factory=algo.factory,
                              shards=shards, backend=backend)
            series.runs[algo.name].append(runtime.run(points, until=until))
    return series
