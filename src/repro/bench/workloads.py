"""Workload builders for the paper's evaluation (Tables 1 and 2).

Table 1 defines seven workload classes over the four query parameters::

    Workload   R          K          W          S
    (A)        arbitrary  fixed      fixed      fixed
    (B)        fixed      arbitrary  fixed      fixed
    (C)        arbitrary  arbitrary  fixed      fixed
    (D)        fixed      fixed      arbitrary  fixed
    (E)        fixed      fixed      fixed      arbitrary
    (F)        fixed      fixed      arbitrary  arbitrary
    (G)        arbitrary  arbitrary  arbitrary  arbitrary

Table 2 gives the sampling ranges: K in [30, 1500), R in [200, 2000),
W in [1K, 500K), S in [50, 50K).  The authors ran on a 1M-point stock
trace / 100M-point synthetic stream; a pure-Python laptop reproduction
scales the *window-shaped* parameters down while keeping the paper's
ratios (slide/win = 1/20, k_max/win = 0.15, r range untouched because the
synthetic data geometry matches the paper's value box).  ``PAPER_RANGES``
records the original numbers; ``ScaledRanges`` the defaults used by the
benchmarks.  ``scale`` grows everything back toward paper scale.

Slides are sampled as multiples of ``slide_quantum`` so the swift slide
(gcd of member slides, Sec. 4.2) stays a useful batch size -- the paper's
range "[50s, 50Ks)" implies the same granularity of 50.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from ..core.queries import OutlierQuery, QueryGroup
from ..streams.windows import COUNT, WindowSpec

__all__ = [
    "PAPER_RANGES",
    "ScaledRanges",
    "WORKLOAD_SPECS",
    "build_workload",
    "default_ranges",
]

#: Table 2 verbatim (count-based units)
PAPER_RANGES = {
    "K": (30, 1500),
    "R": (200.0, 2000.0),
    "W": (1_000, 500_000),
    "S": (50, 50_000),
    "fixed_k": 30,
    "fixed_r_pattern": 700.0,   # Fig. 8/9: r fixed at 700
    "fixed_r_window": 200.0,    # Fig. 11/12: r fixed at 200
    "fixed_win": 10_000,
    "fixed_slide": 500,
}

#: Table 1 verbatim: which parameters vary in each workload class
WORKLOAD_SPECS: Dict[str, Tuple[bool, bool, bool, bool]] = {
    # name: (vary_r, vary_k, vary_win, vary_slide)
    "A": (True, False, False, False),
    "B": (False, True, False, False),
    "C": (True, True, False, False),
    "D": (False, False, True, False),
    "E": (False, False, False, True),
    "F": (False, False, True, True),
    "G": (True, True, True, True),
}


@dataclass(frozen=True)
class ScaledRanges:
    """Sampling ranges and fixed defaults, scaled for the local testbed."""

    r: Tuple[float, float] = (200.0, 2000.0)
    k: Tuple[int, int] = (5, 60)
    win: Tuple[int, int] = (400, 4000)
    slide: Tuple[int, int] = (50, 2000)
    slide_quantum: int = 50
    fixed_r: float = 700.0
    fixed_k: int = 6
    fixed_win: int = 2000
    fixed_slide: int = 100
    kind: str = COUNT

    def scale(self, factor: float) -> "ScaledRanges":
        """Grow window-shaped parameters by ``factor`` toward paper scale."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def _i(v: float) -> int:
            return max(1, int(round(v)))

        return replace(
            self,
            k=(_i(self.k[0] * factor), _i(self.k[1] * factor)),
            win=(_i(self.win[0] * factor), _i(self.win[1] * factor)),
            slide=(_i(self.slide[0] * factor), _i(self.slide[1] * factor)),
            fixed_k=_i(self.fixed_k * factor),
            fixed_win=_i(self.fixed_win * factor),
            fixed_slide=_i(self.fixed_slide * factor),
        )


def default_ranges(kind: str = COUNT, fixed_r: float = None) -> ScaledRanges:
    """The benchmark defaults; ``fixed_r`` overrides the pattern default
    (the paper uses r=700 for pattern experiments, r=200 for window ones)."""
    ranges = ScaledRanges(kind=kind)
    if fixed_r is not None:
        ranges = replace(ranges, fixed_r=fixed_r)
    return ranges


def _sample_slide(rng: np.random.Generator, ranges: ScaledRanges,
                  win: int) -> int:
    """A slide that is a quantum multiple, within range, and <= win."""
    q = ranges.slide_quantum
    lo = max(ranges.slide[0], q)
    hi = min(ranges.slide[1], win)
    if hi < lo:
        return max(min(win, lo), 1)
    n_steps = max(1, (hi - lo) // q + 1)
    return lo + int(rng.integers(0, n_steps)) * q


def build_workload(
    spec: str,
    n_queries: int,
    seed: int = 0,
    ranges: ScaledRanges = None,
) -> QueryGroup:
    """Build one Table 1 workload of ``n_queries`` random member queries.

    ``spec`` is a Table 1 class letter ("A".."G"); fixed parameters take
    the range defaults, varying ones are sampled uniformly per query
    ("randomly choosing the values ... in a range for each query",
    Sec. 6.2).
    """
    try:
        vary_r, vary_k, vary_win, vary_slide = WORKLOAD_SPECS[spec.upper()]
    except KeyError:
        raise ValueError(
            f"unknown workload spec {spec!r}; expected one of "
            f"{sorted(WORKLOAD_SPECS)}"
        ) from None
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    if ranges is None:
        ranges = default_ranges()
    rng = np.random.default_rng(seed)
    queries = []
    for _ in range(n_queries):
        r = (float(rng.uniform(*ranges.r)) if vary_r else ranges.fixed_r)
        k = (int(rng.integers(*ranges.k)) if vary_k else ranges.fixed_k)
        win = (int(rng.integers(*ranges.win)) if vary_win else ranges.fixed_win)
        if vary_slide:
            slide = _sample_slide(rng, ranges, win)
        else:
            slide = min(ranges.fixed_slide, win)
        queries.append(
            OutlierQuery(
                r=round(r, 3),
                k=k,
                window=WindowSpec(win=win, slide=slide, kind=ranges.kind),
            )
        )
    return QueryGroup(queries)
