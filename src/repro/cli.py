"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``generate synthetic`` / ``generate stock`` -- produce a stream CSV
  (and, for stock, optionally the raw trade trace);
* ``workload`` -- sample a Table 1 workload class into a JSON spec;
* ``explain`` -- print the shared skyband plan for a workload spec;
* ``detect`` -- run a detector over a stream CSV for a workload spec,
  archive the outputs, and print the run summary; ``--shards N``
  value-partitions the stream across N detector shards (exact, see
  ``repro.runtime``) and ``--backend serial|process`` picks where the
  shard pipelines run;
* ``compare`` -- diff two archived result files (the cross-detector
  equivalence check, as a tool);
* ``serve`` -- run the asyncio multi-tenant ingestion service (NDJSON
  over TCP plus an HTTP control plane; see ``repro.serve``), with
  graceful SIGTERM drain to a sharded checkpoint and ``--resume``.

Everything the CLI does goes through the public library API, so the
commands double as executable documentation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines.leap import LEAPDetector
from .baselines.mcod import MCODDetector
from .baselines.naive import NaiveDetector
from .core.multi_attr import MultiAttributeDetector
from .core.parser import parse_workload
from .core.queries import QueryGroup
from .core.sop import SOPDetector
from .engine.config import DetectorConfig
from .metrics.results import compare_outputs
from .runtime.backends import ShardFailure
from .streams.replay import (
    load_points_csv,
    load_results_jsonl,
    save_points_csv,
    save_results_jsonl,
    save_trades_csv,
)
from .streams.stock import StockTradeSimulator
from .streams.synthetic import SyntheticConfig, SyntheticStream
from .workload_io import load_workload, save_workload

__all__ = ["main", "build_parser"]

_ALGORITHMS = {
    "sop": SOPDetector,
    "mcod": MCODDetector,
    "leap": LEAPDetector,
    "naive": NaiveDetector,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SOP: sharing-aware multi-query stream outlier detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a stream")
    gen_sub = gen.add_subparsers(dest="source", required=True)

    syn = gen_sub.add_parser("synthetic", help="Gaussian+uniform stream")
    syn.add_argument("--n", type=int, default=10_000)
    syn.add_argument("--dim", type=int, default=2)
    syn.add_argument("--outlier-rate", type=float, default=0.03)
    syn.add_argument("--clusters", type=int, default=4)
    syn.add_argument("--spread", type=float, default=120.0)
    syn.add_argument("--seed", type=int, default=7)
    syn.add_argument("--out", required=True, help="points CSV path")

    stk = gen_sub.add_parser("stock", help="simulated STT trade trace")
    stk.add_argument("--n", type=int, default=10_000)
    stk.add_argument("--tickers", type=int, default=8)
    stk.add_argument("--anomaly-rate", type=float, default=0.01)
    stk.add_argument("--seed", type=int, default=11)
    stk.add_argument("--attributes", default="price,log_volume",
                     help="comma-separated point attributes")
    stk.add_argument("--out", required=True, help="points CSV path")
    stk.add_argument("--trades-out", default=None,
                     help="also write the raw trade trace CSV here")

    wl = sub.add_parser("workload", help="sample a Table 1 workload")
    wl.add_argument("--spec", default="G", help="Table 1 class A..G")
    wl.add_argument("--n", type=int, default=10, help="number of queries")
    wl.add_argument("--seed", type=int, default=0)
    wl.add_argument("--out", required=True, help="workload JSON path")

    exp = sub.add_parser("explain", help="print a workload's skyband plan")
    exp.add_argument("--workload", required=True)

    det = sub.add_parser("detect", help="run detection over a stream CSV")
    det.add_argument("--stream", required=True, help="points CSV")
    det.add_argument("--workload", required=True, help="workload JSON")
    det.add_argument("--algorithm", choices=sorted(_ALGORITHMS),
                     default="sop")
    det.add_argument("--out", default=None, help="results JSONL path")
    det.add_argument("--until", type=int, default=None,
                     help="stop at this boundary")
    det.add_argument("--no-batched-refresh", action="store_true",
                     help="run K-SKY refresh point-at-a-time (SOP only)")
    det.add_argument("--batch-min-rows", type=int, default=8,
                     help="batched-refresh crossover: below this many rows "
                          "per boundary, fall back to per-point (SOP only)")
    det.add_argument("--refresh-strategy",
                     choices=("auto", "per-point", "batched", "grid"),
                     default="auto",
                     help="K-SKY refresh engine: per-point, batched, or "
                          "grid (batched + grid-cell candidate pruning); "
                          "auto defers to --no-batched-refresh (SOP only)")
    det.add_argument("--skyband-impl", choices=("object", "soa"),
                     default="soa",
                     help="skyband state backend: soa (default; canonical "
                          "flat numpy arrays, vectorized scans on every "
                          "refresh strategy) or object (legacy Python-list "
                          "LSky, the bit-exact oracle; identical outputs, "
                          "SOP only)")
    det.add_argument("--prefilter", choices=("none", "qn", "sensitivity"),
                     default="none",
                     help="first-tier inlier screen ahead of the exact "
                          "K-SKY refresh: qn (windowed Qn/MAD robust-scale "
                          "anchors) or sensitivity (sampled anchor balls); "
                          "none disables screening (SOP only)")
    det.add_argument("--prefilter-mode", choices=("exact", "fast"),
                     default="exact",
                     help="exact prunes only provably k-satisfied points "
                          "(outputs byte-identical to --prefilter none); "
                          "fast additionally prunes on statistical "
                          "evidence (approximate; SOP only)")
    det.add_argument("--lazy", action="store_true",
                     help="refresh evidence only at boundaries with due "
                          "queries instead of eagerly every slide (SOP only)")
    det.add_argument("--shards", type=int, default=1,
                     help="value-partition the stream across this many "
                          "detector shards (exact; default 1)")
    det.add_argument("--backend", choices=("serial", "process", "supervised"),
                     default="serial",
                     help="where shard pipelines run: in-process (serial), "
                          "one worker process per shard (process, "
                          "fail-fast), or supervised workers with crash "
                          "detection, deadlines, and bounded retry")
    det.add_argument("--replication-radius", type=float, default=0.0,
                     help="border replication radius; 0 = auto (the "
                          "workload's largest query radius, always exact)")
    det.add_argument("--on-shard-failure",
                     choices=("fail", "retry", "drop-and-flag"),
                     default="retry",
                     help="supervised backend policy when a shard exhausts "
                          "its attempts: fail fast, retry then fail, or "
                          "drop the shard and mark the result PARTIAL")
    det.add_argument("--max-shard-retries", type=int, default=2,
                     help="relaunch budget per shard (supervised backend)")
    det.add_argument("--shard-deadline", type=float, default=0.0,
                     help="per-attempt wall-clock deadline in seconds for "
                          "a shard worker; 0 = no deadline (supervised)")
    det.add_argument("--validate-ingest", action="store_true",
                     help="quarantine poison records (NaN/inf coordinates, "
                          "seq/time regressions) to a counted side channel "
                          "instead of corrupting window state")
    det.add_argument("--fault-plan", default=None,
                     help="deterministic chaos schedule: inline JSON or a "
                          "path to a FaultPlan JSON file (testing/CI; see "
                          "repro.testing.faults)")

    cmp_ = sub.add_parser("compare", help="diff two archived result files")
    cmp_.add_argument("--a", required=True)
    cmp_.add_argument("--b", required=True)

    srv = sub.add_parser("serve", help="run the asyncio ingestion service")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=7077,
                     help="NDJSON ingest port (0 picks one)")
    srv.add_argument("--http-port", type=int, default=7078,
                     help="/healthz + /metrics port (0 picks one)")
    srv.add_argument("--workload", default=None,
                     help="workload JSON to pre-register (clients can "
                     "also register over the wire)")
    srv.add_argument("--queue-bound", type=int, default=1024,
                     help="per-session ingest queue bound (backpressure)")
    srv.add_argument("--checkpoint", default=None,
                     help="sharded checkpoint directory (graceful drain "
                     "writes here; enables --resume)")
    srv.add_argument("--checkpoint-interval", type=int, default=0,
                     help="also checkpoint every N boundaries (0: only "
                     "on drain)")
    srv.add_argument("--resume", action="store_true",
                     help="restore engine state from --checkpoint")
    srv.add_argument("--shards", type=int, default=1,
                     help="value-partition across N detector shards")
    srv.add_argument("--replication-radius", type=float, default=0.0,
                     help="border replication radius (0: derive from r)")
    srv.add_argument("--refresh-strategy",
                     choices=("auto", "incremental", "rebuild"),
                     default="auto")
    srv.add_argument("--skyband-impl", choices=("object", "soa"),
                     default="soa")
    srv.add_argument("--prefilter", choices=("none", "qn", "sensitivity"),
                     default="none")
    srv.add_argument("--prefilter-mode", choices=("exact", "fast"),
                     default="exact")

    return parser


def _cmd_generate(args) -> int:
    if args.source == "synthetic":
        stream = SyntheticStream(SyntheticConfig(
            dim=args.dim, outlier_rate=args.outlier_rate,
            n_clusters=args.clusters, cluster_spread=args.spread,
            seed=args.seed,
        ))
        n = save_points_csv(stream.take(args.n), args.out)
        print(f"wrote {n} synthetic points to {args.out}")
        return 0
    sim = StockTradeSimulator(
        n_trades=args.n, n_tickers=args.tickers,
        anomaly_rate=args.anomaly_rate, seed=args.seed,
    )
    attributes = tuple(a.strip() for a in args.attributes.split(","))
    n = save_points_csv(sim.points(attributes), args.out)
    print(f"wrote {n} stock points ({','.join(attributes)}) to {args.out}")
    if args.trades_out:
        m = save_trades_csv(sim.records(), args.trades_out)
        print(f"wrote {m} raw trades to {args.trades_out}")
    return 0


def _cmd_workload(args) -> int:
    from .bench.workloads import build_workload

    group = build_workload(args.spec, args.n, seed=args.seed)
    save_workload(list(group.queries), args.out)
    print(f"wrote workload {args.spec.upper()} with {len(group)} queries "
          f"to {args.out}")
    return 0


def _cmd_explain(args) -> int:
    queries = load_workload(args.workload)
    attr_sets = {q.attributes for q in queries}
    if len(attr_sets) > 1:
        print(f"{len(queries)} queries over {len(attr_sets)} attribute sets "
              "(divide & conquer applies); per-set plans:")
        from .core.multi_attr import partition_by_attributes
        for attrs, idxs in partition_by_attributes(queries).items():
            sub = QueryGroup([queries[i].replace(attributes=None)
                              for i in idxs])
            print(f"\n[attributes={attrs}]")
            print(parse_workload(sub).describe())
        return 0
    plan = parse_workload(QueryGroup(queries))
    print(plan.describe())
    print(f"Def. 6 reach table (dominators -> max layer): "
          f"{list(plan.allowed_layer)[:16]}"
          f"{'...' if plan.k_max > 16 else ''}")
    return 0


def _cmd_detect(args) -> int:
    from functools import partial

    from .runtime import Runtime

    points = load_points_csv(args.stream)
    queries = load_workload(args.workload)
    base = _ALGORITHMS[args.algorithm]
    config = DetectorConfig(
        eager=not args.lazy,
        use_batched_refresh=not args.no_batched_refresh,
        batch_min_rows=args.batch_min_rows,
        refresh_strategy=args.refresh_strategy,
        skyband_impl=args.skyband_impl,
        prefilter=args.prefilter,
        prefilter_mode=args.prefilter_mode,
        shards=args.shards,
        backend=args.backend,
        replication_radius=args.replication_radius,
        on_shard_failure=args.on_shard_failure,
        max_shard_retries=args.max_shard_retries,
        shard_deadline=args.shard_deadline,
        validate_ingest=args.validate_ingest,
        fault_plan=args.fault_plan,
    )
    # shards/backend/supervision/ingest apply to every algorithm; the
    # remaining knobs are SOP-only and silently ignoring them would mislead
    sop_only = config.replace(shards=1, backend="serial",
                              replication_radius=0.0,
                              on_shard_failure="retry",
                              max_shard_retries=2, shard_deadline=0.0,
                              validate_ingest=False, fault_plan=None)
    if args.algorithm != "sop" and sop_only != DetectorConfig():
        print(f"note: SOP tuning flags are ignored by {args.algorithm}")
    attr_sets = {q.attributes for q in queries}
    if len(attr_sets) > 1:
        if config.shards > 1:
            print("error: --shards > 1 is not supported for "
                  "multi-attribute workloads (no single partition axis "
                  "is shared by every attribute subset)", file=sys.stderr)
            return 2
        sop_kwargs = {"config": config} if args.algorithm == "sop" else {}
        detector = MultiAttributeDetector(queries, factory=base,
                                          **sop_kwargs)
        result = detector.run(points, until=args.until)
    else:
        factory = (partial(SOPDetector, config=config)
                   if args.algorithm == "sop" else base)
        runtime = Runtime(QueryGroup(queries), factory=factory,
                          config=config)
        try:
            result = runtime.run(points, until=args.until)
        except ShardFailure as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 3
    print(result.summary())
    work = result.work_stats_snapshot()
    print("work: " + ", ".join(
        f"{key}={work[key]}" for key in sorted(work)))
    if args.out:
        n = save_results_jsonl(result.outputs, args.out)
        print(f"archived {n} (query, boundary) outputs to {args.out}")
    if result.partial:
        lost = ",".join(str(s) for s in result.failed_shards)
        print(f"warning: PARTIAL result -- shard(s) {lost} failed and "
              "were dropped (on_shard_failure=drop-and-flag); outputs "
              "above are a lower bound, not the exact answer",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from .serve import build_service

    config = DetectorConfig(
        shards=args.shards,
        replication_radius=args.replication_radius,
        refresh_strategy=args.refresh_strategy,
        skyband_impl=args.skyband_impl,
        prefilter=args.prefilter,
        prefilter_mode=args.prefilter_mode,
    )
    queries = load_workload(args.workload) if args.workload else []
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.resume and queries:
        print("note: --resume restores the checkpointed workload; "
              "--workload is ignored")
        queries = []

    async def serve() -> int:
        server = build_service(
            config, queries=queries, host=args.host, port=args.port,
            http_port=args.http_port, queue_bound=args.queue_bound,
            checkpoint_path=args.checkpoint,
            checkpoint_interval=args.checkpoint_interval,
            resume=args.resume)
        await server.start()
        server.install_signal_handlers()
        print(f"ingest:  {server.address[0]}:{server.address[1]}")
        print(f"control: http://{server.http_address[0]}:"
              f"{server.http_address[1]}/metrics", flush=True)
        await server.stopped.wait()
        return 0

    return asyncio.run(serve())


def _cmd_compare(args) -> int:
    a = load_results_jsonl(args.a)
    b = load_results_jsonl(args.b)
    diffs = compare_outputs(a, b)
    if not diffs:
        print(f"IDENTICAL: {len(a)} (query, boundary) outputs match")
        return 0
    print(f"DIFFER ({len(diffs)} difference(s) shown):")
    for d in diffs:
        print("  " + d)
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "workload": _cmd_workload,
        "explain": _cmd_explain,
        "detect": _cmd_detect,
        "compare": _cmd_compare,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
