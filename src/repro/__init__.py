"""repro: SOP -- Sharing-Aware Outlier Analytics over High-Volume Data Streams.

A production-quality reproduction of Cao, Wang, Rundensteiner (SIGMOD 2016).
The package answers a *workload* of distance-based outlier detection queries
``q(r, k, win, slide)`` over one data stream by transforming the multi-query
problem into a single skyband computation per point (K-SKY over the LSky
structure), with full CPU/memory sharing across queries.

Quickstart::

    from repro import (OutlierQuery, QueryGroup, SOPDetector, WindowSpec,
                       make_synthetic_points)

    queries = [
        OutlierQuery(r=300, k=5, window=WindowSpec(win=1000, slide=100)),
        OutlierQuery(r=800, k=8, window=WindowSpec(win=2000, slide=200)),
    ]
    detector = SOPDetector(QueryGroup(queries))
    result = detector.run(make_synthetic_points(5000))
    print(result.summary())

Baselines (`NaiveDetector`, `MCODDetector`, `LEAPDetector`) share the same
interface and produce identical outlier sets; the benchmark harness under
``repro.bench`` regenerates every figure of the paper's evaluation.
"""

from .api import detect_outliers, outlier_flags
from .baselines.base import Detector
from .checkpoint import (
    CheckpointSubscriber,
    CheckpointedRun,
    ShardedCheckpointSubscriber,
    load_checkpoint,
    load_sharded_checkpoint,
    save_checkpoint,
    save_sharded_checkpoint,
)
from .engine import (
    AutoRefresh,
    BatchedRefresh,
    DetectorConfig,
    DueQueryEvaluator,
    ExecutorSubscriber,
    GridPrunedRefresh,
    PerPointRefresh,
    RefreshEngine,
    SafetyTracker,
    StreamExecutor,
    VectorizedSkybandEngine,
)
from .baselines.leap import LEAPDetector
from .baselines.mcod import MCODDetector
from .baselines.naive import NaiveDetector, brute_force_outliers
from .core.evaluator import (
    is_fully_safe,
    is_outlier_for_query,
    outlier_query_indexes,
    safe_min_layers,
)
from .core.ksky import KSkyResult, KSkyRunner, sky_evaluate
from .core.lsky import LSky
from .core.lsky_soa import LSkySoA
from .core.multi_attr import (
    MultiAttributeDetector,
    MultiAttributeSOP,
    partition_by_attributes,
)
from .core.parser import RGrid, SkybandPlan, parse_workload
from .core.point import (
    DistanceMetric,
    Point,
    available_metrics,
    chebyshev,
    euclidean,
    get_metric,
    manhattan,
    points_from_array,
    register_metric,
)
from .core.queries import OutlierQuery, QueryGroup
from .index import (
    GridCandidateIndex,
    GridIndex,
    IndexedWindow,
    cells_of_block,
)
from .core.dynamic import DynamicSOPDetector
from .core.sop import SOPDetector
from .metrics.meters import CpuMeter, MemoryMeter
from .metrics.profiling import RefreshProfile
from .metrics.results import RunResult, compare_outputs
from .runtime import (
    Backend,
    Merger,
    ProcessPoolBackend,
    Runtime,
    SerialBackend,
    ShardExecutor,
    ShardFailure,
    StreamPartitioner,
    SupervisedProcessBackend,
    make_backend,
)
from .metrics.results import merge_work
from .streams.buffer import WindowBuffer
from .streams.source import (
    IngestGuard,
    ListSource,
    StreamSource,
    batches_by_boundary,
    stream_end_boundary,
)
from .testing import (
    Fault,
    FaultInjector,
    FaultPlan,
    InjectedCrash,
    tear_file,
)
from .streams.replay import (
    load_points_csv,
    load_results_jsonl,
    load_trades_csv,
    save_points_csv,
    save_results_jsonl,
    save_trades_csv,
)
from .streams.stock import StockTradeSimulator, TradeRecord, make_stock_points
from .streams.synthetic import (
    SyntheticConfig,
    SyntheticStream,
    make_synthetic_points,
)
from .streams.windows import COUNT, TIME, SwiftSchedule, WindowSpec, gcd_all
from .alerts import (
    Alert,
    AlertRouter,
    AlertSink,
    AlertSubscriber,
    CallbackSink,
    CollectingSink,
    CountingSink,
    run_with_alerts,
)
from .serve import (
    IngestionServer,
    ServiceEngine,
    StreamSession,
    WireError,
    build_service,
)
from .workload_io import load_workload, save_workload

__version__ = "1.0.0"

__all__ = [
    "COUNT",
    "TIME",
    "CpuMeter",
    "Detector",
    "DistanceMetric",
    "KSkyResult",
    "KSkyRunner",
    "LEAPDetector",
    "LSky",
    "LSkySoA",
    "ListSource",
    "MCODDetector",
    "MemoryMeter",
    "RefreshProfile",
    "MultiAttributeDetector",
    "MultiAttributeSOP",
    "NaiveDetector",
    "OutlierQuery",
    "Point",
    "QueryGroup",
    "RGrid",
    "RunResult",
    "SOPDetector",
    "SkybandPlan",
    "StockTradeSimulator",
    "StreamSource",
    "SwiftSchedule",
    "SyntheticConfig",
    "SyntheticStream",
    "TradeRecord",
    "WindowBuffer",
    "WindowSpec",
    "Alert",
    "AlertRouter",
    "AlertSink",
    "AlertSubscriber",
    "AutoRefresh",
    "Backend",
    "BatchedRefresh",
    "CallbackSink",
    "CheckpointSubscriber",
    "CheckpointedRun",
    "CollectingSink",
    "CountingSink",
    "DetectorConfig",
    "DueQueryEvaluator",
    "DynamicSOPDetector",
    "ExecutorSubscriber",
    "GridCandidateIndex",
    "GridIndex",
    "GridPrunedRefresh",
    "IndexedWindow",
    "IngestionServer",
    "Merger",
    "PerPointRefresh",
    "ProcessPoolBackend",
    "RefreshEngine",
    "Runtime",
    "SafetyTracker",
    "SerialBackend",
    "ServiceEngine",
    "ShardExecutor",
    "ShardedCheckpointSubscriber",
    "StreamExecutor",
    "StreamPartitioner",
    "StreamSession",
    "WireError",
    "VectorizedSkybandEngine",
    "available_metrics",
    "batches_by_boundary",
    "brute_force_outliers",
    "build_service",
    "cells_of_block",
    "chebyshev",
    "compare_outputs",
    "detect_outliers",
    "euclidean",
    "gcd_all",
    "get_metric",
    "is_fully_safe",
    "is_outlier_for_query",
    "load_checkpoint",
    "load_points_csv",
    "load_sharded_checkpoint",
    "make_backend",
    "merge_work",
    "load_results_jsonl",
    "load_trades_csv",
    "load_workload",
    "make_stock_points",
    "make_synthetic_points",
    "manhattan",
    "outlier_query_indexes",
    "outlier_flags",
    "parse_workload",
    "partition_by_attributes",
    "points_from_array",
    "register_metric",
    "run_with_alerts",
    "save_checkpoint",
    "save_points_csv",
    "save_results_jsonl",
    "save_sharded_checkpoint",
    "save_trades_csv",
    "save_workload",
    "safe_min_layers",
    "sky_evaluate",
    "stream_end_boundary",
]
