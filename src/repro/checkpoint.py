"""Detector checkpoints: suspend and resume a streaming deployment.

A long-running monitor must survive restarts without losing its window.
Because every detector's answers are a pure function of (workload, live
window, boundary position), a checkpoint needs exactly three things:

* the workload spec (so the restored detector answers the same queries);
* the retained window points;
* the last processed boundary.

Per-point evidence (skybands, neighbor lists) is deliberately *not*
serialized: it is rebuilt by the detector's normal refresh on the first
boundary after restore, which keeps the format tiny, versionable, and
valid across algorithm/implementation upgrades.

Format: a JSON header line followed by one JSON line per retained point.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from .core.point import Point
from .core.queries import OutlierQuery, QueryGroup
from .core.sop import SOPDetector
from .streams.windows import COUNT, TIME, WindowSpec

__all__ = ["save_checkpoint", "load_checkpoint", "CheckpointedRun"]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_checkpoint(detector, last_boundary: int, path: PathLike) -> int:
    """Write a checkpoint for a detector after boundary ``last_boundary``.

    Works for any detector exposing ``group`` and a ``buffer`` of live
    points (all detectors in this package).  Returns the number of points
    saved.
    """
    group = detector.group
    buffer = getattr(detector, "buffer", None)
    if buffer is None:
        raise TypeError(
            f"{type(detector).__name__} has no window buffer to checkpoint"
        )
    points = list(buffer.points)
    header = {
        "version": _FORMAT_VERSION,
        "detector": detector.name,
        "last_boundary": int(last_boundary),
        "kind": group.kind,
        "queries": [
            {
                "r": q.r, "k": q.k, "win": q.win, "slide": q.slide,
                "name": q.name,
                **({"attributes": list(q.attributes)}
                   if q.attributes is not None else {}),
            }
            for q in group.queries
        ],
    }
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for p in points:
            fh.write(json.dumps(
                {"seq": p.seq, "time": p.time, "values": list(p.values)}
            ) + "\n")
    return len(points)


def load_checkpoint(
    path: PathLike,
    factory: Optional[Callable[[QueryGroup], object]] = None,
) -> Tuple[object, int]:
    """Restore ``(detector, last_boundary)`` from a checkpoint file.

    ``factory`` builds the detector from the restored workload (default:
    :class:`~repro.core.sop.SOPDetector` — restoring into a different
    implementation is explicitly supported, since evidence is rebuilt).
    """
    with open(path) as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: malformed checkpoint header") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported checkpoint version "
                f"{header.get('version')!r}"
            )
        kind = header.get("kind", COUNT)
        if kind not in (COUNT, TIME):
            raise ValueError(f"{path}: bad window kind {kind!r}")
        queries = [
            OutlierQuery(
                r=float(e["r"]), k=int(e["k"]),
                window=WindowSpec(win=int(e["win"]), slide=int(e["slide"]),
                                  kind=kind),
                name=str(e.get("name", "")),
                attributes=(tuple(e["attributes"])
                            if "attributes" in e else None),
            )
            for e in header["queries"]
        ]
        points = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                points.append(Point(
                    seq=int(obj["seq"]), time=float(obj["time"]),
                    values=tuple(float(v) for v in obj["values"]),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed point") from exc
    group = QueryGroup(queries)
    detector = (factory or SOPDetector)(group)
    if points:
        detector.warm_start(points)
    return detector, int(header["last_boundary"])


class CheckpointedRun:
    """Drive a detector with periodic checkpoints.

    ``interval`` counts processed boundaries between checkpoint writes;
    the file is rewritten atomically-ish (write then replace) so a crash
    mid-write leaves the previous checkpoint intact.
    """

    def __init__(self, detector, path: PathLike, interval: int = 10):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.detector = detector
        self.path = Path(path)
        self.interval = interval
        self._since = 0
        self.checkpoints_written = 0

    def step(self, t: int, batch):
        out = self.detector.step(t, batch)
        self._since += 1
        if self._since >= self.interval:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            save_checkpoint(self.detector, t, tmp)
            tmp.replace(self.path)
            self.checkpoints_written += 1
            self._since = 0
        return out
