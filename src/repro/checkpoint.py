"""Detector checkpoints: suspend and resume a streaming deployment.

A long-running monitor must survive restarts without losing its window.
Because every detector's answers are a pure function of (workload, live
window, boundary position), a checkpoint needs exactly three things:

* the workload spec (so the restored detector answers the same queries);
* the retained window points;
* the last processed boundary.

Per-point evidence (skybands, neighbor lists) is deliberately *not*
serialized: it is rebuilt by the detector's normal refresh on the first
boundary after restore, which keeps the format tiny, versionable, and
valid across algorithm/implementation upgrades.

The detector's :class:`~repro.engine.DetectorConfig` (ablation switches,
metric, tuning knobs) *is* serialized when the detector carries one: a
checkpoint restored into a differently-configured detector would silently
diverge in CPU/memory accounting, so :func:`load_checkpoint` restores the
saved config by default and fails loudly on a mismatch when a custom
factory builds a detector with a different config.

Format: a JSON header line followed by one JSON line per retained point.

Periodic checkpointing is an executor concern: :class:`CheckpointSubscriber`
listens to ``on_boundary_end`` and rewrites the file every ``interval``
boundaries; :class:`CheckpointedRun` is the legacy facade over a
:class:`~repro.engine.StreamExecutor` with that subscriber attached.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Optional, Tuple, Union

from .core.point import Point
from .core.queries import OutlierQuery, QueryGroup
from .engine.config import DetectorConfig
from .engine.executor import ExecutorSubscriber, StreamExecutor
from .streams.windows import COUNT, TIME, WindowSpec

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointSubscriber",
    "CheckpointedRun",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def save_checkpoint(detector, last_boundary: int, path: PathLike) -> int:
    """Write a checkpoint for a detector after boundary ``last_boundary``.

    Works for any detector exposing ``group`` and a ``buffer`` of live
    points (all detectors in this package).  Returns the number of points
    saved.
    """
    group = detector.group
    buffer = getattr(detector, "buffer", None)
    if buffer is None:
        raise TypeError(
            f"{type(detector).__name__} has no window buffer to checkpoint"
        )
    points = list(buffer.points)
    header = {
        "version": _FORMAT_VERSION,
        "detector": detector.name,
        "last_boundary": int(last_boundary),
        "kind": group.kind,
        "queries": [
            {
                "r": q.r, "k": q.k, "win": q.win, "slide": q.slide,
                "name": q.name,
                **({"attributes": list(q.attributes)}
                   if q.attributes is not None else {}),
            }
            for q in group.queries
        ],
    }
    config = getattr(detector, "config", None)
    if isinstance(config, DetectorConfig):
        header["config"] = config.as_dict()
    with open(path, "w") as fh:
        fh.write(json.dumps(header) + "\n")
        for p in points:
            fh.write(json.dumps(
                {"seq": p.seq, "time": p.time, "values": list(p.values)}
            ) + "\n")
    return len(points)


def load_checkpoint(
    path: PathLike,
    factory: Optional[Callable[[QueryGroup], object]] = None,
    allow_config_mismatch: bool = False,
) -> Tuple[object, int]:
    """Restore ``(detector, last_boundary)`` from a checkpoint file.

    ``factory`` builds the detector from the restored workload.  The
    default builds an :class:`~repro.core.sop.SOPDetector` with the
    checkpoint's saved :class:`~repro.engine.DetectorConfig`, so ablation
    switches survive the restart.  Restoring into a different
    implementation (e.g. MCOD) is explicitly supported, since evidence is
    rebuilt -- but if the factory-built detector carries a config that
    differs from the saved one, the restore fails loudly (pass
    ``allow_config_mismatch=True`` for a deliberate reconfiguration).
    """
    with open(path) as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: malformed checkpoint header") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported checkpoint version "
                f"{header.get('version')!r}"
            )
        kind = header.get("kind", COUNT)
        if kind not in (COUNT, TIME):
            raise ValueError(f"{path}: bad window kind {kind!r}")
        saved_config: Optional[DetectorConfig] = None
        if "config" in header:
            try:
                saved_config = DetectorConfig.from_dict(header["config"])
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}: malformed detector config"
                ) from exc
        queries = [
            OutlierQuery(
                r=float(e["r"]), k=int(e["k"]),
                window=WindowSpec(win=int(e["win"]), slide=int(e["slide"]),
                                  kind=kind),
                name=str(e.get("name", "")),
                attributes=(tuple(e["attributes"])
                            if "attributes" in e else None),
            )
            for e in header["queries"]
        ]
        points = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                points.append(Point(
                    seq=int(obj["seq"]), time=float(obj["time"]),
                    values=tuple(float(v) for v in obj["values"]),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed point") from exc
    group = QueryGroup(queries)
    if factory is None:
        from .core.sop import SOPDetector

        detector = (SOPDetector(group, config=saved_config)
                    if saved_config is not None else SOPDetector(group))
    else:
        detector = factory(group)
        restored_config = getattr(detector, "config", None)
        if (saved_config is not None
                and isinstance(restored_config, DetectorConfig)
                and restored_config != saved_config
                and not allow_config_mismatch):
            raise ValueError(
                f"{path}: detector config mismatch at restore "
                f"(checkpoint vs factory): "
                f"{saved_config.diff(restored_config)}; pass "
                "allow_config_mismatch=True to reconfigure deliberately"
            )
    if points:
        detector.warm_start(points)
    return detector, int(header["last_boundary"])


class CheckpointSubscriber(ExecutorSubscriber):
    """Executor subscriber that persists the detector periodically.

    ``interval`` counts processed boundaries between checkpoint writes;
    the file is rewritten atomically-ish (write then replace) so a crash
    mid-write leaves the previous checkpoint intact.
    """

    def __init__(self, path: PathLike, interval: int = 10):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.path = Path(path)
        self.interval = interval
        self._since = 0
        self.checkpoints_written = 0

    def on_boundary_end(self, t, outputs) -> None:
        self._since += 1
        if self._since >= self.interval:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            save_checkpoint(self.executor.detector, t, tmp)
            tmp.replace(self.path)
            self.checkpoints_written += 1
            self._since = 0


class CheckpointedRun:
    """Drive a detector with periodic checkpoints.

    Legacy facade: a :class:`~repro.engine.StreamExecutor` with a
    :class:`CheckpointSubscriber` attached.  ``step`` keeps the historical
    call signature; ``run`` processes a finite stream end-to-end with the
    executor's metering.
    """

    def __init__(self, detector, path: PathLike, interval: int = 10):
        self.detector = detector
        self.subscriber = CheckpointSubscriber(path, interval)
        self.executor = StreamExecutor(detector, [self.subscriber])
        self.path = self.subscriber.path
        self.interval = interval

    @property
    def checkpoints_written(self) -> int:
        return self.subscriber.checkpoints_written

    def step(self, t: int, batch):
        return self.executor.step(t, batch)

    def run(self, points, until: Optional[int] = None):
        """Process a finite stream end-to-end, checkpointing as it goes."""
        return self.executor.run(points, until=until)
