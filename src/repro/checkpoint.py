"""Detector checkpoints: suspend and resume a streaming deployment.

A long-running monitor must survive restarts without losing its window.
Because every detector's answers are a pure function of (workload, live
window, boundary position), a checkpoint needs exactly three things:

* the workload spec (so the restored detector answers the same queries);
* the retained window points;
* the last processed boundary.

Per-point evidence (skybands, neighbor lists) is deliberately *not*
serialized: it is rebuilt by the detector's normal refresh on the first
boundary after restore, which keeps the format tiny, versionable, and
valid across algorithm/implementation upgrades.

The detector's :class:`~repro.engine.DetectorConfig` (ablation switches,
metric, tuning knobs) *is* serialized when the detector carries one: a
checkpoint restored into a differently-configured detector would silently
diverge in CPU/memory accounting, so :func:`load_checkpoint` restores the
saved config by default and fails loudly on a mismatch when a custom
factory builds a detector with a different config.

Format: a JSON header line followed by one JSON line per retained point.
The header carries the point count, and every write is atomic (temp file
in the same directory + fsync + rename): a crash mid-write can neither
replace a good checkpoint with a torn one nor leave a truncated file
that restores short -- :func:`load_checkpoint` fails loudly, naming the
file, when the body disagrees with the promised count.

Periodic checkpointing is an executor concern: :class:`CheckpointSubscriber`
listens to ``on_boundary_end`` and rewrites the file every ``interval``
boundaries; :class:`CheckpointedRun` is the legacy facade over a
:class:`~repro.engine.StreamExecutor` with that subscriber attached.

Sharded runtimes checkpoint as *one manifest* plus one per-shard segment
file (each segment is a classic checkpoint of that shard's detector, so
the format above is reused verbatim).  The manifest pins the shard count
and the partitioner's learned bounds; restoring with a different shard
count fails loudly, because per-shard windows cannot be re-split without
replaying the stream.  :func:`save_sharded_checkpoint` /
:func:`load_sharded_checkpoint` are the one-shot pair and
:class:`ShardedCheckpointSubscriber` is the periodic runtime subscriber.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Tuple, Union

from .core.point import Point
from .core.queries import OutlierQuery, QueryGroup
from .engine.config import DetectorConfig
from .engine.executor import ExecutorSubscriber, StreamExecutor
from .streams.windows import COUNT, TIME, WindowSpec

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_sharded_checkpoint",
    "load_sharded_checkpoint",
    "CheckpointSubscriber",
    "CheckpointedRun",
    "ShardedCheckpointSubscriber",
]

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _atomic_write_lines(path: Path, lines: Iterable[str]) -> None:
    """Crash-safe file write: temp file in the same directory + fsync +
    atomic rename.

    A crash at any instant leaves either the previous file intact or the
    complete new one -- never a half-written target.  The fsync before
    the rename matters: without it the rename can land on disk before
    the data, and a power loss yields exactly the torn file the rename
    was supposed to prevent.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as fh:
        for line in lines:
            fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def save_checkpoint(detector, last_boundary: int, path: PathLike) -> int:
    """Write a checkpoint for a detector after boundary ``last_boundary``.

    Works for any detector exposing ``group`` and a ``buffer`` of live
    points (all detectors in this package).  Returns the number of points
    saved.

    The write is atomic (temp file + fsync + rename) and the header
    records the point count, so a torn file can neither replace a good
    checkpoint nor be silently restored short: :func:`load_checkpoint`
    fails loudly when the body does not match the promised count.
    """
    group = detector.group
    buffer = getattr(detector, "buffer", None)
    if buffer is None:
        raise TypeError(
            f"{type(detector).__name__} has no window buffer to checkpoint"
        )
    points = list(buffer.points)
    header = {
        "version": _FORMAT_VERSION,
        "detector": detector.name,
        "last_boundary": int(last_boundary),
        "kind": group.kind,
        "queries": [
            {
                "r": q.r, "k": q.k, "win": q.win, "slide": q.slide,
                "name": q.name,
                **({"attributes": list(q.attributes)}
                   if q.attributes is not None else {}),
            }
            for q in group.queries
        ],
    }
    header["points"] = len(points)
    config = getattr(detector, "config", None)
    if isinstance(config, DetectorConfig):
        header["config"] = config.as_dict()
    lines = [json.dumps(header) + "\n"]
    for p in points:
        lines.append(json.dumps(
            {"seq": p.seq, "time": p.time, "values": list(p.values)}
        ) + "\n")
    _atomic_write_lines(Path(path), lines)
    return len(points)


def load_checkpoint(
    path: PathLike,
    factory: Optional[Callable[[QueryGroup], object]] = None,
    allow_config_mismatch: bool = False,
) -> Tuple[object, int]:
    """Restore ``(detector, last_boundary)`` from a checkpoint file.

    ``factory`` builds the detector from the restored workload.  The
    default builds an :class:`~repro.core.sop.SOPDetector` with the
    checkpoint's saved :class:`~repro.engine.DetectorConfig`, so ablation
    switches survive the restart.  Restoring into a different
    implementation (e.g. MCOD) is explicitly supported, since evidence is
    rebuilt -- but if the factory-built detector carries a config that
    differs from the saved one, the restore fails loudly (pass
    ``allow_config_mismatch=True`` for a deliberate reconfiguration).
    """
    with open(path) as fh:
        try:
            header = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: malformed checkpoint header") from exc
        if header.get("sharded"):
            raise ValueError(
                f"{path} is a sharded checkpoint manifest; restore it "
                "with load_sharded_checkpoint"
            )
        if header.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported checkpoint version "
                f"{header.get('version')!r}"
            )
        kind = header.get("kind", COUNT)
        if kind not in (COUNT, TIME):
            raise ValueError(f"{path}: bad window kind {kind!r}")
        saved_config: Optional[DetectorConfig] = None
        if "config" in header:
            try:
                saved_config = DetectorConfig.from_dict(header["config"])
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}: malformed detector config"
                ) from exc
        queries = [
            OutlierQuery(
                r=float(e["r"]), k=int(e["k"]),
                window=WindowSpec(win=int(e["win"]), slide=int(e["slide"]),
                                  kind=kind),
                name=str(e.get("name", "")),
                attributes=(tuple(e["attributes"])
                            if "attributes" in e else None),
            )
            for e in header["queries"]
        ]
        points = []
        for lineno, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
                points.append(Point(
                    seq=int(obj["seq"]), time=float(obj["time"]),
                    values=tuple(float(v) for v in obj["values"]),
                ))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: malformed point") from exc
        expected = header.get("points")
        if expected is not None and len(points) != int(expected):
            raise ValueError(
                f"{path}: truncated checkpoint: header promises "
                f"{expected} point(s), file holds {len(points)}"
            )
    group = QueryGroup(queries)
    if factory is None:
        from .core.sop import SOPDetector

        detector = (SOPDetector(group, config=saved_config)
                    if saved_config is not None else SOPDetector(group))
    else:
        detector = factory(group)
        restored_config = getattr(detector, "config", None)
        if (saved_config is not None
                and isinstance(restored_config, DetectorConfig)
                and restored_config != saved_config
                and not allow_config_mismatch):
            diff = saved_config.diff(restored_config)
            hint = ""
            if "skyband_impl" in diff:
                hint = (
                    " [skyband_impl is 'object' (legacy Python-list "
                    "LSky oracle) or 'soa' (canonical vectorized tier, "
                    "the current default); both are output-identical, "
                    "so pre-refactor 'object' checkpoints restore "
                    "bit-exact under either -- keep the saved impl in "
                    "the factory config, or pass "
                    "allow_config_mismatch=True to upgrade]"
                )
            raise ValueError(
                f"{path}: detector config mismatch at restore "
                f"(checkpoint vs factory): {diff}; pass "
                "allow_config_mismatch=True to reconfigure deliberately"
                + hint
            )
    if points:
        detector.warm_start(points)
    return detector, int(header["last_boundary"])


class CheckpointSubscriber(ExecutorSubscriber):
    """Executor subscriber that persists the detector periodically.

    ``interval`` counts processed boundaries between checkpoint writes;
    :func:`save_checkpoint` is atomic (temp file + fsync + rename), so a
    crash at any moment leaves the previous complete checkpoint intact.
    """

    def __init__(self, path: PathLike, interval: int = 10):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.path = Path(path)
        self.interval = interval
        self._since = 0
        self.checkpoints_written = 0

    def on_boundary_end(self, t, outputs) -> None:
        self._since += 1
        if self._since >= self.interval:
            save_checkpoint(self.executor.detector, t, self.path)
            self.checkpoints_written += 1
            self._since = 0


class CheckpointedRun:
    """Drive a detector with periodic checkpoints.

    Legacy facade: a :class:`~repro.engine.StreamExecutor` with a
    :class:`CheckpointSubscriber` attached.  ``step`` keeps the historical
    call signature; ``run`` processes a finite stream end-to-end with the
    executor's metering.
    """

    def __init__(self, detector, path: PathLike, interval: int = 10):
        self.detector = detector
        self.subscriber = CheckpointSubscriber(path, interval)
        self.executor = StreamExecutor(detector, [self.subscriber])
        self.path = self.subscriber.path
        self.interval = interval

    @property
    def checkpoints_written(self) -> int:
        return self.subscriber.checkpoints_written

    def step(self, t: int, batch):
        return self.executor.step(t, batch)

    def run(self, points, until: Optional[int] = None):
        """Process a finite stream end-to-end, checkpointing as it goes."""
        return self.executor.run(points, until=until)


# --------------------------------------------------------------------------
# sharded checkpoints: one manifest + one classic segment per shard
# --------------------------------------------------------------------------


def _segment_path(manifest: Path, shard_id: int) -> Path:
    return manifest.with_name(f"{manifest.name}.shard{shard_id}")


def _manifest_dict(runtime, last_boundary: int,
                   segments: List[str]) -> dict:
    part = runtime.partitioner
    return {
        "version": _FORMAT_VERSION,
        "sharded": True,
        "shards": runtime.n_shards,
        "last_boundary": int(last_boundary),
        "partitioner": {
            "axis": part.axis,
            "radius": part.radius,
            "bounds": list(part.bounds) if part.bounds is not None else None,
        },
        "segments": segments,
    }


def save_sharded_checkpoint(runtime, last_boundary: int,
                            path: PathLike) -> int:
    """Checkpoint a sharded runtime: manifest at ``path`` + shard segments.

    Each shard's detector is saved with the classic :func:`save_checkpoint`
    into ``<path>.shard<i>``; the manifest records shard count, the
    partitioner geometry (axis, radius, learned bounds), and the segment
    file names.  Returns the total points saved (border replicas counted
    once per holding shard, as stored).

    Every file write is atomic, and the manifest lands last: a crash at
    any instant leaves the previous manifest pointing at
    previous-or-newer complete segments -- always a restorable state.

    Requires live shard executors, i.e. a serial-backend runtime -- the
    process backend runs shards inside workers and cannot be checkpointed
    mid-stream.
    """
    manifest_path = Path(path)
    shards = runtime.shards  # raises loudly for non-steppable backends
    total = 0
    segments: List[str] = []
    for shard in shards:
        seg = _segment_path(manifest_path, shard.shard_id)
        total += save_checkpoint(shard.detector, last_boundary, seg)
        segments.append(seg.name)
    _atomic_write_lines(manifest_path, [json.dumps(
        _manifest_dict(runtime, last_boundary, segments)) + "\n"])
    return total


def load_sharded_checkpoint(
    path: PathLike,
    factory: Optional[Callable[[QueryGroup], object]] = None,
    shards: Optional[int] = None,
    backend=None,
    allow_config_mismatch: bool = False,
):
    """Restore ``(runtime, last_boundary)`` from a sharded manifest.

    Every segment is restored with :func:`load_checkpoint` (same factory
    and config-mismatch semantics), the partitioner geometry comes back
    from the manifest, and point ownership is recomputed -- the runtime
    resumes exactly where the checkpointed one stopped.

    The shard count is part of the persisted state: per-shard windows
    cannot be re-split without replaying the stream, so passing ``shards``
    different from the manifest's fails loudly rather than resuming with
    silently wrong partitions.
    """
    from .runtime import Runtime, StreamPartitioner

    manifest_path = Path(path)
    with open(manifest_path) as fh:
        try:
            manifest = json.loads(fh.readline())
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: malformed sharded checkpoint manifest"
            ) from exc
    if not manifest.get("sharded"):
        raise ValueError(
            f"{path} is not a sharded checkpoint manifest; restore it "
            "with load_checkpoint"
        )
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported checkpoint version "
            f"{manifest.get('version')!r}"
        )
    n_shards = int(manifest["shards"])
    segments = manifest["segments"]
    if len(segments) != n_shards:
        raise ValueError(
            f"{path}: manifest lists {len(segments)} segment(s) for "
            f"{n_shards} shard(s)"
        )
    if shards is not None and int(shards) != n_shards:
        raise ValueError(
            f"{path}: checkpoint has {n_shards} shard(s) but the restore "
            f"requested {shards}; shard count cannot change across a "
            "restore (re-split requires replaying the stream)"
        )
    detectors = []
    boundaries = set()
    for name in segments:
        detector, seg_boundary = load_checkpoint(
            manifest_path.with_name(name), factory=factory,
            allow_config_mismatch=allow_config_mismatch,
        )
        detectors.append(detector)
        boundaries.add(seg_boundary)
    last_boundary = int(manifest["last_boundary"])
    if boundaries - {last_boundary}:
        raise ValueError(
            f"{path}: segment boundaries {sorted(boundaries)} disagree "
            f"with manifest boundary {last_boundary}"
        )
    geo = manifest.get("partitioner", {})
    radius = float(geo.get("radius", 0.0))
    partitioner = StreamPartitioner(
        n_shards, radius,
        bounds=tuple(geo["bounds"]) if geo.get("bounds") else None,
        axis=int(geo.get("axis", 0)),
    )
    group = detectors[0].group
    config = getattr(detectors[0], "config", None)
    runtime = Runtime(
        group,
        factory=factory,
        config=config if isinstance(config, DetectorConfig) else None,
        shards=n_shards,
        backend=backend,
        partitioner=partitioner,
    )
    runtime.adopt_shards(detectors)
    runtime.last_boundary = last_boundary
    return runtime, last_boundary


class ShardedCheckpointSubscriber:
    """Runtime subscriber persisting the whole shard set periodically.

    The sharded analogue of :class:`CheckpointSubscriber`: every
    ``interval`` boundaries :func:`save_sharded_checkpoint` rewrites all
    shard segments and then the manifest, each write atomic (temp file +
    fsync + rename, manifest last), so a crash at any moment leaves a
    consistent previous manifest pointing at previous-or-newer complete
    segments.  Attach to a :class:`~repro.runtime.Runtime` with
    ``subscribe``.
    """

    def __init__(self, path: PathLike, interval: int = 10):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.path = Path(path)
        self.interval = interval
        self.runtime = None
        self._since = 0
        self.checkpoints_written = 0

    def on_attach(self, runtime) -> None:
        self.runtime = runtime

    def on_boundary_end(self, t, outputs) -> None:
        self._since += 1
        if self._since < self.interval:
            return
        save_sharded_checkpoint(self.runtime, t, self.path)
        self.checkpoints_written += 1
        self._since = 0

    def on_stream_end(self, result) -> None:
        """Stream ended; nothing to flush (checkpoints are periodic)."""
