"""repro.serve: asyncio multi-tenant ingestion service.

The serving layer wraps the sharded :class:`~repro.runtime.Runtime`
behind newline-delimited JSON over TCP plus a tiny HTTP control plane
(``/healthz``, ``/metrics``).  Outlier sets it emits are bit-identical
to an offline ``Runtime.run`` over the merged stream regardless of how
client sessions interleave -- see :mod:`repro.serve.engine` for the
watermark argument and ``docs/architecture.md`` for the service design.

Entry points: :func:`build_service` here, ``repro serve`` on the CLI.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.queries import OutlierQuery
from ..engine.config import DetectorConfig
from .engine import ServiceEngine
from .http import ControlPlane
from .protocol import ERROR_CODES, PROTOCOL_VERSION, WireError
from .server import IngestionServer
from .session import StreamSession

__all__ = [
    "ControlPlane",
    "ERROR_CODES",
    "IngestionServer",
    "PROTOCOL_VERSION",
    "ServiceEngine",
    "StreamSession",
    "WireError",
    "build_service",
]


def build_service(config: Optional[DetectorConfig] = None,
                  queries: Sequence[OutlierQuery] = (), *,
                  host: str = "127.0.0.1", port: int = 0,
                  http_port: int = 0, queue_bound: int = 1024,
                  checkpoint_path=None, checkpoint_interval: int = 0,
                  resume: bool = False) -> IngestionServer:
    """Assemble an (unstarted) ingestion server.

    With ``resume=True`` the engine is restored from the atomic sharded
    checkpoint at ``checkpoint_path`` (queries come back in their
    original handle order; clients re-attach with ``claim``); otherwise
    a fresh engine starts with ``queries`` pre-registered.  Call
    ``await server.start()`` inside a running event loop.
    """
    if resume:
        if not checkpoint_path:
            raise ValueError("resume=True requires a checkpoint_path")
        engine = ServiceEngine.resume(
            checkpoint_path, checkpoint_interval=checkpoint_interval)
    else:
        engine = ServiceEngine(config=config, queries=queries,
                               checkpoint_path=checkpoint_path,
                               checkpoint_interval=checkpoint_interval)
    return IngestionServer(engine, host=host, port=port,
                           http_port=http_port, queue_bound=queue_bound)
