"""StreamSession: one client connection's ingestion state.

Each session owns a bounded :class:`asyncio.Queue` of validated points, an
:class:`~repro.streams.source.IngestGuard` (poison records are quarantined
per session, so one tenant's garbage never stalls another's stream), and
its slice of the watermark bookkeeping the engine's determinism rests on.

Backpressure, two ways
----------------------

* ``admission="block"`` (default): :meth:`admit_records` awaits
  ``queue.put`` -- when the bound is hit, the session's reader coroutine
  suspends, the server stops reading that socket, and the producer's TCP
  window eventually fills.  Classic slow-producer pushback; nothing is
  dropped and no reply is sent until the whole batch is queued.
* ``admission="reject"``: a batch that cannot fit entirely gets the typed
  ``queue-full`` rejection (with ``capacity`` and ``pending``) and *none*
  of it is enqueued -- all-or-nothing, so the producer can retry the
  identical batch without tripping the guard's seq-regression check.
  Never a silent drop: rejected batches are counted and reported.

A single ``points`` op larger than the whole queue bound is rejected as
``batch-too-large`` in both modes (it could never fit at once).
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from ..core.point import Point
from ..streams.source import IngestGuard
from ..streams.windows import COUNT
from .protocol import WireError

__all__ = ["StreamSession"]

ADMISSION_MODES = ("block", "reject")


class StreamSession:
    """Per-connection ingestion state: queue, guard, watermark, handles."""

    def __init__(self, sid: int, tenant: str, queue_bound: int,
                 kind: str = COUNT, admission: str = "block",
                 producer: bool = True):
        if admission not in ADMISSION_MODES:
            raise WireError("bad-request",
                            f"admission must be one of {ADMISSION_MODES}, "
                            f"got {admission!r}")
        if queue_bound < 1:
            raise ValueError("queue_bound must be >= 1")
        self.sid = sid
        self.tenant = tenant
        self.kind = kind
        self.admission = admission
        self.queue: "asyncio.Queue[Point]" = asyncio.Queue(queue_bound)
        self.queue_bound = queue_bound
        self.guard = IngestGuard()
        #: handles this session registered or claimed (push targets)
        self.handles: List[int] = []
        self.subscribed = False
        #: True for watermark participants.  Producers (the default) hold
        #: the watermark from ``hello`` on -- their first record could be
        #: positioned anywhere, so no boundary may be processed before
        #: they deliver or end.  ``producer=false`` sessions
        #: (control-plane/dashboard clients) never hold boundaries back,
        #: but join the watermark anyway if they ever send points.
        self.streaming = bool(producer)
        #: no more points from this client (end op or EOF)
        self.ended = False
        #: position of the last record handed to the engine (drain loop)
        self.fed_watermark = float("-inf")
        self.closed = False
        # monotone per-session counters
        self.records_admitted = 0
        self.records_rejected = 0
        #: serializes reply/push writes on this connection
        self.write_lock = asyncio.Lock()

    # ----------------------------------------------------------- positions

    def _position(self, point: Point) -> float:
        return float(point.seq) if self.kind == COUNT else point.time

    @property
    def effective_watermark(self) -> float:
        """This session's contribution to the global watermark.

        ``+inf`` once the session ended *and* its queue is drained (it
        can never again deliver a record); otherwise the position of the
        last record the engine consumed.  Guard monotonicity makes this
        sound: no future record of this session is positioned below it.
        """
        if self.ended and self.queue.empty():
            return float("inf")
        return self.fed_watermark

    # ------------------------------------------------------------- ingest

    def validate(self, records) -> Tuple[List[Point], int]:
        """Guard a raw record batch; ``(admitted points, quarantined)``."""
        before = self.guard.total_quarantined
        points = self.guard.filter(records)
        return points, self.guard.total_quarantined - before

    async def admit_records(self, records) -> Tuple[int, int]:
        """Admit one ``points`` op; ``(admitted, quarantined)`` counts.

        Raises :class:`WireError` (typed, never a silent drop) when the
        session already ended, when the batch exceeds the queue bound, or
        -- in reject mode -- when it does not currently fit.
        """
        if self.ended:
            raise WireError("ended", "session already sent end")
        records = list(records)
        if len(records) > self.queue_bound:
            raise WireError(
                "batch-too-large",
                f"batch of {len(records)} exceeds the queue bound",
                capacity=self.queue_bound, batch=len(records))
        if self.admission == "reject":
            free = self.queue_bound - self.queue.qsize()
            if len(records) > free:
                # before the guard sees the records: the producer can
                # retry the identical batch without seq regressions
                self.records_rejected += len(records)
                raise WireError(
                    "queue-full",
                    f"queue has {free} free slot(s), batch needs "
                    f"{len(records)}; retry after draining",
                    capacity=self.queue_bound,
                    pending=self.queue.qsize(), batch=len(records))
        self.streaming = True
        points, quarantined = self.validate(records)
        for p in points:
            if self.admission == "reject":
                self.queue.put_nowait(p)  # capacity checked above
            else:
                await self.queue.put(p)  # blocks: slow-producer pushback
        self.records_admitted += len(points)
        return len(points), quarantined

    def pop_nowait(self) -> Optional[Point]:
        """One queued point for the drain loop (None when empty)."""
        try:
            point = self.queue.get_nowait()
        except asyncio.QueueEmpty:
            return None
        self.fed_watermark = self._position(point)
        return point

    def end(self) -> None:
        """No more points from this session (op ``end`` or EOF)."""
        self.ended = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"StreamSession(sid={self.sid}, tenant={self.tenant!r}, "
                f"queued={self.queue.qsize()}/{self.queue_bound}, "
                f"ended={self.ended})")
