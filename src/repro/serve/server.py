"""IngestionServer: asyncio TCP ingest + HTTP control plane + drain loop.

Task layout (single event loop, no threads)::

    one reader task per conn ──► StreamSession (bounded queue)
                                      │ round-robin pop
    drain task ◄──────────────────────┘
        │ feed / pump (watermark-gated boundaries)
        ▼
    ServiceEngine ──► Runtime (shards) ──► outliers pushed to subscribers

The drain task is the only caller of the engine, so detector state never
sees concurrency; sessions only touch their own queue.  Fairness is
round-robin with a per-cycle quota: a flooding tenant fills its own
bounded queue and blocks (or gets typed rejections), while other
tenants' records keep flowing.

Graceful drain (SIGTERM or :meth:`shutdown`): stop admitting (new
sessions, registrations, and points get the typed ``draining`` error),
drain every session queue, process the boundaries the watermark already
proves complete -- never a partial batch -- write one atomic sharded
checkpoint, notify subscribers (``drained`` push with the checkpoint
boundary), and close.  ``repro serve --resume`` restores from that
checkpoint and clients re-attach with ``claim`` + replay; the combined
outputs are bit-exact versus an uninterrupted run.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Dict, List, Optional

from ..metrics.results import merge_work
from .engine import ServiceEngine
from .http import ControlPlane
from .protocol import (PROTOCOL_VERSION, WireError, decode_line, encode,
                       error_message, ok_message, outliers_message,
                       parse_query, query_payload)
from .session import StreamSession

__all__ = ["IngestionServer"]


class IngestionServer:
    """The long-lived multi-tenant ingestion service around one engine."""

    def __init__(self, engine: ServiceEngine, host: str = "127.0.0.1",
                 port: int = 0, http_port: int = 0,
                 queue_bound: int = 1024, drain_quota: int = 64,
                 logger: Optional[logging.Logger] = None):
        self.engine = engine
        self.host = host
        self._want_port = port
        self._want_http_port = http_port
        self.queue_bound = int(queue_bound)
        self.drain_quota = int(drain_quota)
        self.log = logger or logging.getLogger("repro.serve")
        self._sessions: Dict[int, StreamSession] = {}
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._handle_owner: Dict[int, int] = {}
        self._next_sid = 1
        self._sessions_total = 0
        self._retired_counters = {"admitted": 0, "rejected": 0,
                                  "quarantined": 0}
        self._retired_reasons: Dict[str, int] = {}
        self._rr_offset = 0
        self.draining = False
        self._running = False
        self._data_event = asyncio.Event()
        self._drain_gate = asyncio.Event()
        self._drain_gate.set()
        self._drain_task: Optional[asyncio.Task] = None
        self._tcp_server = None
        self._control = ControlPlane(self.metrics_snapshot, self._health)
        self.address = None        # (host, port) once started
        self.http_address = None   # (host, port) once started
        #: set when shutdown completed (CLI awaits it)
        self.stopped = asyncio.Event()

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind both listeners and start the drain task."""
        self._tcp_server = await asyncio.start_server(
            self._handle_conn, self.host, self._want_port)
        self.address = self._tcp_server.sockets[0].getsockname()[:2]
        self.http_address = await self._control.start(
            self.host, self._want_http_port)
        self._running = True
        self._drain_task = asyncio.create_task(self._drain_loop())
        self.log.info(
            "serving: ingest on %s:%d, control plane on %s:%d, "
            "%d shard(s), queue bound %d", *self.address,
            *self.http_address, self.engine.config.shards, self.queue_bound)

    def install_signal_handlers(self,
                                loop: Optional[asyncio.AbstractEventLoop]
                                = None) -> None:
        """SIGTERM/SIGINT trigger one graceful drain (idempotent)."""
        loop = loop if loop is not None else asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda s=sig: asyncio.ensure_future(
                    self.shutdown(reason=signal.Signals(s).name)))

    async def shutdown(self, reason: str = "shutdown") -> None:
        """Graceful drain: stop admitting, flush, checkpoint, close."""
        if self.draining:
            return
        self.draining = True
        self.log.info("drain requested (%s): admission closed", reason)
        if self._tcp_server is not None:
            self._tcp_server.close()
        # stop the background drain task, then flush inline so the final
        # feed/pump/checkpoint sequence is single-owner and complete
        self._running = False
        self._data_event.set()
        self._drain_gate.set()
        if self._drain_task is not None:
            await self._drain_task
        self._drain_all_queues()
        watermark = self._watermark()
        if watermark is not None:
            await self._dispatch(self.engine.pump(watermark))
        boundary = self.engine.checkpoint()
        if boundary is not None:
            self.log.info("drain checkpoint at boundary %d", boundary)
        await self._announce(encode({
            "type": "drained",
            "checkpoint_boundary": boundary,
            "last_boundary": self.engine.last_boundary,
        }))
        for sid, writer in list(self._writers.items()):
            writer.close()
        if self._tcp_server is not None:
            await self._tcp_server.wait_closed()
        await self._control.stop()
        self.log.info("drained: last boundary %d, %d boundar(ies) total",
                      self.engine.last_boundary,
                      self.engine.boundaries_processed)
        self.stopped.set()

    # -------------------------------------------------------- test hooks

    def pause_drain(self) -> None:
        """Suspend the drain loop (deterministic backpressure tests)."""
        self._drain_gate.clear()

    def resume_drain(self) -> None:
        self._drain_gate.set()
        self._data_event.set()

    # ------------------------------------------------------------- serving

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        session: Optional[StreamSession] = None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    msg = decode_line(line)
                    op = msg.get("op")
                    if session is None and op != "hello":
                        raise WireError("no-session",
                                        "the first op must be hello")
                    if op == "hello":
                        session, reply = self._op_hello(msg, writer)
                    elif op == "bye":
                        await self._write(session, ok_message("bye"))
                        break
                    else:
                        reply = await self._op(op, msg, session)
                except WireError as exc:
                    reply = error_message(exc)
                await self._write(session, reply, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if session is not None:
                session.end()
                session.closed = True
                self._data_event.set()
            if session is not None:
                self._writers.pop(session.sid, None)
            writer.close()

    async def _write(self, session: Optional[StreamSession], payload: bytes,
                     writer: Optional[asyncio.StreamWriter] = None) -> None:
        if session is not None:
            writer = self._writers.get(session.sid, writer)
            async with session.write_lock:
                writer.write(payload)
                await writer.drain()
        elif writer is not None:
            writer.write(payload)
            await writer.drain()

    # ----------------------------------------------------------- operations

    def _op_hello(self, msg, writer):
        if self.draining:
            raise WireError("draining", "server is draining; not "
                            "admitting new sessions")
        sid = self._next_sid
        self._next_sid += 1
        tenant = str(msg.get("tenant") or f"tenant-{sid}")
        session = StreamSession(
            sid, tenant, self.queue_bound, kind=self.engine.kind,
            admission=str(msg.get("admission") or "block"),
            producer=bool(msg.get("producer", True)))
        self._sessions[sid] = session
        self._writers[sid] = writer
        self._sessions_total += 1
        self.log.info("session %d opened (tenant %r, admission %s)",
                      sid, tenant, session.admission)
        return session, ok_message(
            "hello", session=sid, tenant=tenant,
            protocol=PROTOCOL_VERSION, queue_bound=self.queue_bound,
            resumed_at=self.engine.last_boundary)

    async def _op(self, op, msg, session: StreamSession) -> bytes:
        if op == "register":
            if self.draining:
                raise WireError("draining", "server is draining; not "
                                "accepting registrations")
            query = parse_query(msg.get("query"))
            handle = self.engine.register(query)
            session.handles.append(handle)
            self._handle_owner[handle] = session.sid
            self.log.info("session %d registered %s as handle %d",
                          session.sid, query.name, handle)
            return ok_message("registered", handle=handle)
        if op == "claim":
            handle = self._handle_of(msg)
            try:
                query = self.engine.query_of(handle)
            except KeyError:
                raise WireError("unknown-handle",
                                f"no registered query with handle {handle}")
            if handle not in session.handles:
                session.handles.append(handle)
            self._handle_owner.setdefault(handle, session.sid)
            return ok_message("claimed", handle=handle,
                              query=query_payload(query))
        if op == "deregister":
            handle = self._handle_of(msg)
            owner = self._handle_owner.get(handle)
            if owner is not None and owner != session.sid:
                raise WireError("not-owner", f"handle {handle} belongs to "
                                "another session")
            try:
                self.engine.deregister(handle)
            except KeyError:
                raise WireError("unknown-handle",
                                f"no registered query with handle {handle}")
            self._handle_owner.pop(handle, None)
            if handle in session.handles:
                session.handles.remove(handle)
            return ok_message("deregistered", handle=handle)
        if op == "points":
            if self.draining:
                raise WireError("draining", "server is draining; not "
                                "admitting points")
            if not len(self.engine.registry):
                raise WireError("no-queries", "no query is registered; "
                                "points would have no window semantics")
            session.kind = self.engine.kind
            admitted, quarantined = await session.admit_records(
                msg.get("records") or [])
            self._data_event.set()
            return ok_message("admitted", admitted=admitted,
                              quarantined=quarantined)
        if op == "subscribe":
            session.subscribed = True
            return ok_message("subscribed")
        if op == "stat":
            return ok_message("stat", engine=self.engine.stats(),
                              draining=self.draining)
        if op == "end":
            session.end()
            self._data_event.set()
            return ok_message("ended")
        raise WireError("unknown-op", f"unknown op {op!r}")

    @staticmethod
    def _handle_of(msg) -> int:
        try:
            return int(msg["handle"])
        except (KeyError, TypeError, ValueError):
            raise WireError("bad-request", "an integer handle is required")

    # ----------------------------------------------------------- drain loop

    async def _drain_loop(self) -> None:
        while self._running:
            await self._drain_gate.wait()
            self._data_event.clear()
            moved = self._drain_cycle()
            watermark = self._watermark()
            emitted = 0
            if watermark is not None:
                outputs = self.engine.pump(watermark)
                emitted = len(outputs)
                await self._dispatch(outputs)
                if watermark == float("inf"):
                    await self._announce_stream_end()
            self._retire_finished_sessions()
            if not moved and not emitted:
                try:
                    await asyncio.wait_for(self._data_event.wait(),
                                           timeout=0.5)
                except asyncio.TimeoutError:
                    pass

    def _drain_cycle(self) -> int:
        """One fair pass: up to ``drain_quota`` records per session."""
        sids = sorted(self._sessions)
        if not sids:
            return 0
        self._rr_offset %= len(sids)
        moved = 0
        for i in range(len(sids)):
            session = self._sessions[sids[(self._rr_offset + i) % len(sids)]]
            for _ in range(self.drain_quota):
                point = session.pop_nowait()
                if point is None:
                    break
                self.engine.feed(point)
                moved += 1
        self._rr_offset += 1
        return moved

    def _drain_all_queues(self) -> None:
        """Shutdown path: hand every queued record to the engine."""
        while self._drain_cycle():
            pass

    def _watermark(self) -> Optional[float]:
        """Min delivered position over streaming sessions (None: idle).

        A streaming session that has not delivered a record yet
        contributes ``-inf`` -- it legitimately pins the watermark, since
        its first record could land anywhere.  Only non-streaming,
        non-ended (control-plane) sessions are excluded.
        """
        marks = [s.effective_watermark for s in self._sessions.values()
                 if s.streaming or s.ended]
        if not marks:
            return None
        return min(marks)

    async def _dispatch(self, outputs) -> None:
        """Push each boundary's outputs to subscribed owning sessions."""
        for t, handle_outputs in outputs:
            for session in list(self._sessions.values()):
                if not session.subscribed or session.closed:
                    continue
                if not any(h in handle_outputs for h in session.handles):
                    continue
                try:
                    await self._write(session, outliers_message(
                        t, handle_outputs, handles=session.handles))
                except (ConnectionError, KeyError):
                    session.closed = True
                    session.end()

    async def _announce_stream_end(self) -> None:
        """Tell ended subscribers the flushed stream is fully answered."""
        payload = encode({"type": "stream-end",
                          "t": self.engine.last_boundary})
        for session in list(self._sessions.values()):
            if (session.subscribed and session.ended and not session.closed
                    and not getattr(session, "_stream_end_sent", False)):
                session._stream_end_sent = True
                try:
                    await self._write(session, payload)
                except (ConnectionError, KeyError):
                    session.closed = True

    async def _announce(self, payload: bytes) -> None:
        for session in list(self._sessions.values()):
            if session.closed or not session.subscribed:
                continue
            try:
                await self._write(session, payload)
            except (ConnectionError, KeyError):
                session.closed = True

    def _retire_finished_sessions(self) -> None:
        """Fold closed, fully-drained sessions into aggregate counters."""
        for sid in [sid for sid, s in self._sessions.items()
                    if s.closed and s.queue.empty()]:
            s = self._sessions.pop(sid)
            self._writers.pop(sid, None)
            self._retired_counters["admitted"] += s.records_admitted
            self._retired_counters["rejected"] += s.records_rejected
            self._retired_counters["quarantined"] += s.guard.total_quarantined
            self._retired_reasons = merge_work(
                [self._retired_reasons, dict(s.guard.counts)])
            self.log.info("session %d retired (%d admitted, %d rejected, "
                          "%d quarantined)", sid, s.records_admitted,
                          s.records_rejected, s.guard.total_quarantined)

    # -------------------------------------------------------------- metrics

    def _health(self):
        body = {
            "status": "draining" if self.draining else "ok",
            "last_boundary": self.engine.last_boundary,
            "sessions": len(self._sessions),
        }
        return (503 if self.draining else 200), body

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` document; every counter monotone, work
        counters additive across shards (they are the merged per-shard
        ``work_stats``)."""
        live = list(self._sessions.values())
        reasons = merge_work([self._retired_reasons]
                             + [dict(s.guard.counts) for s in live])
        return {
            "service": {
                "draining": self.draining,
                "admitting": not self.draining,
                "sessions": {
                    "active": sum(1 for s in live if not s.closed),
                    "total": self._sessions_total,
                },
                "queue": {
                    "bound": self.queue_bound,
                    "depth": sum(s.queue.qsize() for s in live),
                },
                "records": {
                    "admitted": self._retired_counters["admitted"]
                    + sum(s.records_admitted for s in live),
                    "rejected": self._retired_counters["rejected"]
                    + sum(s.records_rejected for s in live),
                    "quarantined": self._retired_counters["quarantined"]
                    + sum(s.guard.total_quarantined for s in live),
                    "replay_skipped": self.engine.records_replay_skipped,
                },
                "quarantined_reasons": reasons,
                "queries": {
                    "active": len(self.engine.registry),
                    "registered_total": self.engine.registry.total_registered,
                },
                "boundaries": {
                    "processed": self.engine.boundaries_processed,
                    "last": self.engine.last_boundary,
                },
                "checkpoints_written": self.engine.checkpoints_written,
            },
            "work": self.engine.work_stats_snapshot(),
            "config": self.engine.config.as_dict(),
            "shards": self.engine.config.shards,
        }
